test/test_cml.ml: Alcotest Cml List Mpthreads QCheck QCheck_alcotest Random Sim
