(** Pluggable event sinks.

    A sink is where enabled telemetry events go after (optionally) being
    retained in the per-stream rings: nowhere ([null]), a caller-owned
    ring ([memory]), or a JSONL stream ([jsonl]). *)

type t = { emit : Event.t -> unit; flush : unit -> unit }

val null : t
(** Drops everything.  The disabled path never reaches a sink at all —
    emission is guarded by the platform's [enabled] flag — so [null] only
    matters for explicitly-attached no-op sinks. *)

val memory : Event.t Ring.t -> t
(** Record into a caller-owned bounded ring. *)

val jsonl : out_channel -> t
(** One JSON object per line ({!Event.to_json}).  Writes are serialized
    with an internal mutex so concurrent domains cannot tear lines; the
    caller closes the channel after [flush]. *)

val tee : t -> t -> t
