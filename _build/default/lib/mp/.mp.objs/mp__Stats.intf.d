lib/mp/stats.mli: Format
