lib/sync/sync.mli: Mp Mpthreads
