(** FIFO queue (two-list functional queue with mutable endpoints).
    Amortized O(1) [enq]/[deq].  Not thread-safe: protect with a lock (see
    {!Locked_queue}) when shared between procs, exactly as the paper's
    Figure 3 does. *)

include Queue_intf.QUEUE_EXT
