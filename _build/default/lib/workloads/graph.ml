type t = { n : int; dist : int array array }

let inf = max_int / 4

let random ~n ?(density = 0.4) ?(max_weight = 100) ~seed () =
  let rng = Random.State.make [| seed; n |] in
  let dist =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0
            else if Random.State.float rng 1.0 < density then
              1 + Random.State.int rng max_weight
            else inf))
  in
  { n; dist }

let copy g = { g with dist = Array.map Array.copy g.dist }

let floyd_warshall g =
  let n = g.n in
  let d = Array.map Array.copy g.dist in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = d.(i).(k) in
      if dik < inf then
        for j = 0 to n - 1 do
          let via = dik + d.(k).(j) in
          if via < d.(i).(j) then d.(i).(j) <- via
        done
    done
  done;
  d

let checksum d =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc x -> (acc * 31) + (if x >= inf then -1 else x) land 0xffffff)
        acc row)
    17 d
