module type COSTS = sig
  val rmw_cycles : int
  val read_cycles : int
  val write_cycles : int
  val pause_cycles : int
end

(* 1993-bus flavored defaults: an RMW is a full bus transaction, a spin read
   is a cache hit, a remote write invalidates. *)
module Default_costs : COSTS = struct
  let rmw_cycles = 60
  let read_cycles = 2
  let write_cycles = 20
  let pause_cycles = 10
end

module Make (P : Mp.Mp_intf.PLATFORM) (C : COSTS) = struct
  type 'a cell = 'a Atomic.t

  let spins = ref 0

  (* Spins from the lock-algorithm collection land in the platform's
     registry under their own name so they don't collide with the
     platform Lock's own "lock.spins". *)
  let c_spins = P.Telemetry.counter "lock.prims_spins"

  let make v = Atomic.make v

  let get c =
    P.Work.charge C.read_cycles;
    Atomic.get c

  let set c v =
    P.Work.charge C.write_cycles;
    Atomic.set c v

  (* An RMW is a bus transaction: it charges the probing proc AND occupies
     the shared bus, which is how spinning TAS probes slow everyone else
     down (Anderson's effect). *)
  let rmw_bus_bytes = 8

  let exchange c v =
    P.Work.charge C.rmw_cycles;
    P.Work.traffic ~bytes:rmw_bus_bytes;
    Atomic.exchange c v

  let compare_and_set c old v =
    P.Work.charge C.rmw_cycles;
    P.Work.traffic ~bytes:rmw_bus_bytes;
    Atomic.compare_and_set c old v

  let fetch_and_add c n =
    P.Work.charge C.rmw_cycles;
    P.Work.traffic ~bytes:rmw_bus_bytes;
    Atomic.fetch_and_add c n

  let pause () = P.Work.charge C.pause_cycles

  let pause_n n =
    if n > 0 then P.Work.charge (n * C.pause_cycles)

  let on_spin () =
    incr spins;
    Obs.Counters.incr c_spins

  let spin_count () = !spins
  let reset_spin_count () = spins := 0
end
