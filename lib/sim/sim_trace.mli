(** Bounded event trace for the simulated multiprocessor.

    A fixed-capacity ring of timestamped events (proc dispatches, frees,
    collections, proc acquisition) recorded by {!Mp_sim} when enabled.
    Deterministic like everything else in the simulator; used by tests and
    invaluable when a client deadlocks or livelocks (see the
    MP_SIM_DEBUG_ITERS watchdog it complements). *)

type event =
  | Dispatch of { proc : int; clock : int }
      (** the scheduler handed the proc to its pending action *)
  | Freed of { proc : int; clock : int }  (** the proc was released *)
  | Acquired of { proc : int; by : int; clock : int }
  | Gc_start of { clock : int; region_words : int }
  | Gc_end of { clock : int; duration : int }
  | Coalesced of { proc : int; clock : int; cycles : int }
      (** [cycles] of charges the run-ahead fast path absorbed inline since
          the proc's last dispatch, recorded when it finally suspends at
          [clock].  One event summarizes what would otherwise have been a
          string of dispatches. *)

type t

val create : capacity:int -> t
val record : t -> event -> unit
val clear : t -> unit

val events : t -> event list
(** Oldest first; at most [capacity] most recent events. *)

val length : t -> int
(** Events currently retained. *)

val total_recorded : t -> int
(** Events recorded since the last {!clear}, including overwritten ones. *)

val clock_of : event -> int

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
