open Mp
module Fifo = Queues.Fifo_queue

module Make (P : Mp.Mp_intf.PLATFORM_INT) (S : Mpthreads.Thread_intf.TIMED_SCHED) =
struct
  (* A commitment point: the first claimant wins the synchronization, exactly
     the [committed] mutex-lock protocol of the paper's Figure 5. *)
  type commit = P.Lock.mutex_lock

  type 'b sndr_entry = {
    s_commit : commit;
    s_value : 'b;
    s_resume : unit -> unit; (* reschedule the blocked sender *)
  }

  type 'b rcvr_entry = {
    r_commit : commit;
    r_deliver : 'b -> unit; (* reschedule the blocked receiver with a value *)
  }

  type 'a chan = {
    sndrs : 'a sndr_entry Fifo.queue;
    rcvrs : 'a rcvr_entry Fifo.queue;
  }

  type _ event =
    | E_always : 'a -> 'a event
    | E_never : 'a event
    | E_send : 'b chan * 'b -> unit event
    | E_recv : 'b chan -> 'b event
    | E_timeout : float -> unit event
    | E_choose : 'a event list -> 'a event
    | E_wrap : 'b event * ('b -> 'a) -> 'a event
    | E_wrap_abort : 'a event * (unit -> unit) -> 'a event
    | E_guard : (unit -> 'a event) -> 'a event

  (* A base event after forcing guards and composing wrappers; the result
     of the whole synchronization is a thunk run by the syncing thread. *)
  type 'a base =
    | BSend : 'b chan * 'b * (unit -> 'a) -> 'a base
    | BRecv : 'b chan * ('b -> 'a) -> 'a base
    | BAlways of (unit -> 'a)
    | BTimeout : float * (unit -> 'a) -> 'a base
        (* relative seconds, resolved against [S.now] at registration *)

  (* The single global runtime lock of the paper's CML prototype. *)
  let global_lock = P.Lock.mutex_lock ()

  (* Telemetry: a Blocked event when a sync parks its continuation, a
     Wakeup when a partner (or timeout) commits it.  Host-side only, so
     virtual-time results are unchanged; emitted outside the global lock
     where possible, and never from inside a suspend body. *)
  let c_blocks = P.Telemetry.counter "cml.blocks"
  let c_wakeups = P.Telemetry.counter "cml.wakeups"

  let note_block on tid =
    Obs.Counters.incr c_blocks;
    if P.Telemetry.enabled () then
      P.Telemetry.emit
        (Obs.Event.Blocked
           {
             proc = max 0 (P.Proc.self ());
             clock = P.Telemetry.now_ts ();
             thread = tid;
             on;
           })

  let note_wakeup on tid =
    Obs.Counters.incr c_wakeups;
    if P.Telemetry.enabled () then
      P.Telemetry.emit
        (Obs.Event.Wakeup
           {
             proc = max 0 (P.Proc.self ());
             clock = P.Telemetry.now_ts ();
             thread = tid;
             on;
           })
  let rng = ref (Random.State.make [| 0xc31 |])
  let set_seed seed = rng := Random.State.make [| seed |]

  let channel () = { sndrs = Fifo.create (); rcvrs = Fifo.create () }
  let spawn = S.fork
  let send_evt ch v = E_send (ch, v)
  let recv_evt ch = E_recv ch
  let always v = E_always v
  let never = E_never
  let timeout_evt d = E_timeout d
  let choose evs = E_choose evs
  let wrap ev f = E_wrap (ev, f)
  let wrap_abort ev abort = E_wrap_abort (ev, abort)
  let guard f = E_guard f

  (* Flatten to base events, composing wrappers outward.  Each [wrap_abort]
     gets a "won" cell shared by every base beneath it and is recorded in
     [all_aborts]; after the synchronization, an abort runs iff none of its
     bases was the chosen one (so an abort over a [never] always runs, and
     an abort over the whole winning choice never does). *)
  let rec flatten :
      type a b.
      a event ->
      (a -> b) ->
      bool ref list ->
      ((unit -> unit) * bool ref) list ref ->
      (b base * bool ref list) list =
   fun ev f cells all_aborts ->
    match ev with
    | E_always v -> [ (BAlways (fun () -> f v), cells) ]
    | E_never -> []
    | E_send (ch, v) -> [ (BSend (ch, v, fun () -> f ()), cells) ]
    | E_recv ch -> [ (BRecv (ch, f), cells) ]
    | E_timeout d -> [ (BTimeout (d, fun () -> f ()), cells) ]
    | E_choose evs -> List.concat_map (fun e -> flatten e f cells all_aborts) evs
    | E_wrap (e, g) -> flatten e (fun x -> f (g x)) cells all_aborts
    | E_wrap_abort (e, abort) ->
        let cell = ref false in
        all_aborts := (abort, cell) :: !all_aborts;
        flatten e f (cell :: cells) all_aborts
    | E_guard g -> flatten (g ()) f cells all_aborts

  (* Post-compose a base's delivery so that committing it records which
     branch won (for running the losers' abort actions afterwards). *)
  let mark_chosen : type a. int -> int ref -> a base -> a base =
   fun i chosen base ->
    let tag f x =
      chosen := i;
      f x
    in
    match base with
    | BAlways f -> BAlways (tag f)
    | BSend (ch, v, w) -> BSend (ch, v, tag w)
    | BRecv (ch, w) -> BRecv (ch, tag w)
    | BTimeout (d, w) -> BTimeout (d, tag w)

  let shuffle l =
    let arr = Array.of_list l in
    for i = Array.length arr - 1 downto 1 do
      let j = Random.State.int !rng (i + 1) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    Array.to_list arr

  (* Claim a waiting partner from [q], dropping stale (already-committed)
     entries.  Runs under the global lock. *)
  let rec claim_from q ~try_claim =
    match Fifo.deq_opt q with
    | None -> None
    | Some entry -> (
        match try_claim entry with
        | Some _ as won -> won
        | None -> claim_from q ~try_claim)

  (* Phase 1: look for an immediately available partner.  Under global lock. *)
  let poll_base : type a. a base -> (unit -> a) option = function
    | BAlways f -> Some f
    | BTimeout (d, f) -> if d <= 0. then Some f else None
    | BSend (ch, v, wrapped) ->
        claim_from ch.rcvrs ~try_claim:(fun r ->
            if P.Lock.try_lock r.r_commit then begin
              r.r_deliver v;
              Some wrapped
            end
            else None)
    | BRecv (ch, wrapf) ->
        claim_from ch.sndrs ~try_claim:(fun s ->
            if P.Lock.try_lock s.s_commit then begin
              s.s_resume ();
              Some (fun () -> wrapf s.s_value)
            end
            else None)

  let rec poll_all = function
    | [] -> None
    | b :: rest -> (
        match poll_base b with Some _ as hit -> hit | None -> poll_all rest)

  (* Phase 2: park this thread's continuation on every base.  Under global
     lock.  [k] expects the result thunk. *)
  let register_base :
      type a. a base -> commit -> (unit -> a) Engine.cont -> int -> unit =
   fun base commit k tid ->
    match base with
    | BAlways _ -> assert false (* always-available: poll would have taken it *)
    | BTimeout (d, wrapped) ->
        S.at (S.now () +. d) (fun () ->
            if P.Lock.try_lock commit then begin
              note_wakeup "cml.timeout" tid;
              S.reschedule_thread (k, wrapped, tid)
            end)
    | BSend (ch, v, wrapped) ->
        Fifo.enq ch.sndrs
          {
            s_commit = commit;
            s_value = v;
            s_resume =
              (fun () ->
                note_wakeup "cml.sync" tid;
                S.reschedule_thread (k, wrapped, tid));
          }
    | BRecv (ch, wrapf) ->
        Fifo.enq ch.rcvrs
          {
            r_commit = commit;
            r_deliver =
              (fun v ->
                note_wakeup "cml.sync" tid;
                S.reschedule_thread (k, (fun () -> wrapf v), tid));
          }

  let sync ev =
    let all_aborts = ref [] in
    match flatten ev Fun.id [] all_aborts with
    | [] when !all_aborts = [] ->
        (* never: block this thread forever *)
        Engine.callcc (fun _ ->
            note_block "cml.never" (S.id ());
            S.dispatch ())
    | tagged ->
        let chosen = ref (-1) in
        let tagged = shuffle tagged in
        let bases =
          List.mapi (fun i (b, _) -> mark_chosen i chosen b) tagged
        in
        let cell_lists = List.map snd tagged in
        let thunk =
          Engine.callcc (fun k ->
              let tid = S.id () in
              P.Lock.lock global_lock;
              match poll_all bases with
              | Some thunk ->
                  P.Lock.unlock global_lock;
                  Engine.throw k thunk
              | None ->
                  let commit = P.Lock.mutex_lock () in
                  List.iter (fun b -> register_base b commit k tid) bases;
                  P.Lock.unlock global_lock;
                  note_block "cml.sync" tid;
                  S.dispatch ())
        in
        let v = thunk () in
        (* mark the winner's enclosing wrap_aborts, then run the rest (in
           the syncing thread, after delivery) *)
        List.iteri
          (fun i cells -> if i = !chosen then List.iter (fun c -> c := true) cells)
          cell_lists;
        List.iter
          (fun (abort, cell) -> if not !cell then abort ())
          (List.rev !all_aborts);
        v

  let select evs = sync (E_choose evs)
  let send ch v = sync (E_send (ch, v))
  let recv ch = sync (E_recv ch)
  let sleep d = sync (E_timeout d)

  let recv_timeout ch d =
    select
      [
        E_wrap (E_recv ch, fun v -> Some v);
        E_wrap (E_timeout d, fun () -> None);
      ]

  let recv_poll ch =
    P.Lock.lock global_lock;
    let hit =
      claim_from ch.sndrs ~try_claim:(fun s ->
          if P.Lock.try_lock s.s_commit then begin
            s.s_resume ();
            Some s.s_value
          end
          else None)
    in
    P.Lock.unlock global_lock;
    hit
end
