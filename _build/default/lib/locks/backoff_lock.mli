(** TTAS with bounded exponential backoff (Anderson 1990) — the kind of
    smarter spin the paper's §3.3 says justifies putting [lock] in the
    interface rather than leaving clients to spin on [try_lock]. *)

module Make (P : Lock_intf.PRIMS) : Lock_intf.LOCK_EXT
