(* Reporting/harness pieces: renderers, the LoC inventory, the analytic
   model, and a reduced experiment sweep with verified results. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let render_to_string f =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* ---------------- render ---------------- *)

let test_table_alignment () =
  let out =
    render_to_string (fun fmt ->
        Report.Render.table fmt ~header:[ "a"; "bb" ]
          ~rows:[ [ "xxx"; "y" ]; [ "z"; "wwww" ] ])
  in
  checkb "header present" true (contains out "a    bb");
  checkb "rule present" true (contains out "---");
  checkb "rows present" true (contains out "xxx" && contains out "wwww")

let test_series () =
  let out =
    render_to_string (fun fmt ->
        Report.Render.series fmt ~xlabel:"s" ~xs:[ 1; 2 ]
          ~rows:[ ("bench", [ 1.0; 2.5 ]) ])
  in
  checkb "values formatted" true (contains out "1.00" && contains out "2.50")

let test_chart_has_legend () =
  let out =
    render_to_string (fun fmt ->
        Report.Render.chart fmt ~xs:[ 1; 2; 4 ]
          ~rows:[ ("one", [ 1.; 2.; 4. ]); ("two", [ 1.; 1.5; 2. ]) ]
          ())
  in
  checkb "legend" true (contains out "A = one" && contains out "B = two")

let test_section () =
  let out = render_to_string (fun fmt -> Report.Render.section fmt "Title") in
  checkb "banner" true (contains out "==  Title  ==")

let test_table_empty_rows () =
  let out =
    render_to_string (fun fmt -> Report.Render.table fmt ~header:[ "h" ] ~rows:[])
  in
  checkb "header still printed" true (contains out "h")

let test_chart_scales_to_max () =
  let out =
    render_to_string (fun fmt ->
        Report.Render.chart fmt ~xs:[ 1; 16 ] ~rows:[ ("s", [ 1.0; 12.5 ]) ] ())
  in
  checkb "y axis reaches the max value" true (contains out "12.5")

(* ---------------- stats ---------------- *)

let test_stats_zero () =
  let t = Mp.Stats.zero ~platform:"x" ~procs:3 in
  check "procs" 3 (Array.length t.Mp.Stats.per_proc);
  Alcotest.(check (float 0.)) "idle fraction of empty" 0. (Mp.Stats.idle_fraction t);
  Alcotest.(check (float 0.)) "gc fraction of empty" 0. (Mp.Stats.gc_fraction t);
  Alcotest.(check (float 0.)) "bus util of empty" 0. (Mp.Stats.bus_utilization t)

let test_stats_fractions () =
  let t = Mp.Stats.zero ~platform:"x" ~procs:2 in
  t.Mp.Stats.per_proc.(0).Mp.Stats.busy <- 3.;
  t.Mp.Stats.per_proc.(0).Mp.Stats.idle <- 1.;
  t.Mp.Stats.per_proc.(1).Mp.Stats.busy <- 2.;
  t.Mp.Stats.per_proc.(1).Mp.Stats.idle <- 2.;
  Alcotest.(check (float 1e-9)) "idle = (1+2)/(3+1+2+2)" (3. /. 8.)
    (Mp.Stats.idle_fraction t);
  t.Mp.Stats.per_proc.(0).Mp.Stats.lock_spins <- 5;
  t.Mp.Stats.per_proc.(1).Mp.Stats.lock_spins <- 7;
  check "spins total" 12 (Mp.Stats.total_lock_spins t);
  t.Mp.Stats.per_proc.(0).Mp.Stats.alloc_words <- 10;
  check "alloc total" 10 (Mp.Stats.total_alloc_words t)

let test_stats_pp () =
  let t = Mp.Stats.zero ~platform:"plat" ~procs:1 in
  let out = render_to_string (fun fmt -> Mp.Stats.pp fmt t) in
  checkb "platform named" true (contains out "plat")

(* ---------------- loc_count ---------------- *)

let test_loc_finds_root () =
  match Report.Loc_count.find_root () with
  | None -> Alcotest.fail "project root not found"
  | Some root ->
      checkb "has dune-project" true
        (Sys.file_exists (Filename.concat root "dune-project"))

let test_loc_scan () =
  match Report.Loc_count.find_root () with
  | None -> Alcotest.fail "project root not found"
  | Some root ->
      let entries = Report.Loc_count.scan ~root in
      checkb "nonempty" true (entries <> []);
      let total =
        List.fold_left (fun a e -> a + e.Report.Loc_count.lines) 0 entries
      in
      checkb "substantial codebase" true (total > 3_000);
      let kinds = List.map (fun e -> e.Report.Loc_count.kind) entries in
      checkb "has system-dependent parts" true
        (List.mem "system-dependent" kinds);
      checkb "has generic parts" true (List.mem "generic" kinds)

(* ---------------- model ---------------- *)

let test_model_amdahl () =
  let p =
    Model.Speedup_model.
      { work = 16.; serial = 0.; gc = 0.; bus_seconds = 0.; max_par = infinity }
  in
  Alcotest.(check (float 1e-6))
    "perfect scaling" 16.
    (Model.Speedup_model.speedup p ~procs:16);
  let p2 = { p with gc = 1. } in
  checkb "gc caps speedup" true (Model.Speedup_model.speedup p2 ~procs:16 < 9.)

let test_model_bus_floor () =
  let p =
    Model.Speedup_model.
      { work = 10.; serial = 0.; gc = 0.; bus_seconds = 5.; max_par = infinity }
  in
  Alcotest.(check (float 1e-6))
    "bus-bound time" 5.
    (Model.Speedup_model.time p ~procs:16)

let test_model_parallelism_cap () =
  let p =
    Model.Speedup_model.
      { work = 12.; serial = 0.; gc = 0.; bus_seconds = 0.; max_par = 4. }
  in
  Alcotest.(check (float 1e-6))
    "capped at 4" 4.
    (Model.Speedup_model.speedup p ~procs:16)

let test_model_topology () =
  let p =
    Model.Speedup_model.
      { work = 16.; serial = 0.; gc = 0.; bus_seconds = 4.; max_par = infinity }
  in
  (* The flat topology is the identity refinement. *)
  List.iter
    (fun procs ->
      Alcotest.(check (float 1e-9))
        "flat topology = no topology"
        (Model.Speedup_model.time p ~procs)
        (Model.Speedup_model.time ~topology:Model.Speedup_model.flat p ~procs))
    [ 1; 4; 16 ];
  let topo =
    Model.Speedup_model.{ nodes = 4; procs_per_node = 4; link_seconds = 0.1 }
  in
  check "one node active" 1 (Model.Speedup_model.nodes_active topo ~procs:4);
  check "all nodes active" 4 (Model.Speedup_model.nodes_active topo ~procs:16);
  (* With a cheap link, spreading over 4 node buses relieves the bus
     bound: flat is stuck at bus_seconds, the NUMA machine is not. *)
  Alcotest.(check (float 1e-9))
    "flat bus-bound" 4.
    (Model.Speedup_model.time p ~procs:16);
  Alcotest.(check (float 1e-9))
    "numa relieves the bus" 1.
    (Model.Speedup_model.time ~topology:topo p ~procs:16)

let test_model_numa_knee () =
  let p =
    Model.Speedup_model.
      { work = 16.; serial = 0.; gc = 0.; bus_seconds = 4.; max_par = infinity }
  in
  (* A link slower than one node bus: the curve tracks flat while the
     pool fits one node, then hits the link floor and collapses. *)
  let topo =
    Model.Speedup_model.{ nodes = 4; procs_per_node = 4; link_seconds = 6. }
  in
  Alcotest.(check (float 1e-9))
    "within one node = flat"
    (Model.Speedup_model.time p ~procs:4)
    (Model.Speedup_model.time ~topology:topo p ~procs:4);
  checkb "knee: more procs, less speedup" true
    (Model.Speedup_model.speedup ~topology:topo p ~procs:16
    < Model.Speedup_model.speedup ~topology:topo p ~procs:4);
  Alcotest.(check (float 1e-9))
    "collapsed onto the link floor" 6.
    (Model.Speedup_model.time ~topology:topo p ~procs:16);
  (* Same machine with a free link scales monotonically. *)
  let cheap = { topo with Model.Speedup_model.link_seconds = 0. } in
  checkb "no knee without link cost" true
    (Model.Speedup_model.speedup ~topology:cheap p ~procs:16
    > Model.Speedup_model.speedup ~topology:cheap p ~procs:4)

let test_model_fit () =
  let p =
    Model.Speedup_model.fit ~elapsed1:10. ~gc1:2. ~bus_busy1:1. ~serial:1. ()
  in
  Alcotest.(check (float 1e-6)) "work" 7. p.Model.Speedup_model.work;
  Alcotest.(check (float 1e-6)) "gc kept" 2. p.Model.Speedup_model.gc

(* ---------------- experiments (reduced sweep) ---------------- *)

let samples = lazy (Report.Experiments.sequent_sweep ~plist:[ 1; 4 ] ())

let test_sweep_all_verified () =
  let s = Lazy.force samples in
  check "6 benches x 2 points" 12 (List.length s);
  checkb "every checksum verified" true
    (List.for_all (fun x -> x.Report.Experiments.verified) s)

let test_sweep_speedups_reasonable () =
  let s = Lazy.force samples in
  List.iter
    (fun bench ->
      let sp = Report.Experiments.speedup s ~bench ~procs:4 in
      checkb (bench ^ " speedup in (1, 4.2]") true (sp > 1.0 && sp <= 4.2))
    [ "allpairs"; "mst"; "abisort"; "simple"; "mm"; "seq" ]

let test_sweep_no_gc_at_least_as_fast () =
  let s = Lazy.force samples in
  List.iter
    (fun bench ->
      let sp = Report.Experiments.speedup s ~bench ~procs:4 in
      let sp_nogc = Report.Experiments.speedup_no_gc s ~bench ~procs:4 in
      checkb (bench ^ " gc exclusion not worse") true (sp_nogc >= sp -. 0.3))
    [ "allpairs"; "abisort"; "mm" ]

(* Satellite of the parallel-driver PR: self-relative speedup must be
   monotone non-decreasing from 1 to 4 procs for every workload (speedup@1
   is 1.0 by construction, so this is speedup@4 >= 1). *)
let test_sweep_speedup_monotone () =
  let s = Lazy.force samples in
  List.iter
    (fun bench ->
      let sp1 = Report.Experiments.speedup s ~bench ~procs:1 in
      let sp4 = Report.Experiments.speedup s ~bench ~procs:4 in
      checkb
        (Printf.sprintf "%s speedup monotone 1->4 (%.3f -> %.3f)" bench sp1 sp4)
        true (sp4 >= sp1))
    [ "allpairs"; "mst"; "abisort"; "simple"; "mm"; "seq" ]

(* The parallel sweep driver must be invisible in the results: fanning the
   grid cells across 2 host domains yields the exact sample list the
   sequential driver produces. *)
let test_sweep_jobs_deterministic () =
  let s1 = Lazy.force samples in
  let s2 = Report.Experiments.sequent_sweep ~plist:[ 1; 4 ] ~jobs:2 () in
  checkb "jobs=2 sample list identical to jobs=1" true (s1 = s2)

let test_print_sections_smoke () =
  let s = Lazy.force samples in
  let out =
    render_to_string (fun fmt ->
        Report.Experiments.print_fig6 fmt s;
        Report.Experiments.print_idle fmt s;
        Report.Experiments.print_bus fmt s;
        Report.Experiments.print_gc_ablation fmt s)
  in
  checkb "fig6 section" true (contains out "Figure 6");
  checkb "verification line" true (contains out "all verified");
  checkb "gc table" true (contains out "speedup w/o GC")

let () =
  Alcotest.run "report"
    [
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_table_alignment;
          Alcotest.test_case "series" `Quick test_series;
          Alcotest.test_case "chart legend" `Quick test_chart_has_legend;
          Alcotest.test_case "section" `Quick test_section;
          Alcotest.test_case "empty rows" `Quick test_table_empty_rows;
          Alcotest.test_case "chart scale" `Quick test_chart_scales_to_max;
        ] );
      ( "stats",
        [
          Alcotest.test_case "zero" `Quick test_stats_zero;
          Alcotest.test_case "fractions" `Quick test_stats_fractions;
          Alcotest.test_case "pp" `Quick test_stats_pp;
        ] );
      ( "loc",
        [
          Alcotest.test_case "find root" `Quick test_loc_finds_root;
          Alcotest.test_case "scan" `Quick test_loc_scan;
        ] );
      ( "model",
        [
          Alcotest.test_case "amdahl" `Quick test_model_amdahl;
          Alcotest.test_case "bus floor" `Quick test_model_bus_floor;
          Alcotest.test_case "parallelism cap" `Quick test_model_parallelism_cap;
          Alcotest.test_case "fit" `Quick test_model_fit;
          Alcotest.test_case "topology" `Quick test_model_topology;
          Alcotest.test_case "numa knee" `Quick test_model_numa_knee;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "sweep verified" `Slow test_sweep_all_verified;
          Alcotest.test_case "speedups reasonable" `Slow
            test_sweep_speedups_reasonable;
          Alcotest.test_case "speedup monotone 1->4" `Slow
            test_sweep_speedup_monotone;
          Alcotest.test_case "parallel driver deterministic" `Slow
            test_sweep_jobs_deterministic;
          Alcotest.test_case "gc exclusion" `Slow test_sweep_no_gc_at_least_as_fast;
          Alcotest.test_case "print sections" `Slow test_print_sections_smoke;
        ] );
    ]
