(* Dining philosophers over the paper's selective-communication facility
   (Figures 4-5): each fork is a token passed through a channel; picking a
   fork up is [receive], putting it down is [send].  Deadlock is avoided by
   acquiring the lower-numbered fork first.

   Run: dune exec examples/philosophers.exe *)

module Platform =
  Mp.Mp_domains.Int (struct
      let max_procs = 4
    end)
    ()

module Sched = Mpthreads.Sched_thread.Make (Platform)
module Chan = Select.Make (Platform) (Sched) (Queues.Fifo_queue)

let philosophers = 5
let meals_each = 3

let () =
  let eaten =
    Platform.run (fun () ->
        Sched.with_pool (fun () ->
            let forks = Array.init philosophers (fun _ -> Chan.chan ()) in
            (* put every fork on the table *)
            Array.iter (fun f -> Sched.fork (fun () -> Chan.send (f, ()))) forks;
            let eaten = Atomic.make 0 in
            let done_ = Atomic.make 0 in
            for i = 0 to philosophers - 1 do
              Sched.fork (fun () ->
                  let left = min i ((i + 1) mod philosophers) in
                  let right = max i ((i + 1) mod philosophers) in
                  for _ = 1 to meals_each do
                    Chan.receive [ forks.(left) ];
                    Chan.receive [ forks.(right) ];
                    Atomic.incr eaten;
                    (* put the forks back (as new sender threads so we can
                       keep eating without waiting for a taker) *)
                    Sched.fork (fun () -> Chan.send (forks.(left), ()));
                    Sched.fork (fun () -> Chan.send (forks.(right), ()));
                    Sched.yield ()
                  done;
                  Atomic.incr done_)
            done;
            while Atomic.get done_ < philosophers do
              Sched.yield ()
            done;
            Atomic.get eaten))
  in
  Printf.printf "philosophers finished: %d meals eaten (expected %d)\n" eaten
    (philosophers * meals_each)
