(* Quickstart: the MP platform and the paper's Figure-3 thread package.

   Creates a 4-proc platform over OCaml domains, forks threads that
   increment a lock-protected counter, and shows per-proc data (thread ids
   in the proc datum) and yielding.

   Run: dune exec examples/quickstart.exe *)

module Platform =
  Mp.Mp_domains.Int (struct
      let max_procs = 4
    end)
    ()

module Thread = Mpthreads.Mp_thread.Make (Platform) (Queues.Fifo_queue)

let () =
  let n_threads = 16 in
  let counter = ref 0 in
  let lock = Platform.Lock.mutex_lock () in
  let total =
    Platform.run (fun () ->
        for _ = 1 to n_threads do
          Thread.fork (fun () ->
              (* threads share the parent's heap; mutable state needs a
                 mutex lock, exactly as in the paper *)
              Platform.Lock.lock lock;
              incr counter;
              Platform.Lock.unlock lock;
              Printf.printf "thread %d ran on proc %d\n%!" (Thread.id ())
                (Platform.Proc.self ()))
        done;
        (* the main thread yields until all children have run *)
        let rec wait () =
          Platform.Lock.lock lock;
          let c = !counter in
          Platform.Lock.unlock lock;
          if c < n_threads then begin
            Thread.yield ();
            wait ()
          end
          else c
        in
        wait ())
  in
  Printf.printf "all %d threads completed; %d procs available\n" total
    (Platform.Proc.max_procs ())
