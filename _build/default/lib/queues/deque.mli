(** Array-based double-ended queue.

    Building block of the distributed run queue ({!Multi_queue}): the owning
    proc pushes and pops at the front (LIFO, cache-friendly), thieves steal
    from the back (oldest, largest work units first).  Not thread-safe on its
    own; callers lock. *)

type 'a t

val create : unit -> 'a t
val push_front : 'a t -> 'a -> unit
val push_back : 'a t -> 'a -> unit

val pop_front : 'a t -> 'a
(** @raise Queue_intf.Empty when empty. *)

val pop_back : 'a t -> 'a
(** @raise Queue_intf.Empty when empty. *)

val pop_front_opt : 'a t -> 'a option
val pop_back_opt : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool

(** The deque as a FIFO [QUEUE] (enqueue back, dequeue front). *)
module Fifo : Queue_intf.QUEUE_EXT with type 'a queue = 'a t
