lib/sim/sim_config.ml:
