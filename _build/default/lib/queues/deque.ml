type 'a t = {
  mutable buf : 'a array;
  mutable head : int; (* index of front element *)
  mutable size : int;
}

let create () = { buf = [||]; head = 0; size = 0 }
let length d = d.size
let is_empty d = d.size = 0
let capacity d = Array.length d.buf

let ensure d x =
  if capacity d = 0 then begin
    d.buf <- Array.make 8 x;
    d.head <- 0
  end
  else if d.size = capacity d then begin
    let buf = Array.make (2 * d.size) x in
    for i = 0 to d.size - 1 do
      buf.(i) <- d.buf.((d.head + i) mod capacity d)
    done;
    d.buf <- buf;
    d.head <- 0
  end

let push_front d x =
  ensure d x;
  d.head <- (d.head + capacity d - 1) mod capacity d;
  d.buf.(d.head) <- x;
  d.size <- d.size + 1

let push_back d x =
  ensure d x;
  d.buf.((d.head + d.size) mod capacity d) <- x;
  d.size <- d.size + 1

let pop_front d =
  if d.size = 0 then raise Queue_intf.Empty;
  let x = d.buf.(d.head) in
  d.head <- (d.head + 1) mod capacity d;
  d.size <- d.size - 1;
  x

let pop_back d =
  if d.size = 0 then raise Queue_intf.Empty;
  let x = d.buf.((d.head + d.size - 1) mod capacity d) in
  d.size <- d.size - 1;
  x

let pop_front_opt d =
  match pop_front d with x -> Some x | exception Queue_intf.Empty -> None

let pop_back_opt d =
  match pop_back d with x -> Some x | exception Queue_intf.Empty -> None

module Fifo = struct
  exception Empty = Queue_intf.Empty

  type 'a queue = 'a t

  let create = create
  let enq = push_back
  let deq = pop_front
  let deq_opt = pop_front_opt
  let length = length
  let is_empty = is_empty
end
