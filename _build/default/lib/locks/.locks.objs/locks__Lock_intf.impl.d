lib/locks/lock_intf.ml: Atomic Domain Mp
