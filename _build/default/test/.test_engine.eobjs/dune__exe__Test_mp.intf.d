test/test_mp.mli:
