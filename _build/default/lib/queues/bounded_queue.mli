(** Fixed-capacity FIFO ring buffer.

    Used where unbounded queues would mask producer/consumer imbalance (e.g.
    flow-controlled channels in examples and failure-injection tests). *)

type 'a t

val create : capacity:int -> 'a t

val enq : 'a t -> 'a -> unit
(** @raise Queue_intf.Full at capacity. *)

val try_enq : 'a t -> 'a -> bool

val deq : 'a t -> 'a
(** @raise Queue_intf.Empty when empty. *)

val deq_opt : 'a t -> 'a option
val length : 'a t -> int
val capacity : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool
