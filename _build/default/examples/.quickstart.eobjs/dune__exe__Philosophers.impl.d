examples/philosophers.ml: Array Atomic Mp Mpthreads Printf Queues Select
