lib/workloads/matrix.mli:
