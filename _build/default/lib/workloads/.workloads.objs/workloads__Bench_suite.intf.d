lib/workloads/bench_suite.mli: Mp Mpthreads
