(** Signal conventions for multiprocessing (paper §3.4).

    The paper's rules: "Signal handlers are installed on a global basis,
    i.e., all procs share the same signal-handling functions, and all procs
    receive each delivered signal.  However, masking and unmasking of
    signals is controlled on a per-proc basis."  And since MP deliberately
    has no facility for procs to alert one another, "these operations may
    be simulated using timer-driven polling in the target proc" — which is
    exactly how delivery works here: signals become pending per-proc and
    handlers run at the receiving proc's next {!poll}.

    Use [Work.set_poll_hook] (or the thread package's poll chain) to make
    every safe point a delivery point:
    [P.Work.set_poll_hook Sig.poll]. *)

module Make (P : Mp_intf.PLATFORM) : sig
  type signal = int

  val install : signal -> (signal -> unit) option -> unit
  (** Install (or, with [None], remove) the global handler shared by all
      procs. *)

  val mask : signal -> unit
  (** Block delivery of [signal] on the calling proc; deliveries stay
      pending.  Masks count: [mask]/[unmask] pairs nest, so a handler or
      library routine may mask a signal its caller already masked without
      unmasking it on exit. *)

  val unmask : signal -> unit
  (** Undo one [mask]; delivery resumes when the count reaches zero. *)

  val is_masked : signal -> bool

  val deliver : signal -> unit
  (** Post the signal to {e every} proc; each handles it independently at
      its next poll (if unmasked there). *)

  val deliver_to : proc:int -> signal -> unit
  (** Convenience beyond the paper: post to one proc only (the
      "simulated alert" of §3.4). *)

  val poll : unit -> unit
  (** Run the global handler for each pending, unmasked signal of the
      calling proc (in signal-number order). *)

  val pending : unit -> int
  (** Number of undelivered signals pending on the calling proc. *)

  val reset : unit -> unit
  (** Clear handlers, masks and pending sets (test isolation). *)
end
