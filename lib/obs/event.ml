type category = Sched | Proc | Lock | Gc | Sync | Select | Cml

let category_name = function
  | Sched -> "sched"
  | Proc -> "proc"
  | Lock -> "lock"
  | Gc -> "gc"
  | Sync -> "sync"
  | Select -> "select"
  | Cml -> "cml"

(* Which collector episode a Gc_start opens: a stop-the-world major, a
   proc-local minor (per-proc minor-heap model; other procs keep running),
   or a parallel stop-the-world copy. *)
type gc_kind = Minor | Major | Par

let gc_kind_name = function Minor -> "minor" | Major -> "major" | Par -> "par"

type t =
  | Dispatch of { proc : int; clock : int }
  | Freed of { proc : int; clock : int }
  | Acquired of { proc : int; by : int; clock : int }
  | Gc_start of {
      clock : int;
      region_words : int;
      kind : gc_kind;
      waiters : int;
    }
  | Gc_end of { clock : int; duration : int }
  | Coalesced of { proc : int; clock : int; cycles : int }
  | Fork of { proc : int; clock : int; thread : int }
  | Switch of { proc : int; clock : int; thread : int }
  | Steal of { proc : int; clock : int }
  | Queue_depth of { proc : int; clock : int; depth : int }
  | Lock_acquired of { proc : int; clock : int }
  | Lock_contended of { proc : int; clock : int; spins : int }
  | Blocked of { proc : int; clock : int; thread : int; on : string }
  | Wakeup of { proc : int; clock : int; thread : int; on : string }
  | Step of { proc : int; clock : int; op : string }

let clock_of = function
  | Dispatch { clock; _ }
  | Freed { clock; _ }
  | Acquired { clock; _ }
  | Gc_start { clock; _ }
  | Gc_end { clock; _ }
  | Coalesced { clock; _ }
  | Fork { clock; _ }
  | Switch { clock; _ }
  | Steal { clock; _ }
  | Queue_depth { clock; _ }
  | Lock_acquired { clock; _ }
  | Lock_contended { clock; _ }
  | Blocked { clock; _ }
  | Wakeup { clock; _ }
  | Step { clock; _ } ->
      clock

(* Blocked/Wakeup events carry their subsystem in [on]; the category is
   derived from its dotted prefix so one constructor serves sync, select
   and CML without three copies of the payload. *)
let site_category on =
  if String.length on >= 3 && String.sub on 0 3 = "cml" then Cml
  else if String.length on >= 6 && String.sub on 0 6 = "select" then Select
  else Sync

let category_of = function
  | Dispatch _ | Coalesced _ | Fork _ | Switch _ | Steal _ | Queue_depth _ ->
      Sched
  | Freed _ | Acquired _ -> Proc
  | Gc_start _ | Gc_end _ -> Gc
  | Lock_acquired _ | Lock_contended _ -> Lock
  | Blocked { on; _ } | Wakeup { on; _ } -> site_category on
  | Step { op; _ } ->
      if String.length op >= 4 && String.sub op 0 4 = "lock" then Lock
      else Sched

let pp fmt = function
  | Dispatch { proc; clock } -> Format.fprintf fmt "%10d dispatch p%d" clock proc
  | Freed { proc; clock } -> Format.fprintf fmt "%10d free     p%d" clock proc
  | Acquired { proc; by; clock } ->
      Format.fprintf fmt "%10d acquire  p%d (by p%d)" clock proc by
  (* Major keeps the original rendering byte for byte: stw-run traces (and
     the tooling pinned to them) must not drift. *)
  | Gc_start { clock; region_words; kind = Major; _ } ->
      Format.fprintf fmt "%10d gc-start (region %d words)" clock region_words
  | Gc_start { clock; region_words; kind = Minor; _ } ->
      Format.fprintf fmt "%10d gc-minor (region %d words)" clock region_words
  | Gc_start { clock; region_words; kind = Par; waiters } ->
      Format.fprintf fmt "%10d gc-start (region %d words, %d waiters)" clock
        region_words waiters
  | Gc_end { clock; duration } ->
      Format.fprintf fmt "%10d gc-end   (%d cycles)" clock duration
  | Coalesced { proc; clock; cycles } ->
      Format.fprintf fmt "%10d coalesce p%d (%d cycles inline)" clock proc
        cycles
  | Fork { proc; clock; thread } ->
      Format.fprintf fmt "%10d fork     p%d t%d" clock proc thread
  | Switch { proc; clock; thread } ->
      Format.fprintf fmt "%10d switch   p%d t%d" clock proc thread
  | Steal { proc; clock } -> Format.fprintf fmt "%10d steal    p%d" clock proc
  | Queue_depth { proc; clock; depth } ->
      Format.fprintf fmt "%10d queue    p%d depth=%d" clock proc depth
  | Lock_acquired { proc; clock } ->
      Format.fprintf fmt "%10d lock     p%d" clock proc
  | Lock_contended { proc; clock; spins } ->
      Format.fprintf fmt "%10d contend  p%d (%d spins)" clock proc spins
  | Blocked { proc; clock; thread; on } ->
      Format.fprintf fmt "%10d block    p%d t%d on %s" clock proc thread on
  | Wakeup { proc; clock; thread; on } ->
      Format.fprintf fmt "%10d wakeup   p%d t%d on %s" clock proc thread on
  | Step { proc; clock; op } ->
      Format.fprintf fmt "%10d step     p%d %s" clock proc op

let to_json e =
  let head name =
    Printf.sprintf "{\"ts\":%d,\"cat\":%S,\"ev\":%S" (clock_of e)
      (category_name (category_of e))
      name
  in
  match e with
  | Dispatch { proc; _ } -> Printf.sprintf "%s,\"proc\":%d}" (head "dispatch") proc
  | Freed { proc; _ } -> Printf.sprintf "%s,\"proc\":%d}" (head "freed") proc
  | Acquired { proc; by; _ } ->
      Printf.sprintf "%s,\"proc\":%d,\"by\":%d}" (head "acquired") proc by
  | Gc_start { region_words; kind; waiters; _ } ->
      Printf.sprintf "%s,\"region_words\":%d,\"kind\":%S,\"waiters\":%d}"
        (head "gc_start") region_words (gc_kind_name kind) waiters
  | Gc_end { duration; _ } ->
      Printf.sprintf "%s,\"duration\":%d}" (head "gc_end") duration
  | Coalesced { proc; cycles; _ } ->
      Printf.sprintf "%s,\"proc\":%d,\"cycles\":%d}" (head "coalesced") proc
        cycles
  | Fork { proc; thread; _ } ->
      Printf.sprintf "%s,\"proc\":%d,\"thread\":%d}" (head "fork") proc thread
  | Switch { proc; thread; _ } ->
      Printf.sprintf "%s,\"proc\":%d,\"thread\":%d}" (head "switch") proc thread
  | Steal { proc; _ } -> Printf.sprintf "%s,\"proc\":%d}" (head "steal") proc
  | Queue_depth { proc; depth; _ } ->
      Printf.sprintf "%s,\"proc\":%d,\"depth\":%d}" (head "queue_depth") proc
        depth
  | Lock_acquired { proc; _ } ->
      Printf.sprintf "%s,\"proc\":%d}" (head "lock_acquired") proc
  | Lock_contended { proc; spins; _ } ->
      Printf.sprintf "%s,\"proc\":%d,\"spins\":%d}" (head "lock_contended")
        proc spins
  | Blocked { proc; thread; on; _ } ->
      Printf.sprintf "%s,\"proc\":%d,\"thread\":%d,\"on\":%S}" (head "blocked")
        proc thread on
  | Wakeup { proc; thread; on; _ } ->
      Printf.sprintf "%s,\"proc\":%d,\"thread\":%d,\"on\":%S}" (head "wakeup")
        proc thread on
  | Step { proc; op; _ } ->
      Printf.sprintf "%s,\"proc\":%d,\"op\":%S}" (head "step") proc op
