lib/workloads/euclid.ml: Array List Random
