(** Atomic primitives that charge virtual time through an MP platform's
    [Work] interface before performing the real operation.

    Instantiating a lock algorithm with these on the simulated backend
    reproduces the relative costs that Anderson (1990) — the paper's
    reference for spin-lock alternatives — measured: a read probe is cheap
    (a cache hit while spinning), an RMW probe is expensive (a bus
    transaction), so TAS degrades under contention while TTAS/backoff and
    the queue locks spin locally.  On the simulator the charge is a
    suspension point and the operation itself then executes without
    interleaving, so it is atomic in virtual time. *)

module type COSTS = sig
  val rmw_cycles : int
  (** exchange / compare_and_set / fetch_and_add *)

  val read_cycles : int
  val write_cycles : int
  val pause_cycles : int
end

(** RMW = full bus transaction, spin read = cache hit. *)
module Default_costs : COSTS

module Make (P : Mp.Mp_intf.PLATFORM) (_ : COSTS) : sig
  include Lock_intf.PRIMS

  val unsafe_peek : 'a cell -> 'a
  (** Uncharged, observation-only read.  For scheduler idle predicates
      ([Work.idle_until ~ready] requires a charge-free predicate); algorithm
      code must keep using {!get}.  Together with the [PRIMS] operations this
      lets a cell-compatible {!Queues.Queue_intf.ATOMIC} instance be built
      over charged cells. *)

  val spin_count : unit -> int
  val reset_spin_count : unit -> unit
end
