(** Bitonic sorting networks with adaptivity — reference implementation for
    the [abisort] benchmark (adaptive bitonic sorting of 2^12 integers,
    after Bilardi & Nicolau 1989, via Mohr's Scheme original).

    This is an array formulation: the classic recursive bitonic sort whose
    merge stage short-circuits sub-merges that are already in order — the
    essential adaptivity of Bilardi–Nicolau (which achieves it with bitonic
    trees) expressed on the array representation.  On sorted or
    nearly-sorted inputs the merge does O(n) comparator work instead of
    O(n log n); the full sort remains O(n log² n) comparators worst-case.

    Lengths must be powers of two. *)

val sort : int array -> unit
(** In-place ascending sort. *)

val merge : up:bool -> int array -> int -> int -> unit
(** [merge ~up a lo n] sorts the bitonic segment [a.(lo .. lo+n-1)]
    ascending ([up]) or descending. *)

val is_power_of_two : int -> bool

val half_clean : up:bool -> int array -> int -> int -> bool
(** One comparator column over a bitonic segment; returns whether any
    exchange happened.  Exposed as the parallel merge's building block. *)

val ordered : up:bool -> int array -> int -> int -> bool
(** Is the segment already ordered in the given direction?  (The adaptivity
    test; its scan cost is counted in {!comparators_used}.) *)

val comparators_used : unit -> int
(** Comparator applications since the last {!reset_counters} (adaptivity
    instrumentation, also used by the benchmark cost model). *)

val reset_counters : unit -> unit
