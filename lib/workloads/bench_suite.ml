module Make (P : Mp.Mp_intf.PLATFORM_INT) = struct
  module Sched = Mpthreads.Sched_thread.Make (P)

  let step = P.Work.step

  (* ------------------------------------------------------------------ *)
  (* mm: 100x100 integer matrix multiply, parallel over rows.            *)
  (* Tight integer loop: low allocation ratio.                           *)
  (* ------------------------------------------------------------------ *)

  let mm ~procs ?run_queue ?sched ?(n = 100) ?(seed = 42) () =
    P.run (fun () ->
        Sched.with_pool ~procs ?run_queue ?sched (fun () ->
            let a = Matrix.random ~n ~seed in
            let b = Matrix.random ~n ~seed:(seed + 1) in
            step ~instrs:(2 * n * n) ~alloc_words:(2 * n * n) ();
            let dst = Array.make_matrix n n 0 in
            let row_instrs = n * n * 8 in
            Sched.par_iter ~chunks:(min n (4 * procs)) n (fun i ->
                Matrix.multiply_row a b ~dst i;
                step ~instrs:row_instrs ~alloc_words:(row_instrs / 8) ());
            Matrix.checksum dst))

  (* ------------------------------------------------------------------ *)
  (* allpairs: Floyd's algorithm, 75 nodes; one barrier per k-phase.     *)
  (* ------------------------------------------------------------------ *)

  let allpairs ~procs ?run_queue ?sched ?(n = 75) ?(seed = 42) () =
    P.run (fun () ->
        Sched.with_pool ~procs ?run_queue ?sched (fun () ->
            let g = Graph.random ~n ~seed () in
            step ~instrs:(n * n) ~alloc_words:(n * n) ();
            let d = Array.map Array.copy g.Graph.dist in
            let row_instrs = n * 8 in
            for k = 0 to n - 1 do
              Sched.par_iter ~chunks:procs n (fun i ->
                  let dik = d.(i).(k) in
                  if dik < Graph.inf then begin
                    let dk = d.(k) and di = d.(i) in
                    for j = 0 to n - 1 do
                      let via = dik + dk.(j) in
                      if via < di.(j) then di.(j) <- via
                    done
                  end;
                  step ~instrs:row_instrs ~alloc_words:(row_instrs / 2) ())
            done;
            Graph.checksum d))

  (* ------------------------------------------------------------------ *)
  (* mst: Prim on 200 points; per step a parallel min-reduction and a    *)
  (* parallel relaxation, combined under a result lock.                  *)
  (* ------------------------------------------------------------------ *)

  (* Split [0, n) into [chunks] contiguous tasks over [f lo hi]. *)
  let chunk_tasks chunks n f =
    let size = (n + chunks - 1) / chunks in
    let rec build lo acc =
      if lo >= n then List.rev acc
      else
        let hi = min n (lo + size) in
        build hi ((fun () -> f lo hi) :: acc)
    in
    build 0 []

  let mst ~procs ?sched ?(n = 200) ?(seed = 42) () =
    P.run (fun () ->
        Sched.with_pool ~procs ?sched (fun () ->
            let p = Euclid.random_points ~n ~seed in
            step ~instrs:(n * 10) ~alloc_words:(n * 4) ();
            let in_tree = Array.make n false in
            let best = Array.make n max_int in
            in_tree.(0) <- true;
            for j = 1 to n - 1 do
              best.(j) <- Euclid.weight p 0 j
            done;
            step ~instrs:(n * 30) ~alloc_words:(n * 6) ();
            let total = ref 0 in
            let lock = P.Lock.mutex_lock () in
            let chunks = max 1 (min procs ((n + 24) / 25)) in
            let last = ref 0 in
            (* One fork_join per tree-growing step: each chunk relaxes its
               nodes against the node added last step and computes a local
               argmin, combined under one lock per chunk. *)
            for _ = 1 to n - 1 do
              let pick = ref (-1) in
              let v0 = !last in
              Sched.fork_join
                (chunk_tasks chunks n (fun lo hi ->
                     let local = ref (-1) in
                     for j = lo to hi - 1 do
                       if not in_tree.(j) then begin
                         let w = Euclid.weight p v0 j in
                         if w < best.(j) then best.(j) <- w;
                         if !local < 0 || best.(j) < best.(!local) then
                           local := j
                       end
                     done;
                     step ~instrs:((hi - lo) * 60)
                       ~alloc_words:((hi - lo) * 7)
                       ();
                     if !local >= 0 then begin
                       P.Lock.lock lock;
                       if !pick < 0 || best.(!local) < best.(!pick) then
                         pick := !local;
                       P.Lock.unlock lock
                     end));
              let v = !pick in
              in_tree.(v) <- true;
              total := !total + best.(v);
              last := v
            done;
            !total))

  (* ------------------------------------------------------------------ *)
  (* abisort: adaptive bitonic sort of 2^12 integers.  Heavy allocation  *)
  (* (the original is built of cons cells / bitonic trees).              *)
  (* ------------------------------------------------------------------ *)

  let cmp_instrs = 12
  let abisort_grain = 256
  let charge_sort n = (* sequential leaf: n log^2 n comparators *)
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
    let l = log2 n in
    step ~instrs:(n * l * (l + 1) / 2 * cmp_instrs)
      ~alloc_words:(n * l * (l + 1) / 2 * cmp_instrs / 3)
      ()

  let charge_block instrs = step ~instrs ~alloc_words:(instrs / 3) ()

  let abisort ~procs ?sched ?(size = 4096) ?(seed = 42) () =
    P.run (fun () ->
        Sched.with_pool ~procs ?sched (fun () ->
            let rng = Random.State.make [| seed; size |] in
            let a = Array.init size (fun _ -> Random.State.int rng 1_000_000) in
            step ~instrs:(size * 4) ~alloc_words:size ();
            let rec pmerge ~up lo n =
              if n <= abisort_grain then begin
                charge_block (n * cmp_instrs * 2);
                Bitonic.merge ~up a lo n
              end
              else begin
                charge_block (n / 2 * cmp_instrs);
                let swapped = Bitonic.half_clean ~up a lo n in
                let continue_ =
                  swapped
                  ||
                  begin
                    charge_block (n * 4);
                    not (Bitonic.ordered ~up a lo n)
                  end
                in
                if continue_ then begin
                  let h = n / 2 in
                  Sched.fork_join
                    [
                      (fun () -> pmerge ~up lo h);
                      (fun () -> pmerge ~up (lo + h) h);
                    ]
                end
              end
            in
            let rec psort ~up lo n =
              if n <= abisort_grain then begin
                charge_sort n;
                let sub = Array.sub a lo n in
                let cmp = if up then compare else fun x y -> compare y x in
                Array.sort cmp sub;
                Array.blit sub 0 a lo n
              end
              else begin
                let h = n / 2 in
                Sched.fork_join
                  [
                    (fun () -> psort ~up:true lo h);
                    (fun () -> psort ~up:false (lo + h) h);
                  ];
                pmerge ~up lo n
              end
            in
            psort ~up:true 0 size;
            Array.fold_left (fun acc x -> (acc * 31) + x) 7 a))

  (* ------------------------------------------------------------------ *)
  (* simple: SIMPLE hydrodynamics; eight row-parallel phases separated   *)
  (* by barriers, a serial boundary pass, and a lock-reduced CFL bound.  *)
  (* Boxed floats: high allocation ratio.                                *)
  (* ------------------------------------------------------------------ *)

  let simple ~procs ?sched ?(n = 100) ?(steps = 1) ?(seed = 42) () =
    P.run (fun () ->
        Sched.with_pool ~procs ?sched (fun () ->
            let t = Hydro.create ~n ~seed in
            step ~instrs:(n * n * 4) ~alloc_words:(n * n * 2) ();
            let row_instrs = Hydro.row_flops t in
            (* The SIMPLE port decomposes each sweep into a bounded number of
               bands, so available parallelism is capped and processors go
               idle at high proc counts — the paper's diagnosis of simple's
               poor speedup ("idle rates above 50% for 10 processors"). *)
            let chunks = min procs 4 in
            let phase f =
              Sched.par_iter ~chunks n (fun i ->
                  f t ~lo:i ~hi:(i + 1);
                  step ~instrs:row_instrs ~alloc_words:(row_instrs / 3) ())
            in
            for _ = 1 to steps do
              phase Hydro.phase_eos;
              phase Hydro.phase_viscosity;
              (* global CFL bound: parallel per-row scans min-combined
                 under a shared lock (the paper's "data locks") *)
              let dt = ref infinity in
              let dt_lock = P.Lock.mutex_lock () in
              Sched.par_iter ~chunks n (fun i ->
                  let d = Hydro.cfl_row t i in
                  step ~instrs:row_instrs ~alloc_words:(row_instrs / 3) ();
                  P.Lock.lock dt_lock;
                  if d < !dt then dt := d;
                  P.Lock.unlock dt_lock);
              let dt = !dt in
              phase (fun t ~lo ~hi -> Hydro.phase_velocity t ~dt ~lo ~hi);
              phase (fun t ~lo ~hi -> Hydro.phase_energy t ~dt ~lo ~hi);
              phase (fun t ~lo ~hi -> Hydro.phase_density t ~dt ~lo ~hi);
              phase Hydro.phase_heat;
              phase Hydro.phase_heat_commit;
              (* serial boundary conditions *)
              Hydro.boundary t;
              step ~instrs:(n * 16) ~alloc_words:(n * 6) ()
            done;
            Hydro.checksum t))

  (* ------------------------------------------------------------------ *)
  (* seq: p independent copies of a small allocation-heavy application.  *)
  (* ------------------------------------------------------------------ *)

  let seq ~procs ?copies ?sched ?(work = 1_000_000) () =
    let copies = match copies with Some c -> c | None -> procs in
    P.run (fun () ->
        Sched.with_pool ~procs ?sched (fun () ->
            Sched.par_iter ~chunks:copies copies (fun _copy ->
                (* one independent "application": a loop of compute+alloc *)
                let block = 10_000 in
                let blocks = work / block in
                let acc = ref 0 in
                for i = 1 to blocks do
                  (* real work so the kernel is not empty *)
                  for j = 1 to 100 do
                    acc := !acc + (i * j)
                  done;
                  step ~instrs:block ~alloc_words:(block / 14) ()
                done;
                ignore !acc);
            copies))

  (* ------------------------------------------------------------------ *)
  (* fib: unbalanced divide-and-conquer, the classic work-stealing      *)
  (* stress test.  Subtree sizes differ exponentially (the k-1 child is *)
  (* ~1.6x the k-2 child at every node), forks are fine-grained, and a  *)
  (* sequential cutoff bounds task granularity — so dispatch throughput *)
  (* dominates and a central run queue serializes on its lock.         *)
  (* ------------------------------------------------------------------ *)

  let fib ~procs ?run_queue ?sched ?(n = 24) ?(cutoff = 8) () =
    P.run (fun () ->
        Sched.with_pool ~procs ?run_queue ?sched (fun () ->
            let rec seq_fib k =
              if k < 2 then k else seq_fib (k - 1) + seq_fib (k - 2)
            in
            let rec node k =
              if k < cutoff then begin
                (* sequential leaf; charge proportional to subtree size *)
                let v = seq_fib k in
                step ~instrs:(40 * (v + 1)) ~alloc_words:(v + 1) ();
                v
              end
              else begin
                step ~instrs:120 ~alloc_words:24 ();
                let a = ref 0 and b = ref 0 in
                Sched.fork_join
                  [
                    (fun () -> a := node (k - 1)); (fun () -> b := node (k - 2));
                  ];
                !a + !b
              end
            in
            node n))

  let names = [ "allpairs"; "mst"; "abisort"; "simple"; "mm"; "seq"; "fib" ]

  let run_named ?sched name ~procs =
    match name with
    | "allpairs" -> allpairs ~procs ?sched ()
    | "mst" -> mst ~procs ?sched ()
    | "abisort" -> abisort ~procs ?sched ()
    | "simple" -> simple ~procs ?sched ()
    | "mm" -> mm ~procs ?sched ()
    | "seq" -> seq ~procs ?sched ()
    | "fib" -> fib ~procs ?sched ()
    | other -> invalid_arg ("Bench_suite.run_named: unknown benchmark " ^ other)
end
