lib/threads/ml_threads.ml: Atomic Engine List Mp Queues Thread_intf
