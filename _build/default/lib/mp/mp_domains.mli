(** MP backend over OCaml domains.

    Each proc is a domain, the analog of the paper's kernel threads (Mach
    threads on the Luna; address-space-sharing processes on Irix/Dynix).
    Released procs park their domain rather than exiting, mirroring the
    paper's note that the runtime "may choose to re-use a previously
    released kernel thread".  Continuations migrate freely between procs.

    [run] executes the root fiber on the calling domain and returns once the
    root computation has produced a value {e and} every other proc has been
    released; worker domains are then joined. *)

module Make (C : sig
  val max_procs : int
end)
(D : Mp_intf.DATUM) : Mp_intf.PLATFORM with type Proc.proc_datum = D.t

(** Domains platform with [int] per-proc datum. *)
module Int (C : sig
  val max_procs : int
end) () : Mp_intf.PLATFORM_INT
