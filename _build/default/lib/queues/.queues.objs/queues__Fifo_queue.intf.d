lib/queues/fifo_queue.mli: Queue_intf
