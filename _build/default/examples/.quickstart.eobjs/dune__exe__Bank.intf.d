examples/bank.mli:
