lib/threads/m3_thread.ml: Engine Hashtbl List Mp Obj Queues Thread_intf
