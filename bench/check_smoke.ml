(* CI gate for the mp_check exploration harness.

   Runs every scenario in the corpus under a wall-clock budget and prints a
   per-scenario table; exits nonzero if any scenario fails, if the
   self-test (the deliberately broken lock) is NOT caught, or if the
   per-scenario schedule floor is not met.  Exploration is race-directed
   (DPOR + sleep sets) by default and can fan out across host domains;
   everything but the time columns is byte-identical for any --jobs.
   Three shapes:

     check_smoke.exe --bound 3 --seconds 300 --jobs 2     # every-PR gate
     check_smoke.exe --bound 3 --json                     # BENCH_check.json
     check_smoke.exe --bound 4 --faults --mode both       # weekly deep run *)

let bound = ref 2
let mode = ref "dfs" (* dfs | random | both *)
let runs = ref 500
let seed = ref None
let with_faults = ref false
let seconds = ref 120.0
let max_schedules = ref 20_000
let max_steps = ref 20_000
let dpor = ref true
let jobs_opt = ref None
let json = ref false
let json_file = ref "BENCH_check.json"

let usage =
  "check_smoke [--bound N] [--mode dfs|random|both] [--runs N] [--seed 0x...] \
   [--faults] [--seconds S] [--max-schedules N] [--no-dpor] [--jobs N] [--json]"

let spec =
  [
    ("--bound", Arg.Set_int bound, "preemption bound for DFS (default 2)");
    ("--mode", Arg.Set_string mode, "dfs | random | both (default dfs)");
    ("--runs", Arg.Set_int runs, "random runs per scenario (default 500)");
    ( "--seed",
      Arg.String (fun s -> seed := Some (Mpcheck.Sched_seed.of_string s)),
      "base seed for random mode" );
    ("--faults", Arg.Set with_faults, "enable fault injection");
    ("--seconds", Arg.Set_float seconds, "total wall-clock budget (default 120)");
    ( "--max-schedules",
      Arg.Set_int max_schedules,
      "DFS schedule cap per scenario (default 20000)" );
    ("--max-steps", Arg.Set_int max_steps, "per-run step budget (default 20000)");
    ("--dpor", Arg.Set dpor, "race-directed exploration (default)");
    ( "--no-dpor",
      Arg.Clear dpor,
      "plain CHESS DFS: expand every alternative at every decision" );
    ( "--jobs",
      Arg.Int (fun n -> jobs_opt := Some n),
      "host domains for DPOR frontier waves (default $MP_REPRO_JOBS or 1)" );
    ( "--json",
      Arg.Set json,
      "write BENCH_check.json (adds a plain-DFS comparison pass over the \
       non-heavy corpus for the reduction factor)" );
    ("--json-file", Arg.Set_string json_file, "JSON output path");
  ]

(* The driver-domain instance: random mode, plain DFS, and scenario-name
   resolution.  DPOR worker domains get their own generative instance
   through [make_runner] below. *)
module P = Mpcheck.Mp_check.Int (struct
  let max_procs = 2
end) ()

module S = Mpcheck.Scenarios.Make (P)

type row = {
  row_name : string;
  row_kind : string;
  row_schedules : int;
  row_pruned : int;
  row_truncated : int;
  row_capped : bool;
  row_dfs_schedules : int option; (* plain-DFS comparison pass (--json) *)
  row_seconds : float;
  row_ok : bool;
}

let rows : row list ref = ref []

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let jobs = Exec.Job_pool.resolve_jobs !jobs_opt in
  let faults =
    if !with_faults then
      {
        Mpcheck.Check_intf.no_faults with
        try_lock_fail_pct = 20;
        backoff_boost = 2;
      }
    else Mpcheck.Check_intf.no_faults
  in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. !seconds in
  let stop () = Unix.gettimeofday () > deadline in
  let failures = ref 0 in
  let skipped = ref 0 in
  Printf.printf
    "mp_check smoke: bound=%d mode=%s faults=%b dpor=%b jobs=%d budget=%.0fs\n%!"
    !bound !mode !with_faults !dpor jobs !seconds;
  Printf.printf "%-24s %10s %9s %8s %7s %s\n" "scenario" "schedules"
    "truncated" "pruned" "time" "result";
  (* A fresh checker instance per worker domain: per-run object ids are a
     pure function of functor-application order and the forced prefix, so
     every domain's instance reproduces the driver's labels exactly. *)
  let make_runner name () =
    let module P2 = Mpcheck.Mp_check.Int (struct
      let max_procs = 2
    end) () in
    let module S2 = Mpcheck.Scenarios.Make (P2) in
    let body = List.assoc name (S2.all @ S2.heavy @ S2.broken) in
    P2.Explore.runner ~faults ~max_steps:!max_steps body
  in
  let dpor_report name =
    let r =
      Mpcheck.Dpor.explore ~make_runner:(make_runner name) ~jobs ~bound:!bound
        ~max_schedules:!max_schedules ~stop ()
    in
    {
      Mpcheck.Mp_check.schedules = r.Mpcheck.Dpor.r_schedules;
      truncated = r.Mpcheck.Dpor.r_truncated;
      pruned = r.Mpcheck.Dpor.r_pruned;
      capped = r.Mpcheck.Dpor.r_capped;
      failure =
        Option.map
          (fun (error, schedule, trace) ->
            { Mpcheck.Mp_check.error; schedule; seed = None; trace })
          r.Mpcheck.Dpor.r_failure;
    }
  in
  let run_scenario ~kind want_failure (name, body) =
    if stop () then begin
      incr skipped;
      Printf.printf "%-24s %10s %9s %8s %7s skipped (budget exhausted)\n%!"
        name "-" "-" "-" "-"
    end
    else begin
      let s0 = Unix.gettimeofday () in
      let reports = ref [] in
      if !mode = "dfs" || !mode = "both" then
        reports :=
          (if !dpor then dpor_report name
           else
             P.Explore.dfs ~bound:!bound ~max_schedules:!max_schedules
               ~max_steps:!max_steps ~faults ~stop body)
          :: !reports;
      if
        (!mode = "random" || !mode = "both")
        && not
             (List.exists (fun r -> r.Mpcheck.Mp_check.failure <> None) !reports)
      then
        reports :=
          P.Explore.random ?seed:!seed ~runs:!runs ~max_steps:!max_steps
            ~faults body
          :: !reports;
      let dt = Unix.gettimeofday () -. s0 in
      let schedules =
        List.fold_left (fun n r -> n + r.Mpcheck.Mp_check.schedules) 0 !reports
      in
      let truncated =
        List.fold_left (fun n r -> n + r.Mpcheck.Mp_check.truncated) 0 !reports
      in
      let pruned =
        List.fold_left (fun n r -> n + r.Mpcheck.Mp_check.pruned) 0 !reports
      in
      let failure =
        List.find_map (fun r -> r.Mpcheck.Mp_check.failure) !reports
      in
      let capped = List.exists (fun r -> r.Mpcheck.Mp_check.capped) !reports in
      let ok, verdict =
        match (failure, want_failure) with
        | None, false ->
            (schedules > 0, if capped then "ok (capped)" else "ok")
        | Some _, true -> (true, "caught (expected)")
        | None, true -> (false, "MISSED EXPECTED BUG")
        | Some _, false -> (false, "FAILED")
      in
      (* the plain-DFS comparison pass: same bound, same caps, so the
         reduction factor in BENCH_check.json is like-for-like *)
      let dfs_schedules =
        if !json && !dpor && (!mode = "dfs" || !mode = "both") && kind <> "heavy"
        then
          let r =
            P.Explore.dfs ~bound:!bound ~max_schedules:!max_schedules
              ~max_steps:!max_steps ~faults ~stop body
          in
          Some r.Mpcheck.Mp_check.schedules
        else None
      in
      Printf.printf "%-24s %10d %9d %8d %6.2fs %s\n%!" name schedules truncated
        pruned dt verdict;
      (match failure with
      | Some f when not want_failure ->
          Format.printf "%a@." Mpcheck.Mp_check.pp_failure f
      | _ -> ());
      rows :=
        {
          row_name = name;
          row_kind = kind;
          row_schedules = schedules;
          row_pruned = pruned;
          row_truncated = truncated;
          row_capped = capped;
          row_dfs_schedules = dfs_schedules;
          row_seconds = dt;
          row_ok = ok;
        }
        :: !rows;
      if not ok then incr failures
    end
  in
  List.iter (run_scenario ~kind:"corpus" false) S.all;
  (* heavy scenarios: schedule-capped so the gate stays fast *)
  List.iter
    (run_scenario ~kind:"heavy" false)
    (if !bound >= 2 then S.heavy else []);
  (* self-test: the broken lock must be caught *)
  List.iter (run_scenario ~kind:"broken" true) S.broken;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "total: %.1fs, %d failure(s), %d skipped\n%!" dt !failures
    !skipped;
  if !json then begin
    let oc = open_out !json_file in
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\n";
    Buffer.add_string b "  \"benchmark\": \"mp_check\",\n";
    Printf.bprintf b "  \"bound\": %d,\n" !bound;
    Printf.bprintf b "  \"mode\": %S,\n" !mode;
    Printf.bprintf b "  \"dpor\": %b,\n" !dpor;
    Printf.bprintf b "  \"jobs\": %d,\n" jobs;
    Printf.bprintf b "  \"faults\": %b,\n" !with_faults;
    Buffer.add_string b "  \"counters\": {";
    let counters =
      Mpcheck.Check_intf.counters () @ Exec.Job_pool.counters ()
    in
    List.iteri
      (fun i (k, v) ->
        Printf.bprintf b "%s\n    %S: %d" (if i = 0 then "" else ",") k v)
      counters;
    Buffer.add_string b "\n  },\n";
    Buffer.add_string b "  \"scenarios\": [";
    List.iteri
      (fun i r ->
        Printf.bprintf b "%s\n    { \"name\": %S, \"kind\": %S"
          (if i = 0 then "" else ",")
          r.row_name r.row_kind;
        Printf.bprintf b ", \"schedules\": %d, \"pruned\": %d" r.row_schedules
          r.row_pruned;
        Printf.bprintf b ", \"truncated\": %d, \"capped\": %b" r.row_truncated
          r.row_capped;
        (match r.row_dfs_schedules with
        | Some n ->
            Printf.bprintf b ", \"dfs_schedules\": %d, \"reduction\": %.2f" n
              (if r.row_schedules > 0 then
                 float_of_int n /. float_of_int r.row_schedules
               else 0.0)
        | None -> ());
        Printf.bprintf b ", \"seconds\": %.4f, \"schedules_per_sec\": %.1f"
          r.row_seconds
          (if r.row_seconds > 0.0 then
             float_of_int r.row_schedules /. r.row_seconds
           else 0.0);
        Printf.bprintf b ", \"ok\": %b }" r.row_ok)
      (List.rev !rows);
    Buffer.add_string b "\n  ]\n}\n";
    output_string oc (Buffer.contents b);
    close_out oc;
    Printf.printf "wrote %s\n%!" !json_file
  end;
  if !failures > 0 then exit 1
