(** Uniprocessor thread package — a faithful transcription of the paper's
    Figure 1: waiting threads are a queue of first-class continuations, and
    the scheduling policy is whatever discipline the [Queue] argument
    implements.

    As in the figure, [dispatch] lets [Queue.Empty] escape when the ready
    queue is empty and no thread remains; clients that need a clean
    shutdown should keep a main thread alive (or catch [Queue_intf.Empty]).
    Run it inside any MP platform's [run] — it never touches [Proc], so the
    uniprocessor backend suffices. *)

module Make (Queue : Queues.Queue_intf.QUEUE) : sig
  include Thread_intf.SCHED

  val reset : unit -> unit
  (** Clear the ready queue and id counters (test isolation). *)
end
