(* Log-linear bucketing (HdrHistogram-style): values below [sub] = 2^sub_bits
   get exact unit buckets; above that, each power-of-two range is split into
   [sub] sub-buckets, so a bucket's width is at most lo/sub and any quantile
   read off a bucket boundary is within a 1/sub = 6.25% relative error of the
   exact order statistic.  The bucket array is sized for the full 62-bit
   non-negative int range, so a histogram is constant space (~1k cells)
   regardless of how many values are recorded. *)

let sub_bits = 4
let sub = 1 lsl sub_bits

(* Highest representable exponent: OCaml ints are 63-bit. *)
let max_exp = 62
let n_buckets = (max_exp - sub_bits + 1) * sub

(* floor log2, v > 0 *)
let msb v =
  let rec go v acc = if v = 0 then acc - 1 else go (v lsr 1) (acc + 1) in
  go v 0

let index_of v =
  if v < sub then v
  else
    let e = msb v in
    let top = v lsr (e - sub_bits) in
    (* top is in [sub, 2*sub); blocks are contiguous: e = sub_bits yields
       indexes [sub, 2*sub), e = sub_bits+1 yields [2*sub, 3*sub), ... *)
    ((e - sub_bits) * sub) + top

(* Inclusive [lo, hi] of values mapping to bucket [i]. *)
let bounds_of i =
  if i < sub then (i, i)
  else
    let g = (i / sub) - 1 in
    let top = i - (g * sub) in
    let lo = top lsl g in
    (lo, lo + (1 lsl g) - 1)

type t = {
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
  mn : int Atomic.t; (* max_int when empty *)
  mx : int Atomic.t; (* -1 when empty *)
}

let create () =
  {
    buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum = Atomic.make 0;
    mn = Atomic.make max_int;
    mx = Atomic.make (-1);
  }

let rec min_gauge cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then min_gauge cell v

let rec max_gauge cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then max_gauge cell v

let add t v =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add t.buckets.(index_of v) 1);
  ignore (Atomic.fetch_and_add t.count 1);
  ignore (Atomic.fetch_and_add t.sum v);
  min_gauge t.mn v;
  max_gauge t.mx v

let count t = Atomic.get t.count
let sum t = Atomic.get t.sum
let min_value t = if count t = 0 then 0 else Atomic.get t.mn
let max_value t = if count t = 0 then 0 else Atomic.get t.mx
let mean t = if count t = 0 then 0. else float_of_int (sum t) /. float_of_int (count t)

let merge_into ~src ~dst =
  for i = 0 to n_buckets - 1 do
    let n = Atomic.get src.buckets.(i) in
    if n > 0 then ignore (Atomic.fetch_and_add dst.buckets.(i) n)
  done;
  ignore (Atomic.fetch_and_add dst.count (Atomic.get src.count));
  ignore (Atomic.fetch_and_add dst.sum (Atomic.get src.sum));
  if count src > 0 then begin
    min_gauge dst.mn (Atomic.get src.mn);
    max_gauge dst.mx (Atomic.get src.mx)
  end

let merge a b =
  let t = create () in
  merge_into ~src:a ~dst:t;
  merge_into ~src:b ~dst:t;
  t

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.buckets;
  Atomic.set t.count 0;
  Atomic.set t.sum 0;
  Atomic.set t.mn max_int;
  Atomic.set t.mx (-1)

(* Rank of quantile q among n recorded values: the smallest bucket whose
   cumulative count reaches ceil(q*n) (clamped to [1,n]).  Returned value is
   the bucket's inclusive upper bound, clamped to the recorded max, so the
   exact order statistic lies in [lo, result]. *)
let quantile_bounds t q =
  let n = count t in
  if n = 0 then (0, 0)
  else begin
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    let acc = ref 0 and i = ref 0 and found = ref (n_buckets - 1) in
    (try
       while !i < n_buckets do
         acc := !acc + Atomic.get t.buckets.(!i);
         if !acc >= rank then begin
           found := !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    let lo, hi = bounds_of !found in
    let mx = max_value t in
    let mn = min_value t in
    ((if lo < mn then mn else lo), if hi > mx then mx else hi)
  end

let quantile t q = snd (quantile_bounds t q)

let nonzero_buckets t =
  let out = ref [] in
  for i = n_buckets - 1 downto 0 do
    let n = Atomic.get t.buckets.(i) in
    if n > 0 then out := (fst (bounds_of i), n) :: !out
  done;
  !out

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"p50\":%d,\"p95\":%d,\"p99\":%d,\"p999\":%d,\"buckets\":["
       (count t) (sum t) (min_value t) (max_value t) (quantile t 0.5)
       (quantile t 0.95) (quantile t 0.99) (quantile t 0.999));
  List.iteri
    (fun i (lo, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "[%d,%d]" lo n))
    (nonzero_buckets t);
  Buffer.add_string b "]}";
  Buffer.contents b

(* Named registry, mirroring [Counters]: find-or-create under a mutex,
   handles kept for the hot path, [dump] sorted by name. *)

type entry = { name : string; hist : t }
type registry = { mutable entries : entry list; registry_lock : Mutex.t }

let create_registry () = { entries = []; registry_lock = Mutex.create () }

let histogram r name =
  Mutex.lock r.registry_lock;
  let e =
    match List.find_opt (fun e -> e.name = name) r.entries with
    | Some e -> e
    | None ->
        let e = { name; hist = create () } in
        r.entries <- e :: r.entries;
        e
  in
  Mutex.unlock r.registry_lock;
  e.hist

let find r name =
  Mutex.lock r.registry_lock;
  let e = List.find_opt (fun e -> e.name = name) r.entries in
  Mutex.unlock r.registry_lock;
  Option.map (fun e -> e.hist) e

let dump r =
  Mutex.lock r.registry_lock;
  let es = r.entries in
  Mutex.unlock r.registry_lock;
  List.map (fun e -> (e.name, e.hist)) es
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset_registry r =
  Mutex.lock r.registry_lock;
  let es = r.entries in
  Mutex.unlock r.registry_lock;
  List.iter (fun e -> reset e.hist) es
