type counter = { name : string; cell : int Atomic.t }

type t = { mutable counters : counter list; registry_lock : Mutex.t }

let create () = { counters = []; registry_lock = Mutex.create () }

let counter t name =
  Mutex.lock t.registry_lock;
  let c =
    match List.find_opt (fun c -> c.name = name) t.counters with
    | Some c -> c
    | None ->
        let c = { name; cell = Atomic.make 0 } in
        t.counters <- c :: t.counters;
        c
  in
  Mutex.unlock t.registry_lock;
  c

let find t name =
  Mutex.lock t.registry_lock;
  let c = List.find_opt (fun c -> c.name = name) t.counters in
  Mutex.unlock t.registry_lock;
  c

let name c = c.name
let incr c = Atomic.incr c.cell
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let set c n = Atomic.set c.cell n
let get c = Atomic.get c.cell

let rec max_gauge c n =
  let cur = Atomic.get c.cell in
  if n > cur && not (Atomic.compare_and_set c.cell cur n) then max_gauge c n

let dump t =
  Mutex.lock t.registry_lock;
  let cs = t.counters in
  Mutex.unlock t.registry_lock;
  List.map (fun c -> (c.name, get c)) cs
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t =
  Mutex.lock t.registry_lock;
  let cs = t.counters in
  Mutex.unlock t.registry_lock;
  List.iter (fun c -> set c 0) cs
