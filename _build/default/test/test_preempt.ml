(* Preemptive threading (§2's alarm-driven yield) and the spin
   reader/writer lock. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

module P =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:1 ()
    end)
    ()

module UT = Mpthreads.Uni_thread.Make (Queues.Fifo_queue)
module Pre = Mpthreads.Preemptive_thread.Make (P) (UT)

(* A compute-bound thread: never yields explicitly, only reaches safe
   points through Work.step's poll. *)
let finished = ref 0

let compute_bound log tag chunks =
  fun () ->
   for _ = 1 to chunks do
     P.Work.step ~instrs:100_000 ~alloc_words:0 ();
     log := tag :: !log
   done;
   incr finished

(* chronological mark transitions: 1 = ran back-to-back, >=3 = interleaved *)
let transitions log =
  let rec go n = function
    | a :: (b :: _ as rest) -> go (if a = b then n else n + 1) rest
    | _ -> n
  in
  go 0 (List.rev log)

let test_preemption_interleaves () =
  UT.reset ();
  let log = ref [] in
  P.run (fun () ->
      Pre.arm ~interval:0.01;
      finished := 0;
      UT.fork (compute_bound log `A 6);
      UT.fork (compute_bound log `B 6);
      while !finished < 2 do
        UT.yield ()
      done;
      Pre.disarm ());
  checkb "some preemptions happened" true (Pre.preemptions () > 0);
  (* with a short quantum, the two compute-bound threads must interleave
     rather than run to completion back-to-back *)
  checkb "compute-bound threads interleaved" true (transitions !log >= 3)

let test_preemption_disarmed_runs_to_completion () =
  UT.reset ();
  let log = ref [] in
  P.run (fun () ->
      Pre.disarm ();
      finished := 0;
      UT.fork (compute_bound log `A 4);
      UT.fork (compute_bound log `B 4);
      while !finished < 2 do
        UT.yield ()
      done);
  (* without the alarm each thread runs its whole loop uninterrupted: one
     single transition between the A block and the B block *)
  check "no preemption when disarmed" 1 (transitions !log)

let test_preemption_mask () =
  UT.reset ();
  P.run (fun () ->
      Pre.arm ~interval:0.001;
      Pre.mask ();
      let before = Pre.preemptions () in
      (* long compute with polling, but the alarm is masked on this proc *)
      for _ = 1 to 10 do
        P.Work.step ~instrs:200_000 ~alloc_words:0 ()
      done;
      check "no preemptions while masked" before (Pre.preemptions ());
      Pre.unmask ();
      for _ = 1 to 10 do
        P.Work.step ~instrs:200_000 ~alloc_words:0 ()
      done;
      checkb "preemptions after unmask" true (Pre.preemptions () > before);
      Pre.disarm ())

(* ---------------- spin rwlock ---------------- *)

module AP = Locks.Lock_intf.Atomic_prims
module Rw = Locks.Rw_spin_lock.Make (AP)

let test_rw_semantics () =
  let rw = Rw.create () in
  checkb "read" true (Rw.try_read_lock rw);
  checkb "second read" true (Rw.try_read_lock rw);
  check "two readers" 2 (Rw.readers rw);
  checkb "writer blocked" false (Rw.try_write_lock rw);
  Rw.read_unlock rw;
  Rw.read_unlock rw;
  checkb "writer after readers" true (Rw.try_write_lock rw);
  checkb "reader blocked by writer" false (Rw.try_read_lock rw);
  Rw.write_unlock rw;
  checkb "free again" true (Rw.try_read_lock rw);
  Rw.read_unlock rw

let test_rw_misuse () =
  let rw = Rw.create () in
  (match Rw.read_unlock rw with
  | () -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ());
  match Rw.write_unlock rw with
  | () -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_rw_writer_exclusion_domains () =
  let rw = Rw.create () in
  let cell = ref 0 in
  let iterations = 300 in
  let writer () =
    for _ = 1 to iterations do
      Rw.write_lock rw;
      let v = !cell in
      if v mod 32 = 0 then Domain.cpu_relax ();
      cell := v + 1;
      Rw.write_unlock rw
    done
  in
  let reader_ok = ref true in
  let reader () =
    for _ = 1 to iterations do
      Rw.read_lock rw;
      let a = !cell in
      Domain.cpu_relax ();
      let b = !cell in
      (* no writer may change the cell while we hold a read lock *)
      if a <> b then reader_ok := false;
      Rw.read_unlock rw
    done
  in
  let dw = Domain.spawn writer in
  let dr = Domain.spawn reader in
  writer ();
  Domain.join dw;
  Domain.join dr;
  check "both writers fully counted" (2 * iterations) !cell;
  checkb "readers saw stable snapshots" true !reader_ok

let () =
  Alcotest.run "preempt"
    [
      ( "preemption",
        [
          Alcotest.test_case "interleaves compute-bound threads" `Quick
            test_preemption_interleaves;
          Alcotest.test_case "disarmed = run to completion" `Quick
            test_preemption_disarmed_runs_to_completion;
          Alcotest.test_case "masking" `Quick test_preemption_mask;
        ] );
      ( "rw_spin",
        [
          Alcotest.test_case "semantics" `Quick test_rw_semantics;
          Alcotest.test_case "misuse" `Quick test_rw_misuse;
          Alcotest.test_case "writer exclusion (domains)" `Slow
            test_rw_writer_exclusion_domains;
        ] );
    ]
