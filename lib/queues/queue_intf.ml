(** Queue interfaces.

    [QUEUE] is the paper's signature (Figure 1): it deliberately does not fix
    the queuing discipline, which is how thread scheduling policy is selected
    — "thread scheduling policy can be changed simply by varying the
    functor's argument". *)

exception Empty
(** Raised by [deq] on an empty queue.  Shared by every implementation so
    that client handlers are portable across disciplines. *)

exception Full
(** Raised by bounded queues on [enq] when at capacity. *)

module type QUEUE = sig
  type 'a queue

  val create : unit -> 'a queue
  val enq : 'a queue -> 'a -> unit

  val deq : 'a queue -> 'a
  (** @raise Empty when the queue is empty. *)

  exception Empty
end

(** [QUEUE] plus the non-paper conveniences used by schedulers and tests. *)
module type QUEUE_EXT = sig
  include QUEUE

  val deq_opt : 'a queue -> 'a option
  val length : 'a queue -> int
  val is_empty : 'a queue -> bool
end

(** Priority discipline; as the paper's footnote notes, priorities require a
    minor signature change (a priority passed to the enqueue operation). *)
module type PRIORITY_QUEUE = sig
  type 'a queue

  val create : unit -> 'a queue
  val enq : 'a queue -> priority:int -> 'a -> unit

  val deq : 'a queue -> 'a
  (** Dequeues an element of the numerically highest priority.
      @raise Empty when the queue is empty. *)

  val deq_opt : 'a queue -> 'a option

  val peek : 'a queue -> 'a
  (** The element {!deq} would return, without removing it.
      @raise Empty when the queue is empty. *)

  val peek_opt : 'a queue -> 'a option
  val length : 'a queue -> int
  val is_empty : 'a queue -> bool

  exception Empty
end
