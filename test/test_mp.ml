(* MP platform backends: the PROC/LOCK/WORK contracts on the uniprocessor
   and domains backends — acquire/release, per-proc data, proc limits,
   deadlock detection, exceptions, stats. *)

open Mp

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------------- uniprocessor ---------------- *)

module U = Mp_uniproc.Int ()

let test_uni_acquire_fails () =
  checkb "No_More_Procs" true
    (U.run (fun () ->
         let k =
           Kont_util.cont_of_thunk ~on_return:(fun () -> ()) (fun () -> ())
         in
         match U.Proc.acquire_proc (U.Proc.PS (k, 1)) with
         | () -> false
         | exception U.Proc.No_More_Procs -> true))

let test_uni_datum () =
  let v =
    U.run (fun () ->
        U.Proc.set_datum 5;
        U.Proc.get_datum ())
  in
  check "datum round trip" 5 v

let test_uni_identity () =
  U.run (fun () ->
      check "self" 0 (U.Proc.self ());
      check "max" 1 (U.Proc.max_procs ());
      check "live" 1 (U.Proc.live_procs ()))

let test_uni_release_deadlocks () =
  checkb "deadlock reported" true
    (match U.run (fun () -> U.Proc.release_proc ()) with
    | _ -> false
    | exception Mp_intf.Deadlock _ -> true)

let test_uni_lock_deadlock_detected () =
  U.run (fun () ->
      let l = U.Lock.mutex_lock () in
      U.Lock.lock l;
      match U.Lock.lock l with
      | () -> Alcotest.fail "expected failure"
      | exception Failure _ -> ())

let test_uni_work_noops () =
  U.run (fun () ->
      U.Work.charge 100;
      U.Work.alloc ~words:100;
      U.Work.step ~instrs:100 ();
      U.Work.idle ();
      checkb "wall clock advances" true (U.Work.now () > 0.))

let test_uni_poll_hook () =
  let hits = ref 0 in
  U.run (fun () ->
      U.Work.set_poll_hook (fun () -> incr hits);
      U.Work.poll ();
      U.Work.step ~instrs:1 ());
  U.Work.set_poll_hook (fun () -> ());
  check "hook invoked at safe points" 2 !hits

let test_uni_stats () =
  ignore (U.run (fun () -> 1));
  let st = U.stats () in
  check "procs" 1 st.Stats.procs;
  checkb "elapsed measured" true (st.Stats.elapsed >= 0.)

let test_uni_not_reentrant () =
  U.run (fun () ->
      match U.run (fun () -> 0) with
      | _ -> Alcotest.fail "expected rejection"
      | exception Invalid_argument _ -> ())

(* ---------------- domains ---------------- *)

module D =
  Mp_domains.Int (struct
      let max_procs = 4
    end)
    ()

let test_dom_acquire_release () =
  let v =
    D.run (fun () ->
        (* manufacture a worker that bumps a cell then releases its proc *)
        let cell = Atomic.make 0 in
        let worker =
          Kont_util.cont_of_thunk ~on_return:D.Proc.release_proc (fun () ->
              Atomic.incr cell)
        in
        D.Proc.acquire_proc (D.Proc.PS (worker, 7));
        (* wait for it *)
        while Atomic.get cell = 0 do
          Domain.cpu_relax ()
        done;
        Atomic.get cell)
  in
  check "worker ran" 1 v

let test_dom_no_more_procs () =
  checkb "limit enforced" true
    (D.run (fun () ->
         (* occupy all three spare procs with spinning workers *)
         let stop = Atomic.make false in
         let spin =
           fun () ->
            while not (Atomic.get stop) do
              Domain.cpu_relax ()
            done
         in
         let acquired = ref 0 in
         (try
            for _ = 1 to 10 do
              D.Proc.acquire_proc
                (D.Proc.PS
                   ( Kont_util.cont_of_thunk ~on_return:D.Proc.release_proc spin,
                     0 ));
              incr acquired
            done
          with D.Proc.No_More_Procs -> ());
         let limited = !acquired = 3 in
         Atomic.set stop true;
         limited))

let test_dom_datum_per_proc () =
  let data =
    D.run (fun () ->
        D.Proc.set_datum 100;
        let worker_datum = Atomic.make (-1) in
        let worker =
          Kont_util.cont_of_thunk ~on_return:D.Proc.release_proc (fun () ->
              (* this proc's datum was set by acquire_proc *)
              Atomic.set worker_datum (D.Proc.get_datum ()))
        in
        D.Proc.acquire_proc (D.Proc.PS (worker, 42));
        while Atomic.get worker_datum < 0 do
          Domain.cpu_relax ()
        done;
        (D.Proc.get_datum (), Atomic.get worker_datum))
  in
  Alcotest.(check (pair int int)) "independent data" (100, 42) data

let test_dom_proc_reuse () =
  (* acquire, release, re-acquire: the paper's kernel-thread reuse *)
  let v =
    D.run (fun () ->
        let count = Atomic.make 0 in
        for _ = 1 to 5 do
          let w =
            Kont_util.cont_of_thunk ~on_return:D.Proc.release_proc (fun () ->
                Atomic.incr count)
          in
          D.Proc.acquire_proc (D.Proc.PS (w, 0));
          (* wait for the release so the slot can be reused *)
          while D.Proc.live_procs () > 1 do
            Domain.cpu_relax ()
          done
        done;
        Atomic.get count)
  in
  check "all five workers ran on reused procs" 5 v

let test_dom_exception_propagates () =
  Alcotest.check_raises "root exn" (Failure "bang") (fun () ->
      ignore (D.run (fun () -> failwith "bang")))

let test_dom_deadlock_detected () =
  checkb "deadlock reported" true
    (match D.run (fun () -> D.Proc.release_proc ()) with
    | _ -> false
    | exception Mp_intf.Deadlock _ -> true)

let test_dom_sequential_runs () =
  check "first" 1 (D.run (fun () -> 1));
  check "second" 2 (D.run (fun () -> 2))

let test_dom_result_from_migrated_fiber () =
  (* the root fiber blocks, migrates to another proc, and finishes there *)
  let v =
    D.run (fun () ->
        let resumer : int Engine.cont option Atomic.t = Atomic.make None in
        Engine.callcc (fun (k : int Engine.cont) ->
            (* hand our continuation to a fresh proc and stop this one *)
            let w =
              Kont_util.cont_of_thunk ~on_return:D.Proc.release_proc (fun () ->
                  match Atomic.get resumer with
                  | Some k -> Engine.throw k 99
                  | None -> ())
            in
            Atomic.set resumer (Some k);
            D.Proc.acquire_proc (D.Proc.PS (w, 0));
            D.Proc.release_proc ()))
  in
  check "root result produced on another proc" 99 v

let test_dom_lock_mutual_exclusion () =
  let v =
    D.run (fun () ->
        let l = D.Lock.mutex_lock () in
        let counter = ref 0 in
        let done_ = Atomic.make 0 in
        let iters = 2_000 in
        let body () =
          for _ = 1 to iters do
            D.Lock.lock l;
            incr counter;
            D.Lock.unlock l
          done;
          Atomic.incr done_
        in
        for _ = 1 to 3 do
          D.Proc.acquire_proc
            (D.Proc.PS
               (Kont_util.cont_of_thunk ~on_return:D.Proc.release_proc body, 0))
        done;
        body ();
        while Atomic.get done_ < 4 do
          Domain.cpu_relax ()
        done;
        !counter)
  in
  check "no lost updates" 8_000 v

let test_dom_stats_busy () =
  ignore (D.run (fun () -> Unix.sleepf 0.01));
  let st = D.stats () in
  checkb "root proc busy recorded" true (st.Stats.per_proc.(0).Stats.busy > 0.)

(* ---------------- signals (§3.4) ---------------- *)

module Sig = Mp_signal.Make (U)

let test_sig_install_and_poll () =
  Sig.reset ();
  U.run (fun () ->
      let hits = ref [] in
      Sig.install 3 (Some (fun s -> hits := s :: !hits));
      Sig.deliver 3;
      check "pending before poll" 1 (Sig.pending ());
      Sig.poll ();
      check "handled" 1 (List.length !hits);
      check "drained" 0 (Sig.pending ());
      Sig.poll ();
      check "delivered once" 1 (List.length !hits))

let test_sig_masking () =
  Sig.reset ();
  U.run (fun () ->
      let hits = ref 0 in
      Sig.install 5 (Some (fun _ -> incr hits));
      Sig.mask 5;
      checkb "masked" true (Sig.is_masked 5);
      Sig.deliver 5;
      Sig.poll ();
      check "masked signal stays pending" 0 !hits;
      check "still pending" 1 (Sig.pending ());
      Sig.unmask 5;
      Sig.poll ();
      check "delivered after unmask" 1 !hits)

let test_sig_no_handler () =
  Sig.reset ();
  U.run (fun () ->
      Sig.deliver 7;
      (* polling a signal with no handler simply discards it *)
      Sig.poll ();
      check "discarded" 0 (Sig.pending ()))

let test_sig_remove_handler () =
  Sig.reset ();
  U.run (fun () ->
      let hits = ref 0 in
      Sig.install 2 (Some (fun _ -> incr hits));
      Sig.install 2 None;
      Sig.deliver 2;
      Sig.poll ();
      check "removed handler not called" 0 !hits)

let test_sig_out_of_range () =
  U.run (fun () ->
      match Sig.deliver 9999 with
      | () -> Alcotest.fail "expected rejection"
      | exception Invalid_argument _ -> ())

module SigD = Mp_signal.Make (D)

let test_sig_broadcast_all_procs () =
  Sig.reset ();
  let v =
    D.run (fun () ->
        SigD.reset ();
        let handled = Atomic.make 0 in
        SigD.install 1 (Some (fun _ -> Atomic.incr handled));
        let worker_done = Atomic.make 0 in
        let worker () =
          (* each proc polls and handles its own copy *)
          while Atomic.get handled = 0 && SigD.pending () = 0 do
            Domain.cpu_relax ()
          done;
          SigD.poll ();
          Atomic.incr worker_done
        in
        for _ = 1 to 2 do
          D.Proc.acquire_proc
            (D.Proc.PS
               (Kont_util.cont_of_thunk ~on_return:D.Proc.release_proc worker, 0))
        done;
        SigD.deliver 1;
        SigD.poll ();
        while Atomic.get worker_done < 2 do
          Domain.cpu_relax ()
        done;
        Atomic.get handled)
  in
  check "every proc received the signal" 3 v

let test_sig_deliver_to_one () =
  Sig.reset ();
  U.run (fun () ->
      let hits = ref 0 in
      Sig.install 4 (Some (fun _ -> incr hits));
      Sig.deliver_to ~proc:0 4;
      Sig.poll ();
      check "targeted delivery" 1 !hits)

(* ---------------- continuation plumbing ---------------- *)

let test_kont_cont_of_thunk_order () =
  U.run (fun () ->
      let log = ref [] in
      Engine.callcc (fun k ->
          let w =
            Kont_util.cont_of_thunk
              ~on_return:(fun () -> Engine.throw k ())
              (fun () -> log := "ran" :: !log)
          in
          log := "made" :: !log;
          Engine.throw w ());
      Alcotest.(check (list string))
        "thunk runs only when thrown to" [ "ran"; "made" ] !log)

let test_kont_one_shot_reuse () =
  U.run (fun () ->
      let saved = ref None in
      Engine.callcc (fun k ->
          let w =
            Kont_util.cont_of_thunk
              ~on_return:(fun () -> Engine.throw k ())
              (fun () -> ())
          in
          saved := Some w;
          Engine.throw w ());
      match !saved with
      | None -> Alcotest.fail "no continuation captured"
      | Some w ->
          (* [resume] claims the one-shot continuation synchronously;
             [throw] would surface the same error via the scheduler *)
          checkb "second resume raises Already_resumed" true
            (match Engine.resume w () with
            | _ -> false
            | exception Engine.Already_resumed -> true))

(* ---------------- counted (nesting) signal masks ---------------- *)

let test_sig_mask_nesting () =
  Sig.reset ();
  U.run (fun () ->
      let hits = ref 0 in
      Sig.install 6 (Some (fun _ -> incr hits));
      Sig.mask 6;
      Sig.mask 6;
      Sig.unmask 6;
      checkb "still masked after one of two unmasks" true (Sig.is_masked 6);
      Sig.deliver 6;
      Sig.poll ();
      check "nested mask defers delivery" 0 !hits;
      Sig.unmask 6;
      checkb "unmasked when the count reaches zero" false (Sig.is_masked 6);
      Sig.poll ();
      check "deferred signal delivered" 1 !hits;
      Sig.unmask 6;
      checkb "unmask floors at zero" false (Sig.is_masked 6))

(* ---------------- backend conformance ----------------

   One functor, instantiated for every PLATFORM implementation in the
   repo: the portable subset of the proc/lock/stats contracts that any
   backend — preemptive (domains), uniprocessor, simulated, or the
   exploration checker — must satisfy.  All waiting goes through
   [Work.idle_until] so the same code is correct under true parallelism
   and under cooperative scheduling. *)

module Conformance (P : Mp_intf.PLATFORM with type Proc.proc_datum = int) =
struct
  let spawn_worker ?(datum = 0) body =
    P.Proc.acquire_proc
      (P.Proc.PS
         (Kont_util.cont_of_thunk ~on_return:P.Proc.release_proc body, datum))

  let join () = P.Work.idle_until ~ready:(fun () -> P.Proc.live_procs () = 1)

  let test_identity () =
    P.run (fun () ->
        check "root is proc 0" 0 (P.Proc.self ());
        checkb "max_procs positive" true (P.Proc.max_procs () >= 1);
        check "one live proc at start" 1 (P.Proc.live_procs ()))

  let test_datum_roundtrip () =
    let v =
      P.run (fun () ->
          P.Proc.set_datum 41;
          P.Proc.get_datum () + 1)
    in
    check "root datum round trip" 42 v

  let test_worker_datum () =
    (* needs a spare proc; trivially true on a uniprocessor *)
    if P.run (fun () -> P.Proc.max_procs ()) > 1 then begin
      let v =
        P.run (fun () ->
            P.Proc.set_datum 100;
            let got = Atomic.make (-1) in
            spawn_worker ~datum:42 (fun () ->
                Atomic.set got (P.Proc.get_datum ()));
            P.Work.idle_until ~ready:(fun () -> Atomic.get got >= 0);
            join ();
            (P.Proc.get_datum (), Atomic.get got))
      in
      Alcotest.(check (pair int int)) "data are per-proc" (100, 42) v
    end

  let test_exhaustion () =
    checkb "pool exhausts after max_procs - 1 workers" true
      (P.run (fun () ->
           let spare = P.Proc.max_procs () - 1 in
           let release = Atomic.make false in
           let started = Atomic.make 0 in
           let acquired = ref 0 in
           (try
              for _ = 1 to spare + 1 do
                spawn_worker (fun () ->
                    Atomic.incr started;
                    P.Work.idle_until ~ready:(fun () -> Atomic.get release));
                incr acquired
              done
            with P.Proc.No_More_Procs -> ());
           let limited = !acquired = spare in
           Atomic.set release true;
           join ();
           limited && Atomic.get started = spare))

  let test_lock_mutual_exclusion () =
    let expected, got =
      P.run (fun () ->
          let iters = 200 in
          let workers = min 2 (P.Proc.max_procs () - 1) in
          let l = P.Lock.mutex_lock () in
          let counter = ref 0 in
          let body () =
            for _ = 1 to iters do
              P.Lock.lock l;
              let c = !counter in
              (* widen the race window: a visible step inside the section *)
              P.Work.step ~instrs:1 ();
              counter := c + 1;
              P.Lock.unlock l
            done
          in
          for _ = 1 to workers do
            spawn_worker body
          done;
          body ();
          join ();
          ((workers + 1) * iters, !counter))
    in
    check "no lost updates under the platform lock" expected got

  let test_try_lock_contract () =
    P.run (fun () ->
        let l = P.Lock.mutex_lock () in
        checkb "free lock acquired" true (P.Lock.try_lock l);
        checkb "held lock refused" false (P.Lock.try_lock l);
        P.Lock.unlock l;
        checkb "free again after unlock" true (P.Lock.try_lock l);
        P.Lock.unlock l)

  let test_stats_contract () =
    P.reset_stats ();
    ignore (P.run (fun () -> P.Work.step ~instrs:10 (); 0));
    let st = P.stats () in
    checkb "platform name non-empty" true (String.length st.Stats.platform > 0);
    check "stats cover every proc" (Array.length st.Stats.per_proc)
      st.Stats.procs;
    checkb "elapsed non-negative" true (st.Stats.elapsed >= 0.)

  let test_exceptions_and_reuse () =
    Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
        ignore (P.run (fun () -> failwith "boom")));
    check "platform reusable after failed run" 3 (P.run (fun () -> 3))

  (* Every scheduler policy must run a thread pool to completion on every
     backend — preemptive, cooperative, simulated, and checked — with no
     task lost or duplicated. *)
  module ST = Mpthreads.Sched_thread.Make (P)

  let test_sched_policies () =
    List.iter
      (fun sched ->
        let label = Mpthreads.Sched_policy.to_string sched in
        let v =
          P.run (fun () ->
              let procs = min 2 (P.Proc.max_procs ()) in
              let total = Atomic.make 0 in
              ST.with_pool ~procs ~quantum:1e6 ~sched (fun () ->
                  ST.fork_join
                    (List.init 4 (fun i () ->
                         ignore (Atomic.fetch_and_add total (i + 1)))));
              Atomic.get total)
        in
        check (Printf.sprintf "policy %s: all tasks ran once" label) 10 v)
      Mpthreads.Sched_policy.[ Fifo; Lifo; Distributed; Ws; Micropools 2 ]

  (* The server pipeline end-to-end on this backend: a fixed 200-request
     closed-burst trace (rate = infinity ⇒ every arrival at t = 0, so no
     sleep timers — it runs under the checker's single schedule too);
     every reply must come back, and with one worker per shard each
     shard must process its requests in FIFO (id) order. *)
  module Server = Workloads.Server.Make (P)

  let test_server_pipeline () =
    let cfg =
      {
        Workloads.Server.default with
        Workloads.Server.requests = 200;
        rate = infinity;
        shards = 2;
        queue_cap = 4;
        record_order = true;
      }
    in
    let procs = min 2 (P.run (fun () -> P.Proc.max_procs ())) in
    let r = Server.run ~procs ~quantum:1e6 cfg in
    check "all replies received" 200 r.Workloads.Server.completed;
    check "histogram holds every latency" 200
      (Obs.Histogram.count r.Workloads.Server.hist);
    Array.iteri
      (fun s order ->
        let expected =
          List.filter
            (fun id -> Workloads.Server.shard_of cfg id = s)
            (List.init 200 Fun.id)
        in
        Alcotest.(check (list int))
          (Printf.sprintf "shard %d processes in FIFO order" s)
          expected order)
      r.Workloads.Server.order

  let suite =
    [
      Alcotest.test_case "identity" `Quick test_identity;
      Alcotest.test_case "datum round trip" `Quick test_datum_roundtrip;
      Alcotest.test_case "worker datum" `Quick test_worker_datum;
      Alcotest.test_case "No_More_Procs on exhaustion" `Quick test_exhaustion;
      Alcotest.test_case "lock mutual exclusion" `Quick
        test_lock_mutual_exclusion;
      Alcotest.test_case "try_lock contract" `Quick test_try_lock_contract;
      Alcotest.test_case "stats contract" `Quick test_stats_contract;
      Alcotest.test_case "exceptions and reuse" `Quick
        test_exceptions_and_reuse;
      Alcotest.test_case "scheduler policy family" `Quick test_sched_policies;
      Alcotest.test_case "server pipeline" `Quick test_server_pipeline;
    ]
end

module Conf_uni = Conformance (U)
module Conf_dom = Conformance (D)

module Sim4 =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:4 ()
    end)
    ()

module Conf_sim = Conformance (Sim4)

module Check2 = Mpcheck.Mp_check.Int (struct
  let max_procs = 2
end) ()

module Conf_check = Conformance (Check2)

let () =
  Alcotest.run "mp"
    [
      ( "uniproc",
        [
          Alcotest.test_case "acquire fails" `Quick test_uni_acquire_fails;
          Alcotest.test_case "datum" `Quick test_uni_datum;
          Alcotest.test_case "identity" `Quick test_uni_identity;
          Alcotest.test_case "release deadlocks" `Quick
            test_uni_release_deadlocks;
          Alcotest.test_case "lock deadlock detected" `Quick
            test_uni_lock_deadlock_detected;
          Alcotest.test_case "work no-ops" `Quick test_uni_work_noops;
          Alcotest.test_case "poll hook" `Quick test_uni_poll_hook;
          Alcotest.test_case "stats" `Quick test_uni_stats;
          Alcotest.test_case "not reentrant" `Quick test_uni_not_reentrant;
        ] );
      ( "domains",
        [
          Alcotest.test_case "acquire/release" `Quick test_dom_acquire_release;
          Alcotest.test_case "No_More_Procs" `Quick test_dom_no_more_procs;
          Alcotest.test_case "datum per proc" `Quick test_dom_datum_per_proc;
          Alcotest.test_case "proc reuse" `Quick test_dom_proc_reuse;
          Alcotest.test_case "exception propagates" `Quick
            test_dom_exception_propagates;
          Alcotest.test_case "deadlock detected" `Quick
            test_dom_deadlock_detected;
          Alcotest.test_case "sequential runs" `Quick test_dom_sequential_runs;
          Alcotest.test_case "migrated root fiber" `Quick
            test_dom_result_from_migrated_fiber;
          Alcotest.test_case "lock mutual exclusion" `Slow
            test_dom_lock_mutual_exclusion;
          Alcotest.test_case "stats busy" `Quick test_dom_stats_busy;
        ] );
      ( "signals",
        [
          Alcotest.test_case "install and poll" `Quick test_sig_install_and_poll;
          Alcotest.test_case "masking" `Quick test_sig_masking;
          Alcotest.test_case "no handler" `Quick test_sig_no_handler;
          Alcotest.test_case "remove handler" `Quick test_sig_remove_handler;
          Alcotest.test_case "out of range" `Quick test_sig_out_of_range;
          Alcotest.test_case "broadcast to all procs" `Quick
            test_sig_broadcast_all_procs;
          Alcotest.test_case "deliver to one" `Quick test_sig_deliver_to_one;
          Alcotest.test_case "mask nesting" `Quick test_sig_mask_nesting;
        ] );
      ( "kont",
        [
          Alcotest.test_case "cont_of_thunk ordering" `Quick
            test_kont_cont_of_thunk_order;
          Alcotest.test_case "one-shot reuse raises" `Quick
            test_kont_one_shot_reuse;
        ] );
      ("conformance:uniproc", Conf_uni.suite);
      ("conformance:domains", Conf_dom.suite);
      ("conformance:sim", Conf_sim.suite);
      ("conformance:check", Conf_check.suite);
    ]
