test/test_report.ml: Alcotest Array Buffer Filename Format Lazy List Model Mp Report String Sys
