lib/mp/kont_util.ml: Engine
