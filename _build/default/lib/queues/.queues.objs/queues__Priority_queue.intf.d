lib/queues/priority_queue.mli: Queue_intf
