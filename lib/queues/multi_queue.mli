(** Distributed run queue with work stealing.

    The paper's evaluation thread package adds "a distributed run queue" to
    the Figure-3 design; this is that substrate.  One lock-protected deque
    per proc: the owner pushes/pops at the front, and when its own deque is
    empty it steals from the back of a victim's deque, scanning victims in a
    rotating order from a per-proc starting point to avoid convoying. *)

module Make (L : Mp.Mp_intf.LOCK) : sig
  type 'a t

  val create : procs:int -> 'a t

  val procs : 'a t -> int

  val push : 'a t -> proc:int -> 'a -> unit
  (** Push onto [proc]'s own queue (newest first). *)

  val push_back : 'a t -> proc:int -> 'a -> unit
  (** Push onto the back of [proc]'s queue (oldest first): paired with
      {!take_local} this gives slot-level FIFO order, which the central-FIFO
      and micropool scheduler policies build on. *)

  val push_global : 'a t -> 'a -> unit
  (** Push onto the queue of a rotating proc — used by producers with no
      proc affinity. *)

  val take : 'a t -> proc:int -> 'a option
  (** Pop from [proc]'s own queue, or steal from a victim; [None] when every
      queue is empty. *)

  val take_local : 'a t -> proc:int -> 'a option
  (** Pop from [proc]'s own queue only. *)

  val steal : 'a t -> proc:int -> 'a option
  (** Steal from some other proc's queue only. *)

  val looks_nonempty : 'a t -> bool
  (** Racy, lock-free hint: [true] iff the queue currently holds items,
      read from an exact counter maintained inside the slot locks (O(1),
      no per-deque scan).  Suitable as an idle poller's readiness
      predicate: reads only, takes no locks, performs no platform
      charges. *)

  val looks_nonempty_local : 'a t -> proc:int -> bool
  (** Like {!looks_nonempty}, restricted to [proc]'s own deque (the peek
      set of {!take_local}). *)

  val total_length : 'a t -> int
  (** Approximate total enqueued items (racy snapshot). *)

  val steals : 'a t -> int
  (** Number of successful steals so far. *)
end
