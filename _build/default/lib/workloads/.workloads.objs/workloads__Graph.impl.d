lib/workloads/graph.ml: Array Random
