module Make (P : Lock_intf.PRIMS) = struct
  type mutex_lock = bool P.cell

  let holder_must_unlock = false
  let mutex_lock () = P.make false
  let try_lock l = not (P.exchange l true)

  let lock l =
    while not (try_lock l) do
      P.on_spin ();
      P.pause ()
    done

  let unlock l = P.set l false
  let locked l f = Lock_intf.locked_default ~lock ~unlock l f

end
