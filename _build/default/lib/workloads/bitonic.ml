let comparators = ref 0
let comparators_used () = !comparators
let reset_counters () = comparators := 0
let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* One comparator column over a bitonic segment: after it, every element of
   the low half is <= (resp >=) every element of the high half, and both
   halves are bitonic. *)
let half_clean ~up a lo n =
  let h = n / 2 in
  let swapped = ref false in
  for i = lo to lo + h - 1 do
    incr comparators;
    let x = a.(i) and y = a.(i + h) in
    if (up && x > y) || ((not up) && x < y) then begin
      a.(i) <- y;
      a.(i + h) <- x;
      swapped := true
    end
  done;
  !swapped

(* Is a.(lo..lo+n-1) already ordered in direction [up]? O(n) scan; the scan
   cost is charged as comparators too, since the adaptive algorithm pays it. *)
let ordered ~up a lo n =
  let ok = ref true in
  let i = ref lo in
  while !ok && !i < lo + n - 1 do
    incr comparators;
    let x = a.(!i) and y = a.(!i + 1) in
    if (up && x > y) || ((not up) && x < y) then ok := false;
    incr i
  done;
  !ok

let rec merge ~up a lo n =
  if n > 1 then begin
    let swapped = half_clean ~up a lo n in
    let h = n / 2 in
    (* Adaptivity: if the comparator column did no work and the segment is
       already ordered, the merge is done. *)
    if swapped || not (ordered ~up a lo n) then begin
      merge ~up a lo h;
      merge ~up a (lo + h) h
    end
  end

let rec sort_range ~up a lo n =
  if n > 1 then begin
    let h = n / 2 in
    sort_range ~up:true a lo h;
    sort_range ~up:false a (lo + h) h;
    merge ~up a lo n
  end

let sort a =
  let n = Array.length a in
  if n > 1 then begin
    if not (is_power_of_two n) then
      invalid_arg "Bitonic.sort: length must be a power of two";
    sort_range ~up:true a 0 n
  end
