lib/mp/mp_domains.ml: Array Atomic Condition Domain Engine Fun Mp_intf Mutex Stats Unix
