type gc_kind = Obs.Event.gc_kind = Minor | Major | Par

type event = Obs.Event.t =
  | Dispatch of { proc : int; clock : int }
  | Freed of { proc : int; clock : int }
  | Acquired of { proc : int; by : int; clock : int }
  | Gc_start of {
      clock : int;
      region_words : int;
      kind : gc_kind;
      waiters : int;
    }
  | Gc_end of { clock : int; duration : int }
  | Coalesced of { proc : int; clock : int; cycles : int }
  | Fork of { proc : int; clock : int; thread : int }
  | Switch of { proc : int; clock : int; thread : int }
  | Steal of { proc : int; clock : int }
  | Queue_depth of { proc : int; clock : int; depth : int }
  | Lock_acquired of { proc : int; clock : int }
  | Lock_contended of { proc : int; clock : int; spins : int }
  | Blocked of { proc : int; clock : int; thread : int; on : string }
  | Wakeup of { proc : int; clock : int; thread : int; on : string }
  | Step of { proc : int; clock : int; op : string }

type t = Obs.Event.t Obs.Ring.t

let create ~capacity = Obs.Ring.create ~capacity
let record = Obs.Ring.record
let clear = Obs.Ring.clear
let length = Obs.Ring.length
let total_recorded = Obs.Ring.total_recorded
let events = Obs.Ring.items
let clock_of = Obs.Event.clock_of
let pp_event = Obs.Event.pp

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) (events t)
