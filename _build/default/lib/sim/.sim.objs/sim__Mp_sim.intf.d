lib/sim/mp_sim.mli: Mp Sim_config Sim_trace
