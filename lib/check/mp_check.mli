(** Controlled-concurrency schedule exploration for the MP platform.

    [Mp_check] is a fourth platform backend whose scheduler is the test
    harness: every visible operation — lock acquire/try/release, atomic-cell
    access in the queue family, proc acquire/release, [Work] safe points —
    suspends the running fiber at a {e serialization point}, and a
    single-threaded exploration loop decides which proc performs its pending
    operation next.  Client code (locks over [Prims], queues over [Catomic],
    and the thread/sync/select/CML packages over the [PLATFORM] itself) runs
    unmodified; between two serialization points a proc executes atomically,
    so the set of explored interleavings is exactly the set of orderings of
    visible operations.

    Three exploration modes (see {!S.Explore}): exhaustive DFS under an
    iterative preemption bound (CHESS-style), random-schedule fuzzing from a
    printable 64-bit seed with [MP_CHECK_SEED] replay, and either combined
    with fault injection ({!Check_intf.faults}).  A failing run is shrunk to
    a minimal forced schedule and rendered as an [Obs] event trace. *)

exception Truncated
(** A run exceeded the per-run step budget ([max_steps]).  Truncated runs
    are counted, not treated as failures: they signal livelock or a budget
    set too low, and exploration of that branch is incomplete. *)

type failure = {
  error : exn;  (** the exception that escaped the failing run *)
  schedule : int list;
      (** minimal forced schedule: the proc to run at decision 0, 1, …;
          decisions beyond the list follow the default (non-preemptive)
          policy.  Feed it back through {!S.Explore.replay}. *)
  seed : string option;
      (** printable seed of the failing run (random mode only); replay with
          [MP_CHECK_SEED=<seed>]. *)
  trace : Obs.Event.t list;
      (** the minimal counterexample, one {!Obs.Event.Step} per decision. *)
}

type report = {
  schedules : int;  (** runs performed *)
  truncated : int;  (** runs abandoned at the step budget *)
  pruned : int;
      (** runs abandoned sleep-blocked (DPOR only: commuted duplicates of
          already-explored traces); 0 for plain DFS and random mode *)
  capped : bool;  (** DFS stopped at [max_schedules] with work remaining *)
  failure : failure option;  (** first failure found, shrunk *)
}

val pp_failure : Format.formatter -> failure -> unit
(** Multi-line rendering: exception, seed/replay hint, forced schedule, and
    the per-decision Obs trace. *)

(** What a checkable platform instance provides beyond [PLATFORM]. *)
module type S = sig
  include Mp.Mp_intf.PLATFORM

  module Prims : Locks.Lock_intf.PRIMS
  (** Instrumented atomic cells for the lock-algorithm functors: every
      [get]/[set]/[exchange]/[compare_and_set]/[fetch_and_add] is a
      serialization point; [pause]/[pause_n] are yield points, which is how
      spin loops stay fair (and finite) under exploration. *)

  module Catomic : Queues.Queue_intf.ATOMIC
  (** The same instrumented cells under the queue family's [ATOMIC]
      signature, for [Ws_deque.Make]. *)

  val spawn : (unit -> unit) -> unit
  (** Acquire a free proc and run the thunk on it, releasing the proc when
      the thunk returns.  The caller continues immediately.
      @raise Mp.Mp_intf.No_More_Procs when the pool is exhausted. *)

  val set_nodes : int -> unit
  (** Group the procs into [n] contiguous interconnect nodes (reported by
      [Proc.nodes]/[Proc.node_of]) so node-aware scheduler paths can be
      explored; clamped to [1 .. max_procs], default 1 (flat).  Constant
      during a run — call it outside [run], typically at scenario start. *)

  val line_sharers : Work.line -> int
  (** The tracked sharer set of a cache line (bit [n] set = node [n]
      holds the line), for scenarios checking the claim/invalidate
      discipline. *)

  module Explore : sig
    val dfs :
      ?bound:int ->
      ?max_schedules:int ->
      ?max_steps:int ->
      ?faults:Check_intf.faults ->
      ?stop:(unit -> bool) ->
      ?dpor:bool ->
      (unit -> unit) ->
      report
    (** Exhaustive DFS over schedules with at most [bound] preemptions
        (default 2).  A preemption is a context switch away from a proc
        that could have continued (not blocked, not at a yield point);
        switches at blocking and yield points are free, so the default
        policy runs each proc to its next voluntary release and the bound
        counts only the forced interleavings — the CHESS observation that
        most concurrency bugs need very few preemptions.  The body must be
        a self-contained scenario that calls [run] exactly once.
        Exploration stops at the first failure, which is shrunk.  [stop]
        is polled between schedules; returning [true] abandons the rest of
        the space and marks the report [capped] (wall-clock budgets live in
        the caller so the library stays deterministic by default).

        With [~dpor:true] exploration is race-directed ({!Dpor}): instead
        of expanding every alternative at every decision, only reversals
        of happens-before races are queued, sleep sets prune commuted
        duplicates, and the report's [pruned] counts runs abandoned as
        such.  Same failure semantics, same shrink, usually orders of
        magnitude fewer schedules. *)

    val runner :
      ?faults:Check_intf.faults ->
      ?max_steps:int ->
      (unit -> unit) ->
      Dpor.runner
    (** The instance-independent execution handle for {!Dpor.explore}:
        build one per host domain (over a fresh generative instance each)
        to fan exploration out with deterministic, index-merged results. *)

    val random :
      ?seed:int64 ->
      ?runs:int ->
      ?max_steps:int ->
      ?faults:Check_intf.faults ->
      (unit -> unit) ->
      report
    (** Random-schedule fuzzing: [runs] runs (default 500), the [i]-th
        driven by [Sched_seed.derive seed i].  When the [MP_CHECK_SEED]
        environment variable is set it overrides [seed] and forces a single
        run — the replay path for a seed printed by a previous failure. *)

    val replay :
      schedule:int list ->
      ?max_steps:int ->
      ?faults:Check_intf.faults ->
      (unit -> unit) ->
      failure option
    (** Re-run one forced schedule (a {!failure.schedule}); [Some] a fresh
        failure record (unshrunk) if it still fails.  Deterministic: the
        same schedule and faults always yield the same outcome and trace. *)
  end
end

module Make (C : sig
  val max_procs : int
end) (D : Mp.Mp_intf.DATUM) : S with type Proc.proc_datum = D.t

module Int (C : sig
  val max_procs : int
end) () : S with type Proc.proc_datum = int
(** Generative: each application is an independent checker instance. *)
