(** Modula-3 style thread package — the paper reports MP was used to build
    "a Modula-3 style thread package" which served as the basis for work on
    concurrent debugging, transactions and systems programming.

    Provides forked threads with typed join, blocking (non-spinning) mutexes
    with direct ownership handoff, and Mesa-semantics condition variables,
    all synthesized from the MP [Lock], refs and first-class continuations,
    over any [SCHED] thread package. *)

module Make (P : Mp.Mp_intf.PLATFORM_INT) (S : Thread_intf.SCHED) : sig
  type 'a t
  (** A thread handle carrying a result of type ['a]. *)

  val fork : (unit -> 'a) -> 'a t

  val join : 'a t -> 'a
  (** Block until the thread completes; returns its result or re-raises the
      exception it died with.  Multiple joiners are allowed. *)

  module Mutex : sig
    type t

    val create : unit -> t

    val lock : t -> unit
    (** Block (yielding the proc to other threads, not spinning) until the
        mutex is available.  Ownership is handed directly to the longest
        waiting thread on unlock. *)

    val unlock : t -> unit
    val with_lock : t -> (unit -> 'a) -> 'a
  end

  module Condition : sig
    type t

    val create : unit -> t

    val wait : Mutex.t -> t -> unit
    (** Atomically release the mutex and block on the condition; re-acquires
        the mutex before returning (Mesa semantics: re-check the predicate). *)

    val signal : t -> unit
    val broadcast : t -> unit
  end

  (* Modula-3 alerts. *)

  exception Alerted

  val alert : 'a t -> unit
  (** Request that the thread stop: sets its alert flag and wakes it if it
      is blocked in {!alert_wait}. *)

  val test_alert : unit -> bool
  (** Check-and-clear the calling thread's alert flag. *)

  val alert_wait : Mutex.t -> Condition.t -> unit
  (** Like {!Condition.wait}, but raises {!Alerted} (with the mutex held,
      Modula-3 semantics) if the thread is or becomes alerted. *)
end
