(** Anderson's array-based queue lock (Anderson 1990): each waiter spins on
    its own slot of a flag array, eliminating the coherence storm on a single
    location.  Capacity-bounded: at most [slots] procs may contend at once.
    Queue-style: the releasing proc is expected to be the holder. *)

module Make (P : Lock_intf.PRIMS) : sig
  include Lock_intf.LOCK_EXT

  val mutex_lock_sized : slots:int -> mutex_lock
  (** Lock supporting up to [slots] simultaneous contenders ([mutex_lock]
      uses 64). *)
end
