test/test_sync.ml: Alcotest Atomic List Mpsync Mpthreads Sim
