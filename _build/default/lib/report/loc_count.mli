(** Source-line inventory — the analog of the paper's §6 portability
    evaluation, which counts "the number of lines of code (including
    whitespace and comments) that make up the system-dependent routines of
    each MP implementation" against the whole runtime.

    In this reproduction the "ports" are the MP backends: the trivial
    uniprocessor, the OCaml-domains backend (kernel threads), and the
    simulated Sequent/SGI.  Everything else — thread packages, channels,
    CML, synchronization, workloads — is system-independent, exactly the
    paper's point. *)

type entry = { component : string; kind : string; files : int; lines : int }

val scan : root:string -> entry list
(** Count the lines of every [.ml]/[.mli] file under [root]'s [lib/],
    grouped into components with a generic/backend classification. *)

val find_root : unit -> string option
(** Locate the project root (directory containing [dune-project]) from the
    current working directory upward. *)

val print : Format.formatter -> entry list -> unit
