(** The evaluation thread package (paper §6): "similar to that shown in
    Figure 3, with the addition of a distributed run queue and a ...
    preemption mechanism", and following the §3.1 advice to "acquire as many
    procs as possible ... and hold on to them for the duration".

    Procs are acquired once by {!Make.with_pool} and run a dispatch loop over
    a per-proc deque with work stealing; idle procs poll for work (accounted
    as idle time by the platform).  Preemption is timer-driven polling: the
    package installs a poll hook that yields when the current thread has held
    its proc longer than the quantum — the portable simulation of preemption
    signals that the paper's §3.4 describes. *)

module Make (P : Mp.Mp_intf.PLATFORM_INT) : sig
  include Thread_intf.SCHED

  val with_pool :
    ?procs:int ->
    ?quantum:float ->
    ?run_queue:[ `Distributed | `Central ] ->
    ?sched:Sched_policy.t ->
    (unit -> 'a) ->
    'a
  (** [with_pool f] acquires up to [procs] procs (default: the platform
      maximum), runs [f] as thread 0, and returns its result once it
      completes; worker procs release themselves when the pool is finished
      and their queues are dry.  [quantum] is the preemption quantum in
      seconds (virtual seconds on the simulator); default 0.02.
      [sched] selects the scheduling policy for this pool (see
      {!Sched_policy}); default [Distributed], the paper's distributed
      per-proc run queue, whose simulator behavior is bit-identical to the
      pre-policy scheduler.  The legacy [run_queue] selector is kept for
      the run-queue ablation bench: [`Central] is the Figure-3 single
      central queue and maps to {!Sched_policy.Lifo} (its historical
      discipline); an explicit [sched] overrides it.  If any thread
      raised, the first such exception is re-raised here after the pool
      winds down.  Not reentrant. *)

  val block : ('a Mp.Engine.cont -> unit) -> 'a
  (** [block register] captures the current thread as a continuation, hands
      it to [register] (which must arrange for it to be resumed exactly once,
      e.g. by parking it in a condition queue), and dispatches another
      thread.  Returns the value the resumer delivers. *)

  val fork_join : (unit -> unit) list -> unit
  (** Fork every function as a thread and block until all have finished. *)

  val par_iter : ?chunks:int -> int -> (int -> unit) -> unit
  (** [par_iter n f] runs [f 0 .. f (n-1)] split into [chunks] contiguous
      blocks (default [4 * max_procs]) executed by [fork_join]. *)

  val now : unit -> float
  (** Platform time: virtual seconds on the simulator, wall clock otherwise. *)

  val sleep : float -> unit
  (** Block the calling thread for the given duration.  On the simulator the
      wait is in virtual time: idle procs advance the clock, so sleeping
      costs no wall time. *)

  val at : float -> (unit -> unit) -> unit
  (** Run a callback at (or shortly after) the given absolute time, in
      scheduler context on whichever proc notices it first.  Timers fire at
      safe points (dispatch and poll), the paper's timer-driven polling. *)

  val pool_procs : unit -> int
  (** Number of procs actually acquired by the current pool. *)

  val steals : unit -> int
  (** Successful work-steals since the pool started. *)

  val steal_attempts : unit -> int
  (** Steal probes (successful or not) since the pool started; equal to
      {!steals} under policies that do not count failed probes. *)

  val switches : unit -> int
  (** Thread dispatches since the pool started. *)
end
