test/test_workloads.ml: Alcotest Array Bench_suite Bitonic Euclid Float Fun Graph Hydro List Matrix Mp QCheck QCheck_alcotest Random Sim Workloads
