(** Continuation plumbing shared by thread packages. *)

val cont_of_thunk : on_return:(unit -> unit) -> (unit -> unit) -> unit Engine.cont
(** [cont_of_thunk ~on_return f] manufactures a continuation that, when
    thrown to (or passed to [acquire_proc]), runs [f ()] and then
    [on_return ()] (e.g. [release_proc]).  The caller continues immediately;
    the thunk runs only when the continuation is resumed, on whichever proc
    resumes it. *)

val unit_cont_of : 'a Engine.cont -> 'a -> unit Engine.cont
(** [unit_cont_of k v] converts a typed continuation and a value into a
    [unit cont] that delivers [v] to [k] when thrown to — the paper's
    [reschedule_thread] conversion (Figure 5's caption). *)
