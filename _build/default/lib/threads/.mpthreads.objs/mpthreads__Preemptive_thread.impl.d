lib/threads/preemptive_thread.ml: Mp Thread_intf
