lib/queues/queue_intf.ml:
