lib/locks/backoff_lock.ml: Lock_intf
