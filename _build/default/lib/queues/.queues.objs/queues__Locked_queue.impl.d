lib/queues/locked_queue.ml: Mp Queue_intf
