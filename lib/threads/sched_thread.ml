open Mp

module Make (P : Mp.Mp_intf.PLATFORM_INT) = struct
  module Policy = Sched_policy.Make (P)

  type runnable =
    | Thunk of (unit -> unit) * int
    | Cont : 'a Engine.cont * 'a * int -> runnable

  (* The ready queue behind a first-class SCHEDULER instance: the policy
     (central FIFO/LIFO, distributed deques, work stealing, micropools) is
     chosen per pool and every queue operation below dispatches through
     it.  The default [Distributed] policy issues exactly the operation
     sequence the pre-policy scheduler issued, so simulator goldens are
     bit-identical under it. *)
  module type RQ = sig
    module S : Thread_intf.SCHEDULER

    val q : runnable S.t
  end

  let make_rq policy ~procs : (module RQ) =
    let (module S : Thread_intf.SCHEDULER) = Policy.instance policy in
    (module struct
      module S = S

      let q = S.create ~procs
    end)

  let rq : (module RQ) ref = ref (make_rq Sched_policy.default ~procs:1)
  let active = ref false
  let finished = ref false
  let acquired = ref 1
  let quantum = ref 0.02
  let next_id = Atomic.make 1
  let switch_count = Atomic.make 0
  let thread_error : exn option Atomic.t = Atomic.make None
  let last_switch = ref [||]

  (* Pending timers in a binary-heap priority queue, earliest wake time
     first (O(log n) insert instead of the old O(n) sorted-list insert;
     FIFO among equal times via the queue's sequence numbers).  Callbacks
     run in dispatch/poll context (inside a fiber), so they may take
     platform locks. *)
  module PQ = Queues.Priority_queue

  let timer_lock = P.Lock.mutex_lock ()
  let timers : (float * (unit -> unit)) PQ.queue ref = ref (PQ.create ())

  (* The queue's priority is an int, highest first: negated nanoseconds
     gives earliest-time-first.  ns resolution is finer than both the
     simulator's cycle (62.5 ns at 16 MHz) and the wall clock's microsecond,
     so distinct wake times keep distinct priorities. *)
  let timer_priority time = -(int_of_float (time *. 1e9))

  let at time callback =
    P.Lock.locked timer_lock (fun () ->
        PQ.enq !timers ~priority:(timer_priority time) (time, callback))

  (* Timer-peek invariant.  [fire_due_timers]'s fast path peeks the heap
     WITHOUT [timer_lock].  That racy peek is only safe when no other host
     thread can mutate the heap concurrently — which holds on the
     cooperative backends (uniproc/sim/check run every proc as a fiber of
     one host domain) and on any backend when the pool has a single proc.
     It does NOT depend on the scheduling policy: a central queue does not
     serialize procs, only a single host domain does.  On the domains
     backend with a multi-proc pool, a peek racing the locked drain's heap
     mutation could read a torn heap, so dispatch must take the locked
     path there; [with_pool] computes this per pool, before any proc is
     acquired. *)
  let cooperative_host =
    P.name = "uniproc" || P.name = "check"
    || (String.length P.name >= 4 && String.sub P.name 0 4 = "sim:")

  let timer_peek_unlocked = ref true

  let debug_guard =
    match Sys.getenv_opt "MP_SCHED_DEBUG" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true

  (* Fire every due timer; true if any fired.  The unlocked peek matters:
     dispatch calls this on every idle iteration, and taking the lock each
     time would make the timer lock the hottest word in the system.  A racy
     peek can only mis-read in-flight state; the locked drain below
     re-checks everything. *)
  let fire_due_timers () =
    let peeked =
      if !timer_peek_unlocked then begin
        if debug_guard then
          (* the invariant above, re-checked live under any policy *)
          assert (cooperative_host || !acquired <= 1);
        PQ.peek_opt !timers
      end
      else P.Lock.locked timer_lock (fun () -> PQ.peek_opt !timers)
    in
    match peeked with
    | None -> false
    | Some (t0, _) when t0 > P.Work.now () -> false
    | Some _ ->
        let now = P.Work.now () in
        let rec drain acc =
          match PQ.peek_opt !timers with
          | Some (t, _) when t <= now ->
              let _, cb = PQ.deq !timers in
              drain (cb :: acc)
          | _ -> List.rev acc
        in
        let due = P.Lock.locked timer_lock (fun () -> drain []) in
        List.iter (fun cb -> cb ()) due;
        due <> []

  let record_error e =
    ignore (Atomic.compare_and_set thread_error None (Some e))

  let id () = P.Proc.get_datum ()

  (* Telemetry: dispatch/steal events are emitted live (guarded, so the
     quiet path costs one boolean load); fork/switch/steal totals are
     folded into the counter registry at the end of [with_pool], keeping
     the hot paths free of extra atomics.  [sched.queue_depth] is a max
     gauge sampled at forks, so like the events it is only populated when
     telemetry is enabled. *)
  let c_forks = P.Telemetry.counter "sched.forks"
  let c_switches = P.Telemetry.counter "sched.switches"
  let c_steals = P.Telemetry.counter "sched.steals"
  let c_steal_attempts = P.Telemetry.counter "sched.steal_attempts"
  let c_steal_hits = P.Telemetry.counter "sched.steal_hits"
  let c_depth = P.Telemetry.counter "sched.queue_depth"

  (* Called after a successful take when telemetry is on: a steal shows up
     as a bump of the policy's steal counter across the take. *)
  let note_run proc steals_now steals0 tid =
    let ts = P.Telemetry.now_ts () in
    if steals_now > steals0 then
      P.Telemetry.emit (Obs.Event.Steal { proc; clock = ts });
    P.Telemetry.emit (Obs.Event.Switch { proc; clock = ts; thread = tid })

  let mark_switch proc =
    Atomic.incr switch_count;
    let arr = !last_switch in
    if proc < Array.length arr then arr.(proc) <- P.Work.now ()

  let rec dispatch () =
    let proc = P.Proc.self () in
    mark_switch proc;
    let tel = P.Telemetry.enabled () in
    let (module Q) = !rq in
    let steals0 = if tel then Q.S.steals Q.q else 0 in
    match Q.S.take Q.q ~proc with
    | Some (Thunk (f, tid)) ->
        if tel then note_run proc (Q.S.steals Q.q) steals0 tid;
        P.Proc.set_datum tid;
        (try f () with e -> record_error e);
        dispatch ()
    | Some (Cont (k, v, tid)) ->
        if tel then note_run proc (Q.S.steals Q.q) steals0 tid;
        P.Proc.set_datum tid;
        Engine.throw k v
    | None ->
        if fire_due_timers () then dispatch ()
        else if !finished then P.Proc.release_proc ()
        else begin
          (* Idle until any of the conditions the loop above would act on
             can hold.  The predicate mirrors this dispatch's uncharged
             failure path read-for-read — the policy's charge-free queue
             hint, an unlocked timer peek, the finished flag — and is
             side-effect- and charge-free, as [Work.idle_until] requires; a
             wake re-runs the full (charged) probes above from the same
             position. *)
          P.Work.idle_until ~ready:(fun () ->
              !finished
              || (match PQ.peek_opt !timers with
                 | Some (t0, _) -> t0 <= P.Work.now ()
                 | None -> false)
              || Q.S.looks_nonempty Q.q ~proc);
          dispatch ()
        end

  let enqueue r =
    let (module Q) = !rq in
    Q.S.push_local Q.q ~proc:(P.Proc.self ()) r

  (* New threads go wherever the policy places unaffiliated work (the
     distributed policies spray them round-robin); resumed continuations
     stay on the resuming proc's queue for affinity. *)
  let fork child =
    let tid = Atomic.fetch_and_add next_id 1 in
    let (module Q) = !rq in
    Q.S.push_new Q.q ~proc:(P.Proc.self ()) (Thunk (child, tid));
    if P.Telemetry.enabled () then begin
      let proc = max 0 (P.Proc.self ()) in
      let ts = P.Telemetry.now_ts () in
      let depth = Q.S.total_length Q.q in
      P.Telemetry.emit (Obs.Event.Fork { proc; clock = ts; thread = tid });
      (* Sample run-queue pressure where it changes: at thread creation. *)
      P.Telemetry.emit (Obs.Event.Queue_depth { proc; clock = ts; depth });
      Obs.Counters.max_gauge c_depth depth
    end

  let yield () =
    Engine.callcc (fun cont ->
        enqueue (Cont (cont, (), id ()));
        dispatch ())

  let block register =
    Engine.callcc (fun k ->
        register k;
        dispatch ())

  let reschedule (cont, tid) = enqueue (Cont (cont, (), tid))
  let reschedule_thread (k, v, tid) = enqueue (Cont (k, v, tid))

  (* Timer-driven polling preemption (paper §3.4): at every safe point, if
     the running thread has exceeded its quantum, force a yield. *)
  let poll_check () =
    if !active then begin
      ignore (fire_due_timers ());
      let proc = P.Proc.self () in
      let arr = !last_switch in
      if proc >= 0 && proc < Array.length arr then
        if P.Work.now () -. arr.(proc) > !quantum then yield ()
    end

  let worker_cont () =
    Kont_util.cont_of_thunk ~on_return:P.Proc.release_proc (fun () ->
        dispatch ())

  let with_pool ?procs ?quantum:(q = 0.02) ?(run_queue = `Distributed) ?sched
      f =
    if !active then invalid_arg "Sched_thread.with_pool: not reentrant";
    (* [?sched] wins; the legacy [?run_queue] keeps its historical
       meanings ([`Central] was slot-0 push_front/pop_front, i.e. central
       LIFO). *)
    let policy =
      match (sched, run_queue) with
      | Some p, _ -> p
      | None, `Central -> Sched_policy.Lifo
      | None, `Distributed -> Sched_policy.default
    in
    let max_procs = P.Proc.max_procs () in
    let want = match procs with None -> max_procs | Some p -> max 1 p in
    rq := make_rq policy ~procs:max_procs;
    active := true;
    finished := false;
    acquired := 1;
    timer_peek_unlocked := cooperative_host || want <= 1;
    Atomic.set next_id 1;
    Atomic.set switch_count 0;
    Atomic.set thread_error None;
    timers := PQ.create ();
    last_switch := Array.make max_procs (P.Work.now ());
    quantum := q;
    P.Work.set_poll_hook poll_check;
    (try
       while !acquired < want do
         P.Proc.acquire_proc (P.Proc.PS (worker_cont (), 0));
         incr acquired
       done
     with Mp_intf.No_More_Procs -> ());
    let (module Q) = !rq in
    (* Elastic policies clamp themselves to the procs actually acquired;
       nothing has been forked yet, so the clamp cannot strand work. *)
    Q.S.prepare Q.q ~procs:!acquired;
    let result = try Ok (f ()) with e -> Error e in
    finished := true;
    active := false;
    P.Work.set_poll_hook (fun () -> ());
    Obs.Counters.set c_forks (Atomic.get next_id - 1);
    Obs.Counters.set c_switches (Atomic.get switch_count);
    Obs.Counters.set c_steals (Q.S.steals Q.q);
    Obs.Counters.set c_steal_attempts (Q.S.steal_attempts Q.q);
    Obs.Counters.set c_steal_hits (Q.S.steals Q.q);
    match (result, Atomic.get thread_error) with
    | Ok v, None -> v
    | Ok _, Some e -> raise e
    | Error e, _ -> raise e

  let fork_join fns =
    match fns with
    | [] -> ()
    | fns ->
        let n = List.length fns in
        let lock = P.Lock.mutex_lock () in
        let remaining = ref n in
        let waiter : (unit Engine.cont * int) option ref = ref None in
        let wrap f () =
          (try f () with e -> record_error e);
          let w =
            P.Lock.locked lock (fun () ->
                decr remaining;
                let w = if !remaining = 0 then !waiter else None in
                if w <> None then waiter := None;
                w)
          in
          match w with
          | Some (k, tid) -> reschedule (k, tid)
          | None -> ()
        in
        List.iter (fun f -> fork (wrap f)) fns;
        let my_tid = id () in
        Engine.callcc (fun k ->
            let zero =
              P.Lock.locked lock (fun () ->
                  if !remaining = 0 then true
                  else begin
                    waiter := Some (k, my_tid);
                    false
                  end)
            in
            if zero then Engine.throw k () else dispatch ())

  let par_iter ?chunks n f =
    if n > 0 then begin
      let chunks =
        match chunks with
        | Some c -> max 1 (min c n)
        | None -> max 1 (min (4 * P.Proc.max_procs ()) n)
      in
      let block_size = (n + chunks - 1) / chunks in
      let tasks = ref [] in
      let start = ref 0 in
      while !start < n do
        let lo = !start and hi = min n (!start + block_size) in
        tasks :=
          (fun () ->
            for i = lo to hi - 1 do
              f i
            done)
          :: !tasks;
        start := hi
      done;
      fork_join !tasks
    end

  let now () = P.Work.now ()

  let sleep d =
    if d > 0. then begin
      let tid = id () in
      Engine.callcc (fun k ->
          at (now () +. d) (fun () -> reschedule (k, tid));
          dispatch ())
    end

  let pool_procs () = !acquired

  let steals () =
    let (module Q) = !rq in
    Q.S.steals Q.q

  let steal_attempts () =
    let (module Q) = !rq in
    Q.S.steal_attempts Q.q

  let switches () = Atomic.get switch_count
end
