(** Fault-injection configuration for schedule exploration.

    Faults model the legal-but-rare behaviours of a real platform that the
    deterministic backends never produce on their own: a [try_lock] that
    fails although the lock is free (lost bus arbitration), a backoff pause
    that lasts far longer than requested (the paper's exponential-backoff
    discussion), and [acquire_proc] hitting the proc limit at the worst
    moment.  All are sound to inject — a client correct under the platform
    contract must tolerate every one of them — so any scenario failure under
    faults is a genuine bug. *)

type faults = {
  try_lock_fail_pct : int;
      (** Probability (percent, 0–100) that a platform [Lock.try_lock]
          spuriously fails even though the lock is free. *)
  backoff_boost : int;
      (** Extra yield points injected at each [Prims.pause_n] — a proc in
          backoff can be held off the lock arbitrarily long. *)
  fail_acquire_at : int option;
      (** Raise [No_More_Procs] at the n-th [acquire_proc] of the run
          (1-based), regardless of pool occupancy. *)
  fault_seed : int64;
      (** Seed for the counter-hash that decides probabilistic injections;
          keep it fixed across replays of the same failure. *)
}

let no_faults =
  {
    try_lock_fail_pct = 0;
    backoff_boost = 0;
    fail_acquire_at = None;
    fault_seed = Sched_seed.default;
  }
