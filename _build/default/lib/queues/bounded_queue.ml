type 'a t = {
  buf : 'a option array;
  mutable head : int;
  mutable size : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Bounded_queue.create";
  { buf = Array.make capacity None; head = 0; size = 0 }

let capacity q = Array.length q.buf
let length q = q.size
let is_empty q = q.size = 0
let is_full q = q.size = capacity q

let try_enq q x =
  if is_full q then false
  else begin
    q.buf.((q.head + q.size) mod capacity q) <- Some x;
    q.size <- q.size + 1;
    true
  end

let enq q x = if not (try_enq q x) then raise Queue_intf.Full

let deq q =
  if q.size = 0 then raise Queue_intf.Empty;
  match q.buf.(q.head) with
  | None -> assert false
  | Some x ->
      q.buf.(q.head) <- None;
      q.head <- (q.head + 1) mod capacity q;
      q.size <- q.size - 1;
      x

let deq_opt q = match deq q with x -> Some x | exception Queue_intf.Empty -> None
