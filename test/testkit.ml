(* Shared qcheck/alcotest glue.

   Every property-based suite in the repo routes through [to_alcotest] so
   that (a) all properties in a binary draw from one seed, (b) setting
   QCHECK_SEED=<int> in the environment replays a run exactly, and (c) a
   failing property prints the seed needed to replay it, right next to the
   counterexample, instead of burying it in the preamble. *)

let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          failwith (Printf.sprintf "QCHECK_SEED=%S is not an integer" s))
  | None ->
      Random.self_init ();
      Random.int 1_000_000_000

let to_alcotest ?speed_level test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ?speed_level
      ~rand:(Random.State.make [| qcheck_seed |])
      test
  in
  let run arg =
    try run arg
    with e ->
      Printf.eprintf "[testkit] property %S failed; replay with QCHECK_SEED=%d\n%!"
        name qcheck_seed;
      raise e
  in
  (name, speed, run)
