open Mp

module Make (Queue : Queues.Queue_intf.QUEUE) = struct
  let ready : (unit Engine.cont * int) Queue.queue = Queue.create ()
  let current_id = ref 0
  let next_id = ref 1
  let reschedule (cont, id) = Queue.enq ready (cont, id)

  let dispatch () =
    let cont, id = Queue.deq ready in
    current_id := id;
    Engine.throw cont ()

  let fork child =
    Engine.callcc (fun parent ->
        reschedule (parent, !current_id);
        current_id := !next_id;
        next_id := !next_id + 1;
        child ();
        dispatch ())

  let yield () =
    Engine.callcc (fun cont ->
        reschedule (cont, !current_id);
        dispatch ())

  let id () = !current_id
  let reschedule_thread (k, v, id) = reschedule (Kont_util.unit_cont_of k v, id)

  let reset () =
    (try
       while true do
         ignore (Queue.deq ready)
       done
     with Queue.Empty -> ());
    current_id := 0;
    next_id := 1
end
