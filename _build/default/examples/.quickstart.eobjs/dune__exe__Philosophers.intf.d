examples/philosophers.mli:
