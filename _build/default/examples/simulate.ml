(* Running a workload on the simulated Sequent Symmetry and reading the
   machine-level statistics: virtual elapsed time, collections, bus traffic
   and per-proc busy/idle breakdown.

   Run: dune exec examples/simulate.exe *)

module Sequent =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:8 ()
    end)
    ()

module Bench = Workloads.Bench_suite.Make (Sequent)

let () =
  let checksum = Bench.mm ~procs:8 () in
  let stats = Sequent.stats () in
  Printf.printf "mm on the simulated Sequent, 8 procs (checksum %d)\n" checksum;
  Printf.printf "virtual elapsed      : %.3f s\n" stats.Mp.Stats.elapsed;
  Printf.printf "collections          : %d (%.3f s, all procs stalled)\n"
    stats.Mp.Stats.gc_count stats.Mp.Stats.gc_time;
  Printf.printf "bus traffic          : %.1f MB/s (%.0f%% utilized)\n"
    (Sequent.Machine.bus_mb_per_sec ())
    (100. *. Mp.Stats.bus_utilization stats);
  Printf.printf "mean idle fraction   : %.1f%%\n"
    (100. *. Mp.Stats.idle_fraction stats);
  Array.iteri
    (fun i p ->
      Printf.printf "  proc %d: busy %.3fs idle %.3fs gc-wait %.3fs\n" i
        p.Mp.Stats.busy p.Mp.Stats.idle p.Mp.Stats.gc_wait)
    stats.Mp.Stats.per_proc
