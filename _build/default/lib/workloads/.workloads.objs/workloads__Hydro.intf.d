lib/workloads/hydro.mli:
