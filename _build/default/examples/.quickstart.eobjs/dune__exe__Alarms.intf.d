examples/alarms.mli:
