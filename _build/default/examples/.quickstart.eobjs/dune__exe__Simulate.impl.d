examples/simulate.ml: Array Mp Printf Sim Workloads
