test/test_engine.ml: Alcotest Engine Kont_util List Mp Mp_uniproc
