lib/threads/thread_intf.ml: Mp
