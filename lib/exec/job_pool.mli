(** Domain-parallel job pool for independent simulator runs.

    The sweep drivers (bench sections, fig6 cells, golden generation,
    lock-comparison sweeps) are embarrassingly parallel: every cell
    instantiates its own generative [Mp_sim] machine, so cells share no
    simulator state.  This pool fans such cells across OCaml 5 host
    domains, distributing work through the repo's own lock-free
    {!Queues.Ws_deque} (the platform dogfooding itself).

    Determinism: jobs carry their list index and results are merged back
    by index, so [map ~jobs:n f xs] returns exactly [List.map f xs] for
    every [n] — output order never depends on domain scheduling.  With
    [jobs <= 1] (the default) [f] runs inline on the calling domain,
    byte-identical to the historical sequential drivers. *)

val default_jobs : unit -> int
(** Parallelism when the caller gives no explicit [--jobs]: the
    [MP_REPRO_JOBS] environment variable when set to a positive integer,
    else 1 (sequential). *)

val resolve_jobs : int option -> int
(** [resolve_jobs explicit] is [explicit] when given (clamped to >= 1),
    else {!default_jobs}. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] = [List.map f xs], evaluating up to [jobs] elements
    concurrently on separate domains.  Exceptions propagate: the raise
    from the lowest-indexed failing job is re-raised on the caller after
    all domains join.  [f] must not assume it runs on the calling domain
    when [jobs > 1]; any domain-local state (e.g. the engine's suspension
    counter) is per-job-correct because a job runs entirely on one
    domain. *)

val counters : unit -> (string * int) list
(** Cumulative [exec.*] telemetry for this process, sorted by name:
    [exec.jobs_run] (jobs executed through the pool, inline or parallel),
    [exec.parallel_batches] (calls to [map] with [jobs > 1] and >= 2
    jobs), [exec.domains_spawned], and [exec.steals] (jobs a worker took
    from the shared deque rather than the submitting domain). *)
