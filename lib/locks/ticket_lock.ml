module Make (P : Lock_intf.PRIMS) = struct
  type mutex_lock = { next : int P.cell; serving : int P.cell }

  let holder_must_unlock = true
  let mutex_lock () = { next = P.make 0; serving = P.make 0 }

  let try_lock l =
    let s = P.get l.serving in
    P.get l.next = s && P.compare_and_set l.next s (s + 1)

  let lock l =
    let ticket = P.fetch_and_add l.next 1 in
    while P.get l.serving <> ticket do
      P.on_spin ();
      P.pause ()
    done

  let unlock l = P.set l.serving (P.get l.serving + 1)
  let locked l f = Lock_intf.locked_default ~lock ~unlock l f

end
