(** Lock-free Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005).

    Single-owner/multi-thief: only the owning proc may [push]/[pop] (LIFO
    end); any proc may [steal] (FIFO end).  Built on [Atomic] with a
    growable circular buffer; the paper-era alternative to the
    lock-protected deques of {!Multi_queue}, provided for the real-domains
    backend where lock-free stealing avoids a bus transaction per empty
    probe. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only: newest element. *)

val steal : 'a t -> 'a option
(** Any thread: oldest element; [None] when empty or a race was lost. *)

val size : 'a t -> int
(** Racy snapshot of the number of elements. *)
