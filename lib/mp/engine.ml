type action = ..

type 'a cont = {
  k : ('a, action) Effect.Deep.continuation;
  used : bool Atomic.t;
}

type action +=
  | Resume : 'a cont * 'a -> action
  | Raise : 'a cont * exn -> action
  | Start of (unit -> unit)
  | Stop

type _ Effect.t += Suspend : ('a cont -> action) -> 'a Effect.t

exception Already_resumed
exception Unhandled_action

(* Host-side instrumentation: every suspension is one effect-handler
   round-trip, the unit of cost the simulator's run-ahead fast path avoids.
   Domain-local (DLS), not atomic: an atomic would cost a fenced RMW on the
   hottest path in the system, and a shared plain ref would be corrupted by
   the parallel sweep driver running independent simulator instances on
   separate domains.  Each domain counts its own suspensions exactly, which
   is what per-run accounting needs — a simulator run never migrates
   between domains. *)
let suspension_key = Domain.DLS.new_key (fun () -> ref 0)

let suspensions () = !(Domain.DLS.get suspension_key)
let reset_suspensions () = Domain.DLS.get suspension_key := 0

let suspend f =
  incr (Domain.DLS.get suspension_key);
  Effect.perform (Suspend f)

let throw c v = suspend (fun _abandoned -> Resume (c, v))

let throw_exn c e = suspend (fun _abandoned -> Raise (c, e))

(* The body runs in a fresh fiber so that a normal return can be routed back
   to the captured continuation; a body ending in [throw]/[dispatch] simply
   abandons that fiber.  This preserves SML callcc semantics under the
   one-shot discipline. *)
let callcc f =
  suspend (fun c ->
      Start
        (fun () ->
          match f c with
          | v -> throw c v
          | exception e -> throw_exn c e))

let run_fiber ~on_exn f =
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> Stop);
      exnc = on_exn;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend f ->
              Some
                (fun (k : (a, action) Effect.Deep.continuation) ->
                  f { k; used = Atomic.make false })
          | _ -> None);
    }

let claim c = if not (Atomic.compare_and_set c.used false true) then raise Already_resumed

let resume c v =
  claim c;
  Effect.Deep.continue c.k v

let resume_exn c e =
  claim c;
  Effect.Deep.discontinue c.k e
