lib/queues/random_queue.ml: Array Queue_intf Random
