(** The scheduler-policy family: the selectable scheduling axis.

    The paper observes that "thread scheduling policy can be changed simply
    by varying the functor's argument"; this module makes the policy a
    measured axis rather than an implementation constant.  A {!t} names a
    policy; {!Make} turns it into a concrete {!Thread_intf.SCHEDULER} over
    a platform, which {!Sched_thread.with_pool} consumes via its [?sched]
    parameter.

    Policies:
    - [Fifo] — one central queue, enqueue back / dequeue front, every proc
      contending on its single lock.  The baseline stealing is measured
      against.
    - [Lifo] — one central queue, enqueue and dequeue at the front.
      Exactly the historical [~run_queue:`Central] behavior.
    - [Distributed] (default) — the pre-existing per-proc locked deques
      with rotating-scan steal-one.  Bit-identical goldens.
    - [Ws] — multiprogrammed work stealing: per-proc lock-free SPMC
      steal-half queues ({!Queues.Spmc_queue}), randomized victim
      selection from a deterministic per-proc stream, batch transfer.
      Operations are charged through {!Locks.Charged_prims}, so the
      simulator prices steal traffic on the bus.
    - [Micropools k] — procs partitioned into [k] pinned pools; work never
      migrates across pools. *)

type t = Fifo | Lifo | Distributed | Ws | Micropools of int

val default : t
(** [Distributed]. *)

val to_string : t -> string
(** ["fifo"], ["lifo"], ["distributed"], ["ws"], ["micropools:<k>"]. *)

val of_string : string -> (t, string) result
(** Parses {!to_string}'s forms (case-insensitive); also accepts
    ["default"] for [Distributed], ["steal"] for [Ws] and bare
    ["micropools"] for [Micropools 2]. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on an unknown policy name. *)

val names : string list
(** Accepted spellings, for usage strings. *)

val env_var : string
(** ["MP_REPRO_SCHED"] — the environment fallback consulted by
    {!resolve}. *)

val resolve : ?explicit:string -> unit -> t
(** Policy selection with precedence: [?explicit] (e.g. a [--sched] flag)
    beats the [MP_REPRO_SCHED] environment variable beats {!default}.
    @raise Invalid_argument on an unparsable spelling. *)

module Make (P : Mp.Mp_intf.PLATFORM_INT) : sig
  val instance : t -> (module Thread_intf.SCHEDULER)
  (** The policy's ready-queue implementation over [P]. *)
end
