lib/queues/deque.mli: Queue_intf
