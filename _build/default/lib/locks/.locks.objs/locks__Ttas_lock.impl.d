lib/locks/ttas_lock.ml: Lock_intf
