exception Empty = Queue_intf.Empty

type 'a queue = { mutable front : 'a list; mutable back : 'a list; mutable size : int }

let create () = { front = []; back = []; size = 0 }

let enq q x =
  q.back <- x :: q.back;
  q.size <- q.size + 1

let deq q =
  match q.front with
  | x :: rest ->
      q.front <- rest;
      q.size <- q.size - 1;
      x
  | [] -> (
      match List.rev q.back with
      | [] -> raise Empty
      | x :: rest ->
          q.front <- rest;
          q.back <- [];
          q.size <- q.size - 1;
          x)

let deq_opt q = match deq q with x -> Some x | exception Empty -> None
let length q = q.size
let is_empty q = q.size = 0
