open Mp

module Make
    (P : Mp.Mp_intf.PLATFORM_INT)
    (S : Mpthreads.Thread_intf.SCHED)
    (Q : Queues.Queue_intf.QUEUE_EXT) =
struct
  type 'a sndr = { skont : unit Engine.cont; sid : int; value : 'a }

  type 'a rcvr = {
    rkont : 'a Engine.cont;
    rid : int;
    committed : P.Lock.mutex_lock;
  }

  type 'a chan = {
    ch_lock : P.Lock.mutex_lock;
    sndrs : 'a sndr Q.queue;
    rcvrs : 'a rcvr Q.queue;
  }

  (* Telemetry: Blocked when a sender/receiver parks on empty channels,
     Wakeup for the peer resumed by a completed rendezvous.  Host-side
     only — never charges virtual time. *)
  let c_blocks = P.Telemetry.counter "select.blocks"
  let c_wakeups = P.Telemetry.counter "select.wakeups"

  let note_block on tid =
    Obs.Counters.incr c_blocks;
    if P.Telemetry.enabled () then
      P.Telemetry.emit
        (Obs.Event.Blocked
           {
             proc = max 0 (P.Proc.self ());
             clock = P.Telemetry.now_ts ();
             thread = tid;
             on;
           })

  let note_wakeup on tid =
    Obs.Counters.incr c_wakeups;
    if P.Telemetry.enabled () then
      P.Telemetry.emit
        (Obs.Event.Wakeup
           {
             proc = max 0 (P.Proc.self ());
             clock = P.Telemetry.now_ts ();
             thread = tid;
             on;
           })

  let rng = ref (Random.State.make [| 0x5e1ec7 |])
  let set_seed seed = rng := Random.State.make [| seed |]

  let randomize chans =
    let arr = Array.of_list chans in
    for i = Array.length arr - 1 downto 1 do
      let j = Random.State.int !rng (i + 1) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    Array.to_list arr

  let chan () =
    { ch_lock = P.Lock.mutex_lock (); sndrs = Q.create (); rcvrs = Q.create () }

  let send ({ ch_lock; sndrs; rcvrs }, v) =
    P.Lock.lock ch_lock;
    let rec loop () =
      match Q.deq rcvrs with
      | { rkont; rid; committed } ->
          if P.Lock.try_lock committed then begin
            P.Lock.unlock ch_lock;
            note_wakeup "select.send" rid;
            S.reschedule_thread (rkont, v, rid)
          end
          else loop () (* stale receiver, already served: drop and retry *)
      | exception Q.Empty ->
          Engine.callcc (fun c ->
              let sid = S.id () in
              Q.enq sndrs { skont = c; sid; value = v };
              P.Lock.unlock ch_lock;
              note_block "select.send" sid;
              S.dispatch ())
    in
    loop ()

  let receive chans =
    Engine.callcc (fun c ->
        let committed = P.Lock.mutex_lock () in
        let r = { rkont = c; rid = S.id (); committed } in
        let rec loop = function
          | [] ->
              note_block "select.receive" r.rid;
              S.dispatch ()
          | { ch_lock; sndrs; rcvrs } :: rest -> (
              P.Lock.lock ch_lock;
              match Q.deq sndrs with
              | { skont; sid; value } ->
                  if P.Lock.try_lock committed then begin
                    P.Lock.unlock ch_lock;
                    note_wakeup "select.receive" sid;
                    S.reschedule (skont, sid);
                    value
                  end
                  else begin
                    (* We were already served by some sender; put the sender
                       we just dequeued back (fix to Figure 5 as printed). *)
                    Q.enq sndrs { skont; sid; value };
                    P.Lock.unlock ch_lock;
                    S.dispatch ()
                  end
              | exception Q.Empty ->
                  Q.enq rcvrs r;
                  P.Lock.unlock ch_lock;
                  loop rest)
        in
        loop (randomize chans))

  let pending { ch_lock; sndrs; rcvrs } =
    P.Lock.lock ch_lock;
    let n = (Q.length sndrs, Q.length rcvrs) in
    P.Lock.unlock ch_lock;
    n
end
