open Mp

module Make (P : Mp.Mp_intf.PLATFORM_INT) = struct
  module MQ = Queues.Multi_queue.Make (P.Lock)

  type runnable =
    | Thunk of (unit -> unit) * int
    | Cont : 'a Engine.cont * 'a * int -> runnable

  let rq : runnable MQ.t ref = ref (MQ.create ~procs:1)
  let central = ref false
  let active = ref false
  let finished = ref false
  let acquired = ref 1
  let quantum = ref 0.02
  let next_id = Atomic.make 1
  let switch_count = Atomic.make 0
  let thread_error : exn option Atomic.t = Atomic.make None
  let last_switch = ref [||]

  (* Pending timers in a binary-heap priority queue, earliest wake time
     first (O(log n) insert instead of the old O(n) sorted-list insert;
     FIFO among equal times via the queue's sequence numbers).  Callbacks
     run in dispatch/poll context (inside a fiber), so they may take
     platform locks. *)
  module PQ = Queues.Priority_queue

  let timer_lock = P.Lock.mutex_lock ()
  let timers : (float * (unit -> unit)) PQ.queue ref = ref (PQ.create ())

  (* The queue's priority is an int, highest first: negated nanoseconds
     gives earliest-time-first.  ns resolution is finer than both the
     simulator's cycle (62.5 ns at 16 MHz) and the wall clock's microsecond,
     so distinct wake times keep distinct priorities. *)
  let timer_priority time = -(int_of_float (time *. 1e9))

  let at time callback =
    P.Lock.locked timer_lock (fun () ->
        PQ.enq !timers ~priority:(timer_priority time) (time, callback))

  (* Fire every due timer; true if any fired.  The unlocked peek matters:
     dispatch calls this on every idle iteration, and taking the lock each
     time would make the timer lock the hottest word in the system.  A racy
     peek can only mis-read in-flight state; the locked drain below
     re-checks everything. *)
  let fire_due_timers () =
    match PQ.peek_opt !timers with
    | None -> false
    | Some (t0, _) when t0 > P.Work.now () -> false
    | Some _ ->
        let now = P.Work.now () in
        let rec drain acc =
          match PQ.peek_opt !timers with
          | Some (t, _) when t <= now ->
              let _, cb = PQ.deq !timers in
              drain (cb :: acc)
          | _ -> List.rev acc
        in
        let due = P.Lock.locked timer_lock (fun () -> drain []) in
        List.iter (fun cb -> cb ()) due;
        due <> []

  let record_error e =
    ignore (Atomic.compare_and_set thread_error None (Some e))

  let id () = P.Proc.get_datum ()

  (* Telemetry: dispatch/steal events are emitted live (guarded, so the
     quiet path costs one boolean load); fork/switch/steal totals are
     folded into the counter registry at the end of [with_pool], keeping
     the hot paths free of extra atomics. *)
  let c_forks = P.Telemetry.counter "sched.forks"
  let c_switches = P.Telemetry.counter "sched.switches"
  let c_steals = P.Telemetry.counter "sched.steals"

  (* Called after a successful take when telemetry is on: a steal shows up
     as a bump of the queue's steal counter across the take. *)
  let note_run proc steals0 tid =
    let ts = P.Telemetry.now_ts () in
    if MQ.steals !rq > steals0 then
      P.Telemetry.emit (Obs.Event.Steal { proc; clock = ts });
    P.Telemetry.emit (Obs.Event.Switch { proc; clock = ts; thread = tid })

  let mark_switch proc =
    Atomic.incr switch_count;
    let arr = !last_switch in
    if proc < Array.length arr then arr.(proc) <- P.Work.now ()

  let rec dispatch () =
    let proc = P.Proc.self () in
    mark_switch proc;
    let tel = P.Telemetry.enabled () in
    let steals0 = if tel then MQ.steals !rq else 0 in
    match
      if !central then MQ.take_local !rq ~proc:0 else MQ.take !rq ~proc
    with
    | Some (Thunk (f, tid)) ->
        if tel then note_run proc steals0 tid;
        P.Proc.set_datum tid;
        (try f () with e -> record_error e);
        dispatch ()
    | Some (Cont (k, v, tid)) ->
        if tel then note_run proc steals0 tid;
        P.Proc.set_datum tid;
        Engine.throw k v
    | None ->
        if fire_due_timers () then dispatch ()
        else if !finished then P.Proc.release_proc ()
        else begin
          (* Idle until any of the conditions the loop above would act on
             can hold.  The predicate mirrors this dispatch's uncharged
             failure path read-for-read — racy deque peeks, an unlocked
             timer peek, the finished flag — and is side-effect- and
             charge-free, as [Work.idle_until] requires; a wake re-runs the
             full (charged) probes above from the same position. *)
          let rq_now = !rq in
          P.Work.idle_until ~ready:(fun () ->
              !finished
              || (match PQ.peek_opt !timers with
                 | Some (t0, _) -> t0 <= P.Work.now ()
                 | None -> false)
              ||
              if !central then MQ.looks_nonempty_local rq_now ~proc:0
              else MQ.looks_nonempty rq_now);
          dispatch ()
        end

  let enqueue r =
    MQ.push !rq ~proc:(if !central then 0 else P.Proc.self ()) r

  (* New threads are distributed round-robin across the per-proc queues (the
     distributed run queue); resumed continuations stay on the resuming
     proc's queue for affinity. *)
  let fork child =
    let tid = Atomic.fetch_and_add next_id 1 in
    if !central then MQ.push !rq ~proc:0 (Thunk (child, tid))
    else MQ.push_global !rq (Thunk (child, tid));
    if P.Telemetry.enabled () then begin
      let proc = max 0 (P.Proc.self ()) in
      let ts = P.Telemetry.now_ts () in
      P.Telemetry.emit (Obs.Event.Fork { proc; clock = ts; thread = tid });
      (* Sample run-queue pressure where it changes: at thread creation. *)
      P.Telemetry.emit
        (Obs.Event.Queue_depth
           { proc; clock = ts; depth = MQ.total_length !rq })
    end

  let yield () =
    Engine.callcc (fun cont ->
        enqueue (Cont (cont, (), id ()));
        dispatch ())

  let block register =
    Engine.callcc (fun k ->
        register k;
        dispatch ())

  let reschedule (cont, tid) = enqueue (Cont (cont, (), tid))
  let reschedule_thread (k, v, tid) = enqueue (Cont (k, v, tid))

  (* Timer-driven polling preemption (paper §3.4): at every safe point, if
     the running thread has exceeded its quantum, force a yield. *)
  let poll_check () =
    if !active then begin
      ignore (fire_due_timers ());
      let proc = P.Proc.self () in
      let arr = !last_switch in
      if proc >= 0 && proc < Array.length arr then
        if P.Work.now () -. arr.(proc) > !quantum then yield ()
    end

  let worker_cont () =
    Kont_util.cont_of_thunk ~on_return:P.Proc.release_proc (fun () ->
        dispatch ())

  let with_pool ?procs ?quantum:(q = 0.02) ?(run_queue = `Distributed) f =
    if !active then invalid_arg "Sched_thread.with_pool: not reentrant";
    central := run_queue = `Central;
    let max_procs = P.Proc.max_procs () in
    let want = match procs with None -> max_procs | Some p -> max 1 p in
    rq := MQ.create ~procs:max_procs;
    active := true;
    finished := false;
    acquired := 1;
    Atomic.set next_id 1;
    Atomic.set switch_count 0;
    Atomic.set thread_error None;
    timers := PQ.create ();
    last_switch := Array.make max_procs (P.Work.now ());
    quantum := q;
    P.Work.set_poll_hook poll_check;
    (try
       while !acquired < want do
         P.Proc.acquire_proc (P.Proc.PS (worker_cont (), 0));
         incr acquired
       done
     with Mp_intf.No_More_Procs -> ());
    let result = try Ok (f ()) with e -> Error e in
    finished := true;
    active := false;
    P.Work.set_poll_hook (fun () -> ());
    Obs.Counters.set c_forks (Atomic.get next_id - 1);
    Obs.Counters.set c_switches (Atomic.get switch_count);
    Obs.Counters.set c_steals (MQ.steals !rq);
    match (result, Atomic.get thread_error) with
    | Ok v, None -> v
    | Ok _, Some e -> raise e
    | Error e, _ -> raise e

  let fork_join fns =
    match fns with
    | [] -> ()
    | fns ->
        let n = List.length fns in
        let lock = P.Lock.mutex_lock () in
        let remaining = ref n in
        let waiter : (unit Engine.cont * int) option ref = ref None in
        let wrap f () =
          (try f () with e -> record_error e);
          let w =
            P.Lock.locked lock (fun () ->
                decr remaining;
                let w = if !remaining = 0 then !waiter else None in
                if w <> None then waiter := None;
                w)
          in
          match w with
          | Some (k, tid) -> reschedule (k, tid)
          | None -> ()
        in
        List.iter (fun f -> fork (wrap f)) fns;
        let my_tid = id () in
        Engine.callcc (fun k ->
            let zero =
              P.Lock.locked lock (fun () ->
                  if !remaining = 0 then true
                  else begin
                    waiter := Some (k, my_tid);
                    false
                  end)
            in
            if zero then Engine.throw k () else dispatch ())

  let par_iter ?chunks n f =
    if n > 0 then begin
      let chunks =
        match chunks with
        | Some c -> max 1 (min c n)
        | None -> max 1 (min (4 * P.Proc.max_procs ()) n)
      in
      let block_size = (n + chunks - 1) / chunks in
      let tasks = ref [] in
      let start = ref 0 in
      while !start < n do
        let lo = !start and hi = min n (!start + block_size) in
        tasks :=
          (fun () ->
            for i = lo to hi - 1 do
              f i
            done)
          :: !tasks;
        start := hi
      done;
      fork_join !tasks
    end

  let now () = P.Work.now ()

  let sleep d =
    if d > 0. then begin
      let tid = id () in
      Engine.callcc (fun k ->
          at (now () +. d) (fun () -> reschedule (k, tid));
          dispatch ())
    end

  let pool_procs () = !acquired
  let steals () = MQ.steals !rq
  let switches () = Atomic.get switch_count
end
