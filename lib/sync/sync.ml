open Mp

module Make (P : Mp.Mp_intf.PLATFORM_INT) (S : Mpthreads.Thread_intf.SCHED) =
struct
  (* Telemetry: one Blocked/Wakeup event per park/unpark, tagged with the
     construct that parked the thread.  Counters total them even while
     event emission is off; both are host-side only, so they never perturb
     virtual time.  Emission sites sit after the construct's spin lock is
     released. *)
  let c_blocks = P.Telemetry.counter "sync.blocks"
  let c_wakeups = P.Telemetry.counter "sync.wakeups"

  let note_block on tid =
    Obs.Counters.incr c_blocks;
    if P.Telemetry.enabled () then
      P.Telemetry.emit
        (Obs.Event.Blocked
           {
             proc = max 0 (P.Proc.self ());
             clock = P.Telemetry.now_ts ();
             thread = tid;
             on;
           })

  let note_wakeup on tid =
    Obs.Counters.incr c_wakeups;
    if P.Telemetry.enabled () then
      P.Telemetry.emit
        (Obs.Event.Wakeup
           {
             proc = max 0 (P.Proc.self ());
             clock = P.Telemetry.now_ts ();
             thread = tid;
             on;
           })

  let wake on ((_, tid) as w) =
    note_wakeup on tid;
    S.reschedule w

  module Ivar = struct
    type 'a t = {
      spin : P.Lock.mutex_lock;
      mutable value : 'a option;
      mutable readers : ('a Engine.cont * int) list;
    }

    exception Already_filled

    let create () = { spin = P.Lock.mutex_lock (); value = None; readers = [] }

    let fill t v =
      P.Lock.lock t.spin;
      match t.value with
      | Some _ ->
          P.Lock.unlock t.spin;
          raise Already_filled
      | None ->
          t.value <- Some v;
          let readers = t.readers in
          t.readers <- [];
          P.Lock.unlock t.spin;
          List.iter
            (fun (k, tid) ->
              note_wakeup "sync.ivar" tid;
              S.reschedule_thread (k, v, tid))
            readers

    let read t =
      Engine.callcc (fun k ->
          P.Lock.lock t.spin;
          match t.value with
          | Some v ->
              P.Lock.unlock t.spin;
              Engine.throw k v
          | None ->
              let tid = S.id () in
              t.readers <- (k, tid) :: t.readers;
              P.Lock.unlock t.spin;
              note_block "sync.ivar" tid;
              S.dispatch ())

    let poll t =
      P.Lock.lock t.spin;
      let v = t.value in
      P.Lock.unlock t.spin;
      v
  end

  module Mvar = struct
    type 'a t = {
      spin : P.Lock.mutex_lock;
      mutable value : 'a option;
      takers : ('a Engine.cont * int) Queues.Fifo_queue.queue;
      (* A blocked putter: its value and its parked continuation. *)
      putters : ('a * (unit Engine.cont * int)) Queues.Fifo_queue.queue;
    }

    let create () =
      {
        spin = P.Lock.mutex_lock ();
        value = None;
        takers = Queues.Fifo_queue.create ();
        putters = Queues.Fifo_queue.create ();
      }

    let put t v =
      Engine.callcc (fun k ->
          P.Lock.lock t.spin;
          match Queues.Fifo_queue.deq_opt t.takers with
          | Some (taker, tid) ->
              P.Lock.unlock t.spin;
              note_wakeup "sync.mvar" tid;
              S.reschedule_thread (taker, v, tid);
              Engine.throw k ()
          | None ->
              if t.value = None then begin
                t.value <- Some v;
                P.Lock.unlock t.spin;
                Engine.throw k ()
              end
              else begin
                let tid = S.id () in
                Queues.Fifo_queue.enq t.putters (v, (k, tid));
                P.Lock.unlock t.spin;
                note_block "sync.mvar" tid;
                S.dispatch ()
              end)

    let take t =
      Engine.callcc (fun k ->
          P.Lock.lock t.spin;
          match t.value with
          | Some v ->
              (* Refill from a blocked putter, if any. *)
              (match Queues.Fifo_queue.deq_opt t.putters with
              | Some (pv, putter) ->
                  t.value <- Some pv;
                  P.Lock.unlock t.spin;
                  wake "sync.mvar" putter
              | None ->
                  t.value <- None;
                  P.Lock.unlock t.spin);
              Engine.throw k v
          | None ->
              let tid = S.id () in
              Queues.Fifo_queue.enq t.takers (k, tid);
              P.Lock.unlock t.spin;
              note_block "sync.mvar" tid;
              S.dispatch ())

    let try_take t =
      P.Lock.lock t.spin;
      match t.value with
      | Some v ->
          (match Queues.Fifo_queue.deq_opt t.putters with
          | Some (pv, putter) ->
              t.value <- Some pv;
              P.Lock.unlock t.spin;
              wake "sync.mvar" putter
          | None ->
              t.value <- None;
              P.Lock.unlock t.spin);
          Some v
      | None ->
          P.Lock.unlock t.spin;
          None
  end

  module Semaphore = struct
    type t = {
      spin : P.Lock.mutex_lock;
      mutable count : int;
      waiters : (unit Engine.cont * int) Queues.Fifo_queue.queue;
    }

    let create n =
      if n < 0 then invalid_arg "Semaphore.create";
      {
        spin = P.Lock.mutex_lock ();
        count = n;
        waiters = Queues.Fifo_queue.create ();
      }

    let acquire t =
      Engine.callcc (fun k ->
          P.Lock.lock t.spin;
          if t.count > 0 then begin
            t.count <- t.count - 1;
            P.Lock.unlock t.spin;
            Engine.throw k ()
          end
          else begin
            let tid = S.id () in
            Queues.Fifo_queue.enq t.waiters (k, tid);
            P.Lock.unlock t.spin;
            note_block "sync.semaphore" tid;
            S.dispatch ()
          end)

    let try_acquire t =
      P.Lock.lock t.spin;
      let ok = t.count > 0 in
      if ok then t.count <- t.count - 1;
      P.Lock.unlock t.spin;
      ok

    let release t =
      P.Lock.lock t.spin;
      match Queues.Fifo_queue.deq_opt t.waiters with
      | Some w ->
          (* Hand the permit directly to the next waiter. *)
          P.Lock.unlock t.spin;
          wake "sync.semaphore" w
      | None ->
          t.count <- t.count + 1;
          P.Lock.unlock t.spin

    let value t =
      P.Lock.lock t.spin;
      let v = t.count in
      P.Lock.unlock t.spin;
      v
  end

  module Rwlock = struct
    type t = {
      spin : P.Lock.mutex_lock;
      mutable readers : int; (* active readers *)
      mutable writing : bool;
      mutable waiting_writers : int;
      wait_readers : (unit Engine.cont * int) Queues.Fifo_queue.queue;
      wait_writers : (unit Engine.cont * int) Queues.Fifo_queue.queue;
    }

    let create () =
      {
        spin = P.Lock.mutex_lock ();
        readers = 0;
        writing = false;
        waiting_writers = 0;
        wait_readers = Queues.Fifo_queue.create ();
        wait_writers = Queues.Fifo_queue.create ();
      }

    let read_lock t =
      Engine.callcc (fun k ->
          P.Lock.lock t.spin;
          if (not t.writing) && t.waiting_writers = 0 then begin
            t.readers <- t.readers + 1;
            P.Lock.unlock t.spin;
            Engine.throw k ()
          end
          else begin
            let tid = S.id () in
            Queues.Fifo_queue.enq t.wait_readers (k, tid);
            P.Lock.unlock t.spin;
            note_block "sync.rwlock" tid;
            S.dispatch ()
          end)

    (* Called with the spin lock held; wakes whoever may proceed. *)
    let promote t =
      if (not t.writing) && t.readers = 0 then
        match Queues.Fifo_queue.deq_opt t.wait_writers with
        | Some w ->
            t.waiting_writers <- t.waiting_writers - 1;
            t.writing <- true;
            P.Lock.unlock t.spin;
            wake "sync.rwlock" w
        | None ->
            let rec wake acc =
              match Queues.Fifo_queue.deq_opt t.wait_readers with
              | Some w ->
                  t.readers <- t.readers + 1;
                  wake (w :: acc)
              | None -> acc
            in
            let ws = wake [] in
            P.Lock.unlock t.spin;
            List.iter (fun ((_, tid) as w) ->
                note_wakeup "sync.rwlock" tid;
                S.reschedule w)
              ws
      else P.Lock.unlock t.spin

    let read_unlock t =
      P.Lock.lock t.spin;
      if t.readers <= 0 then begin
        P.Lock.unlock t.spin;
        invalid_arg "Rwlock.read_unlock: no active reader"
      end
      else begin
        t.readers <- t.readers - 1;
        promote t
      end

    let write_lock t =
      Engine.callcc (fun k ->
          P.Lock.lock t.spin;
          if (not t.writing) && t.readers = 0 then begin
            t.writing <- true;
            P.Lock.unlock t.spin;
            Engine.throw k ()
          end
          else begin
            let tid = S.id () in
            t.waiting_writers <- t.waiting_writers + 1;
            Queues.Fifo_queue.enq t.wait_writers (k, tid);
            P.Lock.unlock t.spin;
            note_block "sync.rwlock" tid;
            S.dispatch ()
          end)

    let write_unlock t =
      P.Lock.lock t.spin;
      if not t.writing then begin
        P.Lock.unlock t.spin;
        invalid_arg "Rwlock.write_unlock: not write-locked"
      end
      else begin
        t.writing <- false;
        promote t
      end

    let with_read t f =
      read_lock t;
      match f () with
      | v ->
          read_unlock t;
          v
      | exception e ->
          read_unlock t;
          raise e

    let with_write t f =
      write_lock t;
      match f () with
      | v ->
          write_unlock t;
          v
      | exception e ->
          write_unlock t;
          raise e
  end

  module Barrier = struct
    type t = {
      spin : P.Lock.mutex_lock;
      parties : int;
      mutable arrived : int;
      mutable waiters : (unit Engine.cont * int) list;
    }

    let create ~parties =
      if parties <= 0 then invalid_arg "Barrier.create";
      { spin = P.Lock.mutex_lock (); parties; arrived = 0; waiters = [] }

    let await t =
      Engine.callcc (fun k ->
          P.Lock.lock t.spin;
          let index = t.arrived in
          t.arrived <- t.arrived + 1;
          if t.arrived = t.parties then begin
            let ws = t.waiters in
            t.waiters <- [];
            t.arrived <- 0;
            P.Lock.unlock t.spin;
            List.iter (wake "sync.barrier") ws;
            Engine.throw k index
          end
          else begin
            let tid = S.id () in
            t.waiters <- (Kont_util.unit_cont_of k index, tid) :: t.waiters;
            P.Lock.unlock t.spin;
            note_block "sync.barrier" tid;
            S.dispatch ()
          end)
  end

  (* Multilisp-style futures (the paper's §7 comparison point): a future is
     a forked thread plus a write-once result cell. *)
  module Future = struct
    type 'a t = { cell : 'a Ivar.t; mutable sparked : bool }

    let spawn f =
      let cell = Ivar.create () in
      S.fork (fun () -> Ivar.fill cell (f ()));
      { cell; sparked = true }

    let of_value v =
      let cell = Ivar.create () in
      Ivar.fill cell v;
      { cell; sparked = false }

    let touch t = Ivar.read t.cell
    let poll t = Ivar.poll t.cell

    let map f t =
      let cell = Ivar.create () in
      S.fork (fun () -> Ivar.fill cell (f (Ivar.read t.cell)));
      { cell; sparked = true }
  end

  module Countdown = struct
    type t = {
      spin : P.Lock.mutex_lock;
      mutable count : int;
      mutable waiters : (unit Engine.cont * int) list;
    }

    let create n =
      if n < 0 then invalid_arg "Countdown.create";
      { spin = P.Lock.mutex_lock (); count = n; waiters = [] }

    let count_down t =
      P.Lock.lock t.spin;
      if t.count > 0 then t.count <- t.count - 1;
      let ws = if t.count = 0 then t.waiters else [] in
      if t.count = 0 then t.waiters <- [];
      P.Lock.unlock t.spin;
      List.iter (wake "sync.countdown") ws

    let await t =
      Engine.callcc (fun k ->
          P.Lock.lock t.spin;
          if t.count = 0 then begin
            P.Lock.unlock t.spin;
            Engine.throw k ()
          end
          else begin
            let tid = S.id () in
            t.waiters <- (k, tid) :: t.waiters;
            P.Lock.unlock t.spin;
            note_block "sync.countdown" tid;
            S.dispatch ()
          end)

    let remaining t =
      P.Lock.lock t.spin;
      let n = t.count in
      P.Lock.unlock t.spin;
      n
  end
end
