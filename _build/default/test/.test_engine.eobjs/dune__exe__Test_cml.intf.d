test/test_cml.mli:
