lib/workloads/bitonic.ml: Array
