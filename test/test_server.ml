(* Open-loop server workload: golden determinism cells on the simulator,
   latency-tail ordering, the pure generators, and qcheck properties of the
   log-bucketed histogram it reports through.

   The GOLDEN table is produced by bench/server_golden.exe — regenerate
   with `dune exec bench/server_golden.exe` when the pinned default config
   changes, and never update it to absorb a virtual-time change without
   understanding why the change is correct. *)

let check = Alcotest.(check int)

(* ---------------- golden determinism cells ---------------- *)

let digest (sched, procs) =
  let module M =
    Sim.Mp_sim.Int (struct
        let config =
          Sim.Sim_config.sequent ~procs:16
            ~sched:(Mpthreads.Sched_policy.to_string sched) ()
      end)
      ()
  in
  let module S = Workloads.Server.Make (M) in
  let r = S.run ~procs ~sched Workloads.Server.default in
  Printf.sprintf
    "GOLDEN server sched=%-12s procs=%-2d count=%d sum=%d p50=%d p95=%d \
     p99=%d p999=%d elapsed=%.9f tput=%.3f qwait=%.9f"
    (Mpthreads.Sched_policy.to_string sched)
    procs
    (Obs.Histogram.count r.Workloads.Server.hist)
    (Obs.Histogram.sum r.Workloads.Server.hist)
    r.Workloads.Server.p50 r.Workloads.Server.p95 r.Workloads.Server.p99
    r.Workloads.Server.p999 r.Workloads.Server.elapsed
    r.Workloads.Server.throughput r.Workloads.Server.queue_wait

let golden =
  Mpthreads.Sched_policy.
    [
      ( (Fifo, 1),
        "GOLDEN server sched=fifo         procs=1  count=2000 \
         sum=7589691914335 p50=3758096383 p95=7247757311 p99=7516192767 \
         p999=7528816350 elapsed=15.561608000 tput=128.521 \
         qwait=0.000000000" );
      ( (Fifo, 4),
        "GOLDEN server sched=fifo         procs=4  count=2000 \
         sum=33292164956 p50=12058623 p95=52428799 p99=75497471 \
         p999=96468991 elapsed=8.063353062 tput=248.036 qwait=0.000000000" );
      ( (Fifo, 16),
        "GOLDEN server sched=fifo         procs=16 count=2000 \
         sum=33086515985 p50=11534335 p95=50331647 p99=75497471 \
         p999=96468991 elapsed=8.063823313 tput=248.021 qwait=0.000000000" );
      ( (Distributed, 1),
        "GOLDEN server sched=distributed  procs=1  count=2000 \
         sum=7518810880209 p50=3892314111 p95=7516192767 p99=7784628223 \
         p999=7821084695 elapsed=15.458695375 tput=129.377 \
         qwait=12.097736375" );
      ( (Distributed, 4),
        "GOLDEN server sched=distributed  procs=4  count=2000 \
         sum=33356378731 p50=11534335 p95=52428799 p99=75497471 \
         p999=96468991 elapsed=8.063111062 tput=248.043 qwait=0.000000000" );
      ( (Distributed, 16),
        "GOLDEN server sched=distributed  procs=16 count=2000 \
         sum=32508325731 p50=11534335 p95=50331647 p99=71303167 \
         p999=96468991 elapsed=8.063249500 tput=248.039 qwait=0.000000000" );
      ( (Ws, 1),
        "GOLDEN server sched=ws           procs=1  count=2000 \
         sum=7113112038035 p50=3623878655 p95=6979321855 p99=6979321855 \
         p999=7052951600 elapsed=15.085442312 tput=132.578 \
         qwait=0.000000000" );
      ( (Ws, 4),
        "GOLDEN server sched=ws           procs=4  count=2000 \
         sum=32160219338 p50=11010047 p95=50331647 p99=71303167 \
         p999=96468991 elapsed=8.062623625 tput=248.058 qwait=0.000000000" );
      ( (Ws, 16),
        "GOLDEN server sched=ws           procs=16 count=2000 \
         sum=31433743938 p50=11010047 p95=48234495 p99=71303167 \
         p999=92274687 elapsed=8.062611375 tput=248.059 qwait=0.000000000" );
    ]

let golden_case cell expected () =
  Alcotest.(check string) "server golden digest" expected (digest cell)

(* Same seed, fresh machine instance: the virtual-time histogram is
   bit-identical run-to-run (determinism, not just stability of a single
   instance's state). *)
let test_rerun_identical () =
  let cell = (Mpthreads.Sched_policy.Distributed, 4) in
  Alcotest.(check string) "rerun digest" (digest cell) (digest cell)

(* The acceptance exhibit: work stealing beats the central FIFO queue on
   the p99 tail at full machine width. *)
let test_ws_tail_beats_fifo () =
  let p99 sched =
    let module M =
      Sim.Mp_sim.Int (struct
          let config =
            Sim.Sim_config.sequent ~procs:16
              ~sched:(Mpthreads.Sched_policy.to_string sched) ()
        end)
        ()
    in
    let module S = Workloads.Server.Make (M) in
    (S.run ~procs:16 ~sched Workloads.Server.default).Workloads.Server.p99
  in
  let fifo = p99 Mpthreads.Sched_policy.Fifo in
  let ws = p99 Mpthreads.Sched_policy.Ws in
  if ws >= fifo then
    Alcotest.failf "ws p99 %d not below central fifo p99 %d at 16 procs" ws
      fifo

(* ---------------- pure generators ---------------- *)

let test_arrivals_pure_ascending () =
  let cfg = Workloads.Server.default in
  let a = Workloads.Server.arrivals cfg in
  let b = Workloads.Server.arrivals cfg in
  check "length" cfg.Workloads.Server.requests (Array.length a);
  Alcotest.(check bool) "pure" true (a = b);
  Array.iteri
    (fun i t ->
      if i > 0 && t < a.(i - 1) then
        Alcotest.failf "arrivals not ascending at %d" i;
      if not (Float.is_finite t) || t < 0. then
        Alcotest.failf "bad arrival %f at %d" t i)
    a

let test_arrivals_burst_when_rate_unbounded () =
  let cfg = { Workloads.Server.default with rate = infinity } in
  Array.iter
    (fun t -> Alcotest.(check (float 0.)) "burst at 0" 0. t)
    (Workloads.Server.arrivals cfg);
  let cfg0 = { Workloads.Server.default with rate = 0. } in
  Array.iter
    (fun t -> Alcotest.(check (float 0.)) "burst at 0" 0. t)
    (Workloads.Server.arrivals cfg0)

let test_bursty_same_mean_scale () =
  (* the MMPP keeps the same long-run offered load within a factor ~2 of
     Poisson (it alternates rate*f and rate/f) *)
  let n = 20_000 in
  let p = { Workloads.Server.default with requests = n } in
  let b =
    {
      p with
      Workloads.Server.arrival =
        Workloads.Server.Bursty { factor = 4.; p_switch = 0.05 };
    }
  in
  let last cfg =
    let a = Workloads.Server.arrivals cfg in
    a.(n - 1)
  in
  let ratio = last b /. last p in
  if ratio < 0.3 || ratio > 3.0 then
    Alcotest.failf "bursty span off Poisson by %fx" ratio

let test_shard_service_pure_bounded () =
  let cfg = Workloads.Server.default in
  for id = 0 to 999 do
    let s = Workloads.Server.shard_of cfg id in
    if s < 0 || s >= cfg.Workloads.Server.shards then
      Alcotest.failf "shard %d out of range" s;
    let w = Workloads.Server.service_instrs cfg id in
    check "pure service" w (Workloads.Server.service_instrs cfg id);
    if w < 16 then Alcotest.failf "service %d below clamp" w
  done

(* ---------------- histogram properties (qcheck) ---------------- *)

let hist_of values =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.add h) values;
  h

let hdigest h =
  ( Obs.Histogram.count h,
    Obs.Histogram.sum h,
    Obs.Histogram.min_value h,
    Obs.Histogram.max_value h,
    Obs.Histogram.nonzero_buckets h )

let value = QCheck.(oneof [ int_bound 100; int_bound 1_000_000_000 ])

let prop_merge_commutative =
  QCheck.Test.make ~name:"histogram merge commutes" ~count:300
    QCheck.(pair (list value) (list value))
    (fun (a, b) ->
      let ha = hist_of a and hb = hist_of b in
      hdigest (Obs.Histogram.merge ha hb) = hdigest (Obs.Histogram.merge hb ha))

let prop_merge_associative =
  QCheck.Test.make ~name:"histogram merge associates" ~count:300
    QCheck.(triple (list value) (list value) (list value))
    (fun (a, b, c) ->
      let ha = hist_of a and hb = hist_of b and hc = hist_of c in
      let open Obs.Histogram in
      hdigest (merge (merge ha hb) hc) = hdigest (merge ha (merge hb hc)))

let prop_merge_is_concat =
  QCheck.Test.make ~name:"merge a b = histogram of a @ b" ~count:300
    QCheck.(pair (list value) (list value))
    (fun (a, b) ->
      hdigest (Obs.Histogram.merge (hist_of a) (hist_of b))
      = hdigest (hist_of (a @ b)))

(* rank-⌈q·n⌉ order statistic (1-based), the thing quantile_bounds brackets *)
let exact_quantile values q =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
  List.nth sorted (rank - 1)

let prop_quantile_brackets =
  QCheck.Test.make ~name:"quantile_bounds bracket the exact order statistic"
    ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 200) value) (float_range 0. 1.))
    (fun (values, q) ->
      let values = List.map abs values in
      let h = hist_of values in
      let lo, hi = Obs.Histogram.quantile_bounds h q in
      let exact = exact_quantile values q in
      lo <= exact && exact <= hi && Obs.Histogram.quantile h q = hi)

let prop_quantile_error_bound =
  QCheck.Test.make ~name:"quantile overestimates by at most one bucket width"
    ~count:300
    QCheck.(list_of_size Gen.(1 -- 200) value)
    (fun values ->
      let values = List.map abs values in
      let h = hist_of values in
      List.for_all
        (fun q ->
          let exact = exact_quantile values q in
          let est = Obs.Histogram.quantile h q in
          float_of_int (est - exact)
          <= (float_of_int exact /. float_of_int Obs.Histogram.sub) +. 1.)
        [ 0.5; 0.95; 0.99; 0.999 ])

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "server"
    [
      ( "goldens",
        List.map
          (fun ((sched, procs), expected) ->
            Alcotest.test_case
              (Printf.sprintf "%s@%d"
                 (Mpthreads.Sched_policy.to_string sched)
                 procs)
              `Quick
              (golden_case (sched, procs) expected))
          golden );
      ( "determinism",
        [ Alcotest.test_case "rerun identical" `Quick test_rerun_identical ] );
      ( "tails",
        [
          Alcotest.test_case "ws p99 < fifo p99 at 16 procs" `Quick
            test_ws_tail_beats_fifo;
        ] );
      ( "generators",
        [
          Alcotest.test_case "arrivals pure + ascending" `Quick
            test_arrivals_pure_ascending;
          Alcotest.test_case "unbounded rate = closed burst" `Quick
            test_arrivals_burst_when_rate_unbounded;
          Alcotest.test_case "bursty spans like poisson" `Quick
            test_bursty_same_mean_scale;
          Alcotest.test_case "shard/service pure + bounded" `Quick
            test_shard_service_pure_bounded;
        ] );
      ( "histogram",
        [
          qt prop_merge_commutative;
          qt prop_merge_associative;
          qt prop_merge_is_concat;
          qt prop_quantile_brackets;
          qt prop_quantile_error_bound;
        ] );
    ]
