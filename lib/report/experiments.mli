(** Experiment drivers: everything needed to regenerate the paper's
    evaluation (see DESIGN.md's per-experiment index E1–E7).

    The sweeps run the five Figure-6 benchmarks plus [seq] on the simulated
    Sequent Symmetry (and the SGI model for E7), collect per-run statistics,
    and verify every parallel result against the sequential reference
    implementations. *)

type sample = {
  machine : string;
      (** machine name: "sequent", "sgi", or a "numa:<nodes>x<procs>" *)
  sched : string;  (** scheduling policy the cell ran under *)
  bench : string;
  procs : int;
  elapsed : float;  (** virtual seconds *)
  gc : float;
  gc_count : int;
  idle : float;  (** mean idle fraction *)
  bus_mb : float;  (** bus traffic MB/s *)
  bus_util : float;
  spins : int;
  alloc_words : int;
  checksum : int;
  verified : bool;  (** checksum matches the sequential reference *)
}

val default_procs : int list
(** 1, 2, 4, 6, 8, 10, 12, 14, 16 — Figure 6's x axis. *)

val sequent_sweep :
  ?plist:int list -> ?jobs:int -> ?sched:string -> unit -> sample list
(** Full sweep on the 16-processor Sequent model (cached per policy after
    first call).

    [sched] is the scheduling policy for every pool in the sweep, in
    {!Mpthreads.Sched_policy.of_string} syntax; default ["distributed"].
    Traced sweeps (a sink attached via {!trace_sequent}) always run on the
    shared default-policy machine.

    [jobs] fans the grid's (bench, procs) cells across that many host
    domains via {!Exec.Job_pool} — every cell runs on a private machine
    instance and results are merged back in grid order, so the returned
    samples (and all output rendered from them) are identical for every
    [jobs] value.  Defaults to [MP_REPRO_JOBS] or 1.  When a trace sink is
    attached (see {!trace_sequent}) the sweep runs sequentially on the
    shared traced machine regardless of [jobs]. *)

val sgi_sweep :
  ?plist:int list -> ?jobs:int -> ?sched:string -> unit -> sample list
(** Sweep on the 8-processor SGI model (cached); [jobs] and [sched] as in
    {!sequent_sweep}. *)

val machine_sweep :
  ?plist:int list ->
  ?jobs:int ->
  ?sched:string ->
  machine:string ->
  unit ->
  sample list
(** Sweep on any {!Sim.Sim_config.of_machine_string} selector (["sequent"],
    ["sgi"], ["numa:<nodes>x<procs>"], ["numa1024"]); cached per
    (machine, sched).  Machines larger than 16 procs default to the
    powers-of-four proc list [1; 4; 16; 64; 256; 1024] clamped to the
    machine size; [jobs] and [sched] as in {!sequent_sweep}. *)

val trace_sequent : string -> (unit -> 'a) -> 'a
(** [trace_sequent path f] runs [f] with the Sequent platform's telemetry
    streaming to [path] as JSONL, one event per line; flushes and detaches
    the sink on the way out (even on exceptions). *)

val speedup : sample list -> bench:string -> procs:int -> float
(** Self-relative speedup vs the 1-proc sample of the same benchmark. *)

val speedup_no_gc : sample list -> bench:string -> procs:int -> float
(** Speedup with collection time excluded from both runs (E6). *)

(* Section printers (E-numbers from DESIGN.md). *)

val print_fig6 : Format.formatter -> sample list -> unit
val print_idle : Format.formatter -> sample list -> unit
val print_bus : Format.formatter -> sample list -> unit
val print_gc_ablation : Format.formatter -> sample list -> unit
val print_lock_latency : Format.formatter -> unit
val print_portability : Format.formatter -> unit
val print_sgi : Format.formatter -> sample list -> unit
