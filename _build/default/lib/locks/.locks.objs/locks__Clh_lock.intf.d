lib/locks/clh_lock.mli: Lock_intf
