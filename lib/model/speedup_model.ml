type params = {
  work : float;
  serial : float;
  gc : float;
  bus_seconds : float;
  max_par : float;
}

type topology = {
  nodes : int;
  procs_per_node : int;
  link_seconds : float;
}

let flat = { nodes = 1; procs_per_node = max_int; link_seconds = 0. }

let nodes_active topo ~procs =
  if topo.nodes <= 1 || procs <= 0 then 1
  else
    min topo.nodes ((procs + topo.procs_per_node - 1) / topo.procs_per_node)

let time ?(topology = flat) p ~procs =
  let par = min (float_of_int procs) p.max_par in
  let cpu = (p.work /. par) +. p.serial +. p.gc in
  let active = nodes_active topology ~procs in
  (* The run's traffic spreads over the node buses actually in use; once a
     second node joins, the shared link's occupancy becomes a floor of its
     own.  One active node reduces to the flat-bus bound. *)
  let bus = p.bus_seconds /. float_of_int active in
  let link = if active > 1 then topology.link_seconds else 0. in
  max cpu (max bus link)

let speedup ?(topology = flat) p ~procs =
  time ~topology p ~procs:1 /. time ~topology p ~procs

let fit ~elapsed1 ~gc1 ~bus_busy1 ?(serial = 0.) ?(max_par = infinity) () =
  {
    work = max 0. (elapsed1 -. gc1 -. serial);
    serial;
    gc = gc1;
    bus_seconds = bus_busy1;
    max_par;
  }
