examples/alarms.ml: Atomic List Mp Mpthreads Printf Sim
