(** Dynamic partial order reduction and the parallel frontier driver.

    The exploration platform ({!Mp_check}) records one {!step} per
    decision; this module turns completed runs into the minimal set of
    alternatives worth exploring (happens-before race reversals, with
    sleep sets suppressing commuted duplicates) and drives the frontier
    in fixed-size waves over {!Exec.Job_pool} so the result — counts,
    counterexample, shrink — is byte-identical for any [--jobs].

    The dependence relation lives in {!Check_intf.depends}; the platform
    side of the contract (how ops are labelled with objects and access
    kinds, how the in-run sleep set redirects and prunes) lives in
    [Mp_check].  Combining DPOR with a preemption bound is an
    under-approximation in theory (a sleeping proc may only reach some
    bug within budget from the pruned branch); the bound-2
    DPOR-vs-full-DFS equivalence suite in [test_check] is the empirical
    guard. *)

(** One recorded decision of a run. *)
type step = {
  s_proc : int;
  s_label : string;
  s_obj : int;
  s_access : Check_intf.access;
  s_choices : int array;
  s_stutter : bool;
  s_preempts_before : int;
  s_prev : int;
  s_prev_continuable : bool;
  s_sleep : int;
}

type outcome =
  | Ok_run
  | Truncated_run
  | Sleep_blocked_run
  | Failed_run of exn

type run_result = { outcome : outcome; steps : step array }

(** Instance-independent execution handle; build one per domain with
    [Mp_check.S.Explore.runner] so worker domains never share platform
    state. *)
type runner = {
  nprocs : int;
  run_prefix :
    prefix:int array -> split:int -> alt:int -> sleep0:int -> run_result;
  shrink : exn -> int list -> exn * int list * Obs.Event.t list;
}

type result = {
  r_schedules : int;
  r_pruned : int;
  r_truncated : int;
  r_capped : bool;
  r_frontier_peak : int;
  r_failure : (exn * int list * Obs.Event.t list) option;
}

val races : nprocs:int -> step array -> (int * int) list
(** Dependent, happens-before-unordered pairs [(i, j)], [i < j], in a
    deterministic order.  Exposed for the cross-check tests. *)

val explore :
  ?batch:int ->
  make_runner:(unit -> runner) ->
  jobs:int ->
  bound:int ->
  max_schedules:int ->
  stop:(unit -> bool) ->
  unit ->
  result
(** Race-directed exploration from the empty schedule.  [make_runner] is
    called once per participating domain (through [Domain.DLS]); [batch]
    (default 32) is the wave size and is deliberately independent of
    [jobs] so the explored set never depends on host parallelism.
    [stop] is polled between waves; with [jobs = 1] runs execute inline
    on the calling domain. *)
