(** Integer matrices — reference implementation for the [mm] benchmark
    (multiply of two 100×100 integer matrices). *)

type t = int array array

val random : n:int -> seed:int -> t
val multiply : t -> t -> t
val multiply_row : t -> t -> dst:t -> int -> unit
(** Compute one row of the product (the parallel unit of work). *)

val checksum : t -> int
