lib/locks/clh_lock.ml: Lock_intf
