(** Multiprocessor thread package — a faithful transcription of the paper's
    Figure 3 on top of any MP platform.

    Differences from the uniprocessor version are exactly the paper's: on
    [fork] the kernel first tries to acquire a fresh proc to carry the
    parent (falling back to the ready queue on [No_More_Procs]); [dispatch]
    releases the proc when the ready queue is empty; the ready queue and the
    id counter are protected by mutex locks; and the current thread id lives
    in the per-proc datum. *)

module Make (P : Mp.Mp_intf.PLATFORM_INT) (Queue : Queues.Queue_intf.QUEUE) : sig
  include Thread_intf.SCHED

  val reset : unit -> unit
  (** Clear scheduler state (test isolation). *)
end
