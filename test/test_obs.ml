(* The telemetry spine: ring retention, the counter registry (including
   concurrent emitters on real domains), sinks, the telemetry instance's
   enable/disable lifecycle, and the event model's stable renderings. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ---------------- ring ---------------- *)

let test_ring_create_rejects () =
  checkb "zero capacity rejected" true
    (match Obs.Ring.create ~capacity:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_ring_basics () =
  let r = Obs.Ring.create ~capacity:3 in
  check "capacity" 3 (Obs.Ring.capacity r);
  check "empty" 0 (Obs.Ring.length r);
  Obs.Ring.record r 1;
  Obs.Ring.record r 2;
  Alcotest.(check (list int)) "oldest first" [ 1; 2 ] (Obs.Ring.items r);
  Obs.Ring.record r 3;
  Obs.Ring.record r 4;
  Alcotest.(check (list int)) "overwrites oldest" [ 2; 3; 4 ] (Obs.Ring.items r);
  check "length capped" 3 (Obs.Ring.length r);
  check "total counts overwritten" 4 (Obs.Ring.total_recorded r);
  let seen = ref [] in
  Obs.Ring.iter r (fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "iter order" [ 2; 3; 4 ] (List.rev !seen);
  Obs.Ring.clear r;
  check "cleared" 0 (Obs.Ring.length r);
  check "total reset" 0 (Obs.Ring.total_recorded r)

let prop_ring_last_n =
  QCheck.Test.make ~name:"ring retains exactly the last min(n, capacity) items"
    ~count:200
    QCheck.(pair (int_range 1 16) (small_list int))
    (fun (capacity, xs) ->
      let r = Obs.Ring.create ~capacity in
      List.iter (Obs.Ring.record r) xs;
      let n = List.length xs in
      let kept = min n capacity in
      let expected =
        List.filteri (fun i _ -> i >= n - kept) xs (* last [kept], in order *)
      in
      Obs.Ring.items r = expected
      && Obs.Ring.length r = kept
      && Obs.Ring.total_recorded r = n)

let prop_ring_total_monotone =
  QCheck.Test.make
    ~name:"total_recorded grows by one per record, independent of wraparound"
    ~count:200
    QCheck.(pair (int_range 1 8) (small_list int))
    (fun (capacity, xs) ->
      let r = Obs.Ring.create ~capacity in
      List.for_all
        (fun x ->
          let before = Obs.Ring.total_recorded r in
          Obs.Ring.record r x;
          Obs.Ring.total_recorded r = before + 1)
        xs)

(* ---------------- counters ---------------- *)

let test_counters_basics () =
  let t = Obs.Counters.create () in
  let a = Obs.Counters.counter t "lock.spins" in
  checks "name" "lock.spins" (Obs.Counters.name a);
  checkb "find-or-create returns the same cell" true
    (Obs.Counters.counter t "lock.spins" == a);
  checkb "find misses unknown names" true
    (Obs.Counters.find t "nope" = None);
  Obs.Counters.incr a;
  Obs.Counters.add a 4;
  check "incr + add" 5 (Obs.Counters.get a);
  Obs.Counters.set a 2;
  check "set overwrites" 2 (Obs.Counters.get a);
  Obs.Counters.max_gauge a 10;
  Obs.Counters.max_gauge a 7;
  check "max_gauge keeps high watermark" 10 (Obs.Counters.get a);
  let b = Obs.Counters.counter t "a.first" in
  Obs.Counters.set b 1;
  Alcotest.(check (list (pair string int)))
    "dump sorted by name"
    [ ("a.first", 1); ("lock.spins", 10) ]
    (Obs.Counters.dump t);
  Obs.Counters.reset t;
  check "reset zeroes" 0 (Obs.Counters.get a)

(* Concurrent emitters on real domains: no lost or torn updates.  This is
   the contract the domains backend relies on for always-on counters. *)
let test_counters_concurrent_domains () =
  let t = Obs.Counters.create () in
  let c = Obs.Counters.counter t "test.concurrent" in
  let g = Obs.Counters.counter t "test.watermark" in
  let domains = 4 and iters = 25_000 in
  let spawn d =
    Domain.spawn (fun () ->
        for i = 1 to iters do
          Obs.Counters.incr c;
          Obs.Counters.max_gauge g ((d * iters) + i)
        done)
  in
  List.iter Domain.join (List.init domains spawn);
  check "no lost increments" (domains * iters) (Obs.Counters.get c);
  check "watermark is the global max" (domains * iters) (Obs.Counters.get g)

(* ---------------- events ---------------- *)

let ev_dispatch = Obs.Event.Dispatch { proc = 2; clock = 100 }

let test_event_classification () =
  let cat e = Obs.Event.category_name (Obs.Event.category_of e) in
  checks "dispatch" "sched" (cat ev_dispatch);
  checks "freed" "proc" (cat (Obs.Event.Freed { proc = 0; clock = 1 }));
  checks "gc" "gc"
    (cat
       (Obs.Event.Gc_start
          { clock = 1; region_words = 8; kind = Obs.Event.Major; waiters = 3 }));
  checks "lock" "lock" (cat (Obs.Event.Lock_acquired { proc = 0; clock = 1 }));
  let blocked on =
    cat (Obs.Event.Blocked { proc = 0; clock = 1; thread = 3; on })
  in
  checks "cml site" "cml" (blocked "cml.sync");
  checks "select site" "select" (blocked "select.send");
  checks "sync site" "sync" (blocked "sync.ivar");
  check "clock_of" 100 (Obs.Event.clock_of ev_dispatch)

let test_event_pp_stable () =
  (* the simulator's original six renderings must not drift *)
  checks "dispatch format" "       100 dispatch p2"
    (Format.asprintf "%a" Obs.Event.pp ev_dispatch);
  (* a Major gc-start renders exactly as before kind/waiters existed, so
     stw-run traces are byte-stable across the GC-model refactor *)
  checks "gc-start major format" "        42 gc-start (region 8 words)"
    (Format.asprintf "%a" Obs.Event.pp
       (Obs.Event.Gc_start
          { clock = 42; region_words = 8; kind = Obs.Event.Major; waiters = 5 }));
  checks "gc-start minor format" "        42 gc-minor (region 8 words)"
    (Format.asprintf "%a" Obs.Event.pp
       (Obs.Event.Gc_start
          { clock = 42; region_words = 8; kind = Obs.Event.Minor; waiters = 0 }))

let test_event_json_shape () =
  checks "json one-liner"
    {|{"ts":100,"cat":"sched","ev":"dispatch","proc":2}|}
    (Obs.Event.to_json ev_dispatch);
  let j =
    Obs.Event.to_json
      (Obs.Event.Blocked { proc = 1; clock = 5; thread = 9; on = "sync.mvar" })
  in
  checkb "site quoted" true
    (String.length j > 0
    && j.[0] = '{'
    && j.[String.length j - 1] = '}'
    && (match String.index_opt j '\n' with None -> true | Some _ -> false))

(* ---------------- sinks ---------------- *)

let test_sink_memory_and_tee () =
  let r1 = Obs.Ring.create ~capacity:8 in
  let r2 = Obs.Ring.create ~capacity:8 in
  let s = Obs.Sink.tee (Obs.Sink.memory r1) (Obs.Sink.memory r2) in
  s.Obs.Sink.emit ev_dispatch;
  s.Obs.Sink.flush ();
  check "first branch" 1 (Obs.Ring.length r1);
  check "second branch" 1 (Obs.Ring.length r2);
  Obs.Sink.null.Obs.Sink.emit ev_dispatch (* must not raise *)

let test_sink_jsonl_lines () =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let s = Obs.Sink.jsonl oc in
      s.Obs.Sink.emit ev_dispatch;
      s.Obs.Sink.emit
        (Obs.Event.Gc_start
           { clock = 7; region_words = 64; kind = Obs.Event.Major; waiters = 1 });
      s.Obs.Sink.flush ();
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check "one event per line" 2 (List.length lines);
      List.iter
        (fun l ->
          checkb "line is a json object" true
            (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        lines)

(* ---------------- telemetry instance ---------------- *)

let mk_tel ?streams ~stream ~clock () =
  Obs.Telemetry.create ?streams
    ~stream_of:(fun () -> !stream)
    ~now_ts:(fun () -> !clock)
    ()

let test_telemetry_disabled_is_noop () =
  let stream = ref 0 and clock = ref 0 in
  let t = mk_tel ~stream ~clock () in
  checkb "starts disabled" false (Obs.Telemetry.enabled t);
  Obs.Telemetry.emit t ev_dispatch;
  check "nothing recorded" 0 (Obs.Telemetry.total_recorded t);
  Alcotest.(check (list reject)) "no events" [] (Obs.Telemetry.events t);
  (* the registry is live even while events are off *)
  let c = Obs.Counters.counter (Obs.Telemetry.counters t) "x" in
  Obs.Counters.incr c;
  check "counter live while disabled" 1 (Obs.Counters.get c)

let test_telemetry_memory_lifecycle () =
  let stream = ref 0 and clock = ref 10 in
  let t = mk_tel ~stream ~clock () in
  Obs.Telemetry.enable_memory ~capacity:4 t;
  checkb "enabled" true (Obs.Telemetry.enabled t);
  check "ts reads the backend clock" 10 (Obs.Telemetry.ts t);
  Obs.Telemetry.emit t ev_dispatch;
  Obs.Telemetry.enable_memory ~capacity:4 t (* idempotent *);
  check "re-enable keeps contents" 1 (Obs.Telemetry.total_recorded t);
  checkb "ring visible" true (Obs.Telemetry.ring t 0 <> None);
  Obs.Telemetry.disable t;
  checkb "disabled again" false (Obs.Telemetry.enabled t);
  Obs.Telemetry.emit t ev_dispatch;
  check "emission stopped" 0 (Obs.Telemetry.total_recorded t)

let test_telemetry_merges_streams () =
  let stream = ref 0 and clock = ref 0 in
  let t = mk_tel ~streams:2 ~stream ~clock () in
  Obs.Telemetry.enable_memory t;
  let emit s c =
    stream := s;
    Obs.Telemetry.emit t (Obs.Event.Dispatch { proc = s; clock = c })
  in
  emit 0 5;
  emit 1 1;
  emit 0 9;
  emit 1 7;
  emit 99 3 (* out-of-range stream falls back to stream 0 *);
  Alcotest.(check (list int))
    "merged in timestamp order" [ 1; 3; 5; 7; 9 ]
    (List.map Obs.Event.clock_of (Obs.Telemetry.events t));
  check "all retained" 5 (Obs.Telemetry.total_recorded t)

let qt = Testkit.to_alcotest

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "create rejects" `Quick test_ring_create_rejects;
          Alcotest.test_case "basics" `Quick test_ring_basics;
          qt prop_ring_last_n;
          qt prop_ring_total_monotone;
        ] );
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counters_basics;
          Alcotest.test_case "concurrent domains" `Slow
            test_counters_concurrent_domains;
        ] );
      ( "events",
        [
          Alcotest.test_case "classification" `Quick test_event_classification;
          Alcotest.test_case "pp stable" `Quick test_event_pp_stable;
          Alcotest.test_case "json shape" `Quick test_event_json_shape;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "memory and tee" `Quick test_sink_memory_and_tee;
          Alcotest.test_case "jsonl lines" `Quick test_sink_jsonl_lines;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "disabled is no-op" `Quick
            test_telemetry_disabled_is_noop;
          Alcotest.test_case "memory lifecycle" `Quick
            test_telemetry_memory_lifecycle;
          Alcotest.test_case "merges streams" `Quick test_telemetry_merges_streams;
        ] );
    ]
