examples/simulate.mli:
