lib/queues/priority_queue.ml: Array Queue_intf
