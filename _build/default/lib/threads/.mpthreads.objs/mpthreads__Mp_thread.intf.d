lib/threads/mp_thread.mli: Mp Queues Thread_intf
