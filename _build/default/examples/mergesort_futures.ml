(* Parallel mergesort with Multilisp-style futures (the model the paper's
   related-work section contrasts with MP's continuation-based threads),
   run on the simulated Sequent so the speedup is visible in virtual time
   on any host.

   Run: dune exec examples/mergesort_futures.exe *)

module Sequent =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:8 ()
    end)
    ()

module Sched = Mpthreads.Sched_thread.Make (Sequent)
module Sync = Mpsync.Sync.Make (Sequent) (Sched)

let merge a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 in
  for k = 0 to la + lb - 1 do
    if !i < la && (!j >= lb || a.(!i) <= b.(!j)) then begin
      out.(k) <- a.(!i);
      incr i
    end
    else begin
      out.(k) <- b.(!j);
      incr j
    end
  done;
  (* annotate the virtual cost of the merge (comparisons + moves) *)
  Sequent.Work.step ~instrs:((la + lb) * 8) ();
  out

let rec msort a =
  if Array.length a <= 512 then begin
    let a = Array.copy a in
    Array.sort compare a;
    Sequent.Work.step ~instrs:(Array.length a * 10 * 9) ();
    a
  end
  else begin
    let h = Array.length a / 2 in
    let left = Sync.Future.spawn (fun () -> msort (Array.sub a 0 h)) in
    let right = msort (Array.sub a h (Array.length a - h)) in
    merge (Sync.Future.touch left) right
  end

let time_with procs =
  let rng = Random.State.make [| 7 |] in
  let input = Array.init 16_384 (fun _ -> Random.State.int rng 1_000_000) in
  let sorted =
    Sequent.run (fun () -> Sched.with_pool ~procs (fun () -> msort input))
  in
  assert (Array.for_all2 ( <= ) (Array.sub sorted 0 16_383) (Array.sub sorted 1 16_383));
  (Sequent.stats ()).Mp.Stats.elapsed

let () =
  let t1 = time_with 1 in
  let t8 = time_with 8 in
  Printf.printf
    "mergesort of 16384 keys on the simulated Sequent:\n\
    \  1 proc : %.3f virtual seconds\n\
    \  8 procs: %.3f virtual seconds  (speedup %.2fx)\n"
    t1 t8 (t1 /. t8)
