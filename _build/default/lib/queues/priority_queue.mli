(** Binary-heap priority queue (highest priority dequeued first; FIFO among
    equal priorities, via insertion sequence numbers, so priority scheduling
    stays starvation-ordered and deterministic). *)

include Queue_intf.PRIORITY_QUEUE

module As_queue (P : sig
  val priority : int
  (** Fixed priority assigned by [enq]. *)
end) : Queue_intf.QUEUE_EXT
(** Adapts the priority queue to the paper's [QUEUE] signature by fixing the
    priority of every enqueue — the footnote-1 signature mismatch resolved
    the other way around. *)
