lib/threads/mp_thread.ml: Engine Kont_util Mp Queues
