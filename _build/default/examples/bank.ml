(* A bank account with blocking withdrawals, built on the Modula-3 style
   thread package (typed fork/join, mutexes with ownership handoff, Mesa
   condition variables) that the paper reports was built over MP.

   Withdrawing threads wait on a condition until a depositor has made the
   balance sufficient.

   Run: dune exec examples/bank.exe *)

module Platform =
  Mp.Mp_domains.Int (struct
      let max_procs = 4
    end)
    ()

module Sched = Mpthreads.Sched_thread.Make (Platform)
module M3 = Mpthreads.M3_thread.Make (Platform) (Sched)

type account = {
  mutex : M3.Mutex.t;
  funds_deposited : M3.Condition.t;
  mutable balance : int;
}

let deposit acc n =
  M3.Mutex.with_lock acc.mutex (fun () -> acc.balance <- acc.balance + n);
  M3.Condition.broadcast acc.funds_deposited

let withdraw acc n =
  M3.Mutex.lock acc.mutex;
  while acc.balance < n do
    (* Mesa semantics: re-check the predicate after every wakeup *)
    M3.Condition.wait acc.mutex acc.funds_deposited
  done;
  acc.balance <- acc.balance - n;
  M3.Mutex.unlock acc.mutex

let () =
  let final =
    Platform.run (fun () ->
        Sched.with_pool (fun () ->
            let acc =
              {
                mutex = M3.Mutex.create ();
                funds_deposited = M3.Condition.create ();
                balance = 0;
              }
            in
            (* 4 withdrawers of 250 each block until deposits arrive *)
            let withdrawers =
              List.init 4 (fun i ->
                  M3.fork (fun () ->
                      withdraw acc 250;
                      Printf.printf "withdrawer %d got 250\n%!" i))
            in
            (* 10 depositors of 100 each *)
            let depositors =
              List.init 10 (fun _ -> M3.fork (fun () -> deposit acc 100))
            in
            List.iter M3.join depositors;
            List.iter M3.join withdrawers;
            M3.Mutex.with_lock acc.mutex (fun () -> acc.balance)))
  in
  Printf.printf "final balance: %d (expected %d)\n" final ((10 * 100) - (4 * 250))
