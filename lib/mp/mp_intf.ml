(** Interfaces of the MP multiprocessing platform (paper, Figure 2).

    A backend provides [PROC] (processor management and per-proc data),
    [LOCK] (mutex spin locks) and — beyond the paper, to support the
    simulated multiprocessor — [WORK] (virtual-cost charging and safe
    points) and [TELEMETRY] (structured trace events and counters).
    Client packages (thread systems, channels, CML) are functors over
    [PLATFORM]. *)

exception No_More_Procs
(** Raised by [acquire_proc] when every proc is in use.  Shared across all
    backends so that client handlers are portable. *)

exception Deadlock of string
(** Raised by [run] when every proc has been released but the root
    computation never produced a result. *)

(** Client-defined per-proc private datum (paper §3.2). *)
module type DATUM = sig
  type t

  val initial : t
  (** Datum of the root proc. *)
end

(** First-class continuations; re-export of {!Engine} operations. *)
module type KONT = sig
  type 'a cont = 'a Engine.cont

  val callcc : ('a cont -> 'a) -> 'a
  val throw : 'a cont -> 'a -> 'b
  val throw_exn : 'a cont -> exn -> 'b
end

(** Processor management (paper §3.1–3.2). *)
module type PROC = sig
  type proc_datum
  type proc_state = PS of unit Engine.cont * proc_datum

  exception No_More_Procs

  val acquire_proc : proc_state -> unit
  (** Start a new proc executing the given continuation, with the given
      private datum.  Returns to the caller, which keeps its own proc.
      @raise No_More_Procs when the proc limit is reached. *)

  val release_proc : unit -> 'a
  (** Stop executing and return the current physical processor to the
      system.  The current computation is abandoned (capture it first with
      [callcc] if it must survive).  Never returns. *)

  val initial_datum : proc_datum

  val get_datum : unit -> proc_datum
  (** Read the calling proc's private datum. *)

  val set_datum : proc_datum -> unit
  (** Write the calling proc's private datum. *)

  (* Extensions beyond the paper's signature, used by schedulers/benchmarks. *)

  val self : unit -> int
  (** Index of the calling proc; the root proc is 0. *)

  val max_procs : unit -> int
  (** Compile-time proc limit of this platform instance (paper §5). *)

  val live_procs : unit -> int
  (** Number of procs currently acquired (including the root). *)

  val nodes : unit -> int
  (** Number of interconnect nodes the procs are grouped into.  1 on every
      backend except a simulator configured with a hierarchical (NUMA)
      machine; node-aware schedulers use it to keep work node-local. *)

  val node_of : int -> int
  (** Node of a proc index (always 0 when {!nodes} is 1).  Total over
      [0 .. max_procs - 1] and constant for the life of the platform, so
      schedulers may consult it from any proc without synchronization. *)
end

(** Mutual exclusion (paper §3.3). *)
module type LOCK = sig
  type mutex_lock

  val mutex_lock : unit -> mutex_lock
  (** A fresh lock in unlocked state. *)

  val try_lock : mutex_lock -> bool
  (** Atomically attempt to set the lock; [true] on success. *)

  val lock : mutex_lock -> unit
  (** Spin until the lock is acquired.  Equivalent to
      [while not (try_lock l) do () done], but a platform may spin more
      efficiently (e.g. with backoff). *)

  val unlock : mutex_lock -> unit
  (** Release the lock.  May be called by any proc, not necessarily the one
      that set it. *)

  val locked : mutex_lock -> (unit -> 'a) -> 'a
  (** [locked l f] runs [f ()] with [l] held and releases it afterwards,
      even if [f] raises.  Equivalent to [lock l; ...f ()...; unlock l],
      but a platform may fuse the acquire/section/release into a cheaper
      episode — the simulator, for instance, runs the whole critical
      section under one scheduler interaction.  [f] must itself be free of
      charges and suspensions (no [Work.step]/[charge]/[alloc]/[idle] and
      no blocking), which is the natural shape for the short
      pointer-swinging sections the run-queue and thread packages use. *)
end

(** Virtual-cost charging and safe points.

    On real backends all charging operations are no-ops and [now] reads the
    wall clock.  On the simulator they advance the calling proc's virtual
    clock, generate memory-bus traffic and trigger simulated collections;
    they are also the points at which simulated preemption can occur. *)
module type WORK = sig
  val step : ?alloc_words:int -> instrs:int -> unit -> unit
  (** Account for [instrs] abstract instructions of client work, allocating
      [alloc_words] heap words (default: [instrs/5], the SML/NJ ratio of one
      word per 3–7 instructions, paper §5). *)

  val charge : int -> unit
  (** Account for raw virtual cycles (no allocation). *)

  val alloc : words:int -> unit
  (** Account for heap allocation only. *)

  val traffic : bytes:int -> unit
  (** Account for raw shared-bus traffic that is not allocation (cache
      misses on shared data, lock RMW transactions).  No-op on real
      backends.  Always node-local under a NUMA machine; traffic on words
      shared across nodes goes through {!write_line}. *)

  type line
  (** A cache line holding one contended shared word (a lock or run-queue
      word).  The simulator tracks which nodes cache the line; on real
      backends (where the hardware coherence protocol does the job) lines
      carry no state and the operations below are free. *)

  val line : unit -> line
  (** A fresh line, cached nowhere. *)

  val read_line : line -> unit
  (** Record that the calling proc's node now caches the line (a read
      snoop).  Charge-free: the cost model prices reads through [charge]
      as before; this only feeds the sharing state {!write_line} consults. *)

  val write_line : line -> bytes:int -> unit
  (** One RMW/write bus transaction on the line: claim it exclusive for
      the calling proc's node and account [bytes] of traffic.  If no other
      node cached the line this is exactly [traffic ~bytes] (node-local);
      otherwise the transfer crosses the inter-node link and each remote
      copy is invalidated (counted under ["cache.invalidations"]).  No-op
      on real backends, like [traffic]. *)

  val poll : unit -> unit
  (** Safe point: give the platform (and, through the poll hook, the thread
      package) a chance to preempt, as in the paper's timer-driven polling
      (§3.4). *)

  val set_poll_hook : (unit -> unit) -> unit
  (** Install the thread package's preemption check, invoked at each safe
      point. *)

  val idle : unit -> unit
  (** Pause briefly while waiting for work; accounted as idle time. *)

  val idle_until : ready:(unit -> bool) -> unit
  (** Pause, accounted as idle time, until [ready ()] holds.  Reference
      semantics (and the behavior of every real backend): repeatedly
      {!idle} one quantum, then evaluate [ready]; return as soon as it is
      true — i.e. equivalent to [let rec go () = idle (); if not (ready ())
      then go () in go ()].  [ready] must be free of side effects and of
      charges: the simulator may evaluate it from scheduler context,
      outside the calling fiber, servicing the per-quantum checks without
      a suspension per quantum (quiescence-epoch coalescing). *)

  val now : unit -> float
  (** Seconds: virtual time on the simulator, wall clock otherwise. *)

  val note_queue_wait : seconds:float -> unit
  (** Attribute [seconds] the calling proc just spent blocked on a bounded
      queue (the caller brackets the blocking section with {!now}).  Pure
      accounting — never charges and never suspends; surfaced per proc as
      [Stats.queue_wait] on every backend, like GC-barrier stalls.  The
      wait's cycles are already charged (as idle/spin time) by the blocking
      path itself; without this note they are indistinguishable from
      out-of-work idling in the per-proc totals. *)
end

(** Structured telemetry: typed trace events and named counters, emitted by
    the platform itself and by any client layer built over it (thread
    packages, locks, channels, CML).

    Timestamps come from the backend clock — the proc's virtual clock on
    the simulator, host nanoseconds on real backends — so one consumer
    (e.g. the JSONL sink) works over both.  Event emission is off by
    default and the disabled path is a static no-op: call sites guard
    event construction behind [enabled], so a run with telemetry off
    allocates nothing, charges no virtual time and takes no extra
    suspensions.  Counters are always live ([Atomic] increments). *)
module type TELEMETRY = sig
  val handle : Obs.Telemetry.t
  (** The underlying instance, for consumers that want direct access to
      the per-stream rings. *)

  val enabled : unit -> bool
  (** Whether events are being recorded.  Emitting call sites must check
      this {e before} constructing an event. *)

  val now_ts : unit -> int
  (** Backend timestamp: virtual cycles on the simulator, host nanoseconds
      otherwise. *)

  val emit : Obs.Event.t -> unit
  (** Record an event (no-op when disabled).  Never charges virtual time
      and never suspends. *)

  val counters : Obs.Counters.t
  (** This platform's counter registry. *)

  val counter : string -> Obs.Counters.counter
  (** Find-or-create in [counters]; resolve once, keep the handle. *)

  val histograms : Obs.Histogram.registry
  (** This platform's latency-histogram registry, alongside [counters]. *)

  val histogram : string -> Obs.Histogram.t
  (** Find-or-create in [histograms]; resolve once, keep the handle. *)

  val enable_memory : ?capacity:int -> unit -> unit
  (** Start recording into per-stream in-memory rings. *)

  val attach_sink : Obs.Sink.t -> unit
  (** Start recording, forwarding every event to the sink. *)

  val disable : unit -> unit
  (** Flush any sink and stop recording.  Counters keep accumulating. *)

  val events : unit -> Obs.Event.t list
  (** Retained in-memory events, merged across streams in timestamp
      order. *)
end

(** Derive the full [TELEMETRY] surface from a backend's
    {!Obs.Telemetry.t} instance. *)
module Telemetry_of (X : sig
  val handle : Obs.Telemetry.t
end) : TELEMETRY = struct
  let handle = X.handle
  let enabled () = Obs.Telemetry.enabled handle
  let now_ts () = Obs.Telemetry.ts handle
  let emit e = Obs.Telemetry.emit handle e
  let counters = Obs.Telemetry.counters handle
  let counter name = Obs.Counters.counter counters name
  let histograms = Obs.Telemetry.histograms handle
  let histogram name = Obs.Histogram.histogram histograms name
  let enable_memory ?capacity () = Obs.Telemetry.enable_memory ?capacity handle
  let attach_sink s = Obs.Telemetry.attach_sink handle s
  let disable () = Obs.Telemetry.disable handle
  let events () = Obs.Telemetry.events handle
end

(** A complete MP platform instance. *)
module type PLATFORM = sig
  val name : string

  module Kont : KONT
  module Proc : PROC
  module Lock : LOCK
  module Work : WORK
  module Telemetry : TELEMETRY

  val run : (unit -> 'a) -> 'a
  (** Execute a computation as the root fiber of the root proc; returns when
      the result is available and all other procs have been released.
      @raise Deadlock if all procs stop without producing a result. *)

  val stats : unit -> Stats.t
  val reset_stats : unit -> unit
end

(** A platform whose per-proc datum is an [int] (thread-id convention used
    by the paper's thread packages, Figures 1 and 3). *)
module type PLATFORM_INT = PLATFORM with type Proc.proc_datum = int

module Int_datum : DATUM with type t = int = struct
  type t = int

  let initial = 0
end

let host_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
(** Host-clock timestamp for real backends' telemetry (see
    {!TELEMETRY.now_ts}). *)
