type t = int array array

let random ~n ~seed =
  let rng = Random.State.make [| seed; n; 13 |] in
  Array.init n (fun _ -> Array.init n (fun _ -> Random.State.int rng 1000))

let multiply_row a b ~dst i =
  let n = Array.length a in
  let row = a.(i) in
  for j = 0 to n - 1 do
    let acc = ref 0 in
    for k = 0 to n - 1 do
      acc := !acc + (row.(k) * b.(k).(j))
    done;
    dst.(i).(j) <- !acc
  done

let multiply a b =
  let n = Array.length a in
  let dst = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    multiply_row a b ~dst i
  done;
  dst

let checksum m =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc x -> (acc * 31) + (x land 0xffffff)) acc row)
    23 m
