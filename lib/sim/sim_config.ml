(* Interconnect topology.  [Flat_bus] is the legacy single-FCFS-bus model
   (one bus shared by every proc); [Numa] groups the procs into [nodes]
   equal nodes, each with its own local bus of [bus_bytes_per_cycle]
   bandwidth, joined by one inter-node link.  A transfer that must leave
   its node (a write to a line cached on another node) crosses the local
   bus first and then the link, paying [link_latency_cycles] plus the
   bytes at [link_bytes_per_cycle]; the link is FCFS and shared by all
   nodes, which is what makes cross-node contention collapse at large P. *)
type machine =
  | Flat_bus
  | Numa of {
      nodes : int;
      link_latency_cycles : int;
      link_bytes_per_cycle : float;
    }

type t = {
  name : string;
  procs : int;
  mhz : float;
  cpi : float;
  word_bytes : int;
  bus_bytes_per_cycle : float;
  machine : machine;
  alloc_cycles_per_word : float;
  try_lock_cycles : int;
  unlock_cycles : int;
  lock_bus_bytes : int;
  spin_retry_cycles : int;
  idle_quantum_cycles : int;
  gc_region_words : int;
  gc_survival : float;
  gc_cycles_per_word : float;
  gc_fixed_cycles : int;
  gc_parallelism : float;
  gc_minor_fixed_cycles : int;
  gc_barrier_cycles : int;
  gc : Gc_model.t;
  acquire_proc_cycles : int;
  spin_jitter_proc : int;
  spin_jitter_attempt : int;
  spin_jitter_mod : int;
  run_ahead : bool;
  run_ahead_window : int;
  horizon : bool;
  horizon_window : int;
  horizon_debug : bool;
  heap_debug : bool;
  sched : string;
}

(* Sequent Symmetry S81: 16 MHz 80386s; 25 MB/s usable bus; MP mutex
   lock+unlock = 46 us = 736 cycles at 16 MHz. *)
let sequent ?(procs = 16) ?(sched = "distributed") () =
  {
    name = "sequent";
    procs;
    mhz = 16.;
    cpi = 4.5;
    word_bytes = 4;
    bus_bytes_per_cycle = 25.0e6 /. 16.0e6;
    machine = Flat_bus;
    alloc_cycles_per_word = 2.0;
    try_lock_cycles = 500;
    unlock_cycles = 236;
    lock_bus_bytes = 8;
    spin_retry_cycles = 200;
    idle_quantum_cycles = 2_000;
    gc_region_words = 512 * 1024;
    gc_survival = 0.03;
    gc_cycles_per_word = 30.;
    gc_fixed_cycles = 100_000;
    gc_parallelism = 1.0;
    gc_minor_fixed_cycles = 5_000;
    gc_barrier_cycles = 10_000;
    gc = Gc_model.default;
    acquire_proc_cycles = 10_000;
    spin_jitter_proc = 37;
    spin_jitter_attempt = 13;
    spin_jitter_mod = 101;
    run_ahead = true;
    run_ahead_window = max_int;
    horizon = true;
    horizon_window = max_int;
    horizon_debug = false;
    heap_debug = false;
    sched;
  }

(* SGI 4D/380S: 33 MHz R3000s (roughly 8x the per-processor throughput of
   the 386 at ~1.2 CPI); bus only ~30 MB/s; lock+unlock = 6 us = 198 cycles. *)
let sgi ?(procs = 8) ?(sched = "distributed") () =
  {
    name = "sgi";
    procs;
    mhz = 33.;
    cpi = 1.2;
    word_bytes = 4;
    bus_bytes_per_cycle = 30.0e6 /. 33.0e6;
    machine = Flat_bus;
    alloc_cycles_per_word = 1.0;
    try_lock_cycles = 130;
    unlock_cycles = 68;
    lock_bus_bytes = 8;
    spin_retry_cycles = 60;
    idle_quantum_cycles = 2_000;
    gc_region_words = 512 * 1024;
    gc_survival = 0.03;
    gc_cycles_per_word = 10.;
    gc_fixed_cycles = 60_000;
    gc_parallelism = 1.0;
    gc_minor_fixed_cycles = 3_000;
    gc_barrier_cycles = 6_000;
    gc = Gc_model.default;
    acquire_proc_cycles = 6_000;
    spin_jitter_proc = 37;
    spin_jitter_attempt = 13;
    spin_jitter_mod = 101;
    run_ahead = true;
    run_ahead_window = max_int;
    horizon = true;
    horizon_window = max_int;
    horizon_debug = false;
    heap_debug = false;
    sched;
  }

(* NUMA preset built from the Sequent's per-proc constants: each node is a
   Sequent-class bus; the inter-node link has twice one node's bandwidth
   but is shared by every node and adds a fixed crossing latency.  With
   more than two nodes' worth of cross-node traffic the link saturates —
   the knee the large-P sweeps are after. *)
let numa ?(nodes = 4) ?(procs_per_node = 16) ?(sched = "distributed") () =
  if nodes < 1 || procs_per_node < 1 then invalid_arg "Sim_config.numa";
  (* sharer sets are int bitmasks in the simulator *)
  if nodes > 62 then invalid_arg "Sim_config.numa: at most 62 nodes";
  let base = sequent ~procs:(nodes * procs_per_node) ~sched () in
  {
    base with
    name = Printf.sprintf "numa:%dx%d" nodes procs_per_node;
    machine =
      Numa
        {
          nodes;
          link_latency_cycles = 120;
          link_bytes_per_cycle = 2.0 *. base.bus_bytes_per_cycle;
        };
  }

let machine_names = [ "sequent"; "sgi"; "numa:<nodes>x<procs>"; "numa1024" ]

(* Machine selector syntax for [--machine] and sweep drivers.  ["numa1024"]
   is the canonical 1024-proc preset (16 nodes of 64). *)
let of_machine_string ?sched ?gc str =
  let apply = function
    | Ok c -> Ok (match gc with Some g -> { c with gc = g } | None -> c)
    | Error _ as e -> e
  in
  apply
  @@
  let s = String.lowercase_ascii (String.trim str) in
  match s with
  | "sequent" | "flat" -> Ok (sequent ?sched ())
  | "sgi" -> Ok (sgi ?sched ())
  | "numa" -> Ok (numa ?sched ())
  | "numa1024" -> Ok (numa ~nodes:16 ~procs_per_node:64 ?sched ())
  | _ -> (
      let bad () =
        Error
          (Printf.sprintf "unknown machine %S (expected %s)" s
             (String.concat "|" machine_names))
      in
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "numa" -> (
          let arg = String.sub s (i + 1) (String.length s - i - 1) in
          match String.index_opt arg 'x' with
          | Some j -> (
              let n = String.sub arg 0 j in
              let m = String.sub arg (j + 1) (String.length arg - j - 1) in
              match (int_of_string_opt n, int_of_string_opt m) with
              | Some nodes, Some per when nodes >= 1 && nodes <= 62 && per >= 1
                ->
                  Ok (numa ~nodes ~procs_per_node:per ?sched ())
              | _ -> bad ())
          | None -> bad ())
      | _ -> bad ())

let of_machine_string_exn ?sched ?gc s =
  match of_machine_string ?sched ?gc s with
  | Ok c -> c
  | Error msg -> invalid_arg msg

let nodes c = match c.machine with Flat_bus -> 1 | Numa n -> max 1 n.nodes

(* Procs are grouped into nodes by contiguous index blocks, so a pool that
   acquires procs 0..k-1 stays on as few nodes as possible. *)
let procs_per_node c =
  let n = nodes c in
  (c.procs + n - 1) / n

let node_of c id = if nodes c = 1 then 0 else id / procs_per_node c

(* GC model selection follows the same scheme as [sched]: the selector is
   a plain config field, the machine name is untouched (sweeps label their
   samples with the model separately).  [with_gc c Gc_model.default] is
   [c] itself, so default-model configs hit the same caches and goldens as
   before the selector existed. *)
let with_gc c gc = { c with gc }

let pgc_deprecation_warned = ref false

let with_parallel_gc c factor =
  if factor < 1.0 then invalid_arg "Sim_config.with_parallel_gc";
  if not !pgc_deprecation_warned then begin
    pgc_deprecation_warned := true;
    prerr_endline
      "Sim_config.with_parallel_gc is deprecated: use with_gc / --gc \
       par_stw:<n> instead"
  end;
  with_gc c (Gc_model.Par_stw (max 1 (int_of_float factor)))

let cycles_to_seconds c n = float_of_int n /. (c.mhz *. 1.0e6)
let seconds_to_cycles c s = int_of_float (s *. c.mhz *. 1.0e6)

let lock_pair_microseconds c =
  float_of_int (c.try_lock_cycles + c.unlock_cycles) /. c.mhz
