module Make (P : Mp.Mp_intf.PLATFORM) (T : Thread_intf.THREAD) = struct
  module Signal = Mp.Mp_signal.Make (P)

  let sigvtalrm = 26
  let armed = ref false
  let interval = ref 0.1
  let next_alarm = ref 0.
  let preemption_count = ref 0

  let handler _ =
    incr preemption_count;
    T.yield ()

  (* Alarm "delivery": at every safe point the eldest proc past the deadline
     re-broadcasts the signal — the polling simulation of an interval timer
     (there is no asynchronous delivery in the platform, by design). *)
  let poll () =
    if !armed then begin
      let now = P.Work.now () in
      if now >= !next_alarm then begin
        next_alarm := now +. !interval;
        Signal.deliver sigvtalrm
      end;
      Signal.poll ()
    end

  let arm ~interval:i =
    if i <= 0. then invalid_arg "Preemptive_thread.arm";
    interval := i;
    next_alarm := P.Work.now () +. i;
    preemption_count := 0;
    Signal.install sigvtalrm (Some handler);
    armed := true;
    P.Work.set_poll_hook poll

  let disarm () =
    armed := false;
    Signal.install sigvtalrm None;
    P.Work.set_poll_hook (fun () -> ())

  let preemptions () = !preemption_count
  let mask () = Signal.mask sigvtalrm
  let unmask () = Signal.unmask sigvtalrm
end
