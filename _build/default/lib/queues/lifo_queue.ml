exception Empty = Queue_intf.Empty

type 'a queue = { mutable items : 'a list; mutable size : int }

let create () = { items = []; size = 0 }

let enq q x =
  q.items <- x :: q.items;
  q.size <- q.size + 1

let deq q =
  match q.items with
  | [] -> raise Empty
  | x :: rest ->
      q.items <- rest;
      q.size <- q.size - 1;
      x

let deq_opt q = match deq q with x -> Some x | exception Empty -> None
let length q = q.size
let is_empty q = q.size = 0
