test/test_select.ml: Alcotest Array Atomic List Mp Mpthreads Queues Select Sim
