(* The scheduler-policy family.  [t] is the selectable axis threaded from
   [Sim_config]/[--sched] down to [Sched_thread.with_pool]; [Make] builds
   the concrete [Thread_intf.SCHEDULER] instances over a platform.

   All per-proc counters and cursors here are host-side bookkeeping: they
   are never charged, so they do not perturb virtual time, and races on
   them (domains backend) can at worst under-count telemetry. *)

type t = Fifo | Lifo | Distributed | Ws | Micropools of int

let default = Distributed

let to_string = function
  | Fifo -> "fifo"
  | Lifo -> "lifo"
  | Distributed -> "distributed"
  | Ws -> "ws"
  | Micropools k -> Printf.sprintf "micropools:%d" k

let names = [ "fifo"; "lifo"; "distributed"; "ws"; "micropools[:K]" ]

let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  match s with
  | "fifo" -> Ok Fifo
  | "lifo" -> Ok Lifo
  | "distributed" | "default" -> Ok Distributed
  | "ws" | "steal" -> Ok Ws
  | "micropools" -> Ok (Micropools 2)
  | _ -> (
      let bad () =
        Error
          (Printf.sprintf "unknown scheduler policy %S (expected %s)" s
             (String.concat "|" names))
      in
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "micropools" -> (
          let arg = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt arg with
          | Some k when k >= 1 -> Ok (Micropools k)
          | _ -> bad ())
      | _ -> bad ())

let of_string_exn s =
  match of_string s with Ok p -> p | Error msg -> invalid_arg msg

let env_var = "MP_REPRO_SCHED"

let resolve ?explicit () =
  match explicit with
  | Some s -> of_string_exn s
  | None -> (
      match Sys.getenv_opt env_var with
      | Some s when String.trim s <> "" -> of_string_exn s
      | _ -> default)

module Make (P : Mp.Mp_intf.PLATFORM_INT) = struct
  module MQ = Queues.Multi_queue.Make (P.Lock)

  (* Steal traffic is priced like any other RMW-based synchronization: the
     SPMC queue's cells charge through [Charged_prims], so on the simulator
     a pop or steal probe costs read/CAS cycles plus bus bytes, while on
     real backends the charges are no-ops and only the Atomic ops remain. *)
  module CP = Locks.Charged_prims.Make (P) (Locks.Charged_prims.Default_costs)

  module Charged_atomic = struct
    type 'a t = 'a CP.cell

    let make = CP.make
    let get = CP.get
    let set = CP.set
    let exchange = CP.exchange
    let compare_and_set = CP.compare_and_set
    let fetch_and_add = CP.fetch_and_add
    let unsafe_peek = CP.unsafe_peek
  end

  module SQ = Queues.Spmc_queue.Make (Charged_atomic)

  let clamp_proc ~n proc = if proc < 0 || proc >= n then 0 else proc

  (* The historical default: per-proc locked deques, owner front-push/pop,
     rotor spray for new work, rotating-scan steal-one from the back.
     Issues exactly the [Multi_queue] op sequence the pre-policy scheduler
     issued, so the simulator goldens are bit-identical under it. *)
  module Distributed_q : Thread_intf.SCHEDULER = struct
    let name = "distributed"

    type 'a t = 'a MQ.t

    let create ~procs = MQ.create ~procs
    let prepare _ ~procs:_ = ()
    let push_local q ~proc x = MQ.push q ~proc x
    let push_new q ~proc:_ x = MQ.push_global q x
    let take q ~proc = MQ.take q ~proc
    let looks_nonempty q ~proc:_ = MQ.looks_nonempty q
    let total_length = MQ.total_length
    let steals = MQ.steals
    let steal_attempts = MQ.steals
  end

  (* One shared slot, enqueue at the back, dequeue at the front: the
     classic central FIFO run queue — the baseline work stealing is
     measured against.  Every proc contends on the single slot lock. *)
  module Central_fifo : Thread_intf.SCHEDULER = struct
    let name = "fifo"

    type 'a t = 'a MQ.t

    let create ~procs:_ = MQ.create ~procs:1
    let prepare _ ~procs:_ = ()
    let push_local q ~proc:_ x = MQ.push_back q ~proc:0 x
    let push_new q ~proc:_ x = MQ.push_back q ~proc:0 x
    let take q ~proc:_ = MQ.take_local q ~proc:0
    let looks_nonempty q ~proc:_ = MQ.looks_nonempty_local q ~proc:0
    let total_length = MQ.total_length
    let steals _ = 0
    let steal_attempts _ = 0
  end

  (* One shared slot, enqueue and dequeue both at the front.  This is what
     the scheduler's old [~run_queue:`Central] mode did (slot-0 push_front
     + pop_front), so `Central` maps here and keeps its historical
     behavior bit-for-bit. *)
  module Central_lifo : Thread_intf.SCHEDULER = struct
    let name = "lifo"

    type 'a t = 'a MQ.t

    let create ~procs:_ = MQ.create ~procs:1
    let prepare _ ~procs:_ = ()
    let push_local q ~proc:_ x = MQ.push q ~proc:0 x
    let push_new q ~proc:_ x = MQ.push q ~proc:0 x
    let take q ~proc:_ = MQ.take_local q ~proc:0
    let looks_nonempty q ~proc:_ = MQ.looks_nonempty_local q ~proc:0
    let total_length = MQ.total_length
    let steals _ = 0
    let steal_attempts _ = 0
  end

  (* Multiprogrammed work stealing (the Manticore workGroup shape): one
     lock-free SPMC steal-half queue per proc, randomized victim selection,
     and batch transfer — a thief keeps the oldest stolen element and
     re-owns the rest of the batch on its own queue.

     Determinism: victim selection uses a per-proc xorshift stream seeded
     from the proc index only, so a simulator run is a pure function of the
     program — byte-identical across hosts and across [Job_pool] fan-out
     widths.  [Random] and wall-clock seeds are deliberately avoided. *)
  module Work_stealing : Thread_intf.SCHEDULER = struct
    let name = "ws"

    type 'a slot = { q : 'a SQ.t; mutable rng : int; mutable last_victim : int }

    type 'a t = {
      slots : 'a slot array;
      mutable live : int; (* procs acquired into the pool; set by prepare *)
      mutable attempts : int;
      mutable hits : int;
      total : int Stdlib.Atomic.t;
          (* net items across all slots: +1 per push, -1 per successful pop
             or steal (a steal's batch re-push cancels against the batch
             removal).  Gives an O(1) emptiness hint where scanning every
             slot's queue was O(procs). *)
    }

    let seed_of p =
      (* splitmix-style scramble so neighboring procs do not probe in
         lockstep *)
      let x = (p + 1) * 0x9E3779B9 in
      let x = x lxor (x lsr 16) in
      if x land max_int = 0 then 1 else x land max_int

    let create ~procs =
      {
        slots =
          Array.init procs (fun p ->
              { q = SQ.create (); rng = seed_of p; last_victim = -1 });
        live = procs;
        attempts = 0;
        hits = 0;
        total = Stdlib.Atomic.make 0;
      }

    let prepare t ~procs =
      t.live <- max 1 (min procs (Array.length t.slots))

    let next_rand s =
      let x = s.rng in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 17) in
      let x = x lxor (x lsl 5) in
      let x = x land max_int in
      let x = if x = 0 then 1 else x in
      s.rng <- x;
      x

    let push_local t ~proc x =
      (* the calling proc is this slot's single producer *)
      SQ.push t.slots.(clamp_proc ~n:(Array.length t.slots) proc).q x;
      Stdlib.Atomic.incr t.total

    let push_new = push_local

    let steal t ~proc =
      let n = Array.length t.slots in
      (* elastic victim range: only probe procs actually in the pool *)
      let live = if t.live > proc then t.live else n in
      if live <= 1 then None
      else begin
        let s = t.slots.(proc) in
        let probe victim =
          t.attempts <- t.attempts + 1;
          match SQ.steal_half t.slots.(victim).q with
          | [||] -> None
          | batch ->
              t.hits <- t.hits + 1;
              s.last_victim <- victim;
              (* keep the oldest, re-own the rest: this proc is its own
                 queue's single producer, so the SPMC invariant holds.
                 Net item count: batch removed, batch - 1 re-pushed = -1. *)
              for i = 1 to Array.length batch - 1 do
                SQ.push s.q batch.(i)
              done;
              Stdlib.Atomic.decr t.total;
              Some batch.(0)
        in
        (* A full pass over the victims in rotating order from [start],
           probing only those [pred] admits; each slot is visited exactly
           once, so an unfiltered pass probes the same victims in the same
           order as the historical sweep. *)
        let sweep_from start pred =
          let rec go k i =
            if k = 0 then None
            else
              let victim = i mod live in
              if victim <> proc && pred victim then
                match probe victim with
                | Some _ as hit -> hit
                | None -> go (k - 1) (i + 1)
              else go (k - 1) (i + 1)
          in
          go live start
        in
        (* the victim that last yielded work is likely still loaded (one
           proc fans out a phase's tasks): probe it first, then sweep the
           rest from a randomized start so a lone loaded queue is found
           in at most [live - 1] probes *)
        let last = s.last_victim in
        let again =
          if last >= 0 && last < live && last <> proc then probe last else None
        in
        match again with
        | Some _ as hit -> hit
        | None -> (
            let start = proc + 1 + (next_rand s mod (live - 1)) in
            if P.Proc.nodes () <= 1 then sweep_from start (fun _ -> true)
            else
              (* node-aware victim order: exhaust same-node victims first —
                 those steals stay off the inter-node link — and only then
                 reach across nodes.  One rand draw either way, so the flat
                 machine's probe sequence (and the simulator goldens over
                 it) is untouched. *)
              let my_node = P.Proc.node_of proc in
              match
                sweep_from start (fun v -> P.Proc.node_of v = my_node)
              with
              | Some _ as hit -> hit
              | None ->
                  sweep_from start (fun v -> P.Proc.node_of v <> my_node))
      end

    let take t ~proc =
      let proc = clamp_proc ~n:(Array.length t.slots) proc in
      match SQ.pop t.slots.(proc).q with
      | Some _ as v ->
          Stdlib.Atomic.decr t.total;
          v
      | None -> steal t ~proc

    let looks_nonempty t ~proc:_ = Stdlib.Atomic.get t.total > 0

    let total_length t =
      Array.fold_left (fun acc s -> acc + SQ.length_hint s.q) 0 t.slots

    let steals t = t.hits
    let steal_attempts t = t.attempts
  end

  (* Pinned micropools: the procs are partitioned into [k] pools
     (proc mod k), each pool shares one locked deque, and a proc only ever
     consumes from its own pool — work never migrates across pools, procs
     never roam.  New threads are sprayed across pools round-robin; resumed
     continuations stay in the resuming proc's pool. *)
  module Micropools (K : sig
    val pools : int
  end) : Thread_intf.SCHEDULER =
  struct
    let name = Printf.sprintf "micropools:%d" K.pools

    type 'a t = { mq : 'a MQ.t; mutable pools : int; mutable rotor : int }

    let create ~procs =
      let k = max 1 (min K.pools procs) in
      { mq = MQ.create ~procs:k; pools = k; rotor = 0 }

    (* Clamping to the acquired-proc count keeps every pool owned by at
       least one proc (pool p is served by procs ≡ p mod pools), so no
       pool can strand work.  Runs before the pool body forks anything,
       so no item can already sit in a slot ≥ the new pool count.  On a
       hierarchical machine pools are node-aligned instead (all procs of a
       node share a pool, keeping each pool's deque node-local), so the
       count is additionally clamped to the number of nodes the acquired
       procs actually span — the spray rotor must never land work in a
       pool no proc consumes. *)
    let prepare t ~procs =
      let cap =
        if P.Proc.nodes () > 1 then min procs (P.Proc.node_of (procs - 1) + 1)
        else procs
      in
      t.pools <- max 1 (min (MQ.procs t.mq) cap)

    let pool t proc =
      let proc = if proc < 0 then 0 else proc in
      if P.Proc.nodes () > 1 then P.Proc.node_of proc mod t.pools
      else proc mod t.pools
    let push_local t ~proc x = MQ.push t.mq ~proc:(pool t proc) x

    let push_new t ~proc:_ x =
      let p = t.rotor mod t.pools in
      t.rotor <- t.rotor + 1;
      MQ.push_back t.mq ~proc:p x

    let take t ~proc = MQ.take_local t.mq ~proc:(pool t proc)

    let looks_nonempty t ~proc =
      MQ.looks_nonempty_local t.mq ~proc:(pool t proc)

    let total_length t = MQ.total_length t.mq
    let steals _ = 0
    let steal_attempts _ = 0
  end

  let instance : t -> (module Thread_intf.SCHEDULER) = function
    | Fifo -> (module Central_fifo)
    | Lifo -> (module Central_lifo)
    | Distributed -> (module Distributed_q)
    | Ws -> (module Work_stealing)
    | Micropools k ->
        (module Micropools (struct
          let pools = k
        end))
end
