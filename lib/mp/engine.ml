type action = ..

type 'a cont = {
  k : ('a, action) Effect.Deep.continuation;
  used : bool Atomic.t;
}

type action +=
  | Resume : 'a cont * 'a -> action
  | Raise : 'a cont * exn -> action
  | Start of (unit -> unit)
  | Stop

type _ Effect.t += Suspend : ('a cont -> action) -> 'a Effect.t

exception Already_resumed
exception Unhandled_action

(* Host-side instrumentation: every suspension is one effect-handler
   round-trip, the unit of cost the simulator's run-ahead fast path avoids.
   A plain (racy) counter: an atomic here costs a fenced RMW on the
   hottest path in the system.  Single-domain backends (the simulator)
   count exactly; multi-domain backends may undercount under contention,
   which is fine for a diagnostic. *)
let suspension_count = ref 0

let suspensions () = !suspension_count
let reset_suspensions () = suspension_count := 0

let suspend f =
  incr suspension_count;
  Effect.perform (Suspend f)

let throw c v = suspend (fun _abandoned -> Resume (c, v))

let throw_exn c e = suspend (fun _abandoned -> Raise (c, e))

(* The body runs in a fresh fiber so that a normal return can be routed back
   to the captured continuation; a body ending in [throw]/[dispatch] simply
   abandons that fiber.  This preserves SML callcc semantics under the
   one-shot discipline. *)
let callcc f =
  suspend (fun c ->
      Start
        (fun () ->
          match f c with
          | v -> throw c v
          | exception e -> throw_exn c e))

let run_fiber ~on_exn f =
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> Stop);
      exnc = on_exn;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend f ->
              Some
                (fun (k : (a, action) Effect.Deep.continuation) ->
                  f { k; used = Atomic.make false })
          | _ -> None);
    }

let claim c = if not (Atomic.compare_and_set c.used false true) then raise Already_resumed

let resume c v =
  claim c;
  Effect.Deep.continue c.k v

let resume_exn c e =
  claim c;
  Effect.Deep.discontinue c.k e
