lib/mp/engine.mli:
