(** Spinning reader/writer lock over the atomic primitives — one of §3.3's
    "more elaborate synchronization constructs" built at the lock level
    rather than the thread level (compare {!Mpsync.Sync.Rwlock}, which
    blocks threads instead of spinning procs).

    A single counter cell encodes the state: -1 = write-locked, 0 = free,
    n>0 = n active readers.  Writers spin for exclusivity; readers spin
    while a writer holds the lock. *)

module Make (P : Lock_intf.PRIMS) : sig
  type t

  val create : unit -> t
  val read_lock : t -> unit
  val try_read_lock : t -> bool
  val read_unlock : t -> unit
  val write_lock : t -> unit
  val try_write_lock : t -> bool
  val write_unlock : t -> unit
  val readers : t -> int
  (** Current reader count (-1 when write-locked); racy snapshot. *)
end
