(* Lock-free single-producer / multi-consumer FIFO with steal-half.

   [tail] is the owner's end (written only by the single producer); [head]
   is the consumption end, advanced by CAS from both the owner's [pop] and
   thieves' [steal_half].  Indices are monotone ints over a circular
   [Obj.t] buffer (ws_deque's representation), so there is no ABA: a CAS
   on [head] succeeds iff no other consumer claimed any part of the
   window since it was read, and success grants exclusive ownership of
   the claimed [head, head') range.

   Steal-half is the point of the structure: one successful CAS transfers
   ceil(n/2) elements, so a thief pays one bus transaction per batch
   instead of one per element (ws_deque's steal-one), amortizing victim
   traffic under heavy stealing.

   Buffer growth is owner-only grow-by-copy.  The copy never mutates the
   old buffer and [head] never moves backwards, so a thief that read the
   old buffer either CASes successfully (its claimed slots were copied,
   not overwritten — the owner writes fresh elements only into the new
   buffer) or fails and discards what it read.  Racy reads of claimed-in-
   flight slots may observe stale values, exactly as in ws_deque; they are
   discarded on CAS failure.

   Like ws_deque, the algorithm is a functor over [Queue_intf.ATOMIC]:
   the default instance below races on [Stdlib.Atomic]; the scheduler
   instantiates it over charged cells so the simulator prices pops and
   steals on the bus; mp_check instantiates it over instrumented cells
   where every access is a serialization point. *)

module Make (A : Queue_intf.ATOMIC) = struct
  type buffer = { log_size : int; segment : Obj.t array }

  let buffer_make log_size =
    { log_size; segment = Array.make (1 lsl log_size) (Obj.repr ()) }

  let buffer_get b i = b.segment.(i land ((1 lsl b.log_size) - 1))
  let buffer_set b i v = b.segment.(i land ((1 lsl b.log_size) - 1)) <- v

  type 'a t = { head : int A.t; tail : int A.t; buf : buffer A.t }

  let create () =
    { head = A.make 0; tail = A.make 0; buf = A.make (buffer_make 4) }

  let size t = max 0 (A.get t.tail - A.get t.head)
  let length_hint t = max 0 (A.unsafe_peek t.tail - A.unsafe_peek t.head)
  let looks_nonempty t = A.unsafe_peek t.tail - A.unsafe_peek t.head > 0

  let grow t b head tail =
    let bigger = buffer_make (b.log_size + 1) in
    for i = head to tail - 1 do
      buffer_set bigger i (buffer_get b i)
    done;
    A.set t.buf bigger;
    bigger

  (* Owner only. *)
  let push t v =
    let tail = A.get t.tail in
    let head = A.get t.head in
    let b = A.get t.buf in
    (* [head] may be stale (it only advances), so [tail - head] is an
       over-estimate of occupancy and growth is conservative. *)
    let b = if tail - head >= 1 lsl b.log_size then grow t b head tail else b in
    buffer_set b tail (Obj.repr v);
    (* publish the element before publishing the new tail *)
    A.set t.tail (tail + 1)

  (* Any consumer: claim the oldest element with a CAS on [head]. *)
  let pop (type a) (t : a t) : a option =
    let rec attempt () =
      let head = A.get t.head in
      let tail = A.get t.tail in
      if tail - head <= 0 then None
      else begin
        let b = A.get t.buf in
        let v : a = Obj.obj (buffer_get b head) in
        if A.compare_and_set t.head head (head + 1) then Some v
        else attempt () (* lost the claim to another consumer *)
      end
    in
    attempt ()

  (* Thief: claim the oldest ceil(n/2) elements with one CAS.  Returns
     [| |] when the queue looked empty or the claim was lost — the thief
     moves on to another victim rather than spinning here. *)
  let steal_half (type a) (t : a t) : a array =
    let head = A.get t.head in
    let tail = A.get t.tail in
    let n = tail - head in
    if n <= 0 then [||]
    else begin
      let k = (n + 1) / 2 in
      let b = A.get t.buf in
      let batch =
        Array.init k (fun i -> (Obj.obj (buffer_get b (head + i)) : a))
      in
      if A.compare_and_set t.head head (head + k) then batch else [||]
    end
end

include Make (Queue_intf.Stdlib_atomic)
