(** Randomized discipline: [deq] removes a uniformly random element.
    The paper names randomized queues as a valid [QUEUE] instance; a
    randomized ready queue gives probabilistic fairness and breaks pathological
    convoy patterns.  Deterministic given the seed. *)

include Queue_intf.QUEUE_EXT

val create_seeded : int -> 'a queue
(** Like [create] but with an explicit PRNG seed ([create] uses seed 0). *)
