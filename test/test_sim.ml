(* The simulated multiprocessor: determinism, virtual-time accounting, the
   bus model, the GC model, proc management and the machine presets. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

module Cfg = struct
  let config = Sim.Sim_config.sequent ~procs:4 ()
end

module P = Sim.Mp_sim.Int (Cfg) ()
module S = Mpthreads.Sched_thread.Make (P)

let cfg = Cfg.config
let cycles n = Sim.Sim_config.cycles_to_seconds cfg n

(* ---------------- configs ---------------- *)

let test_config_lock_pair () =
  let us = Sim.Sim_config.lock_pair_microseconds cfg in
  checkb "sequent pair ~46us" true (us > 44. && us < 48.);
  let sgi = Sim.Sim_config.lock_pair_microseconds (Sim.Sim_config.sgi ()) in
  checkb "sgi pair ~6us" true (sgi > 5. && sgi < 7.)

let test_config_conversions () =
  let c = Sim.Sim_config.seconds_to_cycles cfg 1.0 in
  check "1s at 16MHz" 16_000_000 c;
  checkf "round trip" 1.0 (Sim.Sim_config.cycles_to_seconds cfg c)

(* ---------------- determinism ---------------- *)

let workload () =
  S.with_pool ~procs:4 (fun () ->
      let acc = Atomic.make 0 in
      S.par_iter 64 (fun i ->
          P.Work.step ~instrs:1_000 ();
          ignore (Atomic.fetch_and_add acc i));
      Atomic.get acc)

let test_deterministic_makespan () =
  ignore (P.run workload);
  let m1 = P.Machine.makespan_cycles () in
  ignore (P.run workload);
  let m2 = P.Machine.makespan_cycles () in
  check "identical virtual makespan" m1 m2

let test_deterministic_stats () =
  ignore (P.run workload);
  let s1 = P.stats () in
  ignore (P.run workload);
  let s2 = P.stats () in
  checkf "elapsed" s1.Mp.Stats.elapsed s2.Mp.Stats.elapsed;
  check "alloc" (Mp.Stats.total_alloc_words s1) (Mp.Stats.total_alloc_words s2);
  check "spins" (Mp.Stats.total_lock_spins s1) (Mp.Stats.total_lock_spins s2)

(* ---------------- charging ---------------- *)

let test_charge_advances_clock () =
  ignore (P.run (fun () -> P.Work.charge 1_000));
  checkb "makespan >= charge" true (P.Machine.makespan_cycles () >= 1_000)

let test_charge_exact () =
  ignore (P.run (fun () -> P.Work.charge 12_345));
  check "exact single-proc charge" 12_345 (P.Machine.makespan_cycles ())

let test_step_charges_cpi () =
  ignore (P.run (fun () -> P.Work.step ~instrs:1_000 ~alloc_words:0 ()));
  check "instrs * cpi" (int_of_float (1_000. *. cfg.Sim.Sim_config.cpi))
    (P.Machine.makespan_cycles ())

let test_now_in_seconds () =
  let t =
    P.run (fun () ->
        P.Work.charge 16_000;
        P.Work.now ())
  in
  checkf "1ms at 16MHz" 0.001 t

(* ---------------- allocation and bus ---------------- *)

let test_alloc_accounts_words_and_bytes () =
  ignore (P.run (fun () -> P.Work.alloc ~words:1_000));
  let st = P.stats () in
  check "words" 1_000 (Mp.Stats.total_alloc_words st);
  check "bytes over the bus" (1_000 * cfg.Sim.Sim_config.word_bytes)
    st.Mp.Stats.bus_bytes

let test_bus_busy_matches_bandwidth () =
  ignore (P.run (fun () -> P.Work.alloc ~words:10_000));
  let bytes = 10_000 * cfg.Sim.Sim_config.word_bytes in
  let expected_cycles =
    float_of_int bytes /. cfg.Sim.Sim_config.bus_bytes_per_cycle
  in
  let busy = float_of_int (P.Machine.bus_busy_cycles ()) in
  checkb "occupancy within slicing rounding" true
    (Float.abs (busy -. expected_cycles) /. expected_cycles < 0.05)

let test_bus_contention_serializes () =
  (* two procs allocating heavily must take longer than one proc allocating
     half as much: the bus is shared *)
  let run_procs procs words =
    ignore
      (P.run (fun () ->
           S.with_pool ~procs (fun () ->
               S.par_iter ~chunks:procs procs (fun _ ->
                   P.Work.alloc ~words))));
    P.Machine.makespan_cycles ()
  in
  let t1 = run_procs 1 50_000 in
  let t2 = run_procs 2 50_000 in
  (* total traffic doubled but ran concurrently: the bus serializes it, so
     t2 is clearly more than t1's compute share but at least the bus total *)
  checkb "shared bus visible" true (t2 > t1)

(* ---------------- GC model ---------------- *)

let test_gc_triggers_on_region () =
  ignore
    (P.run (fun () ->
         P.Work.alloc ~words:(cfg.Sim.Sim_config.gc_region_words + 1_000)));
  checkb "collection happened" true (P.Machine.gc_collections () >= 1)

let test_gc_none_under_region () =
  ignore (P.run (fun () -> P.Work.alloc ~words:10_000));
  check "no collection" 0 (P.Machine.gc_collections ())

let test_gc_cost_model () =
  ignore
    (P.run (fun () -> P.Work.alloc ~words:cfg.Sim.Sim_config.gc_region_words));
  let copied =
    int_of_float
      (cfg.Sim.Sim_config.gc_survival
      *. float_of_int cfg.Sim.Sim_config.gc_region_words)
  in
  let expected =
    cfg.Sim.Sim_config.gc_fixed_cycles
    + int_of_float
        (cfg.Sim.Sim_config.gc_cycles_per_word *. float_of_int copied)
  in
  check "duration = fixed + copy" expected (P.Machine.gc_cycles ())

let test_gc_stalls_all_procs () =
  ignore
    (P.run (fun () ->
         S.with_pool ~procs:4 (fun () ->
             S.par_iter ~chunks:4 4 (fun i ->
                 if i = 0 then
                   P.Work.alloc ~words:(cfg.Sim.Sim_config.gc_region_words + 10)
                 else P.Work.charge 2_000_000))));
  let st = P.stats () in
  (* every active proc paid a gc wait *)
  let waited = ref 0 in
  Array.iter
    (fun p -> if p.Mp.Stats.gc_wait > 0. then incr waited)
    st.Mp.Stats.per_proc;
  checkb "barrier stalls active procs" true (!waited >= 2)

let test_gc_excluded_seconds () =
  ignore
    (P.run (fun () ->
         P.Work.alloc ~words:(cfg.Sim.Sim_config.gc_region_words + 10)));
  let total = P.Machine.elapsed_seconds () in
  let no_gc = P.Machine.gc_excluded_seconds () in
  checkb "exclusion removes gc time" true
    (no_gc < total
    && Float.abs (total -. no_gc -. cycles (P.Machine.gc_cycles ())) < 1e-9)

(* ---------------- locks in virtual time ---------------- *)

let test_lock_charges_configured_cycles () =
  ignore
    (P.run (fun () ->
         let l = P.Lock.mutex_lock () in
         P.Lock.lock l;
         P.Lock.unlock l));
  let lock_bus =
    2.
    *. (float_of_int cfg.Sim.Sim_config.lock_bus_bytes
       /. cfg.Sim.Sim_config.bus_bytes_per_cycle)
  in
  let expected =
    float_of_int
      (cfg.Sim.Sim_config.try_lock_cycles + cfg.Sim.Sim_config.unlock_cycles)
    +. lock_bus
  in
  let got = float_of_int (P.Machine.makespan_cycles ()) in
  checkb "uncontended lock pair cost" true (Float.abs (got -. expected) <= 4.)

let test_lock_contention_spins () =
  ignore
    (P.run (fun () ->
         S.with_pool ~procs:4 (fun () ->
             let l = P.Lock.mutex_lock () in
             let acc = ref 0 in
             S.par_iter ~chunks:4 40 (fun _ ->
                 P.Lock.lock l;
                 incr acc;
                 P.Work.charge 5_000;
                 P.Lock.unlock l))));
  checkb "contention produced spins" true
    (Mp.Stats.total_lock_spins (P.stats ()) > 0)

(* ---------------- procs ---------------- *)

let test_proc_acquire_limit () =
  checkb "limit enforced" true
    (P.run (fun () ->
         let spin = Atomic.make true in
         let mk () =
           Mp.Kont_util.cont_of_thunk ~on_return:P.Proc.release_proc (fun () ->
               while Atomic.get spin do
                 P.Work.charge 1_000
               done)
         in
         let acquired = ref 0 in
         (try
            for _ = 1 to 8 do
              P.Proc.acquire_proc (P.Proc.PS (mk (), 0));
              incr acquired
            done
          with Mp.Mp_intf.No_More_Procs -> ());
         Atomic.set spin false;
         !acquired = 3))

let test_proc_datum () =
  let v =
    P.run (fun () ->
        P.Proc.set_datum 9;
        P.Proc.get_datum ())
  in
  check "datum" 9 v

let test_proc_acquire_charges () =
  ignore
    (P.run (fun () ->
         Mp.Engine.callcc (fun k ->
             match P.Proc.acquire_proc (P.Proc.PS (k, 0)) with
             | () -> P.Proc.release_proc ()
             | exception Mp.Mp_intf.No_More_Procs -> ())));
  checkb "acquire has a cost" true
    (P.Machine.makespan_cycles () >= cfg.Sim.Sim_config.acquire_proc_cycles)

let test_deadlock_detection () =
  checkb "deadlock" true
    (match P.run (fun () -> P.Proc.release_proc ()) with
    | _ -> false
    | exception Mp.Mp_intf.Deadlock _ -> true)

let test_idle_accounting () =
  ignore
    (P.run (fun () ->
         S.with_pool ~procs:4 (fun () ->
             (* only the root does real work; workers idle-poll *)
             P.Work.charge 1_000_000)));
  let st = P.stats () in
  checkb "workers accumulated idle time" true (Mp.Stats.idle_fraction st > 0.3)

(* ---------------- trace ---------------- *)

let test_trace_records () =
  P.Machine.enable_trace ();
  ignore
    (P.run (fun () ->
         P.Work.alloc ~words:(cfg.Sim.Sim_config.gc_region_words + 10)));
  let t = Option.get (P.Machine.trace ()) in
  let evs = Sim.Sim_trace.events t in
  checkb "dispatches recorded" true
    (List.exists (function Sim.Sim_trace.Dispatch _ -> true | _ -> false) evs);
  checkb "gc recorded" true
    (List.exists (function Sim.Sim_trace.Gc_start _ -> true | _ -> false) evs);
  checkb "free recorded" true
    (List.exists (function Sim.Sim_trace.Freed _ -> true | _ -> false) evs);
  (* clocks are non-decreasing *)
  let clocks = List.map Sim.Sim_trace.clock_of evs in
  checkb "monotone clocks" true
    (List.for_all2 ( <= )
       (List.filteri (fun i _ -> i < List.length clocks - 1) clocks)
       (List.tl clocks));
  P.Machine.disable_trace ()

let test_trace_ring_bounds () =
  let t = Sim.Sim_trace.create ~capacity:4 in
  for i = 1 to 10 do
    Sim.Sim_trace.record t (Sim.Sim_trace.Dispatch { proc = i; clock = i })
  done;
  check "bounded" 4 (Sim.Sim_trace.length t);
  check "total counted" 10 (Sim.Sim_trace.total_recorded t);
  (match Sim.Sim_trace.events t with
  | Sim.Sim_trace.Dispatch { proc = 7; _ } :: _ -> ()
  | _ -> Alcotest.fail "ring should retain the most recent events");
  Sim.Sim_trace.clear t;
  check "cleared" 0 (Sim.Sim_trace.length t)

(* ---------------- ready heap ---------------- *)

let test_ready_heap_order () =
  let h = Sim.Ready_heap.create ~ids:8 ~dummy:(-1) in
  List.iter
    (fun (clock, id) -> Sim.Ready_heap.push h ~clock ~id id)
    [ (50, 3); (10, 5); (10, 2); (99, 0); (10, 7) ];
  checkb "valid after pushes" true (Sim.Ready_heap.valid h);
  check "size" 5 (Sim.Ready_heap.length h);
  checkb "min key" true (Sim.Ready_heap.min_key h = Some (10, 2));
  let order = List.init 5 (fun _ -> Option.get (Sim.Ready_heap.pop h)) in
  (* earliest clock first; lowest id among equal clocks *)
  Alcotest.(check (list int)) "pop order" [ 2; 5; 7; 3; 0 ] order;
  checkb "empty" true (Sim.Ready_heap.is_empty h)

let test_ready_heap_index () =
  let h = Sim.Ready_heap.create ~ids:4 ~dummy:0 in
  Sim.Ready_heap.push h ~clock:5 ~id:1 11;
  checkb "mem" true (Sim.Ready_heap.mem h ~id:1);
  checkb "not mem" false (Sim.Ready_heap.mem h ~id:0);
  checkb "duplicate rejected" true
    (match Sim.Ready_heap.push h ~clock:9 ~id:1 12 with
    | () -> false
    | exception Sim.Ready_heap.Duplicate_id -> true);
  checkb "ops counted" true (Sim.Ready_heap.ops h >= 1);
  Sim.Ready_heap.clear h;
  checkb "cleared" true (Sim.Ready_heap.is_empty h);
  checkb "membership cleared" false (Sim.Ready_heap.mem h ~id:1);
  Sim.Ready_heap.push h ~clock:1 ~id:1 13;
  checkb "reusable after clear" true (Sim.Ready_heap.pop h = Some 13)

let prop_ready_heap_sorts =
  QCheck.Test.make ~name:"ready heap pops in (clock, id) lexicographic order"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 0 32) (int_range 0 1000))
    (fun clocks ->
      let n = List.length clocks in
      let h = Sim.Ready_heap.create ~ids:(max 1 n) ~dummy:(-1, -1) in
      List.iteri
        (fun id clock -> Sim.Ready_heap.push h ~clock ~id (clock, id))
        clocks;
      let popped = List.init n (fun _ -> Option.get (Sim.Ready_heap.pop h)) in
      popped = List.sort compare popped
      && List.sort compare popped
         = List.sort compare (List.mapi (fun id c -> (c, id)) clocks))

(* ---------------- determinism equivalence (goldens) ---------------- *)

(* The golden values below were captured from the pre-ready-heap,
   always-suspend scheduler (seed of PR 1) by bench/sim_golden.exe.  Any
   scheduler or run-ahead change that alters virtual time fails these; a
   legitimate model change must regenerate the table with that tool and
   justify the diff. *)

module GCfg = struct
  let config = Sim.Sim_config.sequent ~procs:16 ()
end

module G = Sim.Mp_sim.Int (GCfg) ()
module GB = Workloads.Bench_suite.Make (G)

(* Same machine with the run-ahead fast path disabled: one suspension per
   charge, the seed behavior.  Used as a live equivalence oracle. *)
module NoRa =
  Sim.Mp_sim.Int (struct
      let config =
        { (Sim.Sim_config.sequent ~procs:16 ()) with run_ahead = false }
    end)
    ()

module NoRaB = Workloads.Bench_suite.Make (NoRa)

(* (procs, makespan cycles, collections, bus bytes, result witness) *)
let golden : (string * (int * int * int * int * int) list) list =
  [
    ( "allpairs",
      [
        (1, 24989411, 3, 6779796, 3110929143068210077);
        (4, 8254180, 3, 6795260, 3110929143068210077);
        (16, 7240736, 3, 6928468, 3110929143068210077);
      ] );
    ( "mst",
      [
        (1, 13100115, 0, 1144688, 545289);
        (4, 4813737, 0, 1196944, 545289);
        (16, 4121773, 0, 1398592, 545289);
      ] );
    ( "abisort",
      [
        (1, 15615536, 1, 3237376, -3144944675602481919);
        (4, 4766695, 1, 3238384, -3144944675602481919);
        (16, 3261294, 1, 3252032, -3144944675602481919);
      ] );
    ( "simple",
      [
        (1, 6194562, 0, 1365280, 3572242472924374168);
        (4, 1875882, 0, 1366592, 3572242472924374168);
        (16, 1990043, 0, 1372312, 3572242472924374168);
      ] );
    ( "mm",
      [
        (1, 41473586, 1, 4083440, -2429353301021976480);
        (4, 12229207, 1, 4084384, -2429353301021976480);
        (16, 4229267, 1, 4089544, -2429353301021976480);
      ] );
    ( "seq",
      [
        (1, 4850864, 0, 286144, 1);
        (4, 4898818, 0, 1144520, 4);
        (16, 6224842, 2, 4579288, 16);
      ] );
  ]

let golden_case bench rows () =
  List.iter
    (fun (procs, makespan, gc, bus, witness) ->
      let tag s = Printf.sprintf "%s@%d %s" bench procs s in
      let w = GB.run_named bench ~procs in
      check (tag "witness") witness w;
      check (tag "makespan") makespan (G.Machine.makespan_cycles ());
      check (tag "collections") gc (G.Machine.gc_collections ());
      check (tag "bus bytes") bus (G.Machine.bus_bytes ()))
    rows

(* Telemetry must be pure observation: with event recording enabled the
   virtual-time results stay bit-identical to the golden table above, and
   the stream actually captures scheduler/lock activity. *)
let test_golden_telemetry_on () =
  G.Telemetry.enable_memory ~capacity:8192 ();
  Fun.protect
    ~finally:(fun () -> G.Telemetry.disable ())
    (fun () ->
      List.iter (fun (bench, rows) -> golden_case bench rows ()) golden;
      let evs = G.Telemetry.events () in
      checkb "telemetry captured events" true (List.length evs > 0);
      checkb "scheduler events present" true
        (List.exists
           (fun e -> Obs.Event.category_of e = Obs.Event.Sched)
           evs);
      checkb "lock events present" true
        (List.exists (fun e -> Obs.Event.category_of e = Obs.Event.Lock) evs));
  (* and once disabled, the goldens still hold on the same instance *)
  List.iter (fun (bench, rows) -> golden_case bench rows ()) golden

(* Cross-check the oracle: the run-ahead scheduler and the always-suspend
   scheduler agree cycle-for-cycle (the goldens then pin both to the seed). *)
let test_run_ahead_equivalence () =
  List.iter
    (fun (bench, procs) ->
      let wf = GB.run_named bench ~procs in
      let mf = G.Machine.makespan_cycles () in
      let gf = G.Machine.gc_collections () in
      let bf = G.Machine.bus_bytes () in
      let ws = NoRaB.run_named bench ~procs in
      let tag s = Printf.sprintf "%s@%d %s" bench procs s in
      check (tag "witness") ws wf;
      check (tag "makespan") (NoRa.Machine.makespan_cycles ()) mf;
      check (tag "collections") (NoRa.Machine.gc_collections ()) gf;
      check (tag "bus bytes") (NoRa.Machine.bus_bytes ()) bf)
    [ ("abisort", 4); ("mst", 4); ("seq", 16) ]

(* The same oracle at the proc counts the quiescence-epoch coalescing does
   not see elsewhere in the suite: mid-grid (2) and the SGI-sized pool (8).
   Every workload runs on both machines at both counts. *)
let test_run_ahead_equivalence_2_8 () =
  List.iter
    (fun (bench, procs) ->
      let wf = GB.run_named bench ~procs in
      let mf = G.Machine.makespan_cycles () in
      let gf = G.Machine.gc_collections () in
      let bf = G.Machine.bus_bytes () in
      let ws = NoRaB.run_named bench ~procs in
      let tag s = Printf.sprintf "%s@%d %s" bench procs s in
      check (tag "witness") ws wf;
      check (tag "makespan") (NoRa.Machine.makespan_cycles ()) mf;
      check (tag "collections") (NoRa.Machine.gc_collections ()) gf;
      check (tag "bus bytes") (NoRa.Machine.bus_bytes ()) bf)
    (List.concat_map
       (fun bench -> [ (bench, 2); (bench, 8) ])
       [ "allpairs"; "mst"; "abisort"; "simple"; "mm"; "seq" ])

(* The horizon assertion mode ([horizon_debug], the heap_debug analogue for
   interaction horizons) re-evaluates every poller readiness probe and
   cross-checks the ready heap at each coalesced quantum; with it enabled
   the machine must still reproduce the golden table bit-for-bit. *)
module HDbg =
  Sim.Mp_sim.Int (struct
      let config =
        {
          (Sim.Sim_config.sequent ~procs:16 ()) with
          Sim.Sim_config.horizon_debug = true;
          heap_debug = true;
        }
    end)
    ()

module HDbgB = Workloads.Bench_suite.Make (HDbg)

let test_horizon_debug_matches_golden () =
  List.iter
    (fun (bench, procs) ->
      let rows = List.assoc bench golden in
      let makespan, gc, bus, witness =
        List.fold_left
          (fun acc (p, m, g, b, w) -> if p = procs then (m, g, b, w) else acc)
          (0, 0, 0, 0) rows
      in
      let tag s = Printf.sprintf "%s@%d %s" bench procs s in
      let w = HDbgB.run_named bench ~procs in
      check (tag "witness") witness w;
      check (tag "makespan") makespan (HDbg.Machine.makespan_cycles ());
      check (tag "collections") gc (HDbg.Machine.gc_collections ());
      check (tag "bus bytes") bus (HDbg.Machine.bus_bytes ()))
    [ ("mst", 4); ("simple", 16); ("mm", 16) ]

(* ---------------- scheduler policy family ---------------- *)

(* The golden machine under an explicit policy: makespan per (bench,
   procs, policy) on the Sequent-16. *)
let policy_makespan sched bench procs =
  ignore (GB.run_named ~sched bench ~procs);
  G.Machine.makespan_cycles ()

(* Requesting the default policy explicitly is the identity: bit-identical
   to the golden table (the BENCH_sim.json default-policy cells are
   generated through exactly this call path). *)
let test_sched_default_identity () =
  List.iter
    (fun (bench, procs) ->
      let rows = List.assoc bench golden in
      let makespan =
        List.fold_left
          (fun acc (p, m, _, _, _) -> if p = procs then m else acc)
          0 rows
      in
      check
        (Printf.sprintf "%s@%d explicit distributed = golden" bench procs)
        makespan
        (policy_makespan Mpthreads.Sched_policy.Distributed bench procs))
    [ ("mm", 16); ("allpairs", 4); ("mst", 1) ]

(* Work stealing must scale: speedup strictly improves from 1 to 4 procs
   on the irregular workloads. *)
let test_sched_ws_monotone () =
  List.iter
    (fun bench ->
      let m1 = policy_makespan Mpthreads.Sched_policy.Ws bench 1 in
      let m4 = policy_makespan Mpthreads.Sched_policy.Ws bench 4 in
      checkb
        (Printf.sprintf "ws %s: procs 4 (%d) beats procs 1 (%d)" bench m4 m1)
        true (m4 < m1))
    [ "mm"; "allpairs"; "mst"; "fib" ]

(* The headline acceptance: work stealing >= 1.2x over the central FIFO
   baseline at 16 procs on at least two irregular workloads (measured
   margins: mst ~2.0x, fib ~9x), and never slower on the others. *)
let test_sched_ws_beats_fifo () =
  let ratio bench =
    let f = policy_makespan Mpthreads.Sched_policy.Fifo bench 16 in
    let w = policy_makespan Mpthreads.Sched_policy.Ws bench 16 in
    float_of_int f /. float_of_int w
  in
  List.iter
    (fun bench ->
      checkb
        (Printf.sprintf "ws >= 1.2x fifo on %s@16" bench)
        true
        (ratio bench >= 1.2))
    [ "mst"; "fib" ];
  List.iter
    (fun bench ->
      checkb
        (Printf.sprintf "ws not slower than fifo on %s@16" bench)
        true
        (ratio bench >= 1.0))
    [ "mm"; "allpairs" ]

(* Every policy in the family completes every workload with the right
   result witness (virtual times differ by design). *)
let test_sched_all_policies_correct () =
  let expected = List.map (fun (b, _) -> (b, GB.run_named b ~procs:4)) golden in
  List.iter
    (fun sched ->
      List.iter
        (fun (bench, want) ->
          check
            (Printf.sprintf "%s under %s" bench
               (Mpthreads.Sched_policy.to_string sched))
            want
            (GB.run_named ~sched bench ~procs:4))
        expected)
    Mpthreads.Sched_policy.[ Fifo; Lifo; Ws; Micropools 4 ]

(* ---------------- GC cost model family ---------------- *)

(* Requesting the default collector explicitly is the identity:
   bit-identical to the golden table (the --gc stw / MP_REPRO_GC=stw call
   path of bench/sim_golden.exe and the stw cells of BENCH_sim.json are
   generated through exactly this construction). *)
module GStw =
  Sim.Mp_sim.Int (struct
      let config =
        Sim.Sim_config.with_gc
          (Sim.Sim_config.sequent ~procs:16 ())
          (Sim.Gc_model.of_string_exn "stw")
    end)
    ()

module GStwB = Workloads.Bench_suite.Make (GStw)

let test_gc_stw_identity () =
  Alcotest.(check string) "model name" "stw" (GStw.Machine.gc_model ());
  List.iter
    (fun (bench, procs) ->
      let rows = List.assoc bench golden in
      let makespan, gc, bus, witness =
        List.fold_left
          (fun acc (p, m, g, b, w) -> if p = procs then (m, g, b, w) else acc)
          (0, 0, 0, 0) rows
      in
      let tag s = Printf.sprintf "%s@%d %s" bench procs s in
      let w = GStwB.run_named bench ~procs in
      check (tag "witness") witness w;
      check (tag "makespan") makespan (GStw.Machine.makespan_cycles ());
      check (tag "collections") gc (GStw.Machine.gc_collections ());
      check (tag "bus bytes") bus (GStw.Machine.bus_bytes ());
      check (tag "no proc-local minors") 0
        (GStw.Machine.gc_minor_collections ()))
    [ ("mm", 16); ("allpairs", 4); ("mst", 1) ]

(* Run-ahead-vs-always-suspend twins for the non-default collectors: the
   fast path's admission predicate must agree with the slow path on every
   model's accounting, at the proc counts the rest of the suite does not
   cover (2 and the SGI-sized 8). *)
module ParStw =
  Sim.Mp_sim.Int (struct
      let config =
        Sim.Sim_config.with_gc
          (Sim.Sim_config.sequent ~procs:16 ())
          (Sim.Gc_model.Par_stw 0)
    end)
    ()

module ParStwB = Workloads.Bench_suite.Make (ParStw)

module ParStwNoRa =
  Sim.Mp_sim.Int (struct
      let config =
        {
          (Sim.Sim_config.with_gc
             (Sim.Sim_config.sequent ~procs:16 ())
             (Sim.Gc_model.Par_stw 0))
          with
          run_ahead = false;
        }
    end)
    ()

module ParStwNoRaB = Workloads.Bench_suite.Make (ParStwNoRa)

module MinorPp =
  Sim.Mp_sim.Int (struct
      let config =
        Sim.Sim_config.with_gc
          (Sim.Sim_config.sequent ~procs:16 ())
          Sim.Gc_model.Minor_pp
    end)
    ()

module MinorPpB = Workloads.Bench_suite.Make (MinorPp)

module MinorPpNoRa =
  Sim.Mp_sim.Int (struct
      let config =
        {
          (Sim.Sim_config.with_gc
             (Sim.Sim_config.sequent ~procs:16 ())
             Sim.Gc_model.Minor_pp)
          with
          run_ahead = false;
        }
    end)
    ()

module MinorPpNoRaB = Workloads.Bench_suite.Make (MinorPpNoRa)

let gc_twin_benches = [ "mm"; "abisort"; "seq" ]

let test_gc_par_stw_run_ahead_equivalence () =
  List.iter
    (fun (bench, procs) ->
      let wf = ParStwB.run_named bench ~procs in
      let mf = ParStw.Machine.makespan_cycles () in
      let gf = ParStw.Machine.gc_collections () in
      let pf = ParStw.Machine.gc_cycles () in
      let bf = ParStw.Machine.bus_bytes () in
      let ws = ParStwNoRaB.run_named bench ~procs in
      let tag s = Printf.sprintf "par_stw %s@%d %s" bench procs s in
      check (tag "witness") ws wf;
      check (tag "makespan") (ParStwNoRa.Machine.makespan_cycles ()) mf;
      check (tag "collections") (ParStwNoRa.Machine.gc_collections ()) gf;
      check (tag "pause cycles") (ParStwNoRa.Machine.gc_cycles ()) pf;
      check (tag "bus bytes") (ParStwNoRa.Machine.bus_bytes ()) bf)
    (List.concat_map (fun b -> [ (b, 2); (b, 8) ]) gc_twin_benches)

let test_gc_minor_pp_run_ahead_equivalence () =
  List.iter
    (fun (bench, procs) ->
      let wf = MinorPpB.run_named bench ~procs in
      let mf = MinorPp.Machine.makespan_cycles () in
      let gf = MinorPp.Machine.gc_collections () in
      let minf = MinorPp.Machine.gc_minor_collections () in
      let pf = MinorPp.Machine.gc_cycles () in
      let bf = MinorPp.Machine.bus_bytes () in
      let ws = MinorPpNoRaB.run_named bench ~procs in
      let tag s = Printf.sprintf "minor_pp %s@%d %s" bench procs s in
      check (tag "witness") ws wf;
      check (tag "makespan") (MinorPpNoRa.Machine.makespan_cycles ()) mf;
      check (tag "collections") (MinorPpNoRa.Machine.gc_collections ()) gf;
      check (tag "minors") (MinorPpNoRa.Machine.gc_minor_collections ()) minf;
      check (tag "pause cycles") (MinorPpNoRa.Machine.gc_cycles ()) pf;
      check (tag "bus bytes") (MinorPpNoRa.Machine.bus_bytes ()) bf)
    (List.concat_map (fun b -> [ (b, 2); (b, 8) ]) gc_twin_benches)

(* The headline exhibit at test scale: per-proc minor heaps strictly
   shorten the mm 16-proc makespan versus the sequential stop-the-world
   collector (its one big collection stalls all 16 procs). *)
let test_gc_minor_pp_headroom () =
  ignore (GStwB.run_named "mm" ~procs:16);
  let stw = GStw.Machine.makespan_cycles () in
  ignore (MinorPpB.run_named "mm" ~procs:16);
  let mpp = MinorPp.Machine.makespan_cycles () in
  checkb
    (Printf.sprintf "minor_pp mm@16 makespan %d < stw %d" mpp stw)
    true (mpp < stw);
  checkb "minor_pp ran proc-local minors" true
    (MinorPp.Machine.gc_minor_collections () > 0)

(* Drive a fresh per-proc minor-heap model instance the way the simulator
   does (fast path when admitted, slow path otherwise; a stop-the-world
   major whenever one is pending) and cross-check every step against an
   independent mirror of its accounting rules. *)
let prop_minor_pp_invariants =
  QCheck.Test.make ~name:"minor_pp: conservation, bounds, major trigger"
    ~count:100
    QCheck.(
      pair (int_range 1 8)
        (list_of_size
           Gen.(int_range 1 300)
           (pair (int_range 0 63) (int_range 1 32))))
    (fun (procs, ops) ->
      let region = 192 in
      let survival = 0.5 in
      let module M =
        (val Sim.Gc_model.instance Sim.Gc_model.Minor_pp
               {
                 Sim.Gc_model.procs;
                 region_words = region;
                 survival;
                 cycles_per_word = 2.0;
                 fixed_cycles = 100;
                 parallelism = 1.0;
                 minor_fixed_cycles = 10;
                 barrier_cycles = 5;
               })
      in
      let minor_region = max 1 (region / procs) in
      let used = Array.make procs 0 in
      let promoted = ref 0 in
      let minors = ref 0 in
      let majors = ref 0 in
      let allocated = ref 0 in
      let collected = ref 0 in
      let last_pauses = ref 0 in
      let ok = ref true in
      let expect b = if not b then ok := false in
      List.iter
        (fun (r, words) ->
          let proc = r mod procs in
          allocated := !allocated + words;
          (* r >= 32 forces the suspend path even for an admissible slice,
             like a failed inline bus charge does in the simulator *)
          if M.admit ~proc ~words && r < 32 then begin
            M.commit_fast ~proc ~words;
            used.(proc) <- used.(proc) + words
          end
          else begin
            let pause, got = M.alloc_slow ~proc ~words in
            used.(proc) <- used.(proc) + words;
            if used.(proc) >= minor_region then begin
              (* the slice filled the proc's minor region: an independent
                 minor must have collected exactly that region *)
              expect (got = used.(proc));
              expect (pause > 0);
              incr minors;
              collected := !collected + got;
              promoted :=
                !promoted
                + int_of_float (survival *. float_of_int used.(proc));
              used.(proc) <- 0
            end
            else begin
              expect (pause = 0);
              expect (got = 0)
            end
          end;
          (* model/mirror agreement after every op *)
          expect (M.minor_collections () = !minors);
          expect (M.region_used () = !promoted);
          expect (!M.pending = (!promoted >= region));
          (* pause accounting is monotone *)
          expect (M.pause_cycles () >= !last_pauses);
          last_pauses := M.pause_cycles ();
          (* conservation: every allocated word is either still in a minor
             region or was scanned by a minor collection *)
          expect (!allocated = !collected + Array.fold_left ( + ) 0 used);
          (* a pending major runs at the next barrier, collects exactly the
             promoted words, and clears the trigger *)
          if !M.pending then begin
            let e = M.episode ~waiters:procs in
            expect (e.Sim.Gc_model.kind = Sim.Gc_model.Major);
            expect (e.Sim.Gc_model.region_words = !promoted);
            M.finish_episode e;
            incr majors;
            promoted := 0;
            expect (M.region_used () = 0);
            expect (not !M.pending);
            expect (M.major_collections () = !majors)
          end)
        ops;
      !ok)

(* ---------------- hierarchical (NUMA) machines ---------------- *)

(* A one-node Numa machine is arithmetically the flat bus: every sharer
   set stays local, so the golden table must hold bit-for-bit and no
   remote traffic or invalidations may appear. *)
module Numa1 =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.numa ~nodes:1 ~procs_per_node:16 ()
    end)
    ()

module Numa1B = Workloads.Bench_suite.Make (Numa1)

let test_numa_one_node_is_flat () =
  let w = Numa1B.run_named "mm" ~procs:16 in
  check "witness" (-2429353301021976480) w;
  check "golden makespan" 4229267 (Numa1.Machine.makespan_cycles ());
  check "golden bus bytes" 4089544 (Numa1.Machine.bus_bytes ());
  check "no remote traffic" 0 (Numa1.Machine.remote_bytes ());
  check "no invalidations" 0 (Numa1.Machine.invalidations ())

(* A two-node machine and its always-suspend twin: the run-ahead fast
   path must agree with the slow path on the NUMA charge model too —
   including where each byte went and every invalidation. *)
module N2x8 =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.numa ~nodes:2 ~procs_per_node:8 ()
    end)
    ()

module N2x8B = Workloads.Bench_suite.Make (N2x8)

module N2x8NoRa =
  Sim.Mp_sim.Int (struct
      let config =
        {
          (Sim.Sim_config.numa ~nodes:2 ~procs_per_node:8 ()) with
          run_ahead = false;
        }
    end)
    ()

module N2x8NoRaB = Workloads.Bench_suite.Make (N2x8NoRa)

let test_numa_run_ahead_equivalence () =
  List.iter
    (fun (bench, procs) ->
      let wf = N2x8B.run_named bench ~procs in
      let mf = N2x8.Machine.makespan_cycles () in
      let bf = N2x8.Machine.bus_bytes () in
      let rf = N2x8.Machine.remote_bytes () in
      let inf = N2x8.Machine.invalidations () in
      let ws = N2x8NoRaB.run_named bench ~procs in
      let tag s = Printf.sprintf "%s@%d %s" bench procs s in
      check (tag "witness") ws wf;
      check (tag "makespan") (N2x8NoRa.Machine.makespan_cycles ()) mf;
      check (tag "bus bytes") (N2x8NoRa.Machine.bus_bytes ()) bf;
      check (tag "remote bytes") (N2x8NoRa.Machine.remote_bytes ()) rf;
      check (tag "invalidations") (N2x8NoRa.Machine.invalidations ()) inf)
    [ ("mm", 16); ("mst", 16); ("seq", 16) ]

(* Contiguous node grouping: a pool that fits node 0 never crosses the
   link; spanning both nodes moves contended lock and queue words across
   it, each crossing invalidating the other node's copies. *)
let test_numa_locality () =
  ignore (N2x8B.run_named "mm" ~procs:8);
  check "one-node pool: no remote traffic" 0 (N2x8.Machine.remote_bytes ());
  check "one-node pool: no invalidations" 0 (N2x8.Machine.invalidations ());
  ignore (N2x8B.run_named "mm" ~procs:16);
  checkb "two-node pool moves remote bytes" true
    (N2x8.Machine.remote_bytes () > 0);
  checkb "two-node pool invalidates" true (N2x8.Machine.invalidations () > 0)

(* The canonical large machine of the committed sweeps. *)
module N1024 =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.of_machine_string_exn "numa1024"
    end)
    ()

module N1024B = Workloads.Bench_suite.Make (N1024)

(* Large-P regression guard for the run-ahead machinery: episode
   coalescing must stay effective when the ready heap holds hundreds of
   procs.  Budgets are ~3-4x the measured values (mm 3.1k/3.7k, fib
   110k/101k suspensions) so model tweaks fit but an accidental return
   to suspend-per-charge (~1 suspension per decision) fails loudly. *)
let test_numa_large_p_suspension_budget () =
  List.iter
    (fun (bench, procs, budget) ->
      ignore (N1024B.run_named bench ~procs);
      let susp = N1024.Machine.suspensions () in
      checkb
        (Printf.sprintf "%s@%d suspensions %d under %d" bench procs susp
           budget)
        true (susp < budget);
      checkb
        (Printf.sprintf "%s@%d coalescing active" bench procs)
        true
        (N1024.Machine.coalesced_charges () > 0))
    [
      ("mm", 64, 20_000);
      ("mm", 256, 30_000);
      ("fib", 64, 400_000);
      ("fib", 256, 400_000);
    ]

(* Host-seconds guard on the quick sweep's heaviest cell: a 1024-proc
   run must stay affordable (measured ~4-10s solo; the budget leaves
   room for slow CI hosts without letting it grow unbounded). *)
let test_numa_1024_host_budget () =
  let t0 = Sys.time () in
  ignore
    (N1024B.run_named
       ~sched:(Mpthreads.Sched_policy.of_string_exn "ws")
       "mm" ~procs:1024);
  let host = Sys.time () -. t0 in
  checkb
    (Printf.sprintf "ws mm@1024 host seconds %.1f under 60" host)
    true (host < 60.)

(* ---------------- sim-core host cost budget ---------------- *)

(* Smoke check that the run-ahead fast path stays effective: on a fixed
   single-proc workload it must (a) stay under an absolute suspension
   budget and (b) beat the always-suspend scheduler by >= 2x.  The seed
   scheduler spent ~8800 suspensions here. *)
let test_suspension_budget () =
  ignore (GB.run_named "mm" ~procs:1);
  let fast = G.Machine.suspensions () in
  let decisions = G.Machine.sched_decisions () in
  ignore (NoRaB.run_named "mm" ~procs:1);
  let slow = NoRa.Machine.suspensions () in
  checkb
    (Printf.sprintf "fast path under budget (%d suspensions)" fast)
    true (fast < 1_000);
  checkb
    (Printf.sprintf "fast >= 2x fewer suspensions (%d vs %d)" fast slow)
    true (2 * fast <= slow);
  checkb "decisions collapsed too" true (decisions < 1_000);
  checkb "coalesced charges recorded" true (G.Machine.coalesced_charges () > 0);
  checkb "heap ops counted" true (G.Machine.heap_ops () >= 2 * decisions)

let qt = Testkit.to_alcotest

let prop_charge_sum =
  QCheck.Test.make ~name:"single proc: makespan = sum of charges" ~count:50
    QCheck.(list (int_range 1 10_000))
    (fun charges ->
      ignore (P.run (fun () -> List.iter P.Work.charge charges));
      P.Machine.makespan_cycles () = List.fold_left ( + ) 0 charges)

let prop_alloc_conservation =
  QCheck.Test.make ~name:"alloc words are conserved in stats" ~count:50
    QCheck.(list (int_range 1 2_000))
    (fun allocs ->
      ignore (P.run (fun () -> List.iter (fun w -> P.Work.alloc ~words:w) allocs));
      Mp.Stats.total_alloc_words (P.stats ()) = List.fold_left ( + ) 0 allocs)

let prop_parallel_deterministic =
  QCheck.Test.make ~name:"random parallel workloads are deterministic"
    ~count:20
    QCheck.(pair (int_range 1 4) (list (int_range 100 5_000)))
    (fun (procs, works) ->
      let run () =
        ignore
          (P.run (fun () ->
               S.with_pool ~procs (fun () ->
                   S.fork_join
                     (List.map (fun w () -> P.Work.step ~instrs:w ()) works))));
        P.Machine.makespan_cycles ()
      in
      let a = run () in
      let b = run () in
      a = b)

let prop_more_procs_never_slower_for_independent_work =
  QCheck.Test.make
    ~name:
      "independent equal tasks: 4 procs beat 1 proc once work dwarfs pool \
       setup"
    ~count:20
    (QCheck.int_range 8 32)
    (fun tasks ->
      let time procs =
        ignore
          (P.run (fun () ->
               S.with_pool ~procs (fun () ->
                   S.par_iter ~chunks:tasks tasks (fun _ ->
                       P.Work.step ~instrs:50_000 ~alloc_words:0 ()))));
        P.Machine.makespan_cycles ()
      in
      time 4 < time 1)

let () =
  Alcotest.run "sim"
    [
      ( "config",
        [
          Alcotest.test_case "lock pair us" `Quick test_config_lock_pair;
          Alcotest.test_case "conversions" `Quick test_config_conversions;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "makespan" `Quick test_deterministic_makespan;
          Alcotest.test_case "stats" `Quick test_deterministic_stats;
        ] );
      ( "charging",
        [
          Alcotest.test_case "advances clock" `Quick test_charge_advances_clock;
          Alcotest.test_case "exact" `Quick test_charge_exact;
          Alcotest.test_case "step cpi" `Quick test_step_charges_cpi;
          Alcotest.test_case "now in seconds" `Quick test_now_in_seconds;
        ] );
      ( "bus",
        [
          Alcotest.test_case "alloc accounting" `Quick
            test_alloc_accounts_words_and_bytes;
          Alcotest.test_case "bandwidth occupancy" `Quick
            test_bus_busy_matches_bandwidth;
          Alcotest.test_case "contention serializes" `Quick
            test_bus_contention_serializes;
        ] );
      ( "gc",
        [
          Alcotest.test_case "triggers on region" `Quick
            test_gc_triggers_on_region;
          Alcotest.test_case "none under region" `Quick test_gc_none_under_region;
          Alcotest.test_case "cost model" `Quick test_gc_cost_model;
          Alcotest.test_case "stalls all procs" `Quick test_gc_stalls_all_procs;
          Alcotest.test_case "gc-excluded time" `Quick test_gc_excluded_seconds;
        ] );
      ( "locks",
        [
          Alcotest.test_case "configured cycles" `Quick
            test_lock_charges_configured_cycles;
          Alcotest.test_case "contention spins" `Quick test_lock_contention_spins;
        ] );
      ( "procs",
        [
          Alcotest.test_case "acquire limit" `Quick test_proc_acquire_limit;
          Alcotest.test_case "datum" `Quick test_proc_datum;
          Alcotest.test_case "acquire charges" `Quick test_proc_acquire_charges;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "idle accounting" `Quick test_idle_accounting;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records events" `Quick test_trace_records;
          Alcotest.test_case "ring bounds" `Quick test_trace_ring_bounds;
        ] );
      ( "ready heap",
        [
          Alcotest.test_case "pop order" `Quick test_ready_heap_order;
          Alcotest.test_case "index ops" `Quick test_ready_heap_index;
          qt prop_ready_heap_sorts;
        ] );
      ( "goldens",
        List.map
          (fun (bench, rows) ->
            Alcotest.test_case bench `Quick (golden_case bench rows))
          golden );
      ( "telemetry",
        [
          Alcotest.test_case "goldens bit-identical with telemetry on" `Quick
            test_golden_telemetry_on;
        ] );
      ( "run-ahead",
        [
          Alcotest.test_case "equivalent to always-suspend" `Quick
            test_run_ahead_equivalence;
          Alcotest.test_case "equivalent at procs 2 and 8" `Quick
            test_run_ahead_equivalence_2_8;
          Alcotest.test_case "horizon assertion mode matches goldens" `Quick
            test_horizon_debug_matches_golden;
          Alcotest.test_case "suspension budget" `Quick test_suspension_budget;
        ] );
      ( "numa",
        [
          Alcotest.test_case "one node = flat golden" `Quick
            test_numa_one_node_is_flat;
          Alcotest.test_case "run-ahead equivalent on two nodes" `Quick
            test_numa_run_ahead_equivalence;
          Alcotest.test_case "node locality of traffic" `Quick
            test_numa_locality;
          Alcotest.test_case "large-P suspension budget" `Slow
            test_numa_large_p_suspension_budget;
          Alcotest.test_case "1024-proc host budget" `Slow
            test_numa_1024_host_budget;
        ] );
      ( "sched-policies",
        [
          Alcotest.test_case "explicit default = golden" `Quick
            test_sched_default_identity;
          Alcotest.test_case "ws speedup monotone 1->4" `Slow
            test_sched_ws_monotone;
          Alcotest.test_case "ws beats central fifo at 16" `Slow
            test_sched_ws_beats_fifo;
          Alcotest.test_case "all policies correct" `Slow
            test_sched_all_policies_correct;
        ] );
      ( "gc-models",
        [
          Alcotest.test_case "explicit stw = golden" `Quick
            test_gc_stw_identity;
          Alcotest.test_case "par_stw run-ahead equivalent at 2 and 8" `Quick
            test_gc_par_stw_run_ahead_equivalence;
          Alcotest.test_case "minor_pp run-ahead equivalent at 2 and 8" `Quick
            test_gc_minor_pp_run_ahead_equivalence;
          Alcotest.test_case "minor_pp lifts mm@16" `Quick
            test_gc_minor_pp_headroom;
          qt prop_minor_pp_invariants;
        ] );
      ( "properties",
        [
          qt prop_charge_sum;
          qt prop_alloc_conservation;
          qt prop_parallel_deterministic;
          qt prop_more_procs_never_slower_for_independent_work;
        ] );
    ]
