(* Open-loop server-workload sweep driver (the ROADMAP "millions of users"
   exhibit): a (scheduler × procs) latency-tail grid at a fixed offered
   load plus a per-scheduler saturation ramp at full machine width, both
   fanned out over Job_pool on private machine instances so every rendering
   is byte-identical for any --jobs. *)

type cell = {
  machine : string;
  sched : string;
  procs : int;
  rate : float;
  requests : int;
  completed : int;
  elapsed : float;
  throughput : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  p999_ns : int;
  mean_ns : float;
  queue_wait : float;
  buckets : (int * int) list;
}

let schedulers = [ "fifo"; "distributed"; "ws" ]
let grid_procs = [ 1; 4; 16 ]

(* Offered loads for the saturation ramp, requests per virtual second at 16
   procs on the Sequent model.  Pipeline capacity there is ~460 req/s
   (bounded by the CML global lock, not the workers), so the ramp crosses
   the knee inside the list. *)
let ramp_rates ~quick =
  if quick then [ 150.; 300.; 450.; 700. ]
  else [ 150.; 200.; 250.; 300.; 350.; 400.; 450.; 500.; 600.; 700. ]

let base_config ~quick =
  if quick then { Workloads.Server.default with requests = 600 }
  else Workloads.Server.default

let run_cell ~machine ~config (sched, procs, rate) =
  let module M =
    Sim.Mp_sim.Int (struct
        let config = Sim.Sim_config.of_machine_string_exn ~sched machine
      end)
      ()
  in
  let module S = Workloads.Server.Make (M) in
  let cfg = { config with Workloads.Server.rate } in
  let r =
    S.run ~procs ~sched:(Mpthreads.Sched_policy.of_string_exn sched) cfg
  in
  {
    machine;
    sched;
    procs;
    rate;
    requests = cfg.Workloads.Server.requests;
    completed = r.Workloads.Server.completed;
    elapsed = r.Workloads.Server.elapsed;
    throughput = r.Workloads.Server.throughput;
    p50_ns = r.Workloads.Server.p50;
    p95_ns = r.Workloads.Server.p95;
    p99_ns = r.Workloads.Server.p99;
    p999_ns = r.Workloads.Server.p999;
    mean_ns = Obs.Histogram.mean r.Workloads.Server.hist;
    queue_wait = r.Workloads.Server.queue_wait;
    buckets = Obs.Histogram.nonzero_buckets r.Workloads.Server.hist;
  }

let resolve_jobs jobs = Exec.Job_pool.resolve_jobs jobs

let grid ?(quick = false) ?jobs ?(machine = "sequent") () =
  let config = base_config ~quick in
  let cells =
    List.concat_map
      (fun sched -> List.map (fun procs -> (sched, procs, config.Workloads.Server.rate)) grid_procs)
      schedulers
  in
  Exec.Job_pool.map ~jobs:(resolve_jobs jobs) (run_cell ~machine ~config) cells

let ramp ?(quick = false) ?jobs ?(machine = "sequent") ?(procs = 16) () =
  let config = base_config ~quick in
  let cells =
    List.concat_map
      (fun sched -> List.map (fun rate -> (sched, procs, rate)) (ramp_rates ~quick))
      schedulers
  in
  Exec.Job_pool.map ~jobs:(resolve_jobs jobs) (run_cell ~machine ~config) cells

(* Saturation knee of one scheduler's ramp: the lowest offered load whose
   p99 exceeds 5x the p99 at the lightest load — i.e. where queueing
   delay, not service time, starts to own the tail. *)
let knee cells ~sched =
  let mine =
    List.filter (fun c -> c.sched = sched) cells
    |> List.sort (fun a b -> compare a.rate b.rate)
  in
  match mine with
  | [] -> None
  | base :: _ ->
      let blowup = 5 * max 1 base.p99_ns in
      List.find_opt (fun c -> c.p99_ns > blowup) mine
      |> Option.map (fun c -> c.rate)

let ms ns = float_of_int ns /. 1e6

let print_server fmt grid_cells ramp_cells =
  Format.fprintf fmt
    "@.== server: open-loop latency tails (machine %s, Poisson arrivals) \
     ==@."
    (match grid_cells with c :: _ -> c.machine | [] -> "?");
  Format.fprintf fmt
    "@[<v>%-12s %5s %8s %9s %9s %9s %9s %9s %8s@," "sched" "procs" "rate/s"
    "tput/s" "p50ms" "p95ms" "p99ms" "p999ms" "qwait_s";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-12s %5d %8.0f %9.1f %9.2f %9.2f %9.2f %9.2f %8.3f@,"
        c.sched c.procs c.rate c.throughput (ms c.p50_ns) (ms c.p95_ns)
        (ms c.p99_ns) (ms c.p999_ns) c.queue_wait)
    grid_cells;
  Format.fprintf fmt "@]@.";
  (match ramp_cells with
  | [] -> ()
  | c0 :: _ ->
      Format.fprintf fmt
        "@.== server: saturation ramp (%d procs; offered load vs p99) ==@."
        c0.procs;
      Format.fprintf fmt "@[<v>%-12s %8s %9s %9s %9s@," "sched" "rate/s"
        "tput/s" "p99ms" "p999ms";
      List.iter
        (fun c ->
          Format.fprintf fmt "%-12s %8.0f %9.1f %9.2f %9.2f@," c.sched c.rate
            c.throughput (ms c.p99_ns) (ms c.p999_ns))
        ramp_cells;
      Format.fprintf fmt "@]@.";
      List.iter
        (fun sched ->
          match knee ramp_cells ~sched with
          | Some r ->
              Format.fprintf fmt "knee %-12s p99 blows up at %.0f req/s@."
                sched r
          | None ->
              Format.fprintf fmt "knee %-12s none within the ramp@." sched)
        schedulers)

(* ---- BENCH_server.json ------------------------------------------------ *)

let cell_json c =
  Printf.sprintf
    "{\"machine\":\"%s\",\"sched\":\"%s\",\"procs\":%d,\"rate\":%.1f,\
     \"requests\":%d,\"completed\":%d,\"elapsed_s\":%.9f,\
     \"throughput\":%.3f,\"p50_ns\":%d,\"p95_ns\":%d,\"p99_ns\":%d,\
     \"p999_ns\":%d,\"mean_ns\":%.1f,\"queue_wait_s\":%.9f}"
    c.machine c.sched c.procs c.rate c.requests c.completed c.elapsed
    c.throughput c.p50_ns c.p95_ns c.p99_ns c.p999_ns c.mean_ns c.queue_wait

let to_json ~quick grid_cells ramp_cells =
  let b = Buffer.create 4096 in
  let cfg = base_config ~quick in
  Buffer.add_string b "{\n  \"schema\": \"mp-repro/server/v1\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"config\": {\"requests\": %d, \"arrival\": \"poisson\", \
        \"service\": \"exp\", \"service_mean_instrs\": %d, \"shards\": %d, \
        \"workers_per_shard\": %d, \"queue_cap\": %d, \"seed\": %d},\n"
       cfg.Workloads.Server.requests cfg.Workloads.Server.service_mean_instrs
       cfg.Workloads.Server.shards cfg.Workloads.Server.workers_per_shard
       cfg.Workloads.Server.queue_cap cfg.Workloads.Server.seed);
  Buffer.add_string b "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b ("    " ^ cell_json c))
    grid_cells;
  Buffer.add_string b "\n  ],\n  \"ramp\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b ("    " ^ cell_json c))
    ramp_cells;
  Buffer.add_string b "\n  ],\n  \"knee\": {";
  List.iteri
    (fun i sched ->
      if i > 0 then Buffer.add_string b ", ";
      match knee ramp_cells ~sched with
      | Some r -> Buffer.add_string b (Printf.sprintf "\"%s\": %.1f" sched r)
      | None -> Buffer.add_string b (Printf.sprintf "\"%s\": null" sched))
    schedulers;
  Buffer.add_string b "}\n}\n";
  Buffer.contents b
