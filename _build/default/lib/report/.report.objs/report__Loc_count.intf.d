lib/report/loc_count.mli: Format
