(* Thread packages: UniThread (Figure 1), MPThread (Figure 3) on both real
   backends, the evaluation package (Sched_thread), and the Modula-3 style
   package. *)

open Mp

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

module U = Mp_uniproc.Int ()

(* ---------------- UniThread (Figure 1) ---------------- *)

module UT_fifo = Mpthreads.Uni_thread.Make (Queues.Fifo_queue)
module UT_lifo = Mpthreads.Uni_thread.Make (Queues.Lifo_queue)

let test_uni_fork_runs_child_first () =
  (* Figure 1 semantics: fork suspends the parent and runs the child *)
  UT_fifo.reset ();
  let log = ref [] in
  U.run (fun () ->
      log := `Main0 :: !log;
      UT_fifo.fork (fun () -> log := `Child :: !log);
      log := `Main1 :: !log;
      UT_fifo.yield ());
  checkb "child ran before parent resumed" true
    (List.rev !log = [ `Main0; `Child; `Main1 ])

let test_uni_ids () =
  UT_fifo.reset ();
  let ids = ref [] in
  U.run (fun () ->
      check "main id" 0 (UT_fifo.id ());
      UT_fifo.fork (fun () -> ids := UT_fifo.id () :: !ids);
      UT_fifo.fork (fun () -> ids := UT_fifo.id () :: !ids);
      UT_fifo.yield ();
      check "main id restored" 0 (UT_fifo.id ()));
  check_list "fresh ids" [ 1; 2 ] (List.sort compare !ids)

let test_uni_yield_round_robin () =
  UT_fifo.reset ();
  let log = ref [] in
  U.run (fun () ->
      UT_fifo.fork (fun () ->
          log := "a1" :: !log;
          UT_fifo.yield ();
          log := "a2" :: !log);
      UT_fifo.fork (fun () ->
          log := "b1" :: !log;
          UT_fifo.yield ();
          log := "b2" :: !log);
      UT_fifo.yield ();
      UT_fifo.yield ();
      UT_fifo.yield ());
  Alcotest.(check (list string))
    "fifo interleaving" [ "a1"; "b1"; "a2"; "b2" ]
    (List.rev !log)

let test_uni_scheduling_policy_is_queue () =
  (* the paper's point: changing the functor argument changes the policy *)
  UT_lifo.reset ();
  let log = ref [] in
  U.run (fun () ->
      (* children run immediately on fork (depth-first), so ordering under
         LIFO differs from FIFO once yields are involved *)
      UT_lifo.fork (fun () ->
          log := 1 :: !log;
          UT_lifo.yield ();
          log := 11 :: !log);
      UT_lifo.fork (fun () ->
          log := 2 :: !log;
          UT_lifo.yield ();
          log := 22 :: !log);
      UT_lifo.yield ();
      UT_lifo.yield ();
      UT_lifo.yield ());
  (* under LIFO a yielding thread pops itself right back: depth-first *)
  check_list "lifo interleaving" [ 1; 11; 2; 22 ] (List.rev !log)

let test_uni_dispatch_empty_raises () =
  UT_fifo.reset ();
  Alcotest.check_raises "Figure 1: Empty escapes dispatch" Queues.Queue_intf.Empty
    (fun () -> U.run (fun () -> UT_fifo.dispatch ()) |> ignore)

let test_uni_many_threads () =
  UT_fifo.reset ();
  let n = 2_000 in
  let count = ref 0 in
  U.run (fun () ->
      for _ = 1 to n do
        UT_fifo.fork (fun () -> incr count)
      done;
      UT_fifo.yield ());
  check "thousands of threads" n !count

(* ---------------- MPThread (Figure 3) ---------------- *)

module D =
  Mp_domains.Int (struct
      let max_procs = 4
    end)
    ()

module MT = Mpthreads.Mp_thread.Make (D) (Queues.Fifo_queue)
module MT_uni = Mpthreads.Mp_thread.Make (U) (Queues.Fifo_queue)

let test_mp_thread_on_uniproc () =
  (* Figure 3 degrades to Figure 1 when acquire_proc always fails *)
  MT_uni.reset ();
  let count = ref 0 in
  let v =
    U.run (fun () ->
        for _ = 1 to 50 do
          MT_uni.fork (fun () -> incr count)
        done;
        let rec wait () =
          if !count < 50 then begin
            MT_uni.yield ();
            wait ()
          end
          else !count
        in
        wait ())
  in
  check "all children ran" 50 v

let test_mp_thread_parallel_counter () =
  MT.reset ();
  let n = 300 in
  let counter = ref 0 in
  let lock = D.Lock.mutex_lock () in
  let v =
    D.run (fun () ->
        for _ = 1 to n do
          MT.fork (fun () ->
              D.Lock.lock lock;
              incr counter;
              D.Lock.unlock lock)
        done;
        let rec wait () =
          D.Lock.lock lock;
          let c = !counter in
          D.Lock.unlock lock;
          if c < n then begin
            MT.yield ();
            wait ()
          end
          else c
        in
        wait ())
  in
  check "all threads ran across procs" n v

let test_mp_thread_ids_unique () =
  MT.reset ();
  let ids = Atomic.make [] in
  let n = 64 in
  let rec add id =
    let old = Atomic.get ids in
    if not (Atomic.compare_and_set ids old (id :: old)) then add id
  in
  D.run (fun () ->
      for _ = 1 to n do
        MT.fork (fun () -> add (MT.id ()))
      done;
      while List.length (Atomic.get ids) < n do
        MT.yield ()
      done);
  let sorted = List.sort_uniq compare (Atomic.get ids) in
  check "ids all distinct" n (List.length sorted)

(* ---------------- Sched_thread ---------------- *)

module S = Mpthreads.Sched_thread.Make (D)

let test_sched_pool_result () =
  check "result" 7 (D.run (fun () -> S.with_pool (fun () -> 7)))

let test_sched_fork_join () =
  let v =
    D.run (fun () ->
        S.with_pool (fun () ->
            let acc = Atomic.make 0 in
            S.fork_join
              (List.init 20 (fun i () -> ignore (Atomic.fetch_and_add acc i)));
            Atomic.get acc))
  in
  check "sum" 190 v

let test_sched_par_iter () =
  let v =
    D.run (fun () ->
        S.with_pool (fun () ->
            let arr = Array.make 500 0 in
            S.par_iter 500 (fun i -> arr.(i) <- i * 2);
            Array.fold_left ( + ) 0 arr))
  in
  check "every index visited once" (499 * 500) v

let test_sched_nested_fork_join () =
  let v =
    D.run (fun () ->
        S.with_pool (fun () ->
            let acc = Atomic.make 0 in
            S.fork_join
              (List.init 4 (fun _ () ->
                   S.fork_join
                     (List.init 4 (fun _ () -> Atomic.incr acc))));
            Atomic.get acc))
  in
  check "nested joins" 16 v

let test_sched_thread_error_propagates () =
  Alcotest.check_raises "forked exn re-raised at pool end" (Failure "child")
    (fun () ->
      ignore
        (D.run (fun () ->
             S.with_pool (fun () ->
                 S.fork_join [ (fun () -> failwith "child") ]))))

let test_sched_block_and_resume () =
  let v =
    D.run (fun () ->
        S.with_pool (fun () ->
            let cell = Atomic.make None in
            S.fork (fun () ->
                (* resume whoever parked in the cell, with value 5 *)
                let rec loop () =
                  match Atomic.get cell with
                  | Some (k, tid) -> S.reschedule_thread (k, 5, tid)
                  | None ->
                      S.yield ();
                      loop ()
                in
                loop ());
            S.block (fun k -> Atomic.set cell (Some (k, S.id ())))))
  in
  check "blocked thread resumed with value" 5 v

let test_sched_pool_size () =
  D.run (fun () ->
      S.with_pool ~procs:2 (fun () -> check "procs held" 2 (S.pool_procs ())))

let test_sched_yield_many () =
  let v =
    D.run (fun () ->
        S.with_pool (fun () ->
            for _ = 1 to 100 do
              S.yield ()
            done;
            1))
  in
  check "survives many yields" 1 v

let test_sched_switch_count () =
  D.run (fun () ->
      S.with_pool (fun () ->
          S.fork_join (List.init 10 (fun _ () -> S.yield ()))));
  checkb "switches recorded" true (S.switches () > 0)

(* ---------------- scheduler policy family ---------------- *)

(* Every policy must complete the same fork_join workload on the
   preemptive domains backend. *)
let test_policy_fork_join_all () =
  List.iter
    (fun sched ->
      let v =
        D.run (fun () ->
            S.with_pool ~sched (fun () ->
                let acc = Atomic.make 0 in
                S.fork_join
                  (List.init 20 (fun i () ->
                       ignore (Atomic.fetch_and_add acc i)));
                Atomic.get acc))
      in
      check
        (Printf.sprintf "sum under %s" (Mpthreads.Sched_policy.to_string sched))
        190 v)
    Mpthreads.Sched_policy.[ Fifo; Lifo; Distributed; Ws; Micropools 2 ]


(* ---------------- timers (Sched) ---------------- *)

(* deterministic virtual-time platform for timer tests *)
module TP =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:4 ()
    end)
    ()

module TS = Mpthreads.Sched_thread.Make (TP)

let test_sleep_advances_virtual_time () =
  let slept =
    TP.run (fun () ->
        TS.with_pool (fun () ->
            let t0 = TS.now () in
            TS.sleep 0.25;
            TS.now () -. t0))
  in
  checkb "slept at least the requested virtual time" true (slept >= 0.25);
  checkb "did not oversleep wildly" true (slept < 0.35)

let test_sleep_zero_is_noop () =
  TP.run (fun () -> TS.with_pool (fun () -> TS.sleep 0.))

let test_at_fires_in_order () =
  let log =
    TP.run (fun () ->
        TS.with_pool (fun () ->
            let log = ref [] in
            let t0 = TS.now () in
            TS.at (t0 +. 0.03) (fun () -> log := 3 :: !log);
            TS.at (t0 +. 0.01) (fun () -> log := 1 :: !log);
            TS.at (t0 +. 0.02) (fun () -> log := 2 :: !log);
            TS.sleep 0.1;
            List.rev !log))
  in
  check_list "timers in time order" [ 1; 2; 3 ] log

let test_sleeping_threads_in_parallel () =
  (* 4 threads sleeping 0.1s concurrently finish in ~0.1s virtual time *)
  let elapsed =
    TP.run (fun () ->
        TS.with_pool (fun () ->
            let t0 = TS.now () in
            TS.fork_join
              (List.init 4 (fun _ () -> TS.sleep 0.1));
            TS.now () -. t0))
  in
  checkb "concurrent sleeps overlap" true (elapsed < 0.2)

(* ---------------- ML Threads ---------------- *)

(* On a single proc the dispatch order is exactly the queue discipline:
   central FIFO runs forks oldest-first, central LIFO newest-first.
   Run on the simulator so the order is deterministic. *)
let policy_order sched =
  TP.run (fun () ->
      TS.with_pool ~procs:1 ~sched (fun () ->
          let order = ref [] in
          TS.fork_join (List.init 3 (fun i () -> order := (i + 1) :: !order));
          List.rev !order))

let test_policy_fifo_order () =
  check_list "central fifo runs oldest first" [ 1; 2; 3 ]
    (policy_order Mpthreads.Sched_policy.Fifo)

let test_policy_lifo_order () =
  check_list "central lifo runs newest first" [ 3; 2; 1 ]
    (policy_order Mpthreads.Sched_policy.Lifo)

(* Work stealing on the 4-proc simulator: the root proc forks everything
   into its own queue, so any work a worker proc performs was stolen —
   the steal counters must show hits, and attempts dominate hits. *)
let test_policy_ws_steals () =
  let v =
    TP.run (fun () ->
        TS.with_pool ~procs:4 ~sched:Mpthreads.Sched_policy.Ws (fun () ->
            let acc = Atomic.make 0 in
            TS.fork_join
              (List.init 40 (fun _ () ->
                   TS.yield ();
                   Atomic.incr acc));
            Atomic.get acc))
  in
  check "all tasks ran" 40 v;
  checkb "steals observed" true (TS.steals () > 0);
  checkb "attempts >= hits" true (TS.steal_attempts () >= TS.steals ())

module Ml = Mpthreads.Ml_threads.Make (D) (S)

let test_ml_fork_and_handles () =
  let v =
    D.run (fun () ->
        S.with_pool (fun () ->
            let ran = Atomic.make 0 in
            let t1 = Ml.fork (fun () -> Atomic.incr ran) in
            let t2 = Ml.fork (fun () -> Atomic.incr ran) in
            checkb "distinct handles" true (not (Ml.equal t1 t2));
            while Atomic.get ran < 2 do
              Ml.yield ()
            done;
            Atomic.get ran))
  in
  check "both threads ran" 2 v

let test_ml_exit () =
  let v =
    D.run (fun () ->
        S.with_pool (fun () ->
            let cell = Atomic.make 0 in
            ignore
              (Ml.fork (fun () ->
                   Atomic.set cell 1;
                   Ml.exit () |> ignore));
            while Atomic.get cell = 0 do
              Ml.yield ()
            done;
            (* code after exit never runs; cell stays 1 *)
            Ml.yield ();
            Atomic.get cell))
  in
  check "exit terminates the thread" 1 v

let test_ml_mutex_try () =
  D.run (fun () ->
      S.with_pool (fun () ->
          let m = Ml.mutex () in
          checkb "acquire" true (Ml.try_acquire m);
          checkb "contended" false (Ml.try_acquire m);
          Ml.release m;
          checkb "free again" true (Ml.try_acquire m);
          Ml.release m))

let test_ml_mutex_excludes () =
  let v =
    D.run (fun () ->
        S.with_pool (fun () ->
            let m = Ml.mutex () in
            let counter = ref 0 in
            let done_ = Atomic.make 0 in
            for _ = 1 to 6 do
              ignore
                (Ml.fork (fun () ->
                     for _ = 1 to 300 do
                       Ml.with_mutex m (fun () -> incr counter)
                     done;
                     Atomic.incr done_))
            done;
            while Atomic.get done_ < 6 do
              Ml.yield ()
            done;
            !counter))
  in
  check "atomic increments" 1_800 v

let test_ml_condition () =
  let v =
    D.run (fun () ->
        S.with_pool (fun () ->
            let m = Ml.mutex () in
            let c = Ml.condition () in
            let flag = ref false in
            let observed = Atomic.make 0 in
            ignore
              (Ml.fork (fun () ->
                   Ml.acquire m;
                   while not !flag do
                     Ml.wait (c, m)
                   done;
                   Ml.release m;
                   Atomic.set observed 1));
            S.yield ();
            Ml.with_mutex m (fun () -> flag := true);
            Ml.signal c;
            while Atomic.get observed = 0 do
              Ml.yield ()
            done;
            Atomic.get observed))
  in
  check "condition woke the waiter" 1 v

(* ---------------- M3 threads ---------------- *)

module M3 = Mpthreads.M3_thread.Make (D) (S)

let in_pool f = D.run (fun () -> S.with_pool f)

let test_m3_join_value () =
  check "typed join" 21 (in_pool (fun () -> M3.join (M3.fork (fun () -> 21))))

let test_m3_join_exn () =
  Alcotest.check_raises "join re-raises" (Failure "dead") (fun () ->
      ignore (in_pool (fun () -> M3.join (M3.fork (fun () -> failwith "dead")))))

let test_m3_join_many () =
  let v =
    in_pool (fun () ->
        let ts = List.init 16 (fun i -> M3.fork (fun () -> i)) in
        List.fold_left (fun acc t -> acc + M3.join t) 0 ts)
  in
  check "sum of results" 120 v

let test_m3_join_after_done () =
  let v =
    in_pool (fun () ->
        let t = M3.fork (fun () -> 3) in
        S.yield ();
        (* thread likely finished; join must still return *)
        M3.join t + M3.join t)
  in
  check "multiple joins" 6 v

let test_m3_mutex () =
  let v =
    in_pool (fun () ->
        let m = M3.Mutex.create () in
        let counter = ref 0 in
        let ts =
          List.init 8 (fun _ ->
              M3.fork (fun () ->
                  for _ = 1 to 500 do
                    M3.Mutex.with_lock m (fun () -> incr counter)
                  done))
        in
        List.iter M3.join ts;
        !counter)
  in
  check "mutex protects counter" 4_000 v

let test_m3_condition_producer_consumer () =
  let v =
    in_pool (fun () ->
        let m = M3.Mutex.create () in
        let nonempty = M3.Condition.create () in
        let queue = Queue.create () in
        let consumed = ref 0 in
        let consumer =
          M3.fork (fun () ->
              let acc = ref 0 in
              for _ = 1 to 50 do
                M3.Mutex.lock m;
                while Queue.is_empty queue do
                  M3.Condition.wait m nonempty
                done;
                acc := !acc + Queue.pop queue;
                incr consumed;
                M3.Mutex.unlock m
              done;
              !acc)
        in
        for i = 1 to 50 do
          M3.Mutex.with_lock m (fun () -> Queue.push i queue);
          M3.Condition.signal nonempty;
          if i mod 10 = 0 then S.yield ()
        done;
        M3.join consumer)
  in
  check "all items consumed in order" 1275 v

let test_m3_broadcast () =
  let v =
    in_pool (fun () ->
        let m = M3.Mutex.create () in
        let go = M3.Condition.create () in
        let ready = ref false in
        let woken = Atomic.make 0 in
        let ts =
          List.init 6 (fun _ ->
              M3.fork (fun () ->
                  M3.Mutex.lock m;
                  while not !ready do
                    M3.Condition.wait m go
                  done;
                  M3.Mutex.unlock m;
                  Atomic.incr woken))
        in
        S.yield ();
        M3.Mutex.with_lock m (fun () -> ready := true);
        M3.Condition.broadcast go;
        List.iter M3.join ts;
        Atomic.get woken)
  in
  check "broadcast wakes all" 6 v

(* ---------------- M3 alerts ---------------- *)

let test_m3_alert_polled () =
  let v =
    in_pool (fun () ->
        let t =
          M3.fork (fun () ->
              let n = ref 0 in
              while not (M3.test_alert ()) do
                incr n;
                S.yield ()
              done;
              !n)
        in
        S.yield ();
        M3.alert t;
        M3.join t)
  in
  checkb "thread observed the alert" true (v >= 0)

let test_m3_alert_wait_wakes () =
  let v =
    in_pool (fun () ->
        let m = M3.Mutex.create () in
        let c = M3.Condition.create () in
        let outcome = Atomic.make 0 in
        let t =
          M3.fork (fun () ->
              M3.Mutex.lock m;
              (match M3.alert_wait m c with
              | () -> Atomic.set outcome 1
              | exception M3.Alerted -> Atomic.set outcome 2);
              M3.Mutex.unlock m)
        in
        S.yield ();
        (* nobody signals: only the alert can free it *)
        M3.alert t;
        M3.join t;
        Atomic.get outcome)
  in
  check "alert_wait raised Alerted" 2 v

let test_m3_alert_flag_cleared () =
  in_pool (fun () ->
      let t =
        M3.fork (fun () ->
            while not (M3.test_alert ()) do
              S.yield ()
            done;
            (* the flag is cleared by test_alert: a second check is false *)
            M3.test_alert ())
      in
      S.yield ();
      M3.alert t;
      checkb "cleared after delivery" false (M3.join t))

let () =
  Alcotest.run "threads"
    [
      ( "unithread",
        [
          Alcotest.test_case "fork runs child first" `Quick
            test_uni_fork_runs_child_first;
          Alcotest.test_case "ids" `Quick test_uni_ids;
          Alcotest.test_case "fifo round robin" `Quick
            test_uni_yield_round_robin;
          Alcotest.test_case "policy = queue discipline" `Quick
            test_uni_scheduling_policy_is_queue;
          Alcotest.test_case "empty dispatch raises" `Quick
            test_uni_dispatch_empty_raises;
          Alcotest.test_case "2000 threads" `Quick test_uni_many_threads;
        ] );
      ( "mpthread",
        [
          Alcotest.test_case "on uniproc" `Quick test_mp_thread_on_uniproc;
          Alcotest.test_case "parallel counter" `Quick
            test_mp_thread_parallel_counter;
          Alcotest.test_case "unique ids" `Quick test_mp_thread_ids_unique;
        ] );
      ( "sched",
        [
          Alcotest.test_case "pool result" `Quick test_sched_pool_result;
          Alcotest.test_case "fork_join" `Quick test_sched_fork_join;
          Alcotest.test_case "par_iter" `Quick test_sched_par_iter;
          Alcotest.test_case "nested fork_join" `Quick
            test_sched_nested_fork_join;
          Alcotest.test_case "error propagates" `Quick
            test_sched_thread_error_propagates;
          Alcotest.test_case "block/resume" `Quick test_sched_block_and_resume;
          Alcotest.test_case "pool size" `Quick test_sched_pool_size;
          Alcotest.test_case "many yields" `Quick test_sched_yield_many;
          Alcotest.test_case "switch count" `Quick test_sched_switch_count;
        ] );
      ( "sched policies",
        [
          Alcotest.test_case "all policies fork_join" `Quick
            test_policy_fork_join_all;
          Alcotest.test_case "fifo dispatch order" `Quick
            test_policy_fifo_order;
          Alcotest.test_case "lifo dispatch order" `Quick
            test_policy_lifo_order;
          Alcotest.test_case "ws steals on sim" `Quick test_policy_ws_steals;
        ] );
      ( "timers",
        [
          Alcotest.test_case "sleep advances virtual time" `Quick
            test_sleep_advances_virtual_time;
          Alcotest.test_case "sleep 0" `Quick test_sleep_zero_is_noop;
          Alcotest.test_case "at in order" `Quick test_at_fires_in_order;
          Alcotest.test_case "parallel sleeps" `Quick
            test_sleeping_threads_in_parallel;
        ] );
      ( "ml_threads",
        [
          Alcotest.test_case "fork and handles" `Quick test_ml_fork_and_handles;
          Alcotest.test_case "exit" `Quick test_ml_exit;
          Alcotest.test_case "try_acquire" `Quick test_ml_mutex_try;
          Alcotest.test_case "mutex excludes" `Quick test_ml_mutex_excludes;
          Alcotest.test_case "condition" `Quick test_ml_condition;
        ] );
      ( "m3",
        [
          Alcotest.test_case "join value" `Quick test_m3_join_value;
          Alcotest.test_case "join exn" `Quick test_m3_join_exn;
          Alcotest.test_case "join many" `Quick test_m3_join_many;
          Alcotest.test_case "join after done" `Quick test_m3_join_after_done;
          Alcotest.test_case "mutex" `Slow test_m3_mutex;
          Alcotest.test_case "producer/consumer" `Quick
            test_m3_condition_producer_consumer;
          Alcotest.test_case "broadcast" `Quick test_m3_broadcast;
          Alcotest.test_case "alert polled" `Quick test_m3_alert_polled;
          Alcotest.test_case "alert_wait wakes" `Quick test_m3_alert_wait_wakes;
          Alcotest.test_case "alert flag cleared" `Quick
            test_m3_alert_flag_cleared;
        ] );
    ]
