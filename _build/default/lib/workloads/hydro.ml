type t = {
  n : int;
  rho : float array array;
  e : float array array;
  u : float array array;
  v : float array array;
  p : float array array;
  q : float array array;
}

let gamma = 1.4
let visc_c = 0.1
let kappa = 0.05
let courant = 0.25

let create ~n ~seed =
  let rng = Random.State.make [| seed; n; 99 |] in
  let field f = Array.init n (fun i -> Array.init n (fun j -> f i j)) in
  let peak i j =
    (* dense hot blob in the center, ambient elsewhere *)
    let c = float_of_int (n / 2) in
    let dx = (float_of_int i -. c) /. c and dy = (float_of_int j -. c) /. c in
    let r2 = (dx *. dx) +. (dy *. dy) in
    exp (-4. *. r2)
  in
  {
    n;
    rho = field (fun i j -> 1.0 +. peak i j +. (0.01 *. Random.State.float rng 1.));
    e = field (fun i j -> 1.0 +. (2.0 *. peak i j));
    u = field (fun _ _ -> 0.);
    v = field (fun _ _ -> 0.);
    p = field (fun _ _ -> 0.);
    q = field (fun _ _ -> 0.);
  }

let copy t =
  {
    n = t.n;
    rho = Array.map Array.copy t.rho;
    e = Array.map Array.copy t.e;
    u = Array.map Array.copy t.u;
    v = Array.map Array.copy t.v;
    p = Array.map Array.copy t.p;
    q = Array.map Array.copy t.q;
  }

let phase_eos t ~lo ~hi =
  for i = lo to hi - 1 do
    for j = 0 to t.n - 1 do
      t.p.(i).(j) <- (gamma -. 1.) *. t.rho.(i).(j) *. t.e.(i).(j)
    done
  done

let clamp t i = if i < 0 then 0 else if i >= t.n then t.n - 1 else i

let phase_viscosity t ~lo ~hi =
  for i = lo to hi - 1 do
    for j = 0 to t.n - 1 do
      let du = t.u.(clamp t (i + 1)).(j) -. t.u.(clamp t (i - 1)).(j) in
      let dv = t.v.(i).(clamp t (j + 1)) -. t.v.(i).(clamp t (j - 1)) in
      let div = du +. dv in
      t.q.(i).(j) <-
        (if div < 0. then visc_c *. t.rho.(i).(j) *. div *. div else 0.)
    done
  done

let phase_velocity t ~dt ~lo ~hi =
  for i = lo to hi - 1 do
    if i > 0 && i < t.n - 1 then
      for j = 1 to t.n - 2 do
        let ptot k l = t.p.(k).(l) +. t.q.(k).(l) in
        let gx = (ptot (i + 1) j -. ptot (i - 1) j) /. 2. in
        let gy = (ptot i (j + 1) -. ptot i (j - 1)) /. 2. in
        t.u.(i).(j) <- t.u.(i).(j) -. (dt *. gx /. t.rho.(i).(j));
        t.v.(i).(j) <- t.v.(i).(j) -. (dt *. gy /. t.rho.(i).(j))
      done
  done

let divergence t i j =
  let du = (t.u.(clamp t (i + 1)).(j) -. t.u.(clamp t (i - 1)).(j)) /. 2. in
  let dv = (t.v.(i).(clamp t (j + 1)) -. t.v.(i).(clamp t (j - 1))) /. 2. in
  du +. dv

let phase_energy t ~dt ~lo ~hi =
  for i = lo to hi - 1 do
    for j = 0 to t.n - 1 do
      let work = (t.p.(i).(j) +. t.q.(i).(j)) *. divergence t i j in
      t.e.(i).(j) <- max 1e-6 (t.e.(i).(j) -. (dt *. work /. t.rho.(i).(j)))
    done
  done

let phase_density t ~dt ~lo ~hi =
  for i = lo to hi - 1 do
    for j = 0 to t.n - 1 do
      t.rho.(i).(j) <-
        max 1e-6 (t.rho.(i).(j) *. (1. -. (dt *. divergence t i j)))
    done
  done

(* Heat diffusion is Jacobi-style in two sub-phases so that row-parallel
   execution is deterministic: the new energies go to the [p] scratch field
   (recomputed by the next step's EOS anyway), then are committed. *)
let phase_heat t ~lo ~hi =
  for i = lo to hi - 1 do
    if i > 0 && i < t.n - 1 then
      for j = 1 to t.n - 2 do
        let lap =
          t.e.(i - 1).(j) +. t.e.(i + 1).(j) +. t.e.(i).(j - 1)
          +. t.e.(i).(j + 1)
          -. (4. *. t.e.(i).(j))
        in
        t.p.(i).(j) <- t.e.(i).(j) +. (kappa *. lap)
      done
  done

let phase_heat_commit t ~lo ~hi =
  for i = lo to hi - 1 do
    if i > 0 && i < t.n - 1 then
      for j = 1 to t.n - 2 do
        t.e.(i).(j) <- t.p.(i).(j)
      done
  done

let boundary t =
  let n = t.n in
  for j = 0 to n - 1 do
    (* reflecting walls *)
    t.u.(0).(j) <- 0.;
    t.u.(n - 1).(j) <- 0.;
    t.v.(0).(j) <- 0.;
    t.v.(n - 1).(j) <- 0.;
    t.u.(j).(0) <- 0.;
    t.u.(j).(n - 1) <- 0.;
    t.v.(j).(0) <- 0.;
    t.v.(j).(n - 1) <- 0.;
    t.e.(0).(j) <- t.e.(1).(j);
    t.e.(n - 1).(j) <- t.e.(n - 2).(j);
    t.e.(j).(0) <- t.e.(j).(1);
    t.e.(j).(n - 1) <- t.e.(j).(n - 2)
  done

let cfl_row t i =
  let best = ref infinity in
  for j = 0 to t.n - 1 do
    let c =
      sqrt (gamma *. (gamma -. 1.) *. t.e.(i).(j))
      +. abs_float t.u.(i).(j)
      +. abs_float t.v.(i).(j)
    in
    if c > 0. then begin
      let dt = courant /. c in
      if dt < !best then best := dt
    end
  done;
  !best

let step_seq t =
  let n = t.n in
  phase_eos t ~lo:0 ~hi:n;
  phase_viscosity t ~lo:0 ~hi:n;
  let dt = ref infinity in
  for i = 0 to n - 1 do
    let d = cfl_row t i in
    if d < !dt then dt := d
  done;
  let dt = !dt in
  phase_velocity t ~dt ~lo:0 ~hi:n;
  phase_energy t ~dt ~lo:0 ~hi:n;
  phase_density t ~dt ~lo:0 ~hi:n;
  phase_heat t ~lo:0 ~hi:n;
  phase_heat_commit t ~lo:0 ~hi:n;
  boundary t;
  dt

let checksum t =
  let h = ref 1469598103 in
  let mix f =
    let bits = Int64.to_int (Int64.bits_of_float f) in
    h := (!h * 1099511) lxor (bits land 0x3fffffff)
  in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      mix t.rho.(i).(j);
      mix t.e.(i).(j);
      mix t.u.(i).(j);
      mix t.v.(i).(j)
    done
  done;
  !h land max_int

let row_flops t = t.n * 12
