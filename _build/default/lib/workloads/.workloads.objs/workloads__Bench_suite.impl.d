lib/workloads/bench_suite.ml: Array Bitonic Euclid Graph Hydro List Matrix Mp Mpthreads Random
