exception Empty = Queue_intf.Empty

type 'a entry = { priority : int; seq : int; value : 'a }

type 'a queue = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

(* Max-heap order: higher priority first; among equals, lower seq first. *)
let before a b = a.priority > b.priority || (a.priority = b.priority && a.seq < b.seq)

let swap q i j =
  let t = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- t

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < q.size && before q.heap.(l) q.heap.(!best) then best := l;
  if r < q.size && before q.heap.(r) q.heap.(!best) then best := r;
  if !best <> i then begin
    swap q i !best;
    sift_down q !best
  end

let enq q ~priority value =
  let entry = { priority; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 && Array.length q.heap = 0 then q.heap <- Array.make 8 entry;
  if q.size = Array.length q.heap then begin
    let heap = Array.make (2 * q.size) entry in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let deq q =
  if q.size = 0 then raise Empty;
  let top = q.heap.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.heap.(0) <- q.heap.(q.size);
    sift_down q 0
  end;
  top.value

let deq_opt q = match deq q with x -> Some x | exception Empty -> None
let peek q = if q.size = 0 then raise Empty else q.heap.(0).value
let peek_opt q = if q.size = 0 then None else Some q.heap.(0).value
let length q = q.size
let is_empty q = q.size = 0

module As_queue (P : sig
  val priority : int
end) =
struct
  exception Empty = Queue_intf.Empty

  type nonrec 'a queue = 'a queue

  let create () = create ()
  let enq q x = enq q ~priority:P.priority x
  let deq = deq
  let deq_opt = deq_opt
  let length = length
  let is_empty = is_empty
end
