(* Workloads: sequential reference implementations cross-checked against
   independent algorithms and properties, and parallel versions verified
   against the sequential references on the simulated backend. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

open Workloads

(* ---------------- graph / allpairs ---------------- *)

let test_floyd_tiny () =
  (* 0 ->(1) 1 ->(2) 2, 0 ->(9) 2: shortest 0->2 is 3 *)
  let g =
    {
      Graph.n = 3;
      dist =
        [|
          [| 0; 1; 9 |];
          [| Graph.inf; 0; 2 |];
          [| Graph.inf; Graph.inf; 0 |];
        |];
    }
  in
  let d = Graph.floyd_warshall g in
  check "relaxed path" 3 d.(0).(2)

let test_floyd_unreachable () =
  let g =
    { Graph.n = 2; dist = [| [| 0; Graph.inf |]; [| Graph.inf; 0 |] |] }
  in
  let d = Graph.floyd_warshall g in
  checkb "stays unreachable" true (d.(0).(1) >= Graph.inf)

(* Bellman-Ford from a single source, as an independent oracle. *)
let bellman_ford (g : Graph.t) src =
  let n = g.n in
  let dist = Array.make n Graph.inf in
  dist.(src) <- 0;
  for _ = 1 to n - 1 do
    for u = 0 to n - 1 do
      if dist.(u) < Graph.inf then
        for v = 0 to n - 1 do
          if g.dist.(u).(v) < Graph.inf then
            if dist.(u) + g.dist.(u).(v) < dist.(v) then
              dist.(v) <- dist.(u) + g.dist.(u).(v)
        done
    done
  done;
  dist

let prop_floyd_matches_bellman_ford =
  QCheck.Test.make ~name:"floyd = bellman-ford from every source" ~count:25
    QCheck.(pair (int_range 2 12) small_int)
    (fun (n, seed) ->
      let g = Graph.random ~n ~density:0.5 ~seed () in
      let d = Graph.floyd_warshall g in
      let ok = ref true in
      for src = 0 to n - 1 do
        let bf = bellman_ford g src in
        for v = 0 to n - 1 do
          let a = if d.(src).(v) >= Graph.inf then -1 else d.(src).(v) in
          let b = if bf.(v) >= Graph.inf then -1 else bf.(v) in
          if a <> b then ok := false
        done
      done;
      !ok)

let test_graph_deterministic () =
  let a = Graph.random ~n:20 ~seed:3 () and b = Graph.random ~n:20 ~seed:3 () in
  check "same seed, same graph" (Graph.checksum a.Graph.dist)
    (Graph.checksum b.Graph.dist)

(* ---------------- euclid / mst ---------------- *)

let test_prim_equals_kruskal_fixed () =
  let p = Euclid.random_points ~n:60 ~seed:11 in
  check "mst weight agrees" (Euclid.kruskal_mst p) (Euclid.prim_mst p)

let prop_prim_equals_kruskal =
  QCheck.Test.make ~name:"prim = kruskal on random points" ~count:25
    QCheck.(pair (int_range 2 40) small_int)
    (fun (n, seed) ->
      let p = Euclid.random_points ~n ~seed in
      Euclid.prim_mst p = Euclid.kruskal_mst p)

let test_mst_triangle () =
  (* colinear points 0-1-2: MST uses the two short edges *)
  let p = { Euclid.xs = [| 0.; 1.; 2. |]; ys = [| 0.; 0.; 0. |] } in
  check "two unit edges" 2 (Euclid.prim_mst p)

let test_mst_empty_and_single () =
  check "empty" 0 (Euclid.prim_mst { Euclid.xs = [||]; ys = [||] });
  check "single" 0 (Euclid.prim_mst { Euclid.xs = [| 1. |]; ys = [| 1. |] })

(* ---------------- bitonic ---------------- *)

let test_bitonic_sorts () =
  let a = [| 5; 3; 8; 1; 9; 2; 7; 4 |] in
  Bitonic.sort a;
  Alcotest.(check (array int)) "sorted" [| 1; 2; 3; 4; 5; 7; 8; 9 |] a

let test_bitonic_rejects_non_power () =
  Alcotest.check_raises "length 3"
    (Invalid_argument "Bitonic.sort: length must be a power of two") (fun () ->
      Bitonic.sort [| 3; 1; 2 |])

let test_bitonic_adaptive_on_sorted () =
  (* adaptivity lives in the merge: an already-ordered bitonic segment
     costs O(n) comparator work, a genuinely bitonic one O(n log n) *)
  let n = 1024 in
  let sorted = Array.init n Fun.id in
  Bitonic.reset_counters ();
  Bitonic.merge ~up:true sorted 0 n;
  let c_sorted = Bitonic.comparators_used () in
  let rng = Random.State.make [| 1 |] in
  let up = Array.init (n / 2) (fun _ -> Random.State.int rng 10000) in
  let down = Array.init (n / 2) (fun _ -> Random.State.int rng 10000) in
  Array.sort compare up;
  Array.sort (fun a b -> compare b a) down;
  let bitonic_input = Array.append up down in
  Bitonic.reset_counters ();
  Bitonic.merge ~up:true bitonic_input 0 n;
  let c_bitonic = Bitonic.comparators_used () in
  checkb "ordered merge is much cheaper" true (c_sorted * 2 < c_bitonic);
  let sorted_check = Array.copy bitonic_input in
  Array.sort compare sorted_check;
  Alcotest.(check (array int)) "merge sorted correctly" sorted_check bitonic_input

let prop_bitonic_matches_stdlib =
  QCheck.Test.make ~name:"bitonic sort = stdlib sort (pow2 sizes)" ~count:50
    QCheck.(pair (int_range 0 6) (list small_int))
    (fun (log_n, salt) ->
      let n = 1 lsl log_n in
      let rng =
        Random.State.make (Array.of_list (List.length salt :: salt))
      in
      let a = Array.init n (fun _ -> Random.State.int rng 1000) in
      let b = Array.copy a in
      Bitonic.sort a;
      Array.sort compare b;
      a = b)

let prop_merge_sorts_bitonic_input =
  QCheck.Test.make ~name:"merge sorts ascending++descending input" ~count:50
    (QCheck.int_range 1 5)
    (fun log_h ->
      let h = 1 lsl log_h in
      let rng = Random.State.make [| h |] in
      let up = Array.init h (fun _ -> Random.State.int rng 100) in
      let down = Array.init h (fun _ -> Random.State.int rng 100) in
      Array.sort compare up;
      Array.sort (fun a b -> compare b a) down;
      let a = Array.append up down in
      Bitonic.merge ~up:true a 0 (2 * h);
      let sorted = Array.copy a in
      Array.sort compare sorted;
      a = sorted)

(* ---------------- hydro ---------------- *)

let test_hydro_deterministic () =
  let a = Hydro.create ~n:24 ~seed:5 in
  let b = Hydro.create ~n:24 ~seed:5 in
  ignore (Hydro.step_seq a);
  ignore (Hydro.step_seq b);
  check "same evolution" (Hydro.checksum a) (Hydro.checksum b)

let test_hydro_positive_fields () =
  let t = Hydro.create ~n:24 ~seed:5 in
  for _ = 1 to 5 do
    ignore (Hydro.step_seq t)
  done;
  let ok = ref true in
  for i = 0 to t.Hydro.n - 1 do
    for j = 0 to t.Hydro.n - 1 do
      if t.Hydro.rho.(i).(j) <= 0. || t.Hydro.e.(i).(j) <= 0. then ok := false;
      if Float.is_nan t.Hydro.u.(i).(j) then ok := false
    done
  done;
  checkb "density and energy stay positive and finite" true !ok

let test_hydro_dt_positive () =
  let t = Hydro.create ~n:24 ~seed:5 in
  let dt = Hydro.step_seq t in
  checkb "CFL bound positive and finite" true (dt > 0. && Float.is_finite dt)

let test_hydro_phases_cover_rows () =
  (* applying a phase over [0,n) in two pieces equals one pass *)
  let a = Hydro.create ~n:16 ~seed:2 in
  let b = Hydro.copy a in
  Hydro.phase_eos a ~lo:0 ~hi:16;
  Hydro.phase_eos b ~lo:0 ~hi:7;
  Hydro.phase_eos b ~lo:7 ~hi:16;
  let digest t =
    let acc = ref 0. in
    Array.iter (Array.iter (fun x -> acc := !acc +. x)) t.Hydro.p;
    !acc
  in
  Alcotest.(check (float 0.0)) "split = whole" (digest a) (digest b)

(* ---------------- matrix ---------------- *)

let test_matrix_identity () =
  let n = 8 in
  let a = Matrix.random ~n ~seed:4 in
  let id = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0)) in
  check "a * I = a" (Matrix.checksum a) (Matrix.checksum (Matrix.multiply a id))

let test_matrix_row_equals_full () =
  let n = 10 in
  let a = Matrix.random ~n ~seed:4 and b = Matrix.random ~n ~seed:5 in
  let full = Matrix.multiply a b in
  let dst = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    Matrix.multiply_row a b ~dst i
  done;
  check "row-by-row = full" (Matrix.checksum full) (Matrix.checksum dst)

let prop_matrix_distributes =
  QCheck.Test.make ~name:"checksum stable across seeds" ~count:20
    (QCheck.int_range 1 10)
    (fun seed ->
      let a = Matrix.random ~n:6 ~seed and b = Matrix.random ~n:6 ~seed in
      Matrix.checksum a = Matrix.checksum b)

let test_graph_density_extremes () =
  let empty = Graph.random ~n:10 ~density:0.0 ~seed:1 () in
  let full = Graph.random ~n:10 ~density:1.0 ~seed:1 () in
  let count g =
    let n = ref 0 in
    Array.iteri
      (fun i row ->
        Array.iteri (fun j w -> if i <> j && w < Graph.inf then incr n) row)
      g.Graph.dist;
    !n
  in
  check "no edges at density 0" 0 (count empty);
  check "all edges at density 1" 90 (count full)

let test_graph_copy_independent () =
  let g = Graph.random ~n:5 ~seed:2 () in
  let g2 = Graph.copy g in
  g2.Graph.dist.(0).(1) <- 0;
  checkb "copy does not alias" true (g.Graph.dist.(0).(1) <> 0 || true);
  (* the original checksum is unchanged by mutating the copy *)
  check "original intact"
    (Graph.checksum (Graph.random ~n:5 ~seed:2 ()).Graph.dist)
    (Graph.checksum g.Graph.dist)

let test_bitonic_trivial_sizes () =
  let a0 = [||] in
  Bitonic.sort a0;
  let a1 = [| 5 |] in
  Bitonic.sort a1;
  Alcotest.(check (array int)) "singleton" [| 5 |] a1;
  let a2 = [| 2; 1 |] in
  Bitonic.sort a2;
  Alcotest.(check (array int)) "pair" [| 1; 2 |] a2

let test_bitonic_duplicates () =
  let a = [| 3; 1; 3; 1; 2; 2; 3; 1 |] in
  Bitonic.sort a;
  Alcotest.(check (array int)) "stable multiset" [| 1; 1; 1; 2; 2; 3; 3; 3 |] a

let test_hydro_copy_independent () =
  let a = Hydro.create ~n:8 ~seed:1 in
  let b = Hydro.copy a in
  ignore (Hydro.step_seq b);
  check "original unchanged by stepping the copy"
    (Hydro.checksum (Hydro.create ~n:8 ~seed:1))
    (Hydro.checksum a)

let test_euclid_weight_symmetric () =
  let p = Euclid.random_points ~n:10 ~seed:9 in
  for i = 0 to 9 do
    for j = 0 to 9 do
      check "w(i,j) = w(j,i)" (Euclid.weight p i j) (Euclid.weight p j i)
    done
  done

(* ---------------- parallel = sequential (sim) ---------------- *)

module P =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:4 ()
    end)
    ()

module B = Bench_suite.Make (P)

let test_par_mm_matches () =
  let expected =
    Matrix.checksum
      (Matrix.multiply (Matrix.random ~n:40 ~seed:42) (Matrix.random ~n:40 ~seed:43))
  in
  check "p=1" expected (B.mm ~procs:1 ~n:40 ());
  check "p=4" expected (B.mm ~procs:4 ~n:40 ())

let test_par_allpairs_matches () =
  let g = Graph.random ~n:30 ~seed:42 () in
  let expected = Graph.checksum (Graph.floyd_warshall g) in
  check "p=1" expected (B.allpairs ~procs:1 ~n:30 ());
  check "p=4" expected (B.allpairs ~procs:4 ~n:30 ())

let test_par_mst_matches () =
  let expected = Euclid.prim_mst (Euclid.random_points ~n:80 ~seed:42) in
  check "p=1" expected (B.mst ~procs:1 ~n:80 ());
  check "p=4" expected (B.mst ~procs:4 ~n:80 ())

let test_par_abisort_sorts () =
  let size = 1024 in
  let rng = Random.State.make [| 42; size |] in
  let a = Array.init size (fun _ -> Random.State.int rng 1_000_000) in
  Array.sort compare a;
  let expected = Array.fold_left (fun acc x -> (acc * 31) + x) 7 a in
  check "p=1" expected (B.abisort ~procs:1 ~size ());
  check "p=4" expected (B.abisort ~procs:4 ~size ())

let test_par_simple_matches () =
  let t = Hydro.create ~n:32 ~seed:42 in
  ignore (Hydro.step_seq t);
  let expected = Hydro.checksum t in
  check "p=1" expected (B.simple ~procs:1 ~n:32 ());
  check "p=4" expected (B.simple ~procs:4 ~n:32 ())

let test_par_seq_copies () =
  check "copies" 4 (B.seq ~procs:4 ~work:50_000 ());
  check "explicit copies" 6 (B.seq ~procs:2 ~copies:6 ~work:50_000 ())

let test_par_fib_matches () =
  let rec f k = if k < 2 then k else f (k - 1) + f (k - 2) in
  check "p=1" (f 18) (B.fib ~procs:1 ~n:18 ());
  check "p=4" (f 18) (B.fib ~procs:4 ~n:18 ());
  (* cutoff above n: fully sequential leaf *)
  check "all-leaf" (f 10) (B.fib ~procs:1 ~n:10 ~cutoff:12 ())

let test_speedup_exists () =
  ignore (B.mm ~procs:1 ~n:40 ());
  let t1 = (P.stats ()).Mp.Stats.elapsed in
  ignore (B.mm ~procs:4 ~n:40 ());
  let t4 = (P.stats ()).Mp.Stats.elapsed in
  checkb "4 procs at least 2x faster in virtual time" true (t1 /. t4 > 2.)

let qt = Testkit.to_alcotest

let () =
  Alcotest.run "workloads"
    [
      ( "graph",
        [
          Alcotest.test_case "floyd tiny" `Quick test_floyd_tiny;
          Alcotest.test_case "unreachable" `Quick test_floyd_unreachable;
          Alcotest.test_case "deterministic" `Quick test_graph_deterministic;
          qt prop_floyd_matches_bellman_ford;
        ] );
      ( "mst",
        [
          Alcotest.test_case "prim = kruskal" `Quick
            test_prim_equals_kruskal_fixed;
          Alcotest.test_case "triangle" `Quick test_mst_triangle;
          Alcotest.test_case "degenerate sizes" `Quick test_mst_empty_and_single;
          qt prop_prim_equals_kruskal;
        ] );
      ( "bitonic",
        [
          Alcotest.test_case "sorts" `Quick test_bitonic_sorts;
          Alcotest.test_case "rejects non-power" `Quick
            test_bitonic_rejects_non_power;
          Alcotest.test_case "adaptive on sorted" `Quick
            test_bitonic_adaptive_on_sorted;
          qt prop_bitonic_matches_stdlib;
          qt prop_merge_sorts_bitonic_input;
        ] );
      ( "hydro",
        [
          Alcotest.test_case "deterministic" `Quick test_hydro_deterministic;
          Alcotest.test_case "positive fields" `Quick test_hydro_positive_fields;
          Alcotest.test_case "dt positive" `Quick test_hydro_dt_positive;
          Alcotest.test_case "phase split" `Quick test_hydro_phases_cover_rows;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "identity" `Quick test_matrix_identity;
          Alcotest.test_case "row = full" `Quick test_matrix_row_equals_full;
          qt prop_matrix_distributes;
        ] );
      ( "edges",
        [
          Alcotest.test_case "graph density extremes" `Quick
            test_graph_density_extremes;
          Alcotest.test_case "graph copy" `Quick test_graph_copy_independent;
          Alcotest.test_case "bitonic trivial sizes" `Quick
            test_bitonic_trivial_sizes;
          Alcotest.test_case "bitonic duplicates" `Quick test_bitonic_duplicates;
          Alcotest.test_case "hydro copy" `Quick test_hydro_copy_independent;
          Alcotest.test_case "euclid symmetry" `Quick
            test_euclid_weight_symmetric;
        ] );
      ( "parallel=sequential",
        [
          Alcotest.test_case "mm" `Slow test_par_mm_matches;
          Alcotest.test_case "allpairs" `Slow test_par_allpairs_matches;
          Alcotest.test_case "mst" `Slow test_par_mst_matches;
          Alcotest.test_case "abisort" `Slow test_par_abisort_sorts;
          Alcotest.test_case "simple" `Slow test_par_simple_matches;
          Alcotest.test_case "seq copies" `Quick test_par_seq_copies;
          Alcotest.test_case "fib" `Quick test_par_fib_matches;
          Alcotest.test_case "speedup exists" `Slow test_speedup_exists;
        ] );
    ]
