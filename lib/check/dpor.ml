(* Dynamic partial order reduction over recorded runs, plus the
   deterministic parallel frontier driver.

   The platform side (mp_check) records, per decision, the op descriptor
   of the executed operation ({!Check_intf.opdesc}) and the exploration
   bookkeeping the CHESS DFS already kept (choice set, preemption price,
   stutter flag).  This module consumes those recorded runs:

   - {!races} computes a happens-before relation over one run with vector
     clocks and returns the pairs of dependent, unordered operations —
     the only decision points where scheduling a different proc can lead
     to a genuinely new trace (Flanagan-Godefroid DPOR).

   - {!explore} drives exploration from race reversals instead of
     all-alternatives expansion, with sleep sets carried into each run
     (source-set style: if the racing proc is not enabled at the decision
     we fall back to every enabled proc there) and a node table that both
     de-duplicates insertions from different runs reaching the same
     prefix and seeds the sleep set of later siblings with the procs
     already scheduled at that node.

   Determinism under parallel fan-out: the frontier is processed in
   fixed-size waves whose composition depends only on insertion order,
   never on [--jobs]; results come back index-merged from
   [Exec.Job_pool.map]; all bookkeeping (counting, node registration,
   race insertion, failure selection = lowest index in the earliest wave)
   happens sequentially on the driver domain.  Worker domains run their
   own generative checker instance behind a [Domain.DLS] key, so per-run
   object ids — which depend only on functor-application order and the
   forced prefix — are identical on every domain. *)

(* One recorded decision of a run, as the driver sees it. *)
type step = {
  s_proc : int;  (** the proc that executed *)
  s_label : string;  (** trace label of the executed op *)
  s_obj : int;  (** object id the op touched *)
  s_access : Check_intf.access;
  s_choices : int array;  (** enabled (fairness-restricted) choice set *)
  s_stutter : bool;  (** all choices parked at yield points: never branch *)
  s_preempts_before : int;
  s_prev : int;
  s_prev_continuable : bool;
  s_sleep : int;  (** sleep set (bitmask) in force when deciding *)
}

type outcome =
  | Ok_run
  | Truncated_run  (** hit the per-run step budget *)
  | Sleep_blocked_run
      (** every enabled choice was asleep: a commuted duplicate *)
  | Failed_run of exn

type run_result = { outcome : outcome; steps : step array }

(* An instance-independent handle for executing forced runs: the driver
   never touches a platform instance directly, so worker domains can each
   own a fresh generative one. *)
type runner = {
  nprocs : int;
  run_prefix :
    prefix:int array -> split:int -> alt:int -> sleep0:int -> run_result;
      (** force [prefix.(0 .. split-1)], then [alt] at decision [split]
          (skipped when [alt < 0]), then the default policy with the
          sleep set engaged from decision [split] seeded with [sleep0] *)
  shrink : exn -> int list -> exn * int list * Obs.Event.t list;
}

type result = {
  r_schedules : int;  (** runs executed to completion (incl. truncated) *)
  r_pruned : int;  (** runs abandoned sleep-blocked *)
  r_truncated : int;
  r_capped : bool;
  r_frontier_peak : int;
  r_failure : (exn * int list * Obs.Event.t list) option;
}

(* ---- happens-before races over one run ------------------------------ *)

let vc_leq a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

type obj_state = { mutable ow : int; ors : int array }
(* last write step touching the object / last read step per proc *)

(* Dependent, HB-unordered pairs (i, j) with i < j, in increasing [j]
   then increasing [i] — a deterministic insertion order for the driver.

   Vector clocks are built incrementally: step [j] of proc [q] joins its
   program-order predecessor and its conflict predecessors (last write of
   the object; for writes also the last read per proc; the last [Global]
   op; a [Global] op joins a running accumulator of every clock so far).
   Race candidates are exactly those conflict predecessors; a candidate
   [i] is dropped when it reaches [j] through the program-order
   predecessor or through a later conflict edge — reversing such a pair
   is impossible without first reversing the mediating race, which is
   reported on its own. *)
let races ~nprocs (steps : step array) : (int * int) list =
  let n = Array.length steps in
  let vc = Array.make n [||] in
  let cnt = Array.make nprocs 0 in
  let last_po = Array.make nprocs (-1) in
  let last_vis = Array.make nprocs (-1) in
  let last_global = ref (-1) in
  let acc_all = Array.make nprocs 0 in
  let objs : (int, obj_state) Hashtbl.t = Hashtbl.create 64 in
  let obj o =
    match Hashtbl.find_opt objs o with
    | Some s -> s
    | None ->
        let s = { ow = -1; ors = Array.make nprocs (-1) } in
        Hashtbl.add objs o s;
        s
  in
  let out = ref [] in
  for j = 0 to n - 1 do
    let s = steps.(j) in
    let q = s.s_proc in
    let c = Array.make nprocs 0 in
    let join i =
      if i >= 0 then
        let v = vc.(i) in
        for p = 0 to nprocs - 1 do
          if v.(p) > c.(p) then c.(p) <- v.(p)
        done
    in
    join last_po.(q);
    let cands = ref [] in
    let cand i = if i >= 0 then cands := i :: !cands in
    (match s.s_access with
    | Check_intf.Yield -> ()
    | Check_intf.Global ->
        (* ordered against everything so far; candidates are the most
           recent visible op of each other proc *)
        for p = 0 to nprocs - 1 do
          if acc_all.(p) > c.(p) then c.(p) <- acc_all.(p)
        done;
        for p = 0 to nprocs - 1 do
          if p <> q then cand last_vis.(p)
        done
    | Check_intf.Read ->
        join !last_global;
        cand !last_global;
        let o = obj s.s_obj in
        join o.ow;
        cand o.ow
    | Check_intf.Write | Check_intf.Rmw ->
        join !last_global;
        cand !last_global;
        let o = obj s.s_obj in
        join o.ow;
        cand o.ow;
        for p = 0 to nprocs - 1 do
          if p <> q then begin
            join o.ors.(p);
            cand o.ors.(p)
          end
        done);
    c.(q) <- cnt.(q) + 1;
    vc.(j) <- c;
    let cl = List.sort_uniq compare !cands in
    let po = last_po.(q) in
    List.iter
      (fun i ->
        if steps.(i).s_proc <> q then
          let covered =
            (po >= 0 && vc_leq vc.(i) vc.(po))
            || List.exists (fun k -> k > i && vc_leq vc.(i) vc.(k)) cl
          in
          if not covered then out := (i, j) :: !out)
      cl;
    cnt.(q) <- cnt.(q) + 1;
    last_po.(q) <- j;
    for p = 0 to nprocs - 1 do
      if c.(p) > acc_all.(p) then acc_all.(p) <- c.(p)
    done;
    (match s.s_access with
    | Check_intf.Yield -> ()
    | Check_intf.Global ->
        last_global := j;
        last_vis.(q) <- j
    | Check_intf.Read ->
        (obj s.s_obj).ors.(q) <- j;
        last_vis.(q) <- j
    | Check_intf.Write | Check_intf.Rmw ->
        let o = obj s.s_obj in
        o.ow <- j;
        o.ors.(q) <- j;
        last_vis.(q) <- j)
  done;
  List.rev !out

(* ---- the frontier driver -------------------------------------------- *)

(* Node identity = a chained splitmix hash of the forced prefix.  A
   collision would silently merge two distinct prefixes (missing some
   exploration); at 63 bits and millions of nodes the probability is
   ~1e-5 over a whole deep run, and the hash is a pure function of the
   prefix, so determinism across [--jobs] is unaffected. *)
let h0 = 0x243F6A8885A308D3L

let prefix_hashes (chosen : int array) =
  let n = Array.length chosen in
  let hs = Array.make (n + 1) h0 in
  for i = 0 to n - 1 do
    hs.(i + 1) <- Sched_seed.hash2 hs.(i) chosen.(i)
  done;
  hs

(* Per-prefix bookkeeping: [alts] is the bitmask of procs scheduled at
   this node by any run or queued insertion (dedupe across runs); its
   first registration also pins [n_sleep], the sleep set in force when
   the node was first reached — later siblings inherit it plus the
   already-scheduled alternatives. *)
type node = { mutable alts : int; n_sleep : int }
type item = { prefix : int array; split : int; alt : int; sleep0 : int }

let explore ?(batch = 32) ~make_runner ~jobs ~bound ~max_schedules ~stop () =
  let key = Domain.DLS.new_key make_runner in
  let driver = Domain.DLS.get key in
  let nprocs = driver.nprocs in
  let nodes : (int64, node) Hashtbl.t = Hashtbl.create 4096 in
  let frontier : item Queue.t = Queue.create () in
  Queue.add { prefix = [||]; split = 0; alt = -1; sleep0 = 0 } frontier;
  let schedules = ref 0 and pruned = ref 0 and truncs = ref 0 in
  let capped = ref false and peak = ref 1 in
  let raw_failure = ref None in
  let process it res =
    match res.outcome with
    | Truncated_run ->
        (* counted like the plain DFS counts them: the branch is lost to
           the step budget, nothing to expand *)
        incr schedules;
        incr truncs
    | Failed_run e ->
        incr schedules;
        if !raw_failure = None then
          raw_failure :=
            Some (e, Array.to_list (Array.map (fun s -> s.s_proc) res.steps))
    | Ok_run | Sleep_blocked_run ->
        (match res.outcome with
        | Ok_run -> incr schedules
        | _ -> incr pruned);
        let steps = res.steps in
        let len = Array.length steps in
        let chosen = Array.map (fun s -> s.s_proc) steps in
        let hs = prefix_hashes chosen in
        (* register this run's nodes (positions expanded here for the
           first time); ancestors registered everything before
           [forced_len], with the same prefix bytes and therefore the
           same hashes.  A sleep-blocked run registers too: its default
           continuation is by construction a commuted duplicate of a
           trace explored from a sibling, so the subtree counts as
           covered. *)
        let forced_len = it.split + if it.alt >= 0 then 1 else 0 in
        for i = forced_len to len - 1 do
          if not (Hashtbl.mem nodes hs.(i)) then
            Hashtbl.add nodes hs.(i)
              { alts = 1 lsl steps.(i).s_proc; n_sleep = steps.(i).s_sleep }
        done;
        let insert_at i a =
          let si = steps.(i) in
          if a <> si.s_proc then
            match Hashtbl.find_opt nodes hs.(i) with
            | None -> ()
            | Some node ->
                let bit = 1 lsl a in
                if node.alts land bit = 0 && node.n_sleep land bit = 0 then begin
                  let cost =
                    si.s_preempts_before
                    + if si.s_prev_continuable && a <> si.s_prev then 1 else 0
                  in
                  if cost <= bound then begin
                    let sleep0 = node.n_sleep lor node.alts in
                    node.alts <- node.alts lor bit;
                    Queue.add
                      { prefix = chosen; split = i; alt = a; sleep0 }
                      frontier
                  end
                end
        in
        List.iter
          (fun (i, j) ->
            let si = steps.(i) in
            if not si.s_stutter then begin
              (* source-set insertion: wake the racing proc at the
                 earlier decision if it was offered there, otherwise
                 every offered proc (some of them lead to it) *)
              let pj = steps.(j).s_proc in
              if Array.exists (fun a -> a = pj) si.s_choices then
                insert_at i pj
              else begin
                Array.iter (fun a -> insert_at i a) si.s_choices;
                (* The racing proc is BLOCKED at [i] — e.g. a lock
                   acquire whose lock the proc executing [i] still
                   holds, so the pair is dependent but never co-enabled
                   and cannot be reversed here (Flanagan-Godefroid's
                   may-be-co-enabled condition).  The reversal point is
                   the last decision that still offered the racing
                   proc: the step in between is what disabled it, so
                   scheduling it there reverses that step instead, and
                   the recursive race analysis of the new run finishes
                   the job.  Without this, acquire-acquire reversals
                   hide behind the unreversible release-acquire edge
                   and whole classes go unexplored. *)
                let i' = ref (i - 1) in
                while
                  !i' >= 0
                  && (steps.(!i').s_stutter
                     || not
                          (Array.exists
                             (fun a -> a = pj)
                             steps.(!i').s_choices))
                do
                  decr i'
                done;
                if !i' >= 0 then insert_at !i' pj
              end
            end)
          (races ~nprocs steps)
  in
  while (not (Queue.is_empty frontier)) && !raw_failure = None && not !capped
  do
    if stop () || !schedules + !pruned >= max_schedules then capped := true
    else begin
      let n = min batch (Queue.length frontier) in
      let items = List.init n (fun _ -> Queue.pop frontier) in
      let results =
        Exec.Job_pool.map ~jobs
          (fun it ->
            let r = Domain.DLS.get key in
            r.run_prefix ~prefix:it.prefix ~split:it.split ~alt:it.alt
              ~sleep0:it.sleep0)
          items
      in
      List.iter2 process items results;
      let qn = Queue.length frontier in
      if qn > !peak then peak := qn
    end
  done;
  (* shrink on the driver's own runner: replays are sequential and
     deterministic whatever [--jobs] ran the finding *)
  let failure =
    match !raw_failure with
    | None -> None
    | Some (e, sched0) -> Some (driver.shrink e sched0)
  in
  Obs.Counters.add Check_intf.c_schedules !schedules;
  Obs.Counters.add Check_intf.c_prunes !pruned;
  Obs.Counters.max_gauge Check_intf.c_frontier !peak;
  {
    r_schedules = !schedules;
    r_pruned = !pruned;
    r_truncated = !truncs;
    r_capped = !capped;
    r_frontier_peak = !peak;
    r_failure = failure;
  }
