type points = { xs : float array; ys : float array }

let random_points ~n ~seed =
  let rng = Random.State.make [| seed; n; 7 |] in
  {
    xs = Array.init n (fun _ -> Random.State.float rng 1000.);
    ys = Array.init n (fun _ -> Random.State.float rng 1000.);
  }

let weight p i j =
  let dx = p.xs.(i) -. p.xs.(j) and dy = p.ys.(i) -. p.ys.(j) in
  int_of_float ((dx *. dx) +. (dy *. dy))

let prim_mst p =
  let n = Array.length p.xs in
  if n = 0 then 0
  else begin
    let in_tree = Array.make n false in
    let best = Array.make n max_int in
    in_tree.(0) <- true;
    for j = 1 to n - 1 do
      best.(j) <- weight p 0 j
    done;
    let total = ref 0 in
    for _ = 1 to n - 1 do
      (* pick the closest non-tree node *)
      let pick = ref (-1) in
      for j = 0 to n - 1 do
        if (not in_tree.(j)) && (!pick < 0 || best.(j) < best.(!pick)) then
          pick := j
      done;
      let v = !pick in
      in_tree.(v) <- true;
      total := !total + best.(v);
      for j = 0 to n - 1 do
        if not in_tree.(j) then best.(j) <- min best.(j) (weight p v j)
      done
    done;
    !total
  end

(* Union-find with path compression. *)
let rec find parent i =
  if parent.(i) = i then i
  else begin
    parent.(i) <- find parent parent.(i);
    parent.(i)
  end

let kruskal_mst p =
  let n = Array.length p.xs in
  if n = 0 then 0
  else begin
    let edges = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        edges := (weight p i j, i, j) :: !edges
      done
    done;
    let edges =
      List.sort (fun (a, _, _) (b, _, _) -> compare a b) !edges
    in
    let parent = Array.init n (fun i -> i) in
    let total = ref 0 in
    List.iter
      (fun (w, i, j) ->
        let ri = find parent i and rj = find parent j in
        if ri <> rj then begin
          parent.(ri) <- rj;
          total := !total + w
        end)
      edges;
    !total
  end
