(* Selective communication (Figures 4-5).  Most tests run on the simulated
   backend, where scheduling is deterministic; a stress test runs on real
   domains. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* deterministic platform *)
module P =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:4 ()
    end)
    ()

module S = Mpthreads.Sched_thread.Make (P)
module Sel = Select.Make (P) (S) (Queues.Fifo_queue)

let in_pool ?procs f = P.run (fun () -> S.with_pool ?procs f)

let test_send_then_receive () =
  let v =
    in_pool (fun () ->
        let c = Sel.chan () in
        S.fork (fun () -> Sel.send (c, 41));
        S.yield ();
        Sel.receive [ c ])
  in
  check "value" 41 v

let test_receive_then_send () =
  let v =
    in_pool (fun () ->
        let c = Sel.chan () in
        let got = ref 0 in
        S.fork (fun () -> got := Sel.receive [ c ]);
        S.yield ();
        Sel.send (c, 17);
        (* receiver resumes on some proc; wait for it *)
        while !got = 0 do
          S.yield ()
        done;
        !got)
  in
  check "value" 17 v

let test_fifo_sender_order () =
  let v =
    in_pool ~procs:1 (fun () ->
        let c = Sel.chan () in
        S.fork (fun () -> Sel.send (c, 1));
        S.fork (fun () -> Sel.send (c, 2));
        S.fork (fun () -> Sel.send (c, 3));
        S.yield ();
        let a = Sel.receive [ c ] in
        let b = Sel.receive [ c ] in
        let d = Sel.receive [ c ] in
        (a * 100) + (b * 10) + d)
  in
  check "fifo queue of blocked senders" 123 v

let test_select_from_ready_channel () =
  Sel.set_seed 1;
  let v =
    in_pool (fun () ->
        let c1 = Sel.chan () and c2 = Sel.chan () in
        S.fork (fun () -> Sel.send (c2, 5));
        S.yield ();
        (* only c2 has a sender: receive must pick it whatever the order *)
        Sel.receive [ c1; c2 ])
  in
  check "picks the ready channel" 5 v

let test_select_many_channels () =
  Sel.set_seed 2;
  let v =
    in_pool (fun () ->
        let chans = List.init 10 (fun _ -> Sel.chan ()) in
        List.iteri
          (fun i c -> S.fork (fun () -> Sel.send (c, i)))
          chans;
        S.yield ();
        (* drain all ten via repeated selective receive *)
        let sum = ref 0 in
        for _ = 1 to 10 do
          sum := !sum + Sel.receive chans
        done;
        !sum)
  in
  check "all values received exactly once" 45 v

let test_two_receivers_one_sender () =
  let v =
    in_pool (fun () ->
        let c = Sel.chan () in
        let got = Atomic.make 0 in
        let waiting = Atomic.make 0 in
        S.fork (fun () ->
            Atomic.incr waiting;
            ignore (Atomic.fetch_and_add got (Sel.receive [ c ])));
        S.fork (fun () ->
            Atomic.incr waiting;
            ignore (Atomic.fetch_and_add got (Sel.receive [ c ])));
        while Atomic.get waiting < 2 do
          S.yield ()
        done;
        Sel.send (c, 7);
        while Atomic.get got = 0 do
          S.yield ()
        done;
        (* exactly one receiver got the value; the other still blocks *)
        Atomic.get got)
  in
  check "exactly one delivery" 7 v

let test_stale_receiver_skipped () =
  (* A receiver parked on two channels is consumed via c1; its stale entry
     on c2 must not swallow a later send on c2. *)
  Sel.set_seed 3;
  let v =
    in_pool (fun () ->
        let c1 = Sel.chan () and c2 = Sel.chan () in
        let first = ref 0 and second = ref 0 in
        S.fork (fun () -> first := Sel.receive [ c1; c2 ]);
        (* wait until the receiver is parked on both channels *)
        while snd (Sel.pending c1) = 0 || snd (Sel.pending c2) = 0 do
          S.yield ()
        done;
        Sel.send (c1, 10);
        while !first = 0 do
          S.yield ()
        done;
        (* now c2 still holds a stale rcvr record *)
        let _, stale = Sel.pending c2 in
        S.fork (fun () -> second := Sel.receive [ c2 ]);
        S.yield ();
        Sel.send (c2, 20);
        while !second = 0 do
          S.yield ()
        done;
        checkb "stale record existed" true (stale >= 1);
        (!first * 100) + !second)
  in
  check "stale entry skipped, fresh receiver served" 1020 v

let test_figure5_fix_sender_not_lost () =
  (* The printed Figure 5 drops a dequeued sender whenever a multi-channel
     receiver loses the race for its own [committed] lock.  Drive many
     multi-channel receivers against senders spread over the same channels:
     receivers park on several channels, get committed via one, and then
     (in other threads' scans) their stale records collide with live
     senders.  With the bug, a sender is dropped and the conservation count
     comes up short (this test would hang); with the fix, every value
     arrives exactly once. *)
  Sel.set_seed 4;
  let k = 4 and n = 40 in
  let v =
    in_pool (fun () ->
        let chans = Array.init k (fun _ -> Sel.chan ()) in
        let chan_list = Array.to_list chans in
        let sum = Atomic.make 0 in
        let got = Atomic.make 0 in
        for i = 1 to n do
          S.fork (fun () -> Sel.send (chans.(i mod k), i))
        done;
        for _ = 1 to n do
          S.fork (fun () ->
              ignore (Atomic.fetch_and_add sum (Sel.receive chan_list));
              Atomic.incr got)
        done;
        while Atomic.get got < n do
          S.yield ()
        done;
        Atomic.get sum)
  in
  check "no sender lost across commit races" (n * (n + 1) / 2) v

let test_pending_counts () =
  in_pool (fun () ->
      let c = Sel.chan () in
      S.fork (fun () -> Sel.send (c, 1));
      S.fork (fun () -> Sel.send (c, 2));
      (* wait until both senders have parked *)
      while fst (Sel.pending c) < 2 do
        S.yield ()
      done;
      let sndrs, rcvrs = Sel.pending c in
      check "two blocked senders" 2 sndrs;
      check "no receivers" 0 rcvrs;
      ignore (Sel.receive [ c ]);
      ignore (Sel.receive [ c ]))

let test_many_pairs_stress_sim () =
  let n = 100 in
  let v =
    in_pool (fun () ->
        let c = Sel.chan () in
        let sum = Atomic.make 0 in
        for i = 1 to n do
          S.fork (fun () -> Sel.send (c, i))
        done;
        for _ = 1 to n do
          ignore (Atomic.fetch_and_add sum (Sel.receive [ c ]))
        done;
        Atomic.get sum)
  in
  check "all messages" (n * (n + 1) / 2) v

(* the same functor text on the trivial uniprocessor backend: the paper's
   portability claim for client packages *)
module UP = Mp.Mp_uniproc.Int ()
module UT = Mpthreads.Uni_thread.Make (Queues.Fifo_queue)
module USel = Select.Make (UP) (UT) (Queues.Fifo_queue)

let test_select_on_uniproc () =
  UT.reset ();
  let v =
    UP.run (fun () ->
        let c1 = USel.chan () and c2 = USel.chan () in
        UT.fork (fun () -> USel.send (c1, 10));
        UT.fork (fun () -> USel.send (c2, 20));
        UT.yield ();
        USel.receive [ c1; c2 ] + USel.receive [ c1; c2 ])
  in
  check "portable to the uniprocessor backend" 30 v

(* real-parallel stress on domains *)
module PD =
  Mp.Mp_domains.Int (struct
      let max_procs = 4
    end)
    ()

module SD = Mpthreads.Sched_thread.Make (PD)
module SelD = Select.Make (PD) (SD) (Queues.Fifo_queue)

let test_domains_stress () =
  let n = 500 in
  let v =
    PD.run (fun () ->
        SD.with_pool (fun () ->
            let c = SelD.chan () in
            let sum = Atomic.make 0 in
            let got = Atomic.make 0 in
            for i = 1 to n do
              SD.fork (fun () -> SelD.send (c, i))
            done;
            for _ = 1 to n do
              SD.fork (fun () ->
                  ignore (Atomic.fetch_and_add sum (SelD.receive [ c ]));
                  Atomic.incr got)
            done;
            while Atomic.get got < n do
              SD.yield ()
            done;
            Atomic.get sum))
  in
  check "no message lost or duplicated under real parallelism"
    (n * (n + 1) / 2)
    v

let () =
  Alcotest.run "select"
    [
      ( "basic",
        [
          Alcotest.test_case "send then receive" `Quick test_send_then_receive;
          Alcotest.test_case "receive then send" `Quick test_receive_then_send;
          Alcotest.test_case "sender fifo" `Quick test_fifo_sender_order;
          Alcotest.test_case "pending counts" `Quick test_pending_counts;
        ] );
      ( "selective",
        [
          Alcotest.test_case "ready channel" `Quick
            test_select_from_ready_channel;
          Alcotest.test_case "many channels" `Quick test_select_many_channels;
          Alcotest.test_case "one sender, two receivers" `Quick
            test_two_receivers_one_sender;
          Alcotest.test_case "stale receiver skipped" `Quick
            test_stale_receiver_skipped;
          Alcotest.test_case "figure-5 fix" `Quick
            test_figure5_fix_sender_not_lost;
        ] );
      ( "portability",
        [ Alcotest.test_case "uniproc backend" `Quick test_select_on_uniproc ] );
      ( "stress",
        [
          Alcotest.test_case "100 pairs (sim)" `Quick test_many_pairs_stress_sim;
          Alcotest.test_case "500 pairs (domains)" `Slow test_domains_stress;
        ] );
    ]
