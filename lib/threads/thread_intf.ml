(** Thread-package interfaces.

    [THREAD] is the paper's Figure-1 signature.  [SCHED] extends it with the
    scheduler internals ([reschedule], [dispatch], ...) that the paper's
    higher-level clients — selective communication (Figure 5), CML, and
    synchronization constructs — are written against. *)

module type THREAD = sig
  val fork : (unit -> unit) -> unit
  (** Start a new thread executing the given function, with a fresh integer
      id, running in parallel with its parent. *)

  val yield : unit -> unit
  (** Temporarily yield the processor to another thread. *)

  val id : unit -> int
  (** Id of the current thread. *)
end

module type SCHED = sig
  include THREAD

  val reschedule : unit Mp.Engine.cont * int -> unit
  (** Make a saved thread (continuation and id) ready to run. *)

  val reschedule_thread : 'a Mp.Engine.cont * 'a * int -> unit
  (** Make a thread blocked on a typed continuation ready, delivering the
      given value when it resumes (paper, Figure 5 caption). *)

  val dispatch : unit -> 'a
  (** Abandon the current computation and run the next ready thread; if
      none is available, give up the proc (or idle, package-dependent).
      Never returns. *)
end

(** A scheduler that can also run timed callbacks — what CML's timeout
    events require.  {!Sched_thread} provides it; the paper-faithful
    Figure-1/Figure-3 packages do not. *)
module type TIMED_SCHED = sig
  include SCHED

  val now : unit -> float
  val at : float -> (unit -> unit) -> unit
end

(** A ready-queue policy, the pluggable heart of {!Sched_thread}: the paper
    notes that "thread scheduling policy can be changed simply by varying
    the functor's argument", and this signature is that argument generalized
    beyond a single queue — per-proc state, fork placement and steal
    behavior all live behind it.  {!Sched_policy} provides the family
    (central FIFO/LIFO, the distributed locked deques, lock-free work
    stealing, pinned micropools). *)
module type SCHEDULER = sig
  val name : string

  type 'a t

  val create : procs:int -> 'a t
  (** [procs] is the platform's [max_procs] — the upper bound on proc
      indices that will ever touch the queue. *)

  val prepare : 'a t -> procs:int -> unit
  (** Called once per pool, after proc acquisition and before the pool body
      runs, with the number of procs actually acquired.  Elastic policies
      (work stealing's victim range, micropools' pool count) clamp
      themselves here; fixed policies ignore it. *)

  val push_local : 'a t -> proc:int -> 'a -> unit
  (** Enqueue with affinity to [proc] (the calling proc): resumed
      continuations and yields land here. *)

  val push_new : 'a t -> proc:int -> 'a -> unit
  (** Enqueue a freshly forked thread from [proc]; policies with no
      affinity for new work spray these round-robin. *)

  val take : 'a t -> proc:int -> 'a option
  (** Next runnable for [proc] — its own queue first, then whatever the
      policy's steal behavior finds.  [None] when the policy sees nothing
      runnable for this proc right now. *)

  val looks_nonempty : 'a t -> proc:int -> bool
  (** Racy, charge-free hint covering the peek set of {!take}: used as the
      idle poller's readiness predicate, so it must take no locks, perform
      no platform charges and write nothing. *)

  val total_length : 'a t -> int
  (** Approximate enqueued items (racy, charge-free snapshot). *)

  val steals : 'a t -> int
  (** Successful steal operations so far. *)

  val steal_attempts : 'a t -> int
  (** Steal probes (successful or not).  Policies that do not distinguish
      probes from hits report {!steals}. *)
end
