examples/quickstart.mli:
