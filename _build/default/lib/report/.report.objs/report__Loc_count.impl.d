lib/report/loc_count.ml: Array Filename Format Hashtbl List Render Sys
