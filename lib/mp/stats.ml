type proc_stats = {
  mutable busy : float;
  mutable idle : float;
  mutable gc_wait : float;
  mutable queue_wait : float;
  mutable lock_spins : int;
  mutable alloc_words : int;
}

type t = {
  platform : string;
  procs : int;
  elapsed : float;
  gc_time : float;
  gc_count : int;
  bus_busy : float;
  bus_bytes : int;
  sched_decisions : int;
  suspensions : int;
  heap_ops : int;
  per_proc : proc_stats array;
}

let make_proc_stats () =
  {
    busy = 0.;
    idle = 0.;
    gc_wait = 0.;
    queue_wait = 0.;
    lock_spins = 0;
    alloc_words = 0;
  }

let zero ~platform ~procs =
  {
    platform;
    procs;
    elapsed = 0.;
    gc_time = 0.;
    gc_count = 0;
    bus_busy = 0.;
    bus_bytes = 0;
    sched_decisions = 0;
    suspensions = 0;
    heap_ops = 0;
    per_proc = Array.init procs (fun _ -> make_proc_stats ());
  }

let idle_fraction t =
  let num = ref 0. and den = ref 0. in
  Array.iter
    (fun p ->
      num := !num +. p.idle;
      den := !den +. p.busy +. p.idle +. p.gc_wait)
    t.per_proc;
  if !den = 0. then 0. else !num /. !den

let gc_fraction t =
  if t.elapsed = 0. || t.procs = 0 then 0.
  else t.gc_time /. (float_of_int t.procs *. t.elapsed)

let bus_utilization t = if t.elapsed = 0. then 0. else t.bus_busy /. t.elapsed

let total_alloc_words t =
  Array.fold_left (fun acc p -> acc + p.alloc_words) 0 t.per_proc

let total_lock_spins t =
  Array.fold_left (fun acc p -> acc + p.lock_spins) 0 t.per_proc

let total_gc_wait t =
  Array.fold_left (fun acc p -> acc +. p.gc_wait) 0. t.per_proc

let total_queue_wait t =
  Array.fold_left (fun acc p -> acc +. p.queue_wait) 0. t.per_proc

let pp fmt t =
  Format.fprintf fmt
    "@[<v>platform=%s procs=%d elapsed=%.6fs gc=%.6fs (%d) bus=%.1f%% \
     idle=%.1f%% spins=%d alloc=%dw host:decisions=%d susp=%d heap=%d@]"
    t.platform t.procs t.elapsed t.gc_time t.gc_count
    (100. *. bus_utilization t)
    (100. *. idle_fraction t)
    (total_lock_spins t) (total_alloc_words t) t.sched_decisions t.suspensions
    t.heap_ops
