test/test_sim.ml: Alcotest Array Atomic Float List Mp Mpthreads Option QCheck QCheck_alcotest Sim
