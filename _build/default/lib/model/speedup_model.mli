(** Closed-form speedup model used to cross-check the simulator.

    The §6 story of the paper is that each benchmark's speedup is governed
    by four resources; this model composes them analytically:

    {ul
    {- perfectly parallel work [work] (seconds on one proc), bounded by the
       available parallelism [max_par] (e.g. simple's banded sweeps);}
    {- a serial component [serial] (boundary passes, fork/join and
       reduction overheads) that Amdahl-limits the curve;}
    {- stop-the-world sequential collection [gc], paid at any proc count;}
    {- a shared bus: the run cannot finish faster than its total traffic
       [bus_bytes] divided by the bus bandwidth.}}

    T(p) = max( work/min(p,max_par) + serial + gc,  bus_seconds ),
    speedup(p) = T(1)/T(p).

    Fitting these four numbers from a single-proc simulator run and
    comparing predictions against full simulations validates that the
    simulator's behaviour comes from the modelled resources and nothing
    else. *)

type params = {
  work : float;  (** parallelizable seconds at p=1 *)
  serial : float;  (** per-run serial seconds (excluding GC) *)
  gc : float;  (** total collection seconds *)
  bus_seconds : float;  (** total traffic / bandwidth *)
  max_par : float;  (** parallelism cap (infinity if none) *)
}

val time : params -> procs:int -> float
val speedup : params -> procs:int -> float

val fit :
  elapsed1:float -> gc1:float -> bus_busy1:float -> ?serial:float ->
  ?max_par:float -> unit -> params
(** Derive parameters from a 1-proc simulated run: [work] is what remains
    of [elapsed1] after GC and the declared serial part; the bus bound is
    the observed total bus occupancy. *)
