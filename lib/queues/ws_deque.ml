(* Chase-Lev deque.  [top] is the steal end (incremented by successful
   thieves via CAS), [bottom] the owner's end.  The circular buffer grows
   by copying; stale buffers are reclaimed by the GC.  Elements are stored
   as [Obj.t] so the buffer can be shared across grows without an initial
   dummy of type 'a.

   The algorithm is a functor over the atomic cells it races on
   ([Queue_intf.ATOMIC]) so the same text runs both over [Stdlib.Atomic]
   (the default instance below) and over the mp_check harness's
   instrumented cells, where every get/set/CAS is a serialization point. *)

module Make (A : Queue_intf.ATOMIC) = struct
  type buffer = { log_size : int; segment : Obj.t array }

  let buffer_make log_size =
    { log_size; segment = Array.make (1 lsl log_size) (Obj.repr ()) }

  let buffer_get b i = b.segment.(i land ((1 lsl b.log_size) - 1))
  let buffer_set b i v = b.segment.(i land ((1 lsl b.log_size) - 1)) <- v

  type 'a t = { top : int A.t; bottom : int A.t; buf : buffer A.t }

  let create () =
    { top = A.make 0; bottom = A.make 0; buf = A.make (buffer_make 4) }

  let size t = max 0 (A.get t.bottom - A.get t.top)

  let grow t b bot top =
    let bigger = buffer_make (b.log_size + 1) in
    for i = top to bot - 1 do
      buffer_set bigger i (buffer_get b i)
    done;
    A.set t.buf bigger;
    bigger

  let push t v =
    let bot = A.get t.bottom in
    let top = A.get t.top in
    let b = A.get t.buf in
    let b =
      if bot - top >= (1 lsl b.log_size) - 1 then grow t b bot top else b
    in
    buffer_set b bot (Obj.repr v);
    (* publish the element before publishing the new bottom *)
    A.set t.bottom (bot + 1)

  let pop (type a) (t : a t) : a option =
    let bot = A.get t.bottom - 1 in
    let b = A.get t.buf in
    A.set t.bottom bot;
    let top = A.get t.top in
    if bot < top then begin
      (* empty: restore *)
      A.set t.bottom top;
      None
    end
    else begin
      let v : a = Obj.obj (buffer_get b bot) in
      if bot > top then Some v
      else begin
        (* last element: race with thieves via CAS on top *)
        let won = A.compare_and_set t.top top (top + 1) in
        A.set t.bottom (top + 1);
        if won then Some v else None
      end
    end

  let steal (type a) (t : a t) : a option =
    let top = A.get t.top in
    let bot = A.get t.bottom in
    if bot <= top then None
    else begin
      let b = A.get t.buf in
      let v : a = Obj.obj (buffer_get b top) in
      if A.compare_and_set t.top top (top + 1) then Some v else None
    end
end

include Make (Queue_intf.Stdlib_atomic)
