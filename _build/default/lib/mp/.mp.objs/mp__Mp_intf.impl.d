lib/mp/mp_intf.ml: Engine Stats
