module Make (P : Lock_intf.PRIMS) = struct
  type t = { state : int P.cell }

  let create () = { state = P.make 0 }

  let try_read_lock t =
    let s = P.get t.state in
    s >= 0 && P.compare_and_set t.state s (s + 1)

  let read_lock t =
    while not (try_read_lock t) do
      P.on_spin ();
      P.pause ()
    done

  let read_unlock t =
    let rec retry () =
      let s = P.get t.state in
      if s <= 0 then invalid_arg "Rw_spin_lock.read_unlock: no active reader";
      if not (P.compare_and_set t.state s (s - 1)) then begin
        P.pause ();
        retry ()
      end
    in
    retry ()

  let try_write_lock t = P.compare_and_set t.state 0 (-1)

  let write_lock t =
    while not (try_write_lock t) do
      P.on_spin ();
      P.pause ()
    done

  let write_unlock t =
    if not (P.compare_and_set t.state (-1) 0) then
      invalid_arg "Rw_spin_lock.write_unlock: not write-locked"

  let readers t = P.get t.state
end
