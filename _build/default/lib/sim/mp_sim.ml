open Mp

(* Scheduler directive: the suspend body has already re-queued (or freed)
   the current proc; return control to the simulation loop. *)
type Engine.action += A_yield

module Make
    (C : sig
      val config : Sim_config.t
    end)
    (D : Mp.Mp_intf.DATUM) =
struct
  let config = C.config
  let name = "sim:" ^ config.name

  module Kont = struct
    type 'a cont = 'a Engine.cont

    let callcc = Engine.callcc
    let throw = Engine.throw
    let throw_exn = Engine.throw_exn
  end

  type pstate =
    | Free
    | Ready of Engine.action
    | Current
    | Gc_waiting of Engine.action

  type sproc = {
    id : int;
    mutable clock : int;
    mutable state : pstate;
    mutable datum : D.t;
    mutable busy : int;
    mutable idle : int;
    mutable gc_wait : int;
    mutable spins : int;
    mutable alloc_words : int;
  }

  let fresh_proc id =
    {
      id;
      clock = 0;
      state = Free;
      datum = D.initial;
      busy = 0;
      idle = 0;
      gc_wait = 0;
      spins = 0;
      alloc_words = 0;
    }

  let procs = Array.init config.procs fresh_proc
  let current = ref 0
  let cur () = procs.(!current)
  let bus_free_at = ref 0
  let bus_busy = ref 0
  let bus_total_bytes = ref 0
  let region_used = ref 0
  let gc_pending = ref false
  let gc_count = ref 0
  let gc_cycles_total = ref 0
  let max_clock = ref 0
  let escaped : exn option ref = ref None
  let poll_hook = ref (fun () -> ())
  let running = ref false
  let trace : Sim_trace.t option ref = ref None

  let trace_event e =
    match !trace with Some t -> Sim_trace.record t e | None -> ()

  let observe_clock n = if n > !max_clock then max_clock := n

  (* ------------------------------------------------------------------ *)
  (* Fiber-side charging primitives.                                    *)
  (* ------------------------------------------------------------------ *)

  let yield_ready p c =
    p.state <- Ready (Engine.Resume (c, ()));
    A_yield

  let charge_busy n =
    if n > 0 then
      Engine.suspend (fun c ->
          let p = cur () in
          p.clock <- p.clock + n;
          p.busy <- p.busy + n;
          observe_clock p.clock;
          yield_ready p c)

  let charge_idle n =
    if n > 0 then
      Engine.suspend (fun c ->
          let p = cur () in
          p.clock <- p.clock + n;
          p.idle <- p.idle + n;
          observe_clock p.clock;
          yield_ready p c)

  (* FCFS shared bus: runs inside a suspend body, advances [p] past the end
     of its transfer.  Queueing stall counts as busy time (the proc is
     stalled on memory, not idle). *)
  let bus_transfer p bytes =
    let dur =
      max 1 (int_of_float (float_of_int bytes /. config.bus_bytes_per_cycle))
    in
    let start = max p.clock !bus_free_at in
    let stall = start - p.clock in
    p.clock <- start + dur;
    p.busy <- p.busy + stall + dur;
    bus_free_at := p.clock;
    bus_busy := !bus_busy + dur;
    bus_total_bytes := !bus_total_bytes + bytes;
    observe_clock p.clock

  (* Allocation is spread over the computation it belongs to: one suspend
     per small slice, so bus occupancy interleaves with other procs instead
     of arriving as one long FCFS burst. *)
  let alloc_slice_words = 256

  let alloc_one_slice words =
    if words > 0 then
      Engine.suspend (fun c ->
        let p = cur () in
        let cpu =
          int_of_float (config.alloc_cycles_per_word *. float_of_int words)
        in
        p.clock <- p.clock + cpu;
        p.busy <- p.busy + cpu;
        bus_transfer p (words * config.word_bytes);
        p.alloc_words <- p.alloc_words + words;
        region_used := !region_used + words;
        if !region_used >= config.gc_region_words then gc_pending := true;
        yield_ready p c)

  let alloc_impl words =
    let remaining = ref words in
    while !remaining > 0 do
      let slice = min !remaining alloc_slice_words in
      alloc_one_slice slice;
      remaining := !remaining - slice
    done

  (* ------------------------------------------------------------------ *)
  (* Simulation loop.                                                    *)
  (* ------------------------------------------------------------------ *)

  let on_exn e =
    if !escaped = None then escaped := Some e;
    Engine.Stop

  let exec_action = function
    | Engine.Resume (c, v) -> Engine.resume c v
    | Engine.Raise (c, e) -> Engine.resume_exn c e
    | Engine.Start f -> Engine.run_fiber ~on_exn f
    | _ -> raise Engine.Unhandled_action

  (* Run one proc from its pending action until it yields back. *)
  let interp p action =
    let a = ref action in
    let live = ref true in
    while !live do
      match !a with
      | Engine.Stop ->
          p.state <- Free;
          live := false
      | A_yield -> live := false
      | other -> a := exec_action other
    done

  let run_gc () =
    let gc_started_region = !region_used in
    let gc_start =
      Array.fold_left
        (fun acc p ->
          match p.state with Gc_waiting _ -> max acc p.clock | _ -> acc)
        0 procs
    in
    let copied =
      int_of_float (config.gc_survival *. float_of_int !region_used)
    in
    let waiters =
      Array.fold_left
        (fun acc p -> match p.state with Gc_waiting _ -> acc + 1 | _ -> acc)
        0 procs
    in
    let par = Float.min config.gc_parallelism (float_of_int (max 1 waiters)) in
    let dur =
      config.gc_fixed_cycles
      + int_of_float (config.gc_cycles_per_word *. float_of_int copied /. par)
    in
    let finish = gc_start + dur in
    trace_event (Sim_trace.Gc_start { clock = gc_start; region_words = gc_started_region });
    Array.iter
      (fun p ->
        match p.state with
        | Gc_waiting pending ->
            p.gc_wait <- p.gc_wait + (finish - p.clock);
            p.clock <- finish;
            p.state <- Ready pending
        | Free | Ready _ | Current -> ())
      procs;
    observe_clock finish;
    trace_event (Sim_trace.Gc_end { clock = finish; duration = dur });
    gc_cycles_total := !gc_cycles_total + dur;
    incr gc_count;
    region_used := 0;
    gc_pending := false

  let pick_min_ready () =
    let best = ref None in
    Array.iter
      (fun p ->
        match p.state with
        | Ready _ -> (
            match !best with
            | Some b when b.clock <= p.clock -> ()
            | _ -> best := Some p)
        | Free | Current | Gc_waiting _ -> ())
      procs;
    !best

  let any_gc_waiting () =
    Array.exists (fun p -> match p.state with Gc_waiting _ -> true | _ -> false) procs

  (* Real-time watchdog for debugging client deadlocks: dump proc states if
     the simulation makes this many scheduling decisions without finishing. *)
  let debug_iterations =
    match Sys.getenv_opt "MP_SIM_DEBUG_ITERS" with
    | Some v -> int_of_string_opt v
    | None -> None

  let iter_count = ref 0

  let dump_states () =
    let b = Buffer.create 256 in
    Array.iter
      (fun p ->
        Buffer.add_string b
          (Printf.sprintf "proc %d clock=%d state=%s\n" p.id p.clock
             (match p.state with
             | Free -> "Free"
             | Ready _ -> "Ready"
             | Current -> "Current"
             | Gc_waiting _ -> "Gc_waiting")))
      procs;
    Buffer.add_string b
      (Printf.sprintf "region=%d gc_pending=%b bus_free_at=%d\n" !region_used
         !gc_pending !bus_free_at);
    Buffer.contents b

  let rec loop () =
    (match debug_iterations with
    | Some n ->
        incr iter_count;
        if !iter_count mod n = 0 then
          prerr_string (Printf.sprintf "[sim after %d decisions]\n%s" !iter_count (dump_states ()))
    | None -> ());
    match pick_min_ready () with
    | Some p ->
        if !gc_pending then begin
          (match p.state with
          | Ready a -> p.state <- Gc_waiting a
          | Free | Current | Gc_waiting _ -> assert false);
          loop ()
        end
        else begin
          let a = match p.state with Ready a -> a | _ -> assert false in
          p.state <- Current;
          current := p.id;
          (if !trace <> None then
             trace_event (Sim_trace.Dispatch { proc = p.id; clock = p.clock }));
          interp p a;
          (if !trace <> None && p.state = Free then
             trace_event (Sim_trace.Freed { proc = p.id; clock = p.clock }));
          loop ()
        end
    | None ->
        if any_gc_waiting () then begin
          (* Barrier complete: every non-free proc is parked at a clean
             point.  (Also reached when gc_pending was consumed but stragglers
             remain parked — run_gc releases them.) *)
          run_gc ();
          loop ()
        end
    (* else: all procs free — simulation over *)

  (* ------------------------------------------------------------------ *)
  (* Platform interface.                                                 *)
  (* ------------------------------------------------------------------ *)

  module Proc = struct
    type proc_datum = D.t
    type proc_state = PS of unit Engine.cont * proc_datum

    exception No_More_Procs = Mp_intf.No_More_Procs

    let acquire_proc (PS (cont, datum)) =
      let ok =
        Engine.suspend (fun c ->
            let p = cur () in
            p.clock <- p.clock + config.acquire_proc_cycles;
            p.busy <- p.busy + config.acquire_proc_cycles;
            observe_clock p.clock;
            let free = Array.find_opt (fun q -> q.state = Free && q.id <> p.id) procs in
            match free with
            | Some q ->
                q.datum <- datum;
                let start = max q.clock p.clock in
                q.idle <- q.idle + (start - q.clock);
                q.clock <- start;
                q.state <- Ready (Engine.Resume (cont, ()));
                trace_event
                  (Sim_trace.Acquired { proc = q.id; by = p.id; clock = p.clock });
                p.state <- Ready (Engine.Resume (c, true));
                A_yield
            | None ->
                p.state <- Ready (Engine.Resume (c, false));
                A_yield)
      in
      if not ok then raise No_More_Procs

    let release_proc () =
      Engine.suspend (fun _ ->
          (cur ()).state <- Free;
          A_yield)

    let initial_datum = D.initial
    let get_datum () = (cur ()).datum
    let set_datum d = (cur ()).datum <- d
    let self () = !current
    let max_procs () = config.procs

    let live_procs () =
      Array.fold_left
        (fun acc p -> if p.state = Free then acc else acc + 1)
        0 procs
  end

  module Lock = struct
    type mutex_lock = { mutable held : bool }

    let mutex_lock () = { held = false }

    (* Charge the probe first (a suspension point), then test-and-set with
       no intervening suspension — atomic in virtual time. *)
    let try_lock l =
      Engine.suspend (fun c ->
          let p = cur () in
          p.clock <- p.clock + config.try_lock_cycles;
          p.busy <- p.busy + config.try_lock_cycles;
          bus_transfer p config.lock_bus_bytes;
          yield_ready p c);
      if l.held then begin
        let p = cur () in
        p.spins <- p.spins + 1;
        false
      end
      else begin
        l.held <- true;
        true
      end

    (* Deterministic per-proc, per-attempt jitter on the retry delay breaks
       the phase-locking that a fixed period can produce under the
       deterministic min-clock scheduler (a spinning proc could otherwise
       probe forever exactly inside other procs' hold windows). *)
    let lock l =
      let attempt = ref 0 in
      while not (try_lock l) do
        incr attempt;
        charge_busy
          (config.spin_retry_cycles
          + (((!current * 37) + (!attempt * 13)) mod 101))
      done

    let unlock l =
      Engine.suspend (fun c ->
          let p = cur () in
          p.clock <- p.clock + config.unlock_cycles;
          p.busy <- p.busy + config.unlock_cycles;
          bus_transfer p config.lock_bus_bytes;
          yield_ready p c);
      l.held <- false
  end

  module Work = struct
    let charge n = charge_busy n
    let alloc ~words = alloc_impl words

    let traffic ~bytes =
      if bytes > 0 then
        Engine.suspend (fun c ->
            let p = cur () in
            bus_transfer p bytes;
            yield_ready p c)

    (* Interleave compute and allocation slices so the generated bus
       traffic is spread across the work, as real allocation is. *)
    let step ?alloc_words ~instrs () =
      let words =
        match alloc_words with Some w -> w | None -> instrs / 5
      in
      let cycles = int_of_float (float_of_int instrs *. config.cpi) in
      let slices = max 1 ((words + alloc_slice_words - 1) / alloc_slice_words) in
      let cyc_per = cycles / slices and w_per = words / slices in
      for i = 1 to slices do
        charge_busy (if i = 1 then cycles - (cyc_per * (slices - 1)) else cyc_per);
        alloc_one_slice (if i = 1 then words - (w_per * (slices - 1)) else w_per)
      done;
      !poll_hook ()

    let poll () = !poll_hook ()
    let set_poll_hook f = poll_hook := f
    let idle () = charge_idle config.idle_quantum_cycles
    let now () = Sim_config.cycles_to_seconds config (cur ()).clock
  end

  let reset () =
    Array.iteri
      (fun i p ->
        let f = fresh_proc i in
        p.clock <- f.clock;
        p.state <- Free;
        p.datum <- D.initial;
        p.busy <- 0;
        p.idle <- 0;
        p.gc_wait <- 0;
        p.spins <- 0;
        p.alloc_words <- 0)
      procs;
    bus_free_at := 0;
    bus_busy := 0;
    bus_total_bytes := 0;
    region_used := 0;
    gc_pending := false;
    gc_count := 0;
    gc_cycles_total := 0;
    max_clock := 0;
    escaped := None;
    poll_hook := (fun () -> ())

  let run f =
    if !running then invalid_arg "Mp_sim.run: already running";
    running := true;
    reset ();
    let result = ref None in
    procs.(0).state <-
      Ready (Engine.Start (fun () -> result := Some (f ())));
    current := 0;
    Fun.protect
      ~finally:(fun () -> running := false)
      (fun () ->
        loop ();
        match (!result, !escaped) with
        | Some v, None -> v
        | _, Some e -> raise e
        | None, None ->
            raise
              (Mp_intf.Deadlock
                 "sim: all procs released without producing a result"))

  let stats () =
    let t = Stats.zero ~platform:name ~procs:config.procs in
    let secs = Sim_config.cycles_to_seconds config in
    Array.iteri
      (fun i p ->
        let s = t.per_proc.(i) in
        s.busy <- secs p.busy;
        s.idle <- secs p.idle;
        s.gc_wait <- secs p.gc_wait;
        s.lock_spins <- p.spins;
        s.alloc_words <- p.alloc_words)
      procs;
    {
      t with
      elapsed = secs !max_clock;
      gc_time = secs !gc_cycles_total;
      gc_count = !gc_count;
      bus_busy = secs !bus_busy;
      bus_bytes = !bus_total_bytes;
    }

  let reset_stats () = reset ()

  module Machine = struct
    let config = config
    let makespan_cycles () = !max_clock
    let gc_cycles () = !gc_cycles_total
    let gc_collections () = !gc_count
    let bus_bytes () = !bus_total_bytes
    let bus_busy_cycles () = !bus_busy
    let elapsed_seconds () = Sim_config.cycles_to_seconds config !max_clock

    let gc_excluded_seconds () =
      Sim_config.cycles_to_seconds config (!max_clock - !gc_cycles_total)

    let bus_mb_per_sec () =
      let secs = elapsed_seconds () in
      if secs <= 0. then 0.
      else float_of_int !bus_total_bytes /. 1.0e6 /. secs

    let enable_trace ?(capacity = 4096) () =
      trace := Some (Sim_trace.create ~capacity)

    let disable_trace () = trace := None
    let trace () = !trace
  end
end

module Int
    (C : sig
      val config : Sim_config.t
    end)
    () =
  Make (C) (Mp_intf.Int_datum)
