(* Chase-Lev deque.  [top] is the steal end (incremented by successful
   thieves via CAS), [bottom] the owner's end.  The circular buffer grows
   by copying; stale buffers are reclaimed by the GC.  Elements are stored
   as [Obj.t] so the buffer can be shared across grows without an initial
   dummy of type 'a. *)

type buffer = { log_size : int; segment : Obj.t array }

let buffer_make log_size = { log_size; segment = Array.make (1 lsl log_size) (Obj.repr ()) }
let buffer_get b i = b.segment.(i land ((1 lsl b.log_size) - 1))
let buffer_set b i v = b.segment.(i land ((1 lsl b.log_size) - 1)) <- v

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : buffer Atomic.t;
}

let create () =
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (buffer_make 4) }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

let grow t b bot top =
  let bigger = buffer_make (b.log_size + 1) in
  for i = top to bot - 1 do
    buffer_set bigger i (buffer_get b i)
  done;
  Atomic.set t.buf bigger;
  bigger

let push t v =
  let bot = Atomic.get t.bottom in
  let top = Atomic.get t.top in
  let b = Atomic.get t.buf in
  let b = if bot - top >= (1 lsl b.log_size) - 1 then grow t b bot top else b in
  buffer_set b bot (Obj.repr v);
  (* publish the element before publishing the new bottom *)
  Atomic.set t.bottom (bot + 1)

let pop (type a) (t : a t) : a option =
  let bot = Atomic.get t.bottom - 1 in
  let b = Atomic.get t.buf in
  Atomic.set t.bottom bot;
  let top = Atomic.get t.top in
  if bot < top then begin
    (* empty: restore *)
    Atomic.set t.bottom top;
    None
  end
  else begin
    let v : a = Obj.obj (buffer_get b bot) in
    if bot > top then Some v
    else begin
      (* last element: race with thieves via CAS on top *)
      let won = Atomic.compare_and_set t.top top (top + 1) in
      Atomic.set t.bottom (top + 1);
      if won then Some v else None
    end
  end

let steal (type a) (t : a t) : a option =
  let top = Atomic.get t.top in
  let bot = Atomic.get t.bottom in
  if bot <= top then None
  else begin
    let b = Atomic.get t.buf in
    let v : a = Obj.obj (buffer_get b top) in
    if Atomic.compare_and_set t.top top (top + 1) then Some v else None
  end
