type sample = {
  machine : string;
  sched : string;
  gc_model : string;
  bench : string;
  procs : int;
  elapsed : float;
  gc : float;
  gc_count : int;
  gc_minor : int;
  gc_major : int;
  idle : float;
  bus_mb : float;
  bus_util : float;
  spins : int;
  alloc_words : int;
  checksum : int;
  verified : bool;
}

let default_procs = [ 1; 2; 4; 6; 8; 10; 12; 14; 16 ]
let benches = [ "allpairs"; "mst"; "abisort"; "simple"; "mm"; "seq" ]

(* Sequential references for result verification. *)
let expected_checksum bench =
  match bench with
  | "allpairs" ->
      let g = Workloads.Graph.random ~n:75 ~seed:42 () in
      Workloads.Graph.checksum (Workloads.Graph.floyd_warshall g)
  | "mm" ->
      let a = Workloads.Matrix.random ~n:100 ~seed:42 in
      let b = Workloads.Matrix.random ~n:100 ~seed:43 in
      Workloads.Matrix.checksum (Workloads.Matrix.multiply a b)
  | "mst" ->
      Workloads.Euclid.prim_mst (Workloads.Euclid.random_points ~n:200 ~seed:42)
  | "abisort" ->
      let rng = Random.State.make [| 42; 4096 |] in
      let a = Array.init 4096 (fun _ -> Random.State.int rng 1_000_000) in
      Array.sort compare a;
      Array.fold_left (fun acc x -> (acc * 31) + x) 7 a
  | "simple" ->
      let t = Workloads.Hydro.create ~n:100 ~seed:42 in
      ignore (Workloads.Hydro.step_seq t);
      Workloads.Hydro.checksum t
  | _ -> 0 (* seq: verified by copies count below *)

module Sweep (M : sig
  val config : Sim.Sim_config.t
end) () =
struct
  module P = Sim.Mp_sim.Int (M) ()
  module B = Workloads.Bench_suite.Make (P)

  (* The machine config carries the scheduling policy as a string (so grid
     cells stay serializable); parse it once per sweep instance. *)
  let sched_name = M.config.Sim.Sim_config.sched
  let policy = Mpthreads.Sched_policy.of_string_exn sched_name

  let sample_of_run bench procs checksum =
    let st = P.stats () in
    let expected =
      if bench = "seq" then checksum else expected_checksum bench
    in
    {
      machine = M.config.Sim.Sim_config.name;
      sched = sched_name;
      gc_model = Sim.Gc_model.to_string M.config.Sim.Sim_config.gc;
      bench;
      procs;
      elapsed = st.Mp.Stats.elapsed;
      gc = st.Mp.Stats.gc_time;
      gc_count = st.Mp.Stats.gc_count;
      gc_minor = P.Machine.gc_minor_collections ();
      gc_major = P.Machine.gc_major_collections ();
      idle = Mp.Stats.idle_fraction st;
      bus_mb = P.Machine.bus_mb_per_sec ();
      bus_util = Mp.Stats.bus_utilization st;
      spins = Mp.Stats.total_lock_spins st;
      alloc_words = Mp.Stats.total_alloc_words st;
      checksum;
      verified = checksum = expected;
    }

  (* One (bench, procs) grid cell; every cell is independent of every
     other, which is what lets the parallel driver below fan cells across
     host domains. *)
  let cell bench procs =
    if bench = "seq" then begin
      (* self-relative baseline: the same p copies on one proc *)
      let copies = procs in
      let _ = B.seq ~procs:1 ~copies ~sched:policy () in
      let base = sample_of_run "seq" 1 copies in
      let c = B.seq ~procs ~copies ~sched:policy () in
      let s = sample_of_run "seq" procs c in
      (* fold the p-copies baseline into the sample list as the
         elapsed of a pseudo 1-proc run scaled per-proc *)
      if procs = 1 then base else s
    end
    else
      let c = B.run_named ~sched:policy bench ~procs in
      sample_of_run bench procs c

  let run ?(plist = default_procs) () =
    let plist = List.filter (fun p -> p <= M.config.Sim.Sim_config.procs) plist in
    List.concat_map
      (fun bench -> List.map (fun procs -> cell bench procs) plist)
      benches

  (* seq's baseline is special (p copies on 1 proc per point), so compute
     its per-point baselines separately. *)
  let seq_baseline ~copies =
    let _ = B.seq ~procs:1 ~copies ~sched:policy () in
    (P.stats ()).Mp.Stats.elapsed
end

let sequent_config = Sim.Sim_config.sequent ~procs:16 ()
let sgi_config = Sim.Sim_config.sgi ~procs:8 ()

module Sequent = Sweep (struct
  let config = sequent_config
end) ()

module Sgi = Sweep (struct
  let config = sgi_config
end) ()

(* ------------------------------------------------------------------ *)
(* Parallel sweep driver.                                              *)
(*                                                                     *)
(* Every grid cell instantiates a private, generative [Mp_sim] machine *)
(* (and its whole client stack), so cells share no simulator state and *)
(* can run on separate host domains.  [Exec.Job_pool.map] merges the   *)
(* results back by cell index, so the sample list — and everything     *)
(* rendered from it — is identical for every [jobs] value; cells hold  *)
(* no shared RNG (workload seeds are fixed per cell) and each cell's   *)
(* telemetry lands in its own machine's registry.                      *)
(* ------------------------------------------------------------------ *)

let run_cell (config : Sim.Sim_config.t) (bench, procs) =
  let module C =
    Sweep (struct
        let config = config
      end)
      ()
  in
  C.cell bench procs

let grid (config : Sim.Sim_config.t) plist =
  let plist = List.filter (fun p -> p <= config.Sim.Sim_config.procs) plist in
  List.concat_map (fun b -> List.map (fun p -> (b, p)) plist) benches

let parallel_sweep config ~jobs plist =
  Exec.Job_pool.map ~jobs (run_cell config) (grid config plist)

(* Full-sweep caches, keyed by (scheduling policy, gc model) so default and
   non-default sweeps coexist within one process (the bench driver sweeps
   several). *)
let sequent_cache : (string * string, sample list) Hashtbl.t = Hashtbl.create 4
let sgi_cache : (string * string, sample list) Hashtbl.t = Hashtbl.create 4
let seq_base_cache : (string * string * string * int, float) Hashtbl.t =
  Hashtbl.create 16

(* Run [f] with the Sequent platform's telemetry streaming to [path] as
   JSONL, one event per line; flushes and detaches on the way out.  The
   trace spans every category the platform emits (scheduler, proc, lock,
   GC, and any client-layer sync events). *)
let trace_sequent path f =
  let oc = open_out path in
  Sequent.P.Telemetry.attach_sink (Obs.Sink.jsonl oc);
  Fun.protect
    ~finally:(fun () ->
      Sequent.P.Telemetry.disable ();
      close_out oc)
    f

let sequent_sweep ?plist ?jobs ?(sched = "distributed") ?(gc = "stw") () =
  let jobs = Exec.Job_pool.resolve_jobs jobs in
  if Sequent.P.Telemetry.enabled () then
    (* A trace sink is attached to the shared Sequent machine: run the
       cells on it, sequentially, so their events stream to the sink.
       The shared machine is the default-policy, default-collector one, so
       traced sweeps always run under distributed scheduling and stw GC. *)
    Sequent.run ?plist ()
  else
    let config =
      Sim.Sim_config.with_gc
        { sequent_config with Sim.Sim_config.sched }
        (Sim.Gc_model.of_string_exn gc)
    in
    match (Hashtbl.find_opt sequent_cache (sched, gc), plist) with
    | Some s, None -> s
    | _ ->
        let s =
          parallel_sweep config ~jobs
            (Option.value plist ~default:default_procs)
        in
        if plist = None then Hashtbl.replace sequent_cache (sched, gc) s;
        s

let sgi_sweep ?plist ?jobs ?(sched = "distributed") ?(gc = "stw") () =
  let jobs = Exec.Job_pool.resolve_jobs jobs in
  let config =
    Sim.Sim_config.with_gc
      { sgi_config with Sim.Sim_config.sched }
      (Sim.Gc_model.of_string_exn gc)
  in
  match (Hashtbl.find_opt sgi_cache (sched, gc), plist) with
  | Some s, None -> s
  | _ ->
      let s =
        parallel_sweep config ~jobs
          (Option.value plist ~default:default_procs)
      in
      if plist = None then Hashtbl.replace sgi_cache (sched, gc) s;
      s

(* Machine-parameterized sweep over any [Sim_config.of_machine_string]
   selector ("sequent", "sgi", "numa:<N>x<M>", "numa1024").  The default
   proc list grows with the machine: a 64-node NUMA box is swept at the
   powers of four up to its size rather than the flat 1..16 grid. *)
let machine_procs (config : Sim.Sim_config.t) =
  if config.Sim.Sim_config.procs <= 16 then default_procs
  else
    [ 1; 4; 16; 64; 256; 1024 ]
    |> List.filter (fun p -> p <= config.Sim.Sim_config.procs)

let machine_cache : (string * string * string, sample list) Hashtbl.t =
  Hashtbl.create 4

let machine_sweep ?plist ?jobs ?(sched = "distributed") ?(gc = "stw") ~machine
    () =
  let jobs = Exec.Job_pool.resolve_jobs jobs in
  let config =
    Sim.Sim_config.of_machine_string_exn ~sched
      ~gc:(Sim.Gc_model.of_string_exn gc)
      machine
  in
  match (Hashtbl.find_opt machine_cache (machine, sched, gc), plist) with
  | Some s, None -> s
  | _ ->
      let s =
        parallel_sweep config ~jobs
          (Option.value plist ~default:(machine_procs config))
      in
      if plist = None then
        Hashtbl.replace machine_cache (machine, sched, gc) s;
      s

(* The §6 headroom replay (E8): the same machine and schedule swept once per
   GC cost model, so the fig6 curves can be laid side by side.  [stw] is the
   paper's sequential stop-the-world collector; [par_stw] splits the copy
   across the barrier waiters; [minor_pp] gives each proc a private minor
   heap and only stops the world for majors over promoted words. *)
let gc_models = [ "stw"; "par_stw"; "minor_pp" ]

let gc_sweep ?plist ?jobs ?(sched = "distributed") ?(machine = "sequent") () =
  List.map
    (fun gc -> (gc, machine_sweep ?plist ?jobs ~sched ~gc ~machine ()))
    gc_models

let find samples ~bench ~procs =
  List.find (fun s -> s.bench = bench && s.procs = procs) samples

let seq_baseline machine ~sched ~gc ~copies =
  let key = (machine, sched, gc, copies) in
  match Hashtbl.find_opt seq_base_cache key with
  | Some t -> t
  | None ->
      let t =
        if sched = "distributed" && gc = "stw" && machine = "sgi" then
          Sgi.seq_baseline ~copies
        else if sched = "distributed" && gc = "stw" && machine = "sequent" then
          Sequent.seq_baseline ~copies
        else begin
          (* non-default policy, collector, or machine: a private instance *)
          let config =
            match Sim.Sim_config.of_machine_string ~sched machine with
            | Ok c -> c
            | Error _ -> { sequent_config with Sim.Sim_config.sched }
          in
          let config =
            Sim.Sim_config.with_gc config (Sim.Gc_model.of_string_exn gc)
          in
          let module C =
            Sweep (struct
                let config = config
              end)
              ()
          in
          C.seq_baseline ~copies
        end
      in
      Hashtbl.add seq_base_cache key t;
      t

let speedup samples ~bench ~procs =
  let s = find samples ~bench ~procs in
  if bench = "seq" then
    seq_baseline s.machine ~sched:s.sched ~gc:s.gc_model ~copies:procs
    /. s.elapsed
  else
    let base = find samples ~bench ~procs:1 in
    base.elapsed /. s.elapsed

let speedup_no_gc samples ~bench ~procs =
  let s = find samples ~bench ~procs in
  if bench = "seq" then speedup samples ~bench ~procs
  else
    let base = find samples ~bench ~procs:1 in
    (base.elapsed -. base.gc) /. (s.elapsed -. s.gc)

let procs_of samples =
  List.sort_uniq compare (List.map (fun s -> s.procs) samples)

let fig6_rows samples =
  let ps = procs_of samples in
  List.map
    (fun bench ->
      (bench, List.map (fun p -> speedup samples ~bench ~procs:p) ps))
    benches

(* Section headers name the machine the samples ran on; the historical
   phrasing is kept for the default Sequent so existing golden diffs of
   driver output stay byte-identical. *)
let machine_label samples =
  match samples with
  | { machine = "sequent"; _ } :: _ | [] -> "simulated Sequent Symmetry"
  | { machine; _ } :: _ -> "simulated machine " ^ machine

let print_fig6 fmt samples =
  Render.section fmt
    (Printf.sprintf "E1 / Figure 6: self-relative speedup (%s)"
       (machine_label samples));
  let ps = procs_of samples in
  Render.series fmt ~xlabel:"speedup@procs" ~xs:ps ~rows:(fig6_rows samples);
  Format.fprintf fmt "@.";
  Render.chart fmt ~xs:ps ~rows:(fig6_rows samples) ();
  let ok = List.for_all (fun s -> s.verified) samples in
  Format.fprintf fmt
    "@.results vs sequential references: %s@."
    (if ok then "all verified" else "MISMATCH DETECTED")

let print_idle fmt samples =
  Render.section fmt
    "E4: processor idle fractions (paper: simple above 50% for >=10 procs)";
  let ps = procs_of samples in
  Render.series fmt ~xlabel:"idle%@procs" ~xs:ps
    ~rows:
      (List.map
         (fun bench ->
           ( bench,
             List.map
               (fun p -> 100. *. (find samples ~bench ~procs:p).idle)
               ps ))
         benches)

let print_bus fmt samples =
  Render.section fmt
    "E5: memory-bus traffic, MB/s (paper: mm ~20 MB/s of a 25 MB/s bus at 16 \
     procs)";
  let ps = procs_of samples in
  Render.series fmt ~xlabel:"MB/s@procs" ~xs:ps
    ~rows:
      (List.map
         (fun bench ->
           (bench, List.map (fun p -> (find samples ~bench ~procs:p).bus_mb) ps))
         benches);
  Format.fprintf fmt "@.lock spins at 16 procs (contention):@.";
  Render.table fmt ~header:[ "bench"; "spins"; "collections" ]
    ~rows:
      (List.map
         (fun bench ->
           let s =
             find samples ~bench
               ~procs:(List.fold_left max 1 (procs_of samples))
           in
           [ bench; string_of_int s.spins; string_of_int s.gc_count ])
         benches)

let print_gc_ablation fmt samples =
  Render.section fmt
    "E6: GC ablation (paper: without GC, abisort/allpairs 'considerably \
     higher', same shape)";
  let pmax = List.fold_left max 1 (procs_of samples) in
  Render.table fmt
    ~header:
      [ "bench"; "speedup@max"; "speedup w/o GC"; "gc share @max"; "gc runs" ]
    ~rows:
      (List.map
         (fun bench ->
           let s = find samples ~bench ~procs:pmax in
           [
             bench;
             Printf.sprintf "%.2f" (speedup samples ~bench ~procs:pmax);
             Printf.sprintf "%.2f" (speedup_no_gc samples ~bench ~procs:pmax);
             Printf.sprintf "%.0f%%" (100. *. s.gc /. s.elapsed);
             string_of_int s.gc_count;
           ])
         benches)

let print_gc_models fmt sweeps =
  Render.section fmt
    "E8: GC cost models (paper 6.2: collector headroom -- stw vs par_stw vs \
     minor_pp)";
  (match sweeps with
  | (_, samples) :: _ ->
      let ps = procs_of samples in
      let pmax = List.fold_left max 1 ps in
      List.iter
        (fun bench ->
          Format.fprintf fmt "@.%s: speedup per collector@." bench;
          Render.series fmt ~xlabel:"speedup@procs" ~xs:ps
            ~rows:
              (List.map
                 (fun (gc, samples) ->
                   (gc, List.map (fun p -> speedup samples ~bench ~procs:p) ps))
                 sweeps))
        benches;
      Format.fprintf fmt "@.collector accounting at %d procs (mm):@." pmax;
      Render.table fmt
        ~header:
          [ "model"; "speedup"; "gc share"; "minors"; "majors"; "verified" ]
        ~rows:
          (List.map
             (fun (gc, samples) ->
               let s = find samples ~bench:"mm" ~procs:pmax in
               [
                 gc;
                 Printf.sprintf "%.2f" (speedup samples ~bench:"mm" ~procs:pmax);
                 Printf.sprintf "%.0f%%" (100. *. s.gc /. s.elapsed);
                 string_of_int s.gc_minor;
                 string_of_int s.gc_major;
                 (if s.verified then "yes" else "NO");
               ])
             sweeps)
  | [] -> Format.fprintf fmt "no samples@.")

let print_lock_latency fmt =
  Render.section fmt
    "E3: mutex lock+unlock latency (paper: 6 us SGI vs 46 us Sequent)";
  let measure (config : Sim.Sim_config.t) =
    (* measured inside the simulator: time n uncontended lock/unlock pairs *)
    let module P =
      Sim.Mp_sim.Int
        (struct
          let config = config
        end)
        ()
    in
    let n = 1000 in
    let t =
      P.run (fun () ->
          let l = P.Lock.mutex_lock () in
          let t0 = P.Work.now () in
          for _ = 1 to n do
            P.Lock.lock l;
            P.Lock.unlock l
          done;
          P.Work.now () -. t0)
    in
    t /. float_of_int n *. 1.0e6
  in
  let sequent = measure (Sim.Sim_config.sequent ~procs:1 ()) in
  let sgi = measure (Sim.Sim_config.sgi ~procs:1 ()) in
  Render.table fmt
    ~header:[ "machine"; "measured us/pair"; "paper us/pair" ]
    ~rows:
      [
        [ "sequent"; Printf.sprintf "%.1f" sequent; "46" ];
        [ "sgi"; Printf.sprintf "%.1f" sgi; "6" ];
      ];
  Format.fprintf fmt "@.ratio measured %.1fx vs paper %.1fx@." (sequent /. sgi)
    (46. /. 6.)

let print_portability fmt =
  Render.section fmt
    "E2: portability inventory (paper: SGI 144+15, Sequent 267+10, Luna \
     630+34 system-dependent lines of ~7400 total)";
  match Loc_count.find_root () with
  | Some root -> Loc_count.print fmt (Loc_count.scan ~root)
  | None ->
      Format.fprintf fmt
        "project root not found from cwd; run from the repository@."

let print_sgi fmt samples =
  Render.section fmt
    "E7: the SGI model (paper: faster procs, same bus -- memory contention \
     swamps all other effects)";
  let ps = procs_of samples in
  Render.series fmt ~xlabel:"speedup@procs" ~xs:ps
    ~rows:
      (List.map
         (fun bench ->
           (bench, List.map (fun p -> speedup samples ~bench ~procs:p) ps))
         benches);
  Format.fprintf fmt "@.bus utilization at max procs:@.";
  let pmax = List.fold_left max 1 ps in
  Render.table fmt ~header:[ "bench"; "bus util"; "bus MB/s" ]
    ~rows:
      (List.map
         (fun bench ->
           let s = find samples ~bench ~procs:pmax in
           [
             bench;
             Printf.sprintf "%.0f%%" (100. *. s.bus_util);
             Printf.sprintf "%.1f" s.bus_mb;
           ])
         benches)
