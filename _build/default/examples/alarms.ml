(* Signals and timers: the paper's §3.4 conventions — handlers are global,
   masks are per-proc, and inter-proc alerting is "simulated using
   timer-driven polling in the target proc".  Here an alarm thread delivers
   a signal on a schedule and worker procs pick it up at their poll points.

   Run: dune exec examples/alarms.exe *)

module Platform =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:4 ()
    end)
    ()

module Sched = Mpthreads.Sched_thread.Make (Platform)
module Signal = Mp.Mp_signal.Make (Platform)

let sigalrm = 14

let () =
  let report =
    Platform.run (fun () ->
        Sched.with_pool (fun () ->
            let alarms_seen = Atomic.make 0 in
            Signal.install sigalrm
              (Some (fun _ -> Atomic.incr alarms_seen));
            (* ring the alarm on every proc three times, spaced 50 virtual ms *)
            for i = 1 to 3 do
              Sched.at
                (Sched.now () +. (0.05 *. float_of_int i))
                (fun () -> Signal.deliver sigalrm)
            done;
            (* workers compute and poll; each delivery is handled once per
               proc that polls it *)
            Sched.fork_join
              (List.init 4 (fun _ () ->
                   for _ = 1 to 40 do
                     Platform.Work.step ~instrs:100_000 ();
                     Signal.poll ()
                   done));
            Signal.poll ();
            Atomic.get alarms_seen))
  in
  Printf.printf "alarm handled %d times (3 rings broadcast to 4 procs)\n" report;
  Printf.printf "virtual elapsed: %.3fs\n"
    (Platform.stats ()).Mp.Stats.elapsed
