test/test_locks.ml: Alcotest Domain List Locks Mp Mpthreads Mutex Printf Sim Unix
