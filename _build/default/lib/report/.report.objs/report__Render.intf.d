lib/report/render.mli: Format
