type t = {
  streams : int;
  stream_of : unit -> int;
  now_ts : unit -> int;
  counters : Counters.t;
  histograms : Histogram.registry;
  mutable on : bool;
  mutable rings : Event.t Ring.t array; (* [||] unless a memory sink is up *)
  mutable sink : Sink.t option;
}

let create ?(streams = 1) ~stream_of ~now_ts () =
  if streams <= 0 then invalid_arg "Obs.Telemetry.create";
  {
    streams;
    stream_of;
    now_ts;
    counters = Counters.create ();
    histograms = Histogram.create_registry ();
    on = false;
    rings = [||];
    sink = None;
  }

let enabled t = t.on
let ts t = t.now_ts ()
let counters t = t.counters
let histograms t = t.histograms

let enable_memory ?(capacity = 4096) t =
  if Array.length t.rings = 0 then
    t.rings <- Array.init t.streams (fun _ -> Ring.create ~capacity);
  t.on <- true

let attach_sink t sink =
  t.sink <- Some sink;
  t.on <- true

let disable t =
  (match t.sink with Some s -> s.Sink.flush () | None -> ());
  t.sink <- None;
  t.rings <- [||];
  t.on <- false

let emit t e =
  if t.on then begin
    (if Array.length t.rings > 0 then begin
       let s = t.stream_of () in
       let s = if s < 0 || s >= t.streams then 0 else s in
       Ring.record t.rings.(s) e
     end);
    match t.sink with Some s -> s.Sink.emit e | None -> ()
  end

let ring t i =
  if i >= 0 && i < Array.length t.rings then Some t.rings.(i) else None

let events t =
  Array.to_list t.rings
  |> List.concat_map Ring.items
  |> List.stable_sort (fun a b -> compare (Event.clock_of a) (Event.clock_of b))

let total_recorded t =
  Array.fold_left (fun acc r -> acc + Ring.total_recorded r) 0 t.rings
