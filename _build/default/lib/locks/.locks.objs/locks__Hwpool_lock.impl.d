lib/locks/hwpool_lock.ml: Array Lock_intf Tas_lock
