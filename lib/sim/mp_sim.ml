open Mp

(* Scheduler directive: the suspend body has already re-queued (or freed)
   the current proc; return control to the simulation loop. *)
type Engine.action += A_yield

(* A parked idle poller ([Work.idle_until]): the fiber suspended once and
   the scheduler services its per-quantum readiness checks and idle charges
   directly, resuming the continuation only when the predicate holds.  The
   predicate is evaluated at exactly the (clock, id) positions where the
   always-suspend machine would have dispatched the polling fiber, so every
   shared-state read happens at its reference position. *)
type Engine.action += A_poll of (unit -> bool) * unit Engine.cont

module Make
    (C : sig
      val config : Sim_config.t
    end)
    (D : Mp.Mp_intf.DATUM) =
struct
  let config = C.config
  let name = "sim:" ^ config.name

  module Kont = struct
    type 'a cont = 'a Engine.cont

    let callcc = Engine.callcc
    let throw = Engine.throw
    let throw_exn = Engine.throw_exn
  end

  type pstate =
    | Free
    | Ready of Engine.action
    | Current
    | Gc_waiting of Engine.action

  type sproc = {
    id : int;
    mutable clock : int;
    mutable state : pstate;
    mutable datum : D.t;
    mutable busy : int;
    mutable idle : int;
    mutable gc_wait : int;
    mutable spins : int;
    mutable alloc_words : int;
    mutable ran_ahead : int;
        (* cycles accumulated inline (run-ahead fast path) since the last
           real suspension; flushed to the trace when the proc suspends *)
  }

  (* Lock representation, lifted out of [module Lock] so the scheduler's
     lock state machine (below) can name it.  [sharers] is the set of nodes
     whose caches hold the lock word (a bitmask); every probe/release is an
     RMW that claims the line exclusive, so under a hierarchical machine a
     probe from a node outside the sharer set crosses the inter-node link
     and invalidates the remote copies.  Under [Flat_bus] there is one node,
     the sharer set is always a subset of [{0}], and the remote path is
     unreachable — the arithmetic is exactly the single-bus model's. *)
  type sim_lock = { mutable held : bool; mutable sharers : int }

  (* One op of a work program ([Work.step]'s interleaved compute/alloc
     slices, [Work.alloc]'s slice loop): the unit at which the reference
     machine charges and suspends. *)
  type work_op = W_charge of int | W_alloc of int

  (* What to do once a parked lock episode acquires the lock: resume the
     fiber ([K_lock]), or run a charge-free critical section, pay the
     unlock, and only then resume ([K_locked], the [Lock.locked] fusion). *)
  type lock_kont =
    | K_lock of unit Engine.cont
    | K_locked of (unit -> unit) * unit Engine.cont

  (* Parked episodes serviced by the scheduler without re-entering the
     fiber.  Each constructor records exactly which reference-machine
     suspension it stands in for; the pending effects are applied at the
     pop, at the same (clock, id) positions the always-suspend twin would
     use, so virtual time is bit-identical while a whole episode costs at
     most one effect-handler suspension. *)
  type Engine.action +=
    | A_work of work_op list * unit Engine.cont
        (* previous op's charge applied; remaining ops pending *)
    | A_lock_probe of sim_lock * int * lock_kont
        (* probe charge + bus applied; the held-test is pending *)
    | A_lock_wait of sim_lock * int * lock_kont
        (* spin-retry charge applied; the next probe is pending *)
    | A_unlock of sim_lock * unit Engine.cont
        (* unlock charge + bus applied; the release write is pending *)

  let fresh_proc id =
    {
      id;
      clock = 0;
      state = Free;
      datum = D.initial;
      busy = 0;
      idle = 0;
      gc_wait = 0;
      spins = 0;
      alloc_words = 0;
      ran_ahead = 0;
    }

  let procs = Array.init config.procs fresh_proc

  (* Ready procs, keyed (clock, id): the scheduler pops the minimum instead
     of scanning all procs.  Invariant: a proc is in the heap iff its state
     is [Ready _]. *)
  let ready = Ready_heap.create ~ids:config.procs ~dummy:procs.(0)
  let current = ref 0
  let cur () = procs.(!current)

  (* Machine topology.  [Flat_bus] is one node; [Numa] groups the procs
     into [n_nodes] contiguous nodes, each with its own FCFS bus, joined by
     a single shared FCFS link with its own latency and bandwidth.  All
     per-node state is indexed by node id; with one node the arrays are
     singletons and behave exactly like the former scalar refs. *)
  let n_nodes = Sim_config.nodes config
  let per_node = Sim_config.procs_per_node config
  let node_of_proc id = if n_nodes = 1 then 0 else id / per_node

  let link_latency, link_bytes_per_cycle =
    match config.machine with
    | Sim_config.Flat_bus -> (0, config.bus_bytes_per_cycle)
    | Sim_config.Numa { link_latency_cycles; link_bytes_per_cycle; _ } ->
        (link_latency_cycles, link_bytes_per_cycle)

  let popcount x =
    let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
    go 0 x

  (* Per-node bus state, plus the shared inter-node link. *)
  let bus_free_at = Array.make n_nodes 0
  let bus_busy = Array.make n_nodes 0
  let link_free_at = ref 0
  let link_busy = ref 0
  let bus_total_bytes = ref 0
  let remote_bytes = ref 0
  let invalidations = ref 0

  (* GC cost model: all region accounting (admission, trigger, episode
     pricing) lives behind [Gc_model.MODEL]; the scheduler only parks
     procs while [gc_pending] is set and prices the barrier via
     [GcM.episode].  The default [Stw] instance is the former inline code
     term for term, so goldens are unchanged. *)
  module GcM = (val Gc_model.instance config.gc
                      {
                        Gc_model.procs = config.procs;
                        region_words = config.gc_region_words;
                        survival = config.gc_survival;
                        cycles_per_word = config.gc_cycles_per_word;
                        fixed_cycles = config.gc_fixed_cycles;
                        parallelism = config.gc_parallelism;
                        minor_fixed_cycles = config.gc_minor_fixed_cycles;
                        barrier_cycles = config.gc_barrier_cycles;
                      })

  let gc_pending = GcM.pending
  let gc_collections () = GcM.minor_collections () + GcM.major_collections ()
  let gc_pause_cycles () = GcM.pause_cycles ()
  let max_clock = ref 0
  let sched_decisions_ct = ref 0
  let coalesced_ct = ref 0
  let idle_parks_ct = ref 0
  let idle_polls_ct = ref 0
  let lock_acquires_ct = ref 0
  let susp_at_start = ref 0
  let escaped : exn option ref = ref None
  let poll_hook = ref (fun () -> ())
  let running = ref false
  let trace : Sim_trace.t option ref = ref None

  module Telemetry = Mp_intf.Telemetry_of (struct
    (* Single stream: the simulator multiplexes every proc over one domain,
       so emission is already serialized.  Timestamps are the current
       proc's virtual clock, keeping traces deterministic. *)
    let handle =
      Obs.Telemetry.create
        ~stream_of:(fun () -> 0)
        ~now_ts:(fun () -> (cur ()).clock)
        ()
  end)

  (* Events flow both to the legacy [Machine.enable_trace] ring and to the
     platform's telemetry capability; construction at every emit site is
     guarded by [tracing] so a quiet run allocates no events, charges no
     virtual time and takes no extra suspensions. *)
  let tracing () = !trace <> None || Telemetry.enabled ()

  let trace_event e =
    (match !trace with Some t -> Sim_trace.record t e | None -> ());
    Telemetry.emit e

  let observe_clock n = if n > !max_clock then max_clock := n

  (* Real-time watchdog for debugging client deadlocks: dump proc states if
     the simulation makes this many scheduling decisions without finishing. *)
  let debug_iterations =
    match Sys.getenv_opt "MP_SIM_DEBUG_ITERS" with
    | Some v -> int_of_string_opt v
    | None -> None

  (* The watchdog counts scheduling decisions, so when it is armed every
     charge must go through the scheduler. *)
  let run_ahead_enabled = config.run_ahead && debug_iterations = None

  (* ------------------------------------------------------------------ *)
  (* Ready-set maintenance.                                             *)
  (* ------------------------------------------------------------------ *)

  let check_heap () =
    if config.heap_debug then assert (Ready_heap.valid ready)

  (* A suspension flushes any run-ahead accumulation: later inline charges
     belong to the next dispatch. *)
  let flush_run_ahead p =
    if p.ran_ahead > 0 then begin
      if tracing () then
        trace_event
          (Sim_trace.Coalesced
             { proc = p.id; clock = p.clock; cycles = p.ran_ahead });
      p.ran_ahead <- 0
    end

  let set_ready p a =
    flush_run_ahead p;
    p.state <- Ready a;
    Ready_heap.push ready ~clock:p.clock ~id:p.id p;
    check_heap ()

  (* ------------------------------------------------------------------ *)
  (* Fiber-side charging primitives.                                    *)
  (* ------------------------------------------------------------------ *)

  let yield_ready p c =
    set_ready p (Engine.Resume (c, ()));
    A_yield

  (* Run-ahead fast path.  [inline_charge p ~cpu ~bytes ~idle] advances [p]
     past [cpu] cycles of work followed by a [bytes]-byte bus transfer
     (0 = none) without suspending, and returns [true], exactly when the
     scheduler would hand control straight back to [p] anyway: no GC is
     pending and [p]'s post-charge (clock, id) key still precedes every
     ready proc's key.  In that case the suspend/dispatch round-trip it
     skips is a virtual-time no-op, so results are bit-identical to the
     always-suspend scheduler; all accounting below mirrors the slow path
     ([charge_busy]/[charge_idle] + [bus_transfer]) term for term. *)
  let inline_charge p ~cpu ~bytes ~idle =
    run_ahead_enabled
    && (not !gc_pending)
    (* Early out on a lower bound of the post-charge clock before any bus
       arithmetic: the key is monotone in the clock, so failing here means
       the exact check below would fail too.  This keeps the cost of a
       failed attempt (the common case under multi-proc contention) to a
       few integer compares. *)
    && Ready_heap.precedes_min ready
         ~clock:(if bytes = 0 then p.clock + cpu else p.clock + cpu + 1)
         ~id:p.id
    &&
    let node = node_of_proc p.id in
    let dur =
      if bytes = 0 then 0
      else
        max 1 (int_of_float (float_of_int bytes /. config.bus_bytes_per_cycle))
    in
    let start =
      if bytes = 0 then p.clock + cpu else max (p.clock + cpu) bus_free_at.(node)
    in
    let clock' = start + dur in
    let total = clock' - p.clock in
    p.ran_ahead + total <= config.run_ahead_window
    && (bytes = 0 || Ready_heap.precedes_min ready ~clock:clock' ~id:p.id)
    && begin
         p.clock <- clock';
         if idle then p.idle <- p.idle + total else p.busy <- p.busy + total;
         if bytes > 0 then begin
           bus_free_at.(node) <- clock';
           bus_busy.(node) <- bus_busy.(node) + dur;
           bus_total_bytes := !bus_total_bytes + bytes
         end;
         p.ran_ahead <- p.ran_ahead + total;
         incr coalesced_ct;
         observe_clock clock';
         true
       end

  let charge_busy n =
    if n > 0 then begin
      let p = cur () in
      if not (inline_charge p ~cpu:n ~bytes:0 ~idle:false) then
        Engine.suspend (fun c ->
            p.clock <- p.clock + n;
            p.busy <- p.busy + n;
            observe_clock p.clock;
            yield_ready p c)
    end

  let charge_idle n =
    if n > 0 then begin
      let p = cur () in
      if not (inline_charge p ~cpu:n ~bytes:0 ~idle:true) then
        Engine.suspend (fun c ->
            p.clock <- p.clock + n;
            p.idle <- p.idle + n;
            observe_clock p.clock;
            yield_ready p c)
    end

  (* FCFS node-local bus: runs inside a suspend body, advances [p] past the
     end of its transfer.  Queueing stall counts as busy time (the proc is
     stalled on memory, not idle). *)
  let bus_transfer p bytes =
    let node = node_of_proc p.id in
    let dur =
      max 1 (int_of_float (float_of_int bytes /. config.bus_bytes_per_cycle))
    in
    let start = max p.clock bus_free_at.(node) in
    let stall = start - p.clock in
    p.clock <- start + dur;
    p.busy <- p.busy + stall + dur;
    bus_free_at.(node) <- p.clock;
    bus_busy.(node) <- bus_busy.(node) + dur;
    bus_total_bytes := !bus_total_bytes + bytes;
    observe_clock p.clock

  (* A transfer that must cross the inter-node link: a local-bus leg (the
     request occupies the requesting node's bus as usual) followed by a link
     leg that pays the link latency and serializes on the shared link's FCFS
     queue.  [invals] remote cached copies are invalidated by the transfer.
     Only reachable when [n_nodes > 1]. *)
  let remote_transfer p bytes ~invals =
    let node = node_of_proc p.id in
    let ldur =
      max 1 (int_of_float (float_of_int bytes /. config.bus_bytes_per_cycle))
    in
    let lstart = max p.clock bus_free_at.(node) in
    let lend = lstart + ldur in
    let kdur =
      link_latency
      + max 1 (int_of_float (float_of_int bytes /. link_bytes_per_cycle))
    in
    let kstart = max lend !link_free_at in
    let kend = kstart + kdur in
    p.busy <- p.busy + (kend - p.clock);
    p.clock <- kend;
    bus_free_at.(node) <- lend;
    bus_busy.(node) <- bus_busy.(node) + ldur;
    link_free_at := kend;
    link_busy := !link_busy + kdur;
    bus_total_bytes := !bus_total_bytes + bytes;
    remote_bytes := !remote_bytes + bytes;
    invalidations := !invalidations + invals;
    observe_clock p.clock

  (* Run-ahead twin of [remote_transfer] preceded by [cpu] cycles of work:
     same gate structure as [inline_charge], same arithmetic as the slow
     path ([charge] then [remote_transfer]) term for term. *)
  let inline_charge_remote p ~cpu ~bytes ~invals =
    run_ahead_enabled
    && (not !gc_pending)
    && Ready_heap.precedes_min ready ~clock:(p.clock + cpu + 1) ~id:p.id
    &&
    let node = node_of_proc p.id in
    let ldur =
      max 1 (int_of_float (float_of_int bytes /. config.bus_bytes_per_cycle))
    in
    let lstart = max (p.clock + cpu) bus_free_at.(node) in
    let lend = lstart + ldur in
    let kdur =
      link_latency
      + max 1 (int_of_float (float_of_int bytes /. link_bytes_per_cycle))
    in
    let clock' = max lend !link_free_at + kdur in
    let total = clock' - p.clock in
    p.ran_ahead + total <= config.run_ahead_window
    && Ready_heap.precedes_min ready ~clock:clock' ~id:p.id
    && begin
         p.clock <- clock';
         p.busy <- p.busy + total;
         bus_free_at.(node) <- lend;
         bus_busy.(node) <- bus_busy.(node) + ldur;
         link_free_at := clock';
         link_busy := !link_busy + kdur;
         bus_total_bytes := !bus_total_bytes + bytes;
         remote_bytes := !remote_bytes + bytes;
         invalidations := !invalidations + invals;
         p.ran_ahead <- p.ran_ahead + total;
         incr coalesced_ct;
         observe_clock clock';
         true
       end

  (* One RMW bus transaction on a lock word from proc [p]: route it by the
     line's sharer set (node-local when no other node caches the word,
     across the link otherwise) and claim the line exclusive for [p]'s
     node.  The sharer set is read and written at the charge, i.e. at the
     same virtual position in the inline and always-suspend machines, so
     the routing decision is deterministic and identical in both.  The
     inline variant returns [false] without side effects when the run-ahead
     gates fail; callers then apply [lock_rmw_slow] inside a suspend body. *)
  let lock_rmw_inline p l ~cpu =
    let me = 1 lsl node_of_proc p.id in
    let others = l.sharers land lnot me in
    let ok =
      if others = 0 then
        inline_charge p ~cpu ~bytes:config.lock_bus_bytes ~idle:false
      else
        inline_charge_remote p ~cpu ~bytes:config.lock_bus_bytes
          ~invals:(popcount others)
    in
    if ok then l.sharers <- me;
    ok

  let lock_rmw_slow p l ~cpu =
    let me = 1 lsl node_of_proc p.id in
    let others = l.sharers land lnot me in
    p.clock <- p.clock + cpu;
    p.busy <- p.busy + cpu;
    if others = 0 then bus_transfer p config.lock_bus_bytes
    else remote_transfer p config.lock_bus_bytes ~invals:(popcount others);
    l.sharers <- me

  (* Allocation is spread over the computation it belongs to: one suspend
     per small slice, so bus occupancy interleaves with other procs instead
     of arriving as one long FCFS burst. *)
  let alloc_slice_words = 256

  (* Slow-path allocation accounting, shared by [alloc_one_slice] and
     [work_slow]: route the words through the GC model (which may set
     [gc_pending]) and, when the model ran an independent minor collection
     ([minor_pp]), charge its pause to this proc alone — the other procs
     keep running, which is the whole point of per-proc minor heaps.  The
     pause is a suspension-path effect, so virtual time stays identical
     with and without the run-ahead fast path. *)
  let alloc_slow_account p words =
    p.alloc_words <- p.alloc_words + words;
    let pause, collected = GcM.alloc_slow ~proc:p.id ~words in
    if pause > 0 then begin
      if tracing () then
        trace_event
          (Sim_trace.Gc_start
             {
               clock = p.clock;
               region_words = collected;
               kind = Minor;
               waiters = 0;
             });
      p.clock <- p.clock + pause;
      p.gc_wait <- p.gc_wait + pause;
      observe_clock p.clock;
      if tracing () then
        trace_event (Sim_trace.Gc_end { clock = p.clock; duration = pause })
    end

  let alloc_one_slice words =
    if words > 0 then begin
      let p = cur () in
      let cpu =
        int_of_float (config.alloc_cycles_per_word *. float_of_int words)
      in
      (* Fast path additionally requires the model's admission predicate
         (this slice cannot fill the allocation region): a GC trigger must
         park the proc. *)
      if
        GcM.admit ~proc:p.id ~words
        && inline_charge p ~cpu ~bytes:(words * config.word_bytes) ~idle:false
      then begin
        p.alloc_words <- p.alloc_words + words;
        GcM.commit_fast ~proc:p.id ~words
      end
      else
        Engine.suspend (fun c ->
            p.clock <- p.clock + cpu;
            p.busy <- p.busy + cpu;
            bus_transfer p (words * config.word_bytes);
            alloc_slow_account p words;
            yield_ready p c)
    end

  let alloc_slices words =
    let ops = ref [] in
    let remaining = ref words in
    while !remaining > 0 do
      let slice = min !remaining alloc_slice_words in
      ops := W_alloc slice :: !ops;
      remaining := !remaining - slice
    done;
    List.rev !ops

  (* ------------------------------------------------------------------ *)
  (* Simulation loop.                                                    *)
  (* ------------------------------------------------------------------ *)

  let on_exn e =
    if !escaped = None then escaped := Some e;
    Engine.Stop

  let exec_action = function
    | Engine.Resume (c, v) -> Engine.resume c v
    | Engine.Raise (c, e) -> Engine.resume_exn c e
    | Engine.Start f -> Engine.run_fiber ~on_exn f
    | _ -> raise Engine.Unhandled_action

  (* Run one proc from its pending action until it yields back. *)
  let interp p action =
    let a = ref action in
    let live = ref true in
    while !live do
      match !a with
      | Engine.Stop ->
          p.state <- Free;
          live := false
      | A_yield -> live := false
      | other -> a := exec_action other
    done

  let run_gc () =
    let gc_start =
      Array.fold_left
        (fun acc p ->
          match p.state with Gc_waiting _ -> max acc p.clock | _ -> acc)
        0 procs
    in
    let waiters =
      Array.fold_left
        (fun acc p -> match p.state with Gc_waiting _ -> acc + 1 | _ -> acc)
        0 procs
    in
    let ep = GcM.episode ~waiters in
    let dur = ep.Gc_model.duration in
    let finish = gc_start + dur in
    if tracing () then
      trace_event
        (Sim_trace.Gc_start
           {
             clock = gc_start;
             region_words = ep.Gc_model.region_words;
             kind = ep.Gc_model.kind;
             waiters;
           });
    (* Release before clearing gc_pending so [set_ready]'s heap pushes see a
       consistent world; clocks all equal [finish], so dispatch order among
       the released procs is by id, as with the scan. *)
    Array.iter
      (fun p ->
        match p.state with
        | Gc_waiting pending ->
            p.gc_wait <- p.gc_wait + (finish - p.clock);
            p.clock <- finish;
            set_ready p pending
        | Free | Ready _ | Current -> ())
      procs;
    observe_clock finish;
    if tracing () then
      trace_event (Sim_trace.Gc_end { clock = finish; duration = dur });
    GcM.finish_episode ep

  (* Service a parked poller popped at its wake key.  Each iteration is one
     reference-machine dispatch: count a decision, evaluate the predicate at
     the current (clock, id) position, and either resume the fiber or charge
     one idle quantum.  After a charge, keep going inline exactly when the
     scheduler would re-pop this proc next anyway (its key still precedes
     the heap minimum, no GC pending, horizon window not exhausted);
     otherwise re-queue and let the next pop continue — either way no
     effect-handler suspension is taken, which is the entire saving. *)
  let poll_dispatch p rdy k =
    let q = config.idle_quantum_cycles in
    let budget = ref config.horizon_window in
    let continue_ = ref true in
    while !continue_ do
      incr sched_decisions_ct;
      incr idle_polls_ct;
      if tracing () then
        trace_event (Sim_trace.Dispatch { proc = p.id; clock = p.clock });
      let r = rdy () in
      if config.horizon_debug then
        (* The equivalence argument needs a pure predicate: a second
           evaluation at the same position must agree. *)
        assert (rdy () = r);
      if r then begin
        continue_ := false;
        interp p (Engine.Resume (k, ()))
      end
      else begin
        p.clock <- p.clock + q;
        p.idle <- p.idle + q;
        observe_clock p.clock;
        incr coalesced_ct;
        budget := !budget - q;
        if
          !gc_pending || !budget < 0
          || not (Ready_heap.precedes_min ready ~clock:p.clock ~id:p.id)
        then begin
          continue_ := false;
          set_ready p (A_poll (rdy, k))
        end
        else if config.horizon_debug then check_heap ()
      end
    done

  (* ------------------------------------------------------------------ *)
  (* Scheduler-side episode machines.  Each function below replicates,    *)
  (* term for term, what the reference fiber does during one dispatch:    *)
  (* first the inline gate (identical conditions to the fiber fast path), *)
  (* else the slow body's call-time effects followed by a re-queue.       *)
  (* ------------------------------------------------------------------ *)

  (* Apply one work-program op inline if the fiber's fast path would have;
     [true] = applied, continue within this dispatch. *)
  let work_inline p = function
    | W_charge n -> n <= 0 || inline_charge p ~cpu:n ~bytes:0 ~idle:false
    | W_alloc w ->
        w <= 0
        || GcM.admit ~proc:p.id ~words:w
           && (let cpu =
                 int_of_float (config.alloc_cycles_per_word *. float_of_int w)
               in
               inline_charge p ~cpu ~bytes:(w * config.word_bytes) ~idle:false)
           && begin
                p.alloc_words <- p.alloc_words + w;
                GcM.commit_fast ~proc:p.id ~words:w;
                true
              end

  (* The slow body's call-time effects (mirrors [charge_busy] /
     [alloc_one_slice]'s suspend bodies). *)
  let work_slow p = function
    | W_charge n ->
        p.clock <- p.clock + n;
        p.busy <- p.busy + n;
        observe_clock p.clock
    | W_alloc w ->
        let cpu =
          int_of_float (config.alloc_cycles_per_word *. float_of_int w)
        in
        p.clock <- p.clock + cpu;
        p.busy <- p.busy + cpu;
        bus_transfer p (w * config.word_bytes);
        alloc_slow_account p w

  let rec work_dispatch p ops k =
    match ops with
    | [] -> interp p (Engine.Resume (k, ()))
    | op :: rest ->
        if work_inline p op then work_dispatch p rest k
        else begin
          work_slow p op;
          set_ready p (A_work (rest, k))
        end

  let retry_delay proc attempt =
    config.spin_retry_cycles
    + (((proc * config.spin_jitter_proc) + (attempt * config.spin_jitter_attempt))
      mod config.spin_jitter_mod)

  let note_acquired p attempt =
    incr lock_acquires_ct;
    if tracing () then begin
      trace_event (Sim_trace.Lock_acquired { proc = p.id; clock = p.clock });
      if attempt > 0 then
        trace_event
          (Sim_trace.Lock_contended
             { proc = p.id; clock = p.clock; spins = attempt })
    end

  (* Position: probe complete (charge + bus applied); test the lock. *)
  let rec lock_probe_result p l attempt kont =
    if l.held then begin
      p.spins <- p.spins + 1;
      let attempt = attempt + 1 in
      let d = retry_delay p.id attempt in
      if inline_charge p ~cpu:d ~bytes:0 ~idle:false then
        lock_send_probe p l attempt kont
      else begin
        p.clock <- p.clock + d;
        p.busy <- p.busy + d;
        observe_clock p.clock;
        set_ready p (A_lock_wait (l, attempt, kont))
      end
    end
    else begin
      l.held <- true;
      note_acquired p attempt;
      lock_won p l kont
    end

  (* Position: about to issue the next probe. *)
  and lock_send_probe p l attempt kont =
    if lock_rmw_inline p l ~cpu:config.try_lock_cycles then
      lock_probe_result p l attempt kont
    else begin
      lock_rmw_slow p l ~cpu:config.try_lock_cycles;
      set_ready p (A_lock_probe (l, attempt, kont))
    end

  and lock_won p l kont =
    match kont with
    | K_lock k -> interp p (Engine.Resume (k, ()))
    | K_locked (run, k) ->
        run ();
        if lock_rmw_inline p l ~cpu:config.unlock_cycles then begin
          l.held <- false;
          interp p (Engine.Resume (k, ()))
        end
        else begin
          lock_rmw_slow p l ~cpu:config.unlock_cycles;
          set_ready p (A_unlock (l, k))
        end

  let any_gc_waiting () =
    Array.exists (fun p -> match p.state with Gc_waiting _ -> true | _ -> false) procs

  let iter_count = ref 0

  let dump_states () =
    let b = Buffer.create 256 in
    Array.iter
      (fun p ->
        Buffer.add_string b
          (Printf.sprintf "proc %d clock=%d state=%s\n" p.id p.clock
             (match p.state with
             | Free -> "Free"
             | Ready _ -> "Ready"
             | Current -> "Current"
             | Gc_waiting _ -> "Gc_waiting")))
      procs;
    Buffer.add_string b
      (Printf.sprintf "region=%d gc_pending=%b bus_free_at=[%s] link_free_at=%d\n"
         (GcM.region_used ()) !gc_pending
         (String.concat ";"
            (Array.to_list (Array.map string_of_int bus_free_at)))
         !link_free_at);
    Buffer.contents b

  let rec loop () =
    (match debug_iterations with
    | Some n ->
        incr iter_count;
        if !iter_count mod n = 0 then
          prerr_string (Printf.sprintf "[sim after %d decisions]\n%s" !iter_count (dump_states ()))
    | None -> ());
    if not (Ready_heap.is_empty ready) then begin
        let p = Ready_heap.pop_unchecked ready in
        check_heap ();
        if !gc_pending then begin
          (* Park ready procs at the barrier in min-clock order, exactly as
             the scan did, until none remain and the collection can run. *)
          (match p.state with
          | Ready a -> p.state <- Gc_waiting a
          | Free | Current | Gc_waiting _ -> assert false);
          loop ()
        end
        else begin
          let a = match p.state with Ready a -> a | _ -> assert false in
          p.state <- Current;
          current := p.id;
          (match a with
          | A_poll (rdy, k) -> poll_dispatch p rdy k
          | A_work (ops, k) ->
              incr sched_decisions_ct;
              (if tracing () then
                 trace_event
                   (Sim_trace.Dispatch { proc = p.id; clock = p.clock }));
              work_dispatch p ops k
          | A_lock_probe (l, attempt, kont) ->
              incr sched_decisions_ct;
              (if tracing () then
                 trace_event
                   (Sim_trace.Dispatch { proc = p.id; clock = p.clock }));
              lock_probe_result p l attempt kont
          | A_lock_wait (l, attempt, kont) ->
              incr sched_decisions_ct;
              (if tracing () then
                 trace_event
                   (Sim_trace.Dispatch { proc = p.id; clock = p.clock }));
              lock_send_probe p l attempt kont
          | A_unlock (l, k) ->
              incr sched_decisions_ct;
              (if tracing () then
                 trace_event
                   (Sim_trace.Dispatch { proc = p.id; clock = p.clock }));
              l.held <- false;
              interp p (Engine.Resume (k, ()))
          | a ->
              incr sched_decisions_ct;
              (if tracing () then
                 trace_event
                   (Sim_trace.Dispatch { proc = p.id; clock = p.clock }));
              interp p a);
          (if tracing () && p.state = Free then
             trace_event (Sim_trace.Freed { proc = p.id; clock = p.clock }));
          loop ()
        end
    end
    else if any_gc_waiting () then begin
      (* Barrier complete: every non-free proc is parked at a clean
         point.  (Also reached when gc_pending was consumed but stragglers
         remain parked — run_gc releases them.) *)
      run_gc ();
      loop ()
    end
    (* else: all procs free — simulation over *)

  (* ------------------------------------------------------------------ *)
  (* Platform interface.                                                 *)
  (* ------------------------------------------------------------------ *)

  module Proc = struct
    type proc_datum = D.t
    type proc_state = PS of unit Engine.cont * proc_datum

    exception No_More_Procs = Mp_intf.No_More_Procs

    let acquire_proc (PS (cont, datum)) =
      let ok =
        Engine.suspend (fun c ->
            let p = cur () in
            p.clock <- p.clock + config.acquire_proc_cycles;
            p.busy <- p.busy + config.acquire_proc_cycles;
            observe_clock p.clock;
            let free = Array.find_opt (fun q -> q.state = Free && q.id <> p.id) procs in
            match free with
            | Some q ->
                q.datum <- datum;
                let start = max q.clock p.clock in
                q.idle <- q.idle + (start - q.clock);
                q.clock <- start;
                set_ready q (Engine.Resume (cont, ()));
                if tracing () then
                  trace_event
                    (Sim_trace.Acquired { proc = q.id; by = p.id; clock = p.clock });
                set_ready p (Engine.Resume (c, true));
                A_yield
            | None ->
                set_ready p (Engine.Resume (c, false));
                A_yield)
      in
      if not ok then raise No_More_Procs

    let release_proc () =
      Engine.suspend (fun _ ->
          let p = cur () in
          flush_run_ahead p;
          p.state <- Free;
          A_yield)

    let initial_datum = D.initial
    let get_datum () = (cur ()).datum
    let set_datum d = (cur ()).datum <- d
    let self () = !current
    let max_procs () = config.procs

    let live_procs () =
      Array.fold_left
        (fun acc p -> if p.state = Free then acc else acc + 1)
        0 procs

    let nodes () = n_nodes
    let node_of = node_of_proc
  end

  module Lock = struct
    type mutex_lock = sim_lock

    let mutex_lock () = { held = false; sharers = 0 }

    (* Charge the probe first (a suspension point), then test-and-set with
       no intervening suspension — atomic in virtual time.  When the
       run-ahead probe says the proc would be re-dispatched immediately, no
       other proc can run between charge and test either way, so the
       inline charge preserves the same atomicity. *)
    let try_lock l =
      let p = cur () in
      if not (lock_rmw_inline p l ~cpu:config.try_lock_cycles) then
        Engine.suspend (fun c ->
            lock_rmw_slow p l ~cpu:config.try_lock_cycles;
            yield_ready p c);
      if l.held then begin
        (cur ()).spins <- (cur ()).spins + 1;
        false
      end
      else begin
        l.held <- true;
        incr lock_acquires_ct;
        (if tracing () then
           let q = cur () in
           trace_event (Sim_trace.Lock_acquired { proc = q.id; clock = q.clock }));
        true
      end

    (* One parked lock episode: spin inline exactly as the reference loop
       below for as long as the gates allow, and on the first gate failure
       suspend once, handing the rest of the episode (probes, retry
       delays, held-test, acquisition — and for [K_locked] the critical
       section and unlock too) to the scheduler's lock machine.  The
       reference loop costs up to two suspensions per spin iteration; this
       costs at most one per episode. *)
    let lock_fast l kont_of =
      let p = cur () in
      let attempt = ref 0 in
      let done_ = ref false in
      let parked = ref false in
      while not !done_ do
        if lock_rmw_inline p l ~cpu:config.try_lock_cycles then begin
          if l.held then begin
            p.spins <- p.spins + 1;
            incr attempt;
            let d = retry_delay p.id !attempt in
            if not (inline_charge p ~cpu:d ~bytes:0 ~idle:false) then begin
              done_ := true;
              parked := true;
              Engine.suspend (fun c ->
                  p.clock <- p.clock + d;
                  p.busy <- p.busy + d;
                  observe_clock p.clock;
                  set_ready p (A_lock_wait (l, !attempt, kont_of c));
                  A_yield)
            end
          end
          else begin
            l.held <- true;
            done_ := true;
            note_acquired p !attempt
          end
        end
        else begin
          done_ := true;
          parked := true;
          Engine.suspend (fun c ->
              lock_rmw_slow p l ~cpu:config.try_lock_cycles;
              set_ready p (A_lock_probe (l, !attempt, kont_of c));
              A_yield)
        end
      done;
      !parked

    (* Deterministic per-proc, per-attempt jitter on the retry delay breaks
       the phase-locking that a fixed period can produce under the
       deterministic min-clock scheduler (a spinning proc could otherwise
       probe forever exactly inside other procs' hold windows).  The
       multipliers and modulus are Sim_config knobs for backoff
       experiments. *)
    (* Reference spin loop: the always-suspend oracle, also used when the
       horizon fast path is disabled. *)
    let lock_ref l =
      let attempt = ref 0 in
      while not (try_lock l) do
        incr attempt;
        charge_busy
          (config.spin_retry_cycles
          + (((!current * config.spin_jitter_proc)
             + (!attempt * config.spin_jitter_attempt))
            mod config.spin_jitter_mod))
      done;
      if !attempt > 0 && tracing () then
        let q = cur () in
        trace_event
          (Sim_trace.Lock_contended
             { proc = q.id; clock = q.clock; spins = !attempt })

    let lock l =
      if run_ahead_enabled && config.horizon then
        ignore (lock_fast l (fun c -> K_lock c))
      else lock_ref l

    let unlock l =
      let p = cur () in
      if not (lock_rmw_inline p l ~cpu:config.unlock_cycles) then
        Engine.suspend (fun c ->
            lock_rmw_slow p l ~cpu:config.unlock_cycles;
            yield_ready p c);
      l.held <- false

    (* lock + charge-free critical section + unlock, fused into a single
       parked episode: under contention the whole sequence costs at most
       one suspension instead of one per probe, retry and unlock. *)
    let locked l f =
      if run_ahead_enabled && config.horizon then begin
        let res = ref None in
        let run () = res := Some (try Ok (f ()) with e -> Error e) in
        let parked = lock_fast l (fun c -> K_locked (run, c)) in
        if not parked then begin
          (* acquired inline: the fiber pays for the section and unlock,
             exactly as the reference below *)
          run ();
          unlock l
        end;
        match !res with
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false
      end
      else begin
        lock_ref l;
        match f () with
        | v ->
            unlock l;
            v
        | exception e ->
            unlock l;
            raise e
      end
  end

  (* Run a work program from the fiber: ops execute inline while the gates
     allow; the first gate failure suspends once and hands the remainder to
     the scheduler's work machine ([work_dispatch]), which services it at
     the reference positions.  With the horizon disabled this is exactly
     the reference per-op loop. *)
  let run_ops ops =
    if run_ahead_enabled && config.horizon then begin
      let p = cur () in
      let rec go = function
        | [] -> ()
        | op :: rest ->
            if work_inline p op then go rest
            else
              (* returns once the machine has drained [rest] *)
              Engine.suspend (fun c ->
                  work_slow p op;
                  set_ready p (A_work (rest, c));
                  A_yield)
      in
      go ops
    end
    else
      List.iter
        (function W_charge n -> charge_busy n | W_alloc w -> alloc_one_slice w)
        ops

  module Work = struct
    let charge n = charge_busy n
    let alloc ~words = run_ops (alloc_slices words)

    let traffic ~bytes =
      if bytes > 0 then begin
        let p = cur () in
        if not (inline_charge p ~cpu:0 ~bytes ~idle:false) then
          Engine.suspend (fun c ->
              bus_transfer p bytes;
              yield_ready p c)
      end

    (* Contended shared words outside the platform lock (the lock-algorithm
       family's cells, run-queue heads): same sharer-set model as
       [sim_lock], driven by the client through {!read_line}/{!write_line}.
       [read_line] is charge-free by contract — the read's cost was already
       charged — so it only grows the sharer set; the RMW in [write_line]
       routes by it exactly as [lock_rmw_inline] does. *)
    type line = { mutable sharers : int }

    let line () = { sharers = 0 }

    let read_line ln =
      ln.sharers <- ln.sharers lor (1 lsl node_of_proc !current)

    let write_line ln ~bytes =
      if bytes > 0 then begin
        let p = cur () in
        let me = 1 lsl node_of_proc p.id in
        let others = ln.sharers land lnot me in
        ln.sharers <- me;
        if others = 0 then begin
          if not (inline_charge p ~cpu:0 ~bytes ~idle:false) then
            Engine.suspend (fun c ->
                bus_transfer p bytes;
                yield_ready p c)
        end
        else begin
          let invals = popcount others in
          if not (inline_charge_remote p ~cpu:0 ~bytes ~invals) then
            Engine.suspend (fun c ->
                remote_transfer p bytes ~invals;
                yield_ready p c)
        end
      end

    (* Interleave compute and allocation slices so the generated bus
       traffic is spread across the work, as real allocation is. *)
    let step ?alloc_words ~instrs () =
      let words =
        match alloc_words with Some w -> w | None -> instrs / 5
      in
      let cycles = int_of_float (float_of_int instrs *. config.cpi) in
      let slices = max 1 ((words + alloc_slice_words - 1) / alloc_slice_words) in
      let cyc_per = cycles / slices and w_per = words / slices in
      let ops = ref [] in
      for i = slices downto 1 do
        ops :=
          W_charge
            (if i = 1 then cycles - (cyc_per * (slices - 1)) else cyc_per)
          :: W_alloc (if i = 1 then words - (w_per * (slices - 1)) else w_per)
          :: !ops
      done;
      run_ops !ops;
      !poll_hook ()

    let poll () = !poll_hook ()
    let set_poll_hook f = poll_hook := f
    let idle () = charge_idle config.idle_quantum_cycles

    (* Fast path: park once and let the scheduler service the per-quantum
       checks ([poll_dispatch]).  The park charges the first quantum, so
       the first check happens one quantum after the call — exactly where
       the fallback (and the always-suspend twin) evaluates it. *)
    let idle_until ~ready =
      if run_ahead_enabled && config.horizon then
        Engine.suspend (fun c ->
            let p = cur () in
            p.clock <- p.clock + config.idle_quantum_cycles;
            p.idle <- p.idle + config.idle_quantum_cycles;
            observe_clock p.clock;
            incr idle_parks_ct;
            set_ready p (A_poll (ready, c));
            A_yield)
      else begin
        let rec go () =
          charge_idle config.idle_quantum_cycles;
          if not (ready ()) then go ()
        in
        go ()
      end

    let now () = Sim_config.cycles_to_seconds config (cur ()).clock

    (* Virtual seconds, kept per proc outside the cycle accounting: the
       blocking path already charged the cycles as idle time, this only
       re-labels them for [Stats.queue_wait]. *)
    let queue_wait_secs = Array.make config.procs 0.

    let note_queue_wait ~seconds =
      let id = (cur ()).id in
      queue_wait_secs.(id) <- queue_wait_secs.(id) +. seconds
  end

  let reset () =
    Array.iteri
      (fun i p ->
        let f = fresh_proc i in
        p.clock <- f.clock;
        p.state <- Free;
        p.datum <- D.initial;
        p.busy <- 0;
        p.idle <- 0;
        p.gc_wait <- 0;
        p.spins <- 0;
        p.alloc_words <- 0;
        p.ran_ahead <- 0)
      procs;
    Array.fill Work.queue_wait_secs 0 config.procs 0.;
    Ready_heap.clear ready;
    Array.fill bus_free_at 0 n_nodes 0;
    Array.fill bus_busy 0 n_nodes 0;
    link_free_at := 0;
    link_busy := 0;
    bus_total_bytes := 0;
    remote_bytes := 0;
    invalidations := 0;
    GcM.reset ();
    max_clock := 0;
    sched_decisions_ct := 0;
    coalesced_ct := 0;
    idle_parks_ct := 0;
    idle_polls_ct := 0;
    lock_acquires_ct := 0;
    susp_at_start := Engine.suspensions ();
    escaped := None;
    poll_hook := (fun () -> ())

  (* Publish the machine counters through the telemetry registry once per
     run — after the loop, so nothing is charged on the simulated path. *)
  let fold_counters () =
    let set name v = Obs.Counters.set (Telemetry.counter name) v in
    set "sim.makespan_cycles" !max_clock;
    set "sim.sched_decisions" !sched_decisions_ct;
    set "sim.coalesced_charges" !coalesced_ct;
    set "sim.idle_parks" !idle_parks_ct;
    set "sim.idle_polls" !idle_polls_ct;
    set "gc.collections" (gc_collections ());
    set "gc.cycles" (gc_pause_cycles ());
    set "gc.minor_count" (GcM.minor_collections ());
    set "gc.major_count" (GcM.major_collections ());
    set "gc.pause_cycles" (gc_pause_cycles ());
    set "gc.wait_cycles" (Array.fold_left (fun acc p -> acc + p.gc_wait) 0 procs);
    set "bus.bytes" !bus_total_bytes;
    set "bus.local_bytes" (!bus_total_bytes - !remote_bytes);
    set "bus.remote_bytes" !remote_bytes;
    set "bus.busy_cycles" (Array.fold_left ( + ) 0 bus_busy);
    set "link.busy_cycles" !link_busy;
    set "cache.invalidations" !invalidations;
    set "lock.acquires" !lock_acquires_ct;
    set "lock.spins" (Array.fold_left (fun acc p -> acc + p.spins) 0 procs)

  let run f =
    if !running then invalid_arg "Mp_sim.run: already running";
    running := true;
    reset ();
    let result = ref None in
    set_ready procs.(0) (Engine.Start (fun () -> result := Some (f ())));
    current := 0;
    Fun.protect
      ~finally:(fun () ->
        running := false;
        fold_counters ())
      (fun () ->
        loop ();
        match (!result, !escaped) with
        | Some v, None -> v
        | _, Some e -> raise e
        | None, None ->
            raise
              (Mp_intf.Deadlock
                 "sim: all procs released without producing a result"))

  let stats () =
    let t = Stats.zero ~platform:name ~procs:config.procs in
    let secs = Sim_config.cycles_to_seconds config in
    Array.iteri
      (fun i p ->
        let s = t.per_proc.(i) in
        s.busy <- secs p.busy;
        s.idle <- secs p.idle;
        s.gc_wait <- secs p.gc_wait;
        s.queue_wait <- Work.queue_wait_secs.(i);
        s.lock_spins <- p.spins;
        s.alloc_words <- p.alloc_words)
      procs;
    {
      t with
      elapsed = secs !max_clock;
      gc_time = secs (gc_pause_cycles ());
      gc_count = gc_collections ();
      bus_busy = secs (Array.fold_left ( + ) 0 bus_busy);
      bus_bytes = !bus_total_bytes;
      sched_decisions = !sched_decisions_ct;
      suspensions = Engine.suspensions () - !susp_at_start;
      heap_ops = Ready_heap.ops ready;
    }

  let reset_stats () = reset ()

  module Machine = struct
    let config = config
    let makespan_cycles () = !max_clock
    let sched_decisions () = !sched_decisions_ct
    let suspensions () = Engine.suspensions () - !susp_at_start
    let heap_ops () = Ready_heap.ops ready
    let coalesced_charges () = !coalesced_ct
    let idle_parks () = !idle_parks_ct
    let idle_polls () = !idle_polls_ct
    let gc_model () = Gc_model.to_string config.gc
    let gc_cycles () = gc_pause_cycles ()
    let gc_collections () = gc_collections ()
    let gc_minor_collections () = GcM.minor_collections ()
    let gc_major_collections () = GcM.major_collections ()

    let gc_wait_cycles () =
      Array.fold_left (fun acc p -> acc + p.gc_wait) 0 procs

    let nodes () = n_nodes
    let bus_bytes () = !bus_total_bytes
    let local_bytes () = !bus_total_bytes - !remote_bytes
    let remote_bytes () = !remote_bytes
    let invalidations () = !invalidations
    let bus_busy_cycles () = Array.fold_left ( + ) 0 bus_busy
    let link_busy_cycles () = !link_busy
    let elapsed_seconds () = Sim_config.cycles_to_seconds config !max_clock

    let gc_excluded_seconds () =
      Sim_config.cycles_to_seconds config (!max_clock - gc_pause_cycles ())

    let bus_mb_per_sec () =
      let secs = elapsed_seconds () in
      if secs <= 0. then 0.
      else float_of_int !bus_total_bytes /. 1.0e6 /. secs

    let enable_trace ?(capacity = 4096) () =
      trace := Some (Sim_trace.create ~capacity)

    let disable_trace () = trace := None
    let trace () = !trace
  end
end

module Int
    (C : sig
      val config : Sim_config.t
    end)
    () =
  Make (C) (Mp_intf.Int_datum)
