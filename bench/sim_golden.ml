(* Golden-value generator for the simulator's determinism-equivalence tests.

   Prints, for every bench-suite workload at procs in {1,4,16} on the
   16-proc Sequent model, the virtual-time invariants that any scheduler
   change must preserve bit-for-bit (makespan cycles, collections, bus
   bytes) plus host-side cost counters (effect-handler suspensions,
   scheduler decisions, host CPU seconds) that changes are allowed — and
   expected — to improve.

   Usage: dune exec bench/sim_golden.exe [-- --jobs N]
   --jobs (or MP_REPRO_JOBS) fans the cells across host domains; each cell
   runs on a private machine instance and lines print in grid order, so the
   GOLDEN values are identical for every N.  MP_REPRO_SCHED selects the
   scheduling policy (default distributed — the policy the test table
   pins) and MP_REPRO_GC the GC cost model (default stw — likewise the
   pinned one); under any (policy, collector) pair the output must stay
   identical across --jobs values, which is what CI's ws-policy and
   minor_pp jobs-diff legs check.
   Paste the GOLDEN lines into the table in test/test_sim.ml when adding a
   workload; never update them to absorb a virtual-time change without
   understanding why the change is correct. *)

let sched = Mpthreads.Sched_policy.resolve ()
let gc = Sim.Gc_model.resolve ()

let golden_cell (name, procs) =
  let module Seq16 =
    Sim.Mp_sim.Int (struct
        let config =
          Sim.Sim_config.with_gc
            (Sim.Sim_config.sequent ~procs:16
               ~sched:(Mpthreads.Sched_policy.to_string sched) ())
            gc
      end)
      ()
  in
  let module B = Workloads.Bench_suite.Make (Seq16) in
  Mp.Engine.reset_suspensions ();
  let t0 = Sys.time () in
  let witness = B.run_named ~sched name ~procs in
  let host = Sys.time () -. t0 in
  Printf.sprintf
    "GOLDEN %-8s sched=%-12s gcm=%-9s procs=%-2d makespan=%-12d gc=%-3d \
     bus=%-12d witness=%d susp=%d decisions=%d host=%.3fs"
    name
    (Mpthreads.Sched_policy.to_string sched)
    (Sim.Gc_model.to_string gc)
    procs
    (Seq16.Machine.makespan_cycles ())
    (Seq16.Machine.gc_collections ())
    (Seq16.Machine.bus_bytes ())
    witness
    (Mp.Engine.suspensions ())
    (Seq16.Machine.sched_decisions ())
    host

let parse_jobs argv =
  let explicit = ref None in
  Array.iteri
    (fun i a ->
      if a = "--jobs" && i + 1 < Array.length argv then
        explicit := int_of_string_opt argv.(i + 1))
    argv;
  Exec.Job_pool.resolve_jobs !explicit

let () =
  let jobs = parse_jobs Sys.argv in
  let names =
    let module B0 =
      Workloads.Bench_suite.Make
        (Sim.Mp_sim.Int
           (struct
             let config = Sim.Sim_config.sequent ~procs:1 ()
           end)
           ())
    in
    B0.names
  in
  let cells =
    List.concat_map
      (fun name -> List.map (fun procs -> (name, procs)) [ 1; 4; 16 ])
      names
  in
  List.iter print_endline (Exec.Job_pool.map ~jobs golden_cell cells)
