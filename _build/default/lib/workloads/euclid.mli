(** Random planar point sets and sequential minimum-spanning-tree
    algorithms — reference implementations for the [mst] benchmark (Prim's
    algorithm on 200 randomly distributed points, after Mohr).

    Edge weights are squared Euclidean distances (integer, exact), so
    Prim and Kruskal agree bit-for-bit. *)

type points = { xs : float array; ys : float array }

val random_points : n:int -> seed:int -> points

val weight : points -> int -> int -> int
(** Squared distance between two points, scaled to an integer grid. *)

val prim_mst : points -> int
(** Total weight of the minimum spanning tree (Prim, O(n²)). *)

val kruskal_mst : points -> int
(** Same via Kruskal + union-find, for cross-checking. *)
