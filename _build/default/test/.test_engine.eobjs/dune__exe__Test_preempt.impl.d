test/test_preempt.ml: Alcotest Domain List Locks Mpthreads Queues Sim
