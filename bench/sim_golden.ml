(* Golden-value generator for the simulator's determinism-equivalence tests.

   Prints, for every bench-suite workload at procs in {1,4,16} on the
   16-proc Sequent model, the virtual-time invariants that any scheduler
   change must preserve bit-for-bit (makespan cycles, collections, bus
   bytes) plus host-side cost counters (effect-handler suspensions,
   scheduler decisions, host CPU seconds) that changes are allowed — and
   expected — to improve.

   Usage: dune exec bench/sim_golden.exe
   Paste the GOLDEN lines into the table in test/test_sim.ml when adding a
   workload; never update them to absorb a virtual-time change without
   understanding why the change is correct. *)

module Seq16 =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:16 ()
    end)
    ()

module B = Workloads.Bench_suite.Make (Seq16)

let () =
  List.iter
    (fun name ->
      List.iter
        (fun procs ->
          Mp.Engine.reset_suspensions ();
          let t0 = Sys.time () in
          let witness = B.run_named name ~procs in
          let host = Sys.time () -. t0 in
          Printf.printf
            "GOLDEN %-8s procs=%-2d makespan=%-12d gc=%-3d bus=%-12d \
             witness=%d susp=%d decisions=%d host=%.3fs\n%!"
            name procs
            (Seq16.Machine.makespan_cycles ())
            (Seq16.Machine.gc_collections ())
            (Seq16.Machine.bus_bytes ())
            witness
            (Mp.Engine.suspensions ())
            (Seq16.Machine.sched_decisions ())
            host)
        [ 1; 4; 16 ])
    B.names
