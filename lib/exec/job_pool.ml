let registry = Obs.Counters.create ()
let c_jobs = Obs.Counters.counter registry "exec.jobs_run"
let c_batches = Obs.Counters.counter registry "exec.parallel_batches"
let c_domains = Obs.Counters.counter registry "exec.domains_spawned"
let c_steals = Obs.Counters.counter registry "exec.steals"

let default_jobs () =
  match Sys.getenv_opt "MP_REPRO_JOBS" with
  | Some v -> ( match int_of_string_opt (String.trim v) with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> 1

let resolve_jobs = function Some n -> max 1 n | None -> default_jobs ()

(* One slot per job; distinct jobs write distinct slots, and Domain.join
   publishes every worker's writes before the caller reads, so the merge
   is race-free without locks. *)
type 'b slot = Empty | Ok_ of 'b | Exn of exn

let run_job f x = match f x with v -> Ok_ v | exception e -> Exn e

let map ~jobs f xs =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then
    List.map
      (fun x ->
        Obs.Counters.incr c_jobs;
        f x)
      xs
  else begin
    Obs.Counters.incr c_batches;
    let results = Array.make n Empty in
    (* The deque owner is the calling domain: it pushes every indexed job
       up front, then drains from the LIFO end while spawned workers
       steal from the FIFO end.  Either side winning a race is fine —
       each job runs exactly once and lands in its own slot. *)
    let deque : (int * 'a) Queues.Ws_deque.t = Queues.Ws_deque.create () in
    List.iteri (fun i x -> Queues.Ws_deque.push deque (i, x)) xs;
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        match Queues.Ws_deque.steal deque with
        | Some (i, x) ->
            Obs.Counters.incr c_jobs;
            Obs.Counters.incr c_steals;
            results.(i) <- run_job f x
        | None ->
            (* Chase–Lev steal also returns None on a lost race while work
               remains, so consult the (racy) size before giving up.  A
               stale read only makes a worker exit early, which is safe:
               the owner pushed every job before spawning and keeps
               popping until its end is truly empty, so unclaimed jobs
               are always drained by someone. *)
            if Queues.Ws_deque.size deque > 0 then Domain.cpu_relax ()
            else continue_ := false
      done
    in
    let spawned = min (jobs - 1) (n - 1) in
    let domains = Array.init spawned (fun _ ->
        Obs.Counters.incr c_domains;
        Domain.spawn worker)
    in
    let continue_ = ref true in
    while !continue_ do
      match Queues.Ws_deque.pop deque with
      | Some (i, x) ->
          Obs.Counters.incr c_jobs;
          results.(i) <- run_job f x
      | None -> continue_ := false
    done;
    Array.iter Domain.join domains;
    let out =
      Array.to_list
        (Array.map
           (function
             | Ok_ v -> v
             | Exn e -> raise e
             | Empty -> assert false)
           results)
    in
    out
  end

let counters () =
  List.filter
    (fun (name, _) -> String.length name > 5 && String.sub name 0 5 = "exec.")
    (Obs.Counters.dump registry)
