(** Indexed binary min-heap of ready procs for the simulator's event loop.

    Keys are [(clock, id)] pairs ordered lexicographically — earliest
    virtual clock first, lowest proc id among equals — which is exactly the
    deterministic pick order of the O(P) array scan it replaces, so
    switching the scheduler to this heap cannot change virtual-time
    results.  The id universe is fixed at creation ([0 .. ids-1], the proc
    ids); a position index over it gives O(1) membership and supports the
    scheduler's invariant checks.  All storage is preallocated: no
    allocation on push or {!pop_unchecked}.

    Internally the key is packed as [clock * ids + id] so sift comparisons
    are single integer compares; this bounds clocks at [max_int / ids]
    cycles (~2^58 at 16 procs — centuries of simulated time). *)

type 'a t

exception Duplicate_id
(** Raised by {!push} when the id is already in the heap: a proc can be
    ready at most once. *)

val create : ids:int -> dummy:'a -> 'a t
(** [create ~ids ~dummy] accepts ids in [0 .. ids-1].  [dummy] fills unused
    value slots (never returned). *)

val push : 'a t -> clock:int -> id:int -> 'a -> unit
val pop : 'a t -> 'a option
(** Remove and return the value with the minimum [(clock, id)] key. *)

val pop_unchecked : 'a t -> 'a
(** {!pop} without the option wrapper (and without its allocation).
    Undefined on an empty heap — guard with {!is_empty}.  This is the
    scheduler's per-dispatch call. *)

val min_key : 'a t -> (int * int) option
(** The minimum key, without removing it. *)

val precedes_min : 'a t -> clock:int -> id:int -> bool
(** [true] iff the heap is empty or [(clock, id)] orders strictly before
    the minimum key — the run-ahead fast path's allocation-free "would
    this proc be re-picked" probe. *)

val mem : 'a t -> id:int -> bool
val length : 'a t -> int
val is_empty : 'a t -> bool

val ops : 'a t -> int
(** Pushes + pops since creation or the last {!clear} (host-side cost
    counter). *)

val clear : 'a t -> unit

val valid : 'a t -> bool
(** Heap order and index consistency hold; O(n).  For tests and the
    [heap_debug] config knob. *)
