(** Concurrent ML prototype over MP.

    The paper reports that "MP has also been used to construct a
    multiprocessor prototype of Concurrent ML (CML), an ML dialect
    supporting threads, channels, synchronous communication events (e.g.,
    CSP-style nondeterministic choice)", with the runtime data structures
    protected by "a single global lock".  This module reproduces that
    prototype: first-class events with [wrap]/[guard]/[choose], synchronous
    channels, and a two-phase commit on per-synchronization [committed]
    locks; all channel queues are protected by one global MP mutex, exactly
    the coarse-grained choice the paper describes (§3.4).

    Wrap functions run in the synchronizing thread, after resumption. *)

module Make (P : Mp.Mp_intf.PLATFORM_INT) (S : Mpthreads.Thread_intf.TIMED_SCHED) : sig
  type 'a chan
  type 'a event

  val channel : unit -> 'a chan

  val spawn : (unit -> unit) -> unit
  (** Start a new CML thread ([S.fork]). *)

  (* Base-event constructors *)

  val send_evt : 'a chan -> 'a -> unit event
  val recv_evt : 'a chan -> 'a event

  val always : 'a -> 'a event
  (** Always ready; synchronization yields the value immediately. *)

  val never : 'a event
  (** Never ready; synchronizing on it alone blocks forever. *)

  val timeout_evt : float -> unit event
  (** Becomes ready the given number of seconds after synchronization
      begins (virtual seconds on the simulator).  CML's [timeOutEvt]. *)

  (* Combinators *)

  val choose : 'a event list -> 'a event
  val wrap : 'a event -> ('a -> 'b) -> 'b event

  val wrap_abort : 'a event -> (unit -> unit) -> 'a event
  (** [wrap_abort ev abort]: if a synchronization chooses some {e other}
      branch of the enclosing choice, [abort] runs (in the syncing thread,
      after the chosen value is delivered).  CML's [wrapAbort], used for
      cleaning up protocol state behind abandoned offers. *)

  val guard : (unit -> 'a event) -> 'a event

  (* Synchronization *)

  val sync : 'a event -> 'a
  val select : 'a event list -> 'a
  (** [select evs = sync (choose evs)]. *)

  (* Derived conveniences *)

  val send : 'a chan -> 'a -> unit
  val recv : 'a chan -> 'a
  val recv_poll : 'a chan -> 'a option
  (** Nonblocking receive: [Some v] if a sender is immediately available. *)

  val sleep : float -> unit
  (** [sync (timeout_evt d)]. *)

  val recv_timeout : 'a chan -> float -> 'a option
  (** Receive with a deadline: [None] if no sender commits in time. *)

  val set_seed : int -> unit
  (** Reseed the pseudo-random base-event polling order. *)
end
