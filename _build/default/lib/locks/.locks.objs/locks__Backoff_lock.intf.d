lib/locks/backoff_lock.mli: Lock_intf
