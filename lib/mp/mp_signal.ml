module Make (P : Mp_intf.PLATFORM) = struct
  type signal = int

  let max_signals = 64
  let table_lock = P.Lock.mutex_lock ()
  let handlers : (signal -> unit) option array = Array.make max_signals None

  (* Per-proc masks and pending flags.  Each proc reads and clears only its
     own row; [deliver] (any proc) sets pending bits, so those are atomic.
     Masks are counted, not boolean: [mask]/[unmask] pairs nest, so a
     handler (or library code called under a mask) may mask again without
     clobbering its caller's mask. *)
  let procs = P.Proc.max_procs ()
  let masks = Array.make_matrix procs max_signals 0
  let pending_flags = Array.init procs (fun _ -> Array.init max_signals (fun _ -> Atomic.make false))

  let check_signal s =
    if s < 0 || s >= max_signals then invalid_arg "Mp_signal: signal out of range"

  let install s handler =
    check_signal s;
    P.Lock.lock table_lock;
    handlers.(s) <- handler;
    P.Lock.unlock table_lock

  let mask s =
    check_signal s;
    let row = masks.(P.Proc.self ()) in
    row.(s) <- row.(s) + 1

  let unmask s =
    check_signal s;
    let row = masks.(P.Proc.self ()) in
    row.(s) <- max 0 (row.(s) - 1)

  let is_masked s =
    check_signal s;
    masks.(P.Proc.self ()).(s) > 0

  let deliver_to ~proc s =
    check_signal s;
    if proc < 0 || proc >= procs then invalid_arg "Mp_signal.deliver_to";
    Atomic.set pending_flags.(proc).(s) true

  let deliver s =
    check_signal s;
    for proc = 0 to procs - 1 do
      Atomic.set pending_flags.(proc).(s) true
    done

  let pending () =
    let me = P.Proc.self () in
    let n = ref 0 in
    for s = 0 to max_signals - 1 do
      if Atomic.get pending_flags.(me).(s) then incr n
    done;
    !n

  let poll () =
    let me = P.Proc.self () in
    for s = 0 to max_signals - 1 do
      if
        Atomic.get pending_flags.(me).(s)
        && masks.(me).(s) = 0
        && Atomic.compare_and_set pending_flags.(me).(s) true false
      then begin
        P.Lock.lock table_lock;
        let handler = handlers.(s) in
        P.Lock.unlock table_lock;
        match handler with Some f -> f s | None -> ()
      end
    done

  let reset () =
    P.Lock.lock table_lock;
    Array.fill handlers 0 max_signals None;
    P.Lock.unlock table_lock;
    for p = 0 to procs - 1 do
      Array.fill masks.(p) 0 max_signals 0;
      for s = 0 to max_signals - 1 do
        Atomic.set pending_flags.(p).(s) false
      done
    done
end
