exception Duplicate_id

(* The (clock, id) key is packed into a single int, [clock * n + id]: with
   0 <= id < n this preserves the lexicographic order as plain integer
   comparison, so the sift loops touch one array instead of two.  The
   packing bounds clocks at [max_int / n] cycles — at 16 procs that is
   ~2^58 cycles, half a millennium of simulated time at 16 MHz.  [valid]
   checks for the overflow symptom (a negative key). *)
type 'a t = {
  n : int; (* id universe and packing stride *)
  keys : int array; (* slot -> clock * n + id *)
  values : 'a array; (* slot -> payload; slots >= size hold junk *)
  pos : int array; (* id -> slot, or -1 when absent *)
  mutable size : int;
  mutable ops : int;
}

let create ~ids ~dummy =
  if ids <= 0 then invalid_arg "Ready_heap.create";
  {
    n = ids;
    keys = Array.make ids 0;
    values = Array.make ids dummy;
    pos = Array.make ids (-1);
    size = 0;
    ops = 0;
  }

let length t = t.size
let is_empty t = t.size = 0
let ops t = t.ops
let mem t ~id = t.pos.(id) >= 0

(* Min order: earliest clock first, lowest id among equal clocks — exactly
   the order the O(P)-scan scheduler picked, so heap and scan dispatch
   identical sequences. *)

let push t ~clock ~id v =
  if t.pos.(id) >= 0 then raise Duplicate_id;
  let k = (clock * t.n) + id in
  t.size <- t.size + 1;
  t.ops <- t.ops + 1;
  (* Sift the hole up: shift larger parents down, place (k, v) once. *)
  let i = ref (t.size - 1) in
  let placed = ref false in
  while not !placed do
    if !i = 0 then placed := true
    else begin
      let parent = (!i - 1) / 2 in
      let pk = t.keys.(parent) in
      if pk > k then begin
        t.keys.(!i) <- pk;
        t.values.(!i) <- t.values.(parent);
        t.pos.(pk mod t.n) <- !i;
        i := parent
      end
      else placed := true
    end
  done;
  t.keys.(!i) <- k;
  t.values.(!i) <- v;
  t.pos.(id) <- !i

let min_key t =
  if t.size = 0 then None else Some (t.keys.(0) / t.n, t.keys.(0) mod t.n)

(* Allocation-free probe for the run-ahead fast path: would (clock, id)
   be dispatched ahead of every currently-ready proc? *)
let precedes_min t ~clock ~id =
  t.size = 0 || (clock * t.n) + id < t.keys.(0)

(* Remove and return the minimum.  Undefined on an empty heap — callers
   check [is_empty]; [pop] wraps this in an option. *)
let pop_unchecked t =
  let v = t.values.(0) in
  t.pos.(t.keys.(0) mod t.n) <- -1;
  let last = t.size - 1 in
  t.size <- last;
  t.ops <- t.ops + 1;
  if last > 0 then begin
    let k = t.keys.(last) in
    let mv = t.values.(last) in
    (* Sift the root hole down: shift smaller children up, place once. *)
    let i = ref 0 in
    let placed = ref false in
    while not !placed do
      let l = (2 * !i) + 1 in
      if l >= last then placed := true
      else begin
        let r = l + 1 in
        let c = if r < last && t.keys.(r) < t.keys.(l) then r else l in
        let ck = t.keys.(c) in
        if ck < k then begin
          t.keys.(!i) <- ck;
          t.values.(!i) <- t.values.(c);
          t.pos.(ck mod t.n) <- !i;
          i := c
        end
        else placed := true
      end
    done;
    t.keys.(!i) <- k;
    t.values.(!i) <- mv;
    t.pos.(k mod t.n) <- !i
  end;
  v

let pop t = if t.size = 0 then None else Some (pop_unchecked t)

let clear t =
  for i = 0 to t.size - 1 do
    t.pos.(t.keys.(i) mod t.n) <- -1
  done;
  t.size <- 0;
  t.ops <- 0

let valid t =
  let ok = ref true in
  for i = 1 to t.size - 1 do
    if t.keys.(i) < t.keys.((i - 1) / 2) then ok := false
  done;
  for i = 0 to t.size - 1 do
    if t.keys.(i) < 0 then ok := false;
    if t.pos.(t.keys.(i) mod t.n) <> i then ok := false
  done;
  let members = ref 0 in
  Array.iter (fun p -> if p >= 0 then incr members) t.pos;
  !ok && !members = t.size
