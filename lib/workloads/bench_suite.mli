(** The paper's five Figure-6 benchmarks plus the [seq] baseline, as
    parallel programs over the MP thread stack.

    Each function runs the complete application under [P.run] inside a
    {!Mpthreads.Sched_thread} pool of [procs] procs and returns a
    correctness witness (checksum / MST weight / sortedness) that tests
    compare against the sequential reference implementations.  Timing and
    resource statistics are read from [P.stats ()] (and, on the simulator,
    [Machine]) by the caller after the run.

    Workload kernels are real computations annotated with
    [Work.step ~instrs ~alloc_words] charges.  Instruction counts follow the
    operation counts of each kernel; allocation ratios follow SML/NJ's
    ≈1 word per 3–7 instructions (paper §5), varied per benchmark the way a
    1992 SML compilation of each kernel would (boxed floats in [simple],
    list/tree cells in [abisort], tight integer loops in [mm]). *)

module Make (P : Mp.Mp_intf.PLATFORM_INT) : sig
  module Sched : module type of Mpthreads.Sched_thread.Make (P)

  val mm :
    procs:int ->
    ?run_queue:[ `Distributed | `Central ] ->
    ?sched:Mpthreads.Sched_policy.t ->
    ?n:int ->
    ?seed:int ->
    unit ->
    int
  (** Matrix multiply of two [n]×[n] (default 100×100) integer matrices,
      parallel over rows.  Returns {!Matrix.checksum} of the product. *)

  val allpairs :
    procs:int ->
    ?run_queue:[ `Distributed | `Central ] ->
    ?sched:Mpthreads.Sched_policy.t ->
    ?n:int ->
    ?seed:int ->
    unit ->
    int
  (** Floyd's algorithm on an [n]-node graph (default 75), parallel over
      rows within each of the [n] k-phases (a barrier per phase).  Returns
      {!Graph.checksum} of the distance matrix. *)

  val mst :
    procs:int -> ?sched:Mpthreads.Sched_policy.t -> ?n:int -> ?seed:int ->
    unit -> int
  (** Prim's algorithm on [n] random points (default 200): each of the
      n-1 steps does a parallel min-reduction and a parallel relaxation.
      Returns the total MST weight. *)

  val abisort :
    procs:int -> ?sched:Mpthreads.Sched_policy.t -> ?size:int -> ?seed:int ->
    unit -> int
  (** Adaptive bitonic sort of [size] (default 2^12) integers, parallel
      recursion on subtree sorts and sub-merges.  Returns a checksum of the
      sorted array (compare against sorting the same input sequentially). *)

  val simple :
    procs:int -> ?sched:Mpthreads.Sched_policy.t -> ?n:int -> ?steps:int ->
    ?seed:int -> unit -> int
  (** The SIMPLE hydrodynamics step on an [n]×[n] grid (default 100×100,
      one step): row-parallel phases split by barriers, a serial boundary
      pass, and a lock-reduced global CFL bound.  Returns {!Hydro.checksum}. *)

  val seq :
    procs:int -> ?copies:int -> ?sched:Mpthreads.Sched_policy.t -> ?work:int ->
    unit -> int
  (** [copies] (default [procs]) fully independent copies of a small
      application — the paper's [seq] control showing that "lock contention
      and other parallelism issues are not at fault".  Its self-relative
      speedup compares [p] copies on [p] procs against [p] copies on one
      proc.  Returns the number of copies run. *)

  val fib :
    procs:int ->
    ?run_queue:[ `Distributed | `Central ] ->
    ?sched:Mpthreads.Sched_policy.t ->
    ?n:int -> ?cutoff:int -> unit -> int
  (** Unbalanced divide-and-conquer [fib n] (default 24) with a sequential
      [cutoff] (default 8) — the classic work-stealing stress: subtree
      sizes differ exponentially and tasks are fine-grained, so scheduler
      dispatch throughput dominates.  Not part of the paper's Figure 6
      suite; added for the scheduler-policy axis.  Returns [fib n]. *)

  val names : string list
  (** ["allpairs"; "mst"; "abisort"; "simple"; "mm"; "seq"; "fib"] — Figure
      6's legend order, plus the scheduler-stress [fib]. *)

  val run_named : ?sched:Mpthreads.Sched_policy.t -> string -> procs:int -> int
  (** Run a benchmark by name with the paper's default parameters, under
      the given scheduling policy (default {!Mpthreads.Sched_policy.default},
      the golden-pinned distributed run queue). *)
end
