(** Lock-protected queue wrapper.

    Pairs any [QUEUE] discipline with any MP [LOCK], giving the
    "ready queue protected by a mutex lock" pattern of the paper's Figure 3
    as a reusable component. *)

module Make (L : Mp.Mp_intf.LOCK) (Q : Queue_intf.QUEUE_EXT) : sig
  include Queue_intf.QUEUE_EXT

  val with_lock : 'a queue -> (unit -> 'b) -> 'b
  (** Run a critical section under the queue's lock (for compound
      operations such as drain-and-requeue). *)
end
