type t = {
  name : string;
  procs : int;
  mhz : float;
  cpi : float;
  word_bytes : int;
  bus_bytes_per_cycle : float;
  alloc_cycles_per_word : float;
  try_lock_cycles : int;
  unlock_cycles : int;
  lock_bus_bytes : int;
  spin_retry_cycles : int;
  idle_quantum_cycles : int;
  gc_region_words : int;
  gc_survival : float;
  gc_cycles_per_word : float;
  gc_fixed_cycles : int;
  gc_parallelism : float;
  acquire_proc_cycles : int;
  spin_jitter_proc : int;
  spin_jitter_attempt : int;
  spin_jitter_mod : int;
  run_ahead : bool;
  run_ahead_window : int;
  horizon : bool;
  horizon_window : int;
  horizon_debug : bool;
  heap_debug : bool;
  sched : string;
}

(* Sequent Symmetry S81: 16 MHz 80386s; 25 MB/s usable bus; MP mutex
   lock+unlock = 46 us = 736 cycles at 16 MHz. *)
let sequent ?(procs = 16) ?(sched = "distributed") () =
  {
    name = "sequent";
    procs;
    mhz = 16.;
    cpi = 4.5;
    word_bytes = 4;
    bus_bytes_per_cycle = 25.0e6 /. 16.0e6;
    alloc_cycles_per_word = 2.0;
    try_lock_cycles = 500;
    unlock_cycles = 236;
    lock_bus_bytes = 8;
    spin_retry_cycles = 200;
    idle_quantum_cycles = 2_000;
    gc_region_words = 512 * 1024;
    gc_survival = 0.03;
    gc_cycles_per_word = 30.;
    gc_fixed_cycles = 100_000;
    gc_parallelism = 1.0;
    acquire_proc_cycles = 10_000;
    spin_jitter_proc = 37;
    spin_jitter_attempt = 13;
    spin_jitter_mod = 101;
    run_ahead = true;
    run_ahead_window = max_int;
    horizon = true;
    horizon_window = max_int;
    horizon_debug = false;
    heap_debug = false;
    sched;
  }

(* SGI 4D/380S: 33 MHz R3000s (roughly 8x the per-processor throughput of
   the 386 at ~1.2 CPI); bus only ~30 MB/s; lock+unlock = 6 us = 198 cycles. *)
let sgi ?(procs = 8) ?(sched = "distributed") () =
  {
    name = "sgi";
    procs;
    mhz = 33.;
    cpi = 1.2;
    word_bytes = 4;
    bus_bytes_per_cycle = 30.0e6 /. 33.0e6;
    alloc_cycles_per_word = 1.0;
    try_lock_cycles = 130;
    unlock_cycles = 68;
    lock_bus_bytes = 8;
    spin_retry_cycles = 60;
    idle_quantum_cycles = 2_000;
    gc_region_words = 512 * 1024;
    gc_survival = 0.03;
    gc_cycles_per_word = 10.;
    gc_fixed_cycles = 60_000;
    gc_parallelism = 1.0;
    acquire_proc_cycles = 6_000;
    spin_jitter_proc = 37;
    spin_jitter_attempt = 13;
    spin_jitter_mod = 101;
    run_ahead = true;
    run_ahead_window = max_int;
    horizon = true;
    horizon_window = max_int;
    horizon_debug = false;
    heap_debug = false;
    sched;
  }

let with_parallel_gc c factor =
  if factor < 1.0 then invalid_arg "Sim_config.with_parallel_gc";
  { c with gc_parallelism = factor; name = c.name ^ "+pgc" }

let cycles_to_seconds c n = float_of_int n /. (c.mhz *. 1.0e6)
let seconds_to_cycles c s = int_of_float (s *. c.mhz *. 1.0e6)

let lock_pair_microseconds c =
  float_of_int (c.try_lock_cycles + c.unlock_cycles) /. c.mhz
