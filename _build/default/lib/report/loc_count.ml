type entry = { component : string; kind : string; files : int; lines : int }

let count_lines path =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

let classify dir file =
  match dir with
  | "mp" -> (
      match file with
      | "mp_uniproc.ml" | "mp_uniproc.mli" ->
          ("backend: uniprocessor", "system-dependent")
      | "mp_domains.ml" | "mp_domains.mli" ->
          ("backend: domains (kernel threads)", "system-dependent")
      | _ -> ("mp platform (generic)", "generic"))
  | "sim" -> ("backend: simulated multiprocessor", "system-dependent")
  | "locks" -> ("lock algorithms", "generic")
  | "queues" -> ("queue disciplines", "generic")
  | "threads" -> ("thread packages", "client")
  | "select" -> ("selective communication", "client")
  | "cml" -> ("CML prototype", "client")
  | "sync" -> ("synchronization constructs", "client")
  | "workloads" -> ("benchmarks", "client")
  | "report" -> ("reporting/harness", "harness")
  | "model" -> ("analytic model", "harness")
  | other -> (other, "other")

let scan ~root =
  let lib = Filename.concat root "lib" in
  let acc = Hashtbl.create 16 in
  let add component kind lines =
    let key = (component, kind) in
    let files0, lines0 =
      match Hashtbl.find_opt acc key with Some v -> v | None -> (0, 0)
    in
    Hashtbl.replace acc key (files0 + 1, lines0 + lines)
  in
  if Sys.file_exists lib && Sys.is_directory lib then
    Array.iter
      (fun dir ->
        let dpath = Filename.concat lib dir in
        if Sys.is_directory dpath then
          Array.iter
            (fun file ->
              if Filename.check_suffix file ".ml" || Filename.check_suffix file ".mli"
              then begin
                let component, kind = classify dir file in
                add component kind (count_lines (Filename.concat dpath file))
              end)
            (Sys.readdir dpath))
      (Sys.readdir lib);
  Hashtbl.fold
    (fun (component, kind) (files, lines) out ->
      { component; kind; files; lines } :: out)
    acc []
  |> List.sort (fun a b ->
         compare (a.kind, a.component) (b.kind, b.component))

let find_root () =
  let rec up dir n =
    if n > 6 then None
    else if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (n + 1)
  in
  up (Sys.getcwd ()) 0

let print fmt entries =
  let total = List.fold_left (fun acc e -> acc + e.lines) 0 entries in
  let dep =
    List.fold_left
      (fun acc e -> if e.kind = "system-dependent" then acc + e.lines else acc)
      0 entries
  in
  Render.table fmt
    ~header:[ "component"; "kind"; "files"; "lines" ]
    ~rows:
      (List.map
         (fun e ->
           [ e.component; e.kind; string_of_int e.files; string_of_int e.lines ])
         entries);
  Format.fprintf fmt
    "@.total %d lines; system-dependent (per-backend) %d lines (%.1f%%)@."
    total dep
    (100. *. float_of_int dep /. float_of_int (max 1 total))
