(* Scratch diagnostic: suspension composition per workload.  Not installed. *)
module S =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:16 ()
    end)
    ()

module B = Workloads.Bench_suite.Make (S)

let () =
  List.iter
    (fun bench ->
      List.iter
        (fun procs ->
          ignore (B.run_named bench ~procs);
          let c name = Obs.Counters.get (S.Telemetry.counter name) in
          Printf.printf
            "%-9s @%-2d susp=%6d parks=%5d polls=%6d spins=%6d acquires=%6d \
             decisions=%6d coalesced=%6d\n"
            bench procs
            (S.Machine.suspensions ())
            (S.Machine.idle_parks ())
            (S.Machine.idle_polls ())
            (c "lock.spins") (c "lock.acquires")
            (S.Machine.sched_decisions ())
            (S.Machine.coalesced_charges ()))
        [ 4; 16 ])
    B.names
