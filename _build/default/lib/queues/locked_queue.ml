module Make (L : Mp.Mp_intf.LOCK) (Q : Queue_intf.QUEUE_EXT) = struct
  exception Empty = Queue_intf.Empty

  type 'a queue = { lock : L.mutex_lock; q : 'a Q.queue }

  let create () = { lock = L.mutex_lock (); q = Q.create () }

  let protected t f =
    L.lock t.lock;
    match f () with
    | v ->
        L.unlock t.lock;
        v
    | exception e ->
        L.unlock t.lock;
        raise e

  let enq t x = protected t (fun () -> Q.enq t.q x)
  let deq t = protected t (fun () -> Q.deq t.q)
  let deq_opt t = protected t (fun () -> Q.deq_opt t.q)
  let length t = protected t (fun () -> Q.length t.q)
  let is_empty t = protected t (fun () -> Q.is_empty t.q)
  let with_lock t f = protected t f
end
