(** Thread-package interfaces.

    [THREAD] is the paper's Figure-1 signature.  [SCHED] extends it with the
    scheduler internals ([reschedule], [dispatch], ...) that the paper's
    higher-level clients — selective communication (Figure 5), CML, and
    synchronization constructs — are written against. *)

module type THREAD = sig
  val fork : (unit -> unit) -> unit
  (** Start a new thread executing the given function, with a fresh integer
      id, running in parallel with its parent. *)

  val yield : unit -> unit
  (** Temporarily yield the processor to another thread. *)

  val id : unit -> int
  (** Id of the current thread. *)
end

module type SCHED = sig
  include THREAD

  val reschedule : unit Mp.Engine.cont * int -> unit
  (** Make a saved thread (continuation and id) ready to run. *)

  val reschedule_thread : 'a Mp.Engine.cont * 'a * int -> unit
  (** Make a thread blocked on a typed continuation ready, delivering the
      given value when it resumes (paper, Figure 5 caption). *)

  val dispatch : unit -> 'a
  (** Abandon the current computation and run the next ready thread; if
      none is available, give up the proc (or idle, package-dependent).
      Never returns. *)
end

(** A scheduler that can also run timed callbacks — what CML's timeout
    events require.  {!Sched_thread} provides it; the paper-faithful
    Figure-1/Figure-3 packages do not. *)
module type TIMED_SCHED = sig
  include SCHED

  val now : unit -> float
  val at : float -> (unit -> unit) -> unit
end
