(** A telemetry instance: the state behind one platform's [TELEMETRY]
    capability.

    An instance is [streams] independent event streams (one per concurrent
    emitter — per-domain on the domains backend, a single stream on the
    uniprocessor and the simulator, whose emission is serialized by
    construction), a counter registry, and an optional external sink.
    [stream_of] routes each emission to the caller's stream so rings are
    single-writer and recording is race-free without locks; [now_ts]
    supplies the backend clock (virtual cycles or host nanoseconds).

    Disabled (the default) it is a static no-op: [emit] is one boolean
    load, and call sites guard event {e construction} behind [enabled] so
    nothing is allocated either. *)

type t

val create :
  ?streams:int -> stream_of:(unit -> int) -> now_ts:(unit -> int) -> unit -> t
(** [streams] defaults to 1.  Out-of-range [stream_of] results (e.g. a
    domains emission from outside any proc) fall back to stream 0. *)

val enabled : t -> bool

val ts : t -> int
(** Current timestamp from the backend clock. *)

val counters : t -> Counters.t
(** The registry is live even while event emission is disabled. *)

val histograms : t -> Histogram.registry
(** Always-on like the counters: histogram recording never depends on the
    event stream being enabled. *)

val enable_memory : ?capacity:int -> t -> unit
(** Allocate one ring of [capacity] (default 4096) per stream — idempotent,
    existing rings and their contents survive — and start emitting. *)

val attach_sink : t -> Sink.t -> unit
(** Forward every emitted event to [sink] (in addition to any memory
    rings) and start emitting. *)

val disable : t -> unit
(** Flush and drop the sink, drop the rings, stop emitting.  Counters are
    unaffected. *)

val emit : t -> Event.t -> unit
(** No-op unless enabled. *)

val ring : t -> int -> Event.t Ring.t option
(** The ring of a given stream, when a memory sink is enabled. *)

val events : t -> Event.t list
(** All retained events, merged across streams in timestamp order (stable:
    single-stream instances keep exact emission order). *)

val total_recorded : t -> int
(** Summed over streams, including overwritten events. *)
