lib/model/speedup_model.mli:
