(** The trivial uniprocessor MP backend.

    The paper notes that "a trivial uniprocessor implementation works on all
    processors that run SML/NJ"; this is its OCaml analog.  There is exactly
    one proc (the root), [acquire_proc] always raises [No_More_Procs], and
    locks are plain boolean cells — safe because nothing ever runs
    concurrently and fibers only switch at explicit suspension points. *)

module Make (D : Mp_intf.DATUM) : Mp_intf.PLATFORM with type Proc.proc_datum = D.t

(** Uniprocessor platform with [int] per-proc datum. *)
module Int () : Mp_intf.PLATFORM_INT
