lib/locks/mcs_lock.ml: Lock_intf
