examples/cml_primes.ml: Cml List Mp Mpthreads Printf String
