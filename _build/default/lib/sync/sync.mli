(** Synchronization constructs synthesized from mutex locks, refs and
    first-class continuations — the paper's §3.3: "more elaborate
    synchronization constructs such as reader/writer locks, semaphores,
    channels, etc., can be synthesized from mutex locks, refs, and
    first-class continuations".

    All constructs block by parking the calling thread's continuation and
    dispatching another thread; none of them spins. *)

module Make (P : Mp.Mp_intf.PLATFORM_INT) (S : Mpthreads.Thread_intf.SCHED) : sig
  (** Write-once cell (future). *)
  module Ivar : sig
    type 'a t

    exception Already_filled

    val create : unit -> 'a t

    val fill : 'a t -> 'a -> unit
    (** Wake every reader.  @raise Already_filled on a second fill. *)

    val read : 'a t -> 'a
    (** Block until filled. *)

    val poll : 'a t -> 'a option
  end

  (** Synchronized single-slot mailbox. *)
  module Mvar : sig
    type 'a t

    val create : unit -> 'a t
    val put : 'a t -> 'a -> unit
    (** Block while the slot is full. *)

    val take : 'a t -> 'a
    (** Block while the slot is empty. *)

    val try_take : 'a t -> 'a option
  end

  (** Counting semaphore. *)
  module Semaphore : sig
    type t

    val create : int -> t
    val acquire : t -> unit
    val try_acquire : t -> bool
    val release : t -> unit
    val value : t -> int
  end

  (** Reader/writer lock, writer-preferring. *)
  module Rwlock : sig
    type t

    val create : unit -> t
    val read_lock : t -> unit
    val read_unlock : t -> unit
    val write_lock : t -> unit
    val write_unlock : t -> unit
    val with_read : t -> (unit -> 'a) -> 'a
    val with_write : t -> (unit -> 'a) -> 'a
  end

  (** Cyclic barrier for a fixed party count. *)
  module Barrier : sig
    type t

    val create : parties:int -> t

    val await : t -> int
    (** Block until all parties have arrived; returns the arrival index
        (0 for the first arriver, parties-1 for the releasing one).  The
        barrier resets for reuse. *)
  end

  (** Multilisp-style futures: a computation running in parallel whose
      value is claimed with [touch] (the paper contrasts MP's
      continuation-based threads with Multilisp's future-centric model;
      futures are a few lines on top of fork + ivar). *)
  module Future : sig
    type 'a t

    val spawn : (unit -> 'a) -> 'a t
    val of_value : 'a -> 'a t

    val touch : 'a t -> 'a
    (** Block until the future's value is available. *)

    val poll : 'a t -> 'a option
    val map : ('a -> 'b) -> 'a t -> 'b t
  end

  (** Countdown latch. *)
  module Countdown : sig
    type t

    val create : int -> t
    val count_down : t -> unit
    val await : t -> unit
    val remaining : t -> int
  end
end
