lib/queues/locked_queue.mli: Mp Queue_intf
