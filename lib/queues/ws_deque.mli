(** Lock-free Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005).

    Single-owner/multi-thief: only the owning proc may [push]/[pop] (LIFO
    end); any proc may [steal] (FIFO end).  Built on atomic cells with a
    growable circular buffer; the paper-era alternative to the
    lock-protected deques of {!Multi_queue}, provided for the real-domains
    backend where lock-free stealing avoids a bus transaction per empty
    probe.

    The algorithm is a functor over {!Queue_intf.ATOMIC} so the identical
    text runs over [Stdlib.Atomic] (the default instance exposed below) and
    over the [mp_check] harness's instrumented cells, whose every access is
    a schedule-exploration serialization point. *)

module Make (A : Queue_intf.ATOMIC) : sig
  type 'a t

  val create : unit -> 'a t

  val push : 'a t -> 'a -> unit
  (** Owner only. *)

  val pop : 'a t -> 'a option
  (** Owner only: newest element. *)

  val steal : 'a t -> 'a option
  (** Any thread: oldest element; [None] when empty or a race was lost. *)

  val size : 'a t -> int
  (** Racy snapshot of the number of elements. *)
end

(** The default instance over [Stdlib.Atomic]. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only: newest element. *)

val steal : 'a t -> 'a option
(** Any thread: oldest element; [None] when empty or a race was lost. *)

val size : 'a t -> int
(** Racy snapshot of the number of elements. *)
