(* The exploration backend.  One host thread; procs are cooperative fibers
   scheduled by the exploration loop.  A proc runs atomically from one
   serialization point to the next (a "slice"); the loop's only job is to
   decide, at each decision index, which enabled proc performs its pending
   visible operation.  Forcing those decisions from a prefix array gives
   deterministic replay; enumerating alternatives under a preemption bound
   gives CHESS-style systematic exploration; drawing them from splitmix64
   gives seeded fuzzing. *)

module Engine = Mp.Engine

exception Truncated

type failure = {
  error : exn;
  schedule : int list;
  seed : string option;
  trace : Obs.Event.t list;
}

type report = {
  schedules : int;
  truncated : int;
  pruned : int;
  capped : bool;
  failure : failure option;
}

let pp_failure fmt f =
  Format.fprintf fmt "@[<v>failure: %s@;" (Printexc.to_string f.error);
  (match f.seed with
  | Some s -> Format.fprintf fmt "seed: %s (replay with MP_CHECK_SEED=%s)@;" s s
  | None -> ());
  Format.fprintf fmt "schedule (%d forced choices): [%s]@;"
    (List.length f.schedule)
    (String.concat "; " (List.map string_of_int f.schedule));
  Format.fprintf fmt "trace (%d decisions):@;" (List.length f.trace);
  List.iter (fun e -> Format.fprintf fmt "  %a@;" Obs.Event.pp e) f.trace;
  Format.fprintf fmt "@]"

module type S = sig
  include Mp.Mp_intf.PLATFORM

  module Prims : Locks.Lock_intf.PRIMS
  module Catomic : Queues.Queue_intf.ATOMIC

  val spawn : (unit -> unit) -> unit

  val set_nodes : int -> unit
  (** Group the procs into [n] contiguous interconnect nodes (reported by
      [Proc.nodes]/[Proc.node_of]) for node-aware scheduler scenarios;
      clamped to [1 .. max_procs].  Must be called outside [run]. *)

  val line_sharers : Work.line -> int
  (** Tracked sharer set of a cache line (bit n = node n holds it). *)

  module Explore : sig
    val dfs :
      ?bound:int ->
      ?max_schedules:int ->
      ?max_steps:int ->
      ?faults:Check_intf.faults ->
      ?stop:(unit -> bool) ->
      ?dpor:bool ->
      (unit -> unit) ->
      report

    val runner :
      ?faults:Check_intf.faults ->
      ?max_steps:int ->
      (unit -> unit) ->
      Dpor.runner

    val random :
      ?seed:int64 ->
      ?runs:int ->
      ?max_steps:int ->
      ?faults:Check_intf.faults ->
      (unit -> unit) ->
      report

    val replay :
      schedule:int list ->
      ?max_steps:int ->
      ?faults:Check_intf.faults ->
      (unit -> unit) ->
      failure option
  end
end

module Make (C : sig
  val max_procs : int
end) (D : Mp.Mp_intf.DATUM) =
struct
  let name = "check"
  let n_procs = max 1 C.max_procs

  (* ---- visible-operation protocol ---------------------------------- *)

  type lock = { lid : int; mutable held : bool }
  type wait = W_lock of lock | W_pred of (unit -> bool)
  type point_kind = K_plain | K_yield

  type Engine.action +=
    | A_point of Check_intf.opdesc * point_kind * unit Engine.cont
    | A_block of Check_intf.opdesc * wait * unit Engine.cont

  (* ---- per-run state ------------------------------------------------ *)

  type pstate = Free | Ready | Blocked

  type proc = {
    id : int;
    mutable state : pstate;
    mutable pending : Engine.action option;
    mutable wait : wait option;
    mutable datum : D.t;
    mutable yielded : bool;
    mutable op : Check_intf.opdesc;  (* the pending visible operation *)
  }

  let start_op = Check_intf.desc "start" Check_intf.obj_global Check_intf.Global

  let procs =
    Array.init n_procs (fun id ->
        {
          id;
          state = Free;
          pending = None;
          wait = None;
          datum = D.initial;
          yielded = false;
          op = start_op;
        })

  let running = ref false
  let cur = ref 0
  let nsteps = ref 0

  (* Interconnect topology reported by [Proc.nodes]/[Proc.node_of]:
     scenarios set it (outside [run]) to explore node-aware scheduler
     behavior; it is read-only during exploration, so replay stays
     deterministic. *)
  let topo_nodes = ref 1

  let set_nodes n =
    if !running then invalid_arg "Mp_check.set_nodes: run in progress";
    topo_nodes := max 1 (min n n_procs)
  let failed : exn option ref = ref None
  let last_chosen = ref (-1)
  let preempts = ref 0
  let truncated = ref false
  let spins = ref 0

  (* One decision of the exploration loop.  [d_choices] is the
     fairness-restricted choice set (yielded procs excluded while a
     non-yielded proc is enabled); [d_prev]/[d_prev_continuable] record
     whether switching away from the previous proc costs a preemption, so
     the DFS can price alternatives without re-running the prefix. *)
  type decision = {
    d_choices : int array;
    d_chosen : int;
    d_prev : int;
    d_prev_continuable : bool;
    d_preempts_before : int;
    d_op : string;
    d_obj : int;  (* object id + access kind of the executed op, for the
                     DPOR dependence relation (see Check_intf.depends) *)
    d_access : Check_intf.access;
    d_sleep : int;  (* sleep set (bitmask) in force at this decision *)
    d_stutter : bool;
        (* every offered proc was parked at a spin-yield point: the choice
           only reorders spin iterations (stutter steps), so the DFS does
           not branch here — without this cut a pair of overlapping spin
           loops makes exploration enumerate "spin one more time" forever *)
  }

  let decisions_rev : decision list ref = ref []

  (* Exploration configuration, installed around each run. *)
  type policy = step:int -> choices:int array -> default:int -> int

  let default_only : policy = fun ~step:_ ~choices:_ ~default -> default
  let current_policy : policy ref = ref default_only
  let current_faults = ref Check_intf.no_faults
  let current_max_steps = ref 10_000

  (* Sleep-set configuration, installed around each run by the DPOR
     driver: from decision [current_sleep_from] on, [sleep_now] holds the
     procs whose scheduling here would only commute with an
     already-explored trace.  The default policy is redirected away from
     sleeping procs; if every enabled choice is asleep the run aborts
     with [Check_intf.Sleep_blocked] (a prune, not a failure).  Executing
     an op wakes every sleeper whose pending op depends on it. *)
  let current_sleep_from = ref max_int
  let current_sleep0 = ref 0
  let sleep_now = ref 0

  (* Fault-injection site counters (reset per run).  Probabilistic faults
     are keyed on (proc, object, per-key occurrence), NOT on a global
     site counter: the n-th probe of lock L by proc p draws the same
     verdict wherever the scheduler places it, so DPOR-pruned runs and
     shrink replays (which reorder unrelated ops) see identical fault
     behaviour. *)
  let n_acquire = ref 0
  let fault_occ : (int * int, int ref) Hashtbl.t = Hashtbl.create 32

  let pct_fault pct ~obj =
    pct > 0
    && begin
         let key = (!cur, obj) in
         let occ =
           match Hashtbl.find_opt fault_occ key with
           | Some r -> r
           | None ->
               let r = ref 0 in
               Hashtbl.add fault_occ key r;
               r
         in
         incr occ;
         let h =
           Sched_seed.hash2
             (Sched_seed.hash2
                (Sched_seed.hash2 !current_faults.Check_intf.fault_seed !cur)
                obj)
             !occ
         in
         Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) 100L) < pct
       end

  (* Locks and cells created OUTSIDE a run (functor-application time, e.g.
     hwpool's hardware-lock pool or CML's global lock when instantiated at
     module level) persist across runs, so they register a reset hook that
     restores their initial value at run start — a truncated run may leave
     them held/dirty.  Objects created during a run are fresh per run and
     need no hook.  Ids come from two counters so trace labels are stable
     under replay: persistent objects number from 0, per-run objects from a
     base that resets every run. *)
  let persistent_resets : (unit -> unit) list ref = ref []
  let persistent_ids = ref 0
  let run_ids = ref 1_000_000

  let fresh_id () =
    if !running then (
      let i = !run_ids in
      incr run_ids;
      i)
    else (
      let i = !persistent_ids in
      incr persistent_ids;
      i)

  let register_reset f =
    if not !running then persistent_resets := f :: !persistent_resets

  (* ---- serialization points ---------------------------------------- *)

  let sched_point ~op kind =
    if !running then Engine.suspend (fun k -> A_point (op, kind, k))

  let block_on ~op w =
    if !running then Engine.suspend (fun k -> A_block (op, w, k))
    else failwith "Mp_check: blocking operation outside run"

  (* ---- platform modules --------------------------------------------- *)

  module Kont = struct
    type 'a cont = 'a Engine.cont

    let callcc = Engine.callcc
    let throw = Engine.throw
    let throw_exn = Engine.throw_exn
  end

  module Telemetry = Mp.Mp_intf.Telemetry_of (struct
    let handle =
      Obs.Telemetry.create ~stream_of:(fun () -> !cur) ~now_ts:(fun () -> !nsteps) ()
  end)

  module Lock = struct
    type mutex_lock = lock

    let mutex_lock () =
      let l = { lid = fresh_id (); held = false } in
      register_reset (fun () -> l.held <- false);
      l

    let lbl what acc l =
      Check_intf.desc (Printf.sprintf "lock.%s L%d" what l.lid) l.lid acc

    let try_lock l =
      if not !running then
        if l.held then false
        else begin
          l.held <- true;
          true
        end
      else begin
        sched_point ~op:(lbl "try" Check_intf.Rmw l) K_plain;
        if l.held then begin
          incr spins;
          false
        end
        else if
          pct_fault !current_faults.Check_intf.try_lock_fail_pct ~obj:l.lid
        then begin
          incr spins;
          false
        end
        else begin
          l.held <- true;
          true
        end
      end

    (* Acquisition blocks on the lock rather than spinning: the proc is
       enabled exactly when the lock is free, and resuming it is atomic
       with the re-check-and-set, so every acquisition order is explored
       without unbounded spin schedules.  (The spinning algorithms are
       still explored — via the lock functors over [Prims].) *)
    let rec lock l =
      if not !running then
        if l.held then failwith "Mp_check.Lock.lock: lock held outside run"
        else l.held <- true
      else begin
        block_on ~op:(lbl "acquire" Check_intf.Rmw l) (W_lock l);
        if l.held then lock l else l.held <- true
      end

    let unlock l =
      if not !running then l.held <- false
      else begin
        sched_point ~op:(lbl "release" Check_intf.Write l) K_plain;
        l.held <- false
      end

    let locked l f =
      lock l;
      match f () with
      | v ->
          unlock l;
          v
      | exception e ->
          unlock l;
          raise e
  end

  (* Instrumented atomic cells, shared by [Prims] and [Catomic]. *)
  module Cell = struct
    type 'a t = { cid : int; mutable v : 'a }

    let lbl what acc c =
      Check_intf.desc (Printf.sprintf "cell.%s c%d" what c.cid) c.cid acc

    let make v0 =
      let c = { cid = fresh_id (); v = v0 } in
      register_reset (fun () -> c.v <- v0);
      c

    let get c =
      sched_point ~op:(lbl "get" Check_intf.Read c) K_plain;
      c.v

    let set c x =
      sched_point ~op:(lbl "set" Check_intf.Write c) K_plain;
      c.v <- x

    let exchange c x =
      sched_point ~op:(lbl "xchg" Check_intf.Rmw c) K_plain;
      let old = c.v in
      c.v <- x;
      old

    let compare_and_set c expected x =
      sched_point ~op:(lbl "cas" Check_intf.Rmw c) K_plain;
      if c.v == expected then begin
        c.v <- x;
        true
      end
      else false

    let fetch_and_add c n =
      sched_point ~op:(lbl "faa" Check_intf.Rmw c) K_plain;
      let old = c.v in
      c.v <- old + n;
      old
  end

  module Prims = struct
    type 'a cell = 'a Cell.t

    let make = Cell.make
    let get = Cell.get
    let set = Cell.set
    let exchange = Cell.exchange
    let compare_and_set = Cell.compare_and_set
    let fetch_and_add = Cell.fetch_and_add
    let yield_op label =
      Check_intf.desc label Check_intf.obj_local Check_intf.Yield

    let pause () = sched_point ~op:(yield_op "spin.pause") K_yield

    let pause_n _n =
      sched_point ~op:(yield_op "spin.backoff") K_yield;
      for _ = 1 to !current_faults.Check_intf.backoff_boost do
        sched_point ~op:(yield_op "spin.backoff+") K_yield
      done

    let on_spin () = incr spins
  end

  module Catomic = struct
    type 'a t = 'a Cell.t

    let make = Cell.make
    let get = Cell.get
    let set = Cell.set
    let exchange = Cell.exchange
    let compare_and_set = Cell.compare_and_set
    let fetch_and_add = Cell.fetch_and_add

    (* Deliberately NOT a serialization point: [unsafe_peek] backs
       observation-only idle predicates, so exploring schedules around it
       would only blow up the state space without adding interleavings a
       real algorithm step could distinguish. *)
    let unsafe_peek (c : 'a Cell.t) = c.Cell.v
  end

  module Proc = struct
    type proc_datum = D.t
    type proc_state = PS of unit Engine.cont * proc_datum

    exception No_More_Procs = Mp.Mp_intf.No_More_Procs

    let self () = !cur
    let max_procs () = n_procs

    let live_procs () =
      Array.fold_left (fun n p -> if p.state = Free then n else n + 1) 0 procs

    (* Topology under exploration: [set_nodes] (below, module level) groups
       the procs into contiguous nodes so node-aware scheduler paths can be
       model-checked; 1 (the default) is the flat machine. *)
    let nodes () = !topo_nodes

    let node_of p =
      let n = !topo_nodes in
      if n <= 1 then 0 else p / ((n_procs + n - 1) / n)

    let acquire_proc (PS (k, d)) =
      sched_point
        ~op:
          (Check_intf.desc "proc.acquire" Check_intf.obj_procpool
             Check_intf.Rmw)
        K_plain;
      incr n_acquire;
      (match !current_faults.Check_intf.fail_acquire_at with
      | Some n when n = !n_acquire -> raise No_More_Procs
      | _ -> ());
      let rec find i =
        if i >= n_procs then raise No_More_Procs
        else if procs.(i).state = Free then procs.(i)
        else find (i + 1)
      in
      let p = find 0 in
      p.state <- Ready;
      p.pending <- Some (Engine.Resume (k, ()));
      p.wait <- None;
      p.yielded <- false;
      p.op <-
        Check_intf.desc
          (Printf.sprintf "proc.start p%d" p.id)
          Check_intf.obj_global Check_intf.Global;
      p.datum <- d

    let release_proc () =
      sched_point
        ~op:
          (Check_intf.desc "proc.release" Check_intf.obj_procpool
             Check_intf.Rmw)
        K_plain;
      Engine.suspend (fun _ -> Engine.Stop)

    let initial_datum = D.initial
    let get_datum () = procs.(!cur).datum
    let set_datum d = procs.(!cur).datum <- d
  end

  module Work = struct
    let hook = ref (fun () -> ())
    let step ?alloc_words:_ ~instrs:_ () = ()
    let charge _ = ()
    let alloc ~words:_ = ()
    let traffic ~bytes:_ = ()

    (* Lines carry no cost here, but the sharing protocol is still worth
       exploring: scenarios can read the tracked sharer set back through
       the cell layer to check the claim/invalidate discipline. *)
    type line = { mutable sharers : int }

    let line () = { sharers = 0 }
    let read_line ln = ln.sharers <- ln.sharers lor (1 lsl Proc.node_of !cur)

    let write_line ln ~bytes:_ =
      ln.sharers <- 1 lsl Proc.node_of !cur

    let poll () =
      sched_point
        ~op:(Check_intf.desc "work.poll" Check_intf.obj_global Check_intf.Global)
        K_plain;
      !hook ()

    let set_poll_hook f = hook := f

    let idle () =
      sched_point
        ~op:(Check_intf.desc "work.idle" Check_intf.obj_local Check_intf.Yield)
        K_yield

    let idle_until ~ready =
      if not (ready ()) then
        block_on
          ~op:
            (Check_intf.desc "work.idle_until" Check_intf.obj_global
               Check_intf.Global)
          (W_pred ready)

    let now () = float_of_int !nsteps *. 0.001

    (* Accounting only — not a scheduling point, so it adds no schedules
       to the exploration. *)
    let queue_wait = Array.make (Array.length procs) 0.

    let note_queue_wait ~seconds =
      queue_wait.(!cur) <- queue_wait.(!cur) +. seconds
  end

  (* Scenario-side accessor for the tracked sharer set (Work.line is
     abstract through PLATFORM): bit n set = node n holds the line. *)
  let line_sharers (ln : Work.line) = ln.Work.sharers

  let spawn f =
    Proc.acquire_proc
      (Proc.PS
         ( Mp.Kont_util.cont_of_thunk
             ~on_return:(fun () -> Proc.release_proc ())
             f,
           D.initial ))

  (* ---- the exploration loop ----------------------------------------- *)

  (* Run a proc's pending action to its next serialization point.  [Start]
     (fresh fibers, including callcc bodies), [Resume] and [Raise] (throw)
     are control transfers WITHIN the slice — they are how the engine's
     trampoline works — so they are interpreted inline, not as decisions. *)
  let rec interp ~on_exn action =
    match action with
    | Engine.Start f -> interp ~on_exn (Engine.run_fiber ~on_exn f)
    | Engine.Resume (c, v) -> interp ~on_exn (Engine.resume c v)
    | Engine.Raise (c, e) -> interp ~on_exn (Engine.resume_exn c e)
    | Engine.Stop -> `Stop
    | A_point (op, kind, k) -> `Point (op, kind, k)
    | A_block (op, w, k) -> `Block (op, w, k)
    | _ -> raise Engine.Unhandled_action

  let exec_slice p =
    cur := p.id;
    p.yielded <- false;
    let action =
      match p.pending with
      | Some a -> a
      | None -> invalid_arg "Mp_check: scheduled a proc with nothing to run"
    in
    p.pending <- None;
    if p.state = Blocked then begin
      p.state <- Ready;
      p.wait <- None
    end;
    let on_exn e =
      if !failed = None then failed := Some e;
      Engine.Stop
    in
    match interp ~on_exn action with
    | `Stop -> p.state <- Free
    | `Point (op, kind, k) ->
        p.pending <- Some (Engine.Resume (k, ()));
        p.op <- op;
        p.state <- Ready;
        p.yielded <- kind = K_yield
    | `Block (op, w, k) ->
        p.pending <- Some (Engine.Resume (k, ()));
        p.op <- op;
        p.state <- Blocked;
        p.wait <- Some w

  let is_enabled p =
    match p.state with
    | Free -> false
    | Ready -> true
    | Blocked -> (
        match p.wait with
        | Some (W_lock l) -> not l.held
        | Some (W_pred f) -> f ()
        | None -> false)

  (* Enabled procs, restricted for fairness: while any non-yielded proc is
     enabled, procs whose last point was a yield (spin-wait pauses) are not
     offered — the CHESS fair-scheduler rule that keeps spin loops from
     generating unbounded schedules.  When only yielded procs remain they
     are all offered (someone has to run). *)
  let choice_set () =
    let en = ref [] in
    for i = n_procs - 1 downto 0 do
      if is_enabled procs.(i) then en := i :: !en
    done;
    match List.filter (fun i -> not procs.(i).yielded) !en with
    | [] -> Array.of_list !en
    | preferred -> Array.of_list preferred

  (* Non-preemptive default: keep running the previous proc while it can
     continue; otherwise round-robin to the next enabled proc.  Under this
     policy alone a run costs zero preemptions, so the preemption count of
     any explored schedule is exactly its number of forced switches. *)
  let default_choice choices =
    let prev = !last_chosen in
    let prev_continuable =
      prev >= 0 && procs.(prev).state = Ready && not procs.(prev).yielded
    in
    if prev_continuable && Array.exists (fun i -> i = prev) choices then prev
    else begin
      let best = ref (-1) in
      Array.iter
        (fun i -> if i > prev && (!best = -1 || i < !best) then best := i)
        choices;
      if !best >= 0 then !best else Array.fold_left min choices.(0) choices
    end

  let reset_run_state () =
    Array.iter
      (fun p ->
        p.state <- Free;
        p.pending <- None;
        p.wait <- None;
        p.datum <- D.initial;
        p.yielded <- false;
        p.op <- start_op)
      procs;
    List.iter (fun f -> f ()) !persistent_resets;
    run_ids := 1_000_000;
    Work.hook := (fun () -> ());
    cur := 0;
    nsteps := 0;
    failed := None;
    decisions_rev := [];
    preempts := 0;
    last_chosen := -1;
    truncated := false;
    sleep_now := 0;
    Hashtbl.reset fault_occ;
    n_acquire := 0

  let run f =
    if !running then invalid_arg "Mp_check.run: already running";
    reset_run_state ();
    running := true;
    let result = ref None in
    let p0 = procs.(0) in
    p0.state <- Ready;
    p0.pending <- Some (Engine.Start (fun () -> result := Some (f ())));
    p0.op <-
      Check_intf.desc "root.start" Check_intf.obj_global Check_intf.Global;
    Fun.protect
      ~finally:(fun () -> running := false)
      (fun () ->
        let rec loop () =
          if Option.is_some !failed then ()
          else begin
            let choices = choice_set () in
            if Array.length choices = 0 then begin
              if Proc.live_procs () > 0 then
                failed :=
                  Some
                    (Mp.Mp_intf.Deadlock
                       (Printf.sprintf
                          "mp_check: no enabled proc at decision %d (%d procs \
                           still live)"
                          !nsteps (Proc.live_procs ())))
            end
            else if !nsteps >= !current_max_steps then begin
              (if Sys.getenv_opt "MP_CHECK_DEBUG" <> None then
                 let tail =
                   List.filteri (fun i _ -> i < 24) !decisions_rev
                 in
                 List.iteri
                   (fun i d ->
                     Printf.eprintf "  -%02d p%d %s\n%!" i d.d_chosen d.d_op)
                   tail);
              truncated := true;
              failed := Some Truncated
            end
            else begin
              let default = default_choice choices in
              let chosen = !current_policy ~step:!nsteps ~choices ~default in
              (* a forced proc that is not enabled here (shrunk schedule
                 from a diverged universe) falls back to the default *)
              let chosen =
                if Array.exists (fun i -> i = chosen) choices then chosen
                else default
              in
              (* Sleep-set engagement (DPOR): from [current_sleep_from]
                 on, the default region may not schedule a sleeping proc
                 — running one reproduces a commuted permutation of an
                 already-explored trace.  Redirect to an awake choice; if
                 all are asleep the whole run is such a permutation, so
                 abort it as a prune.  The forced region (prefix + alt)
                 is exempt: the driver never forces a sleeping proc. *)
              if !nsteps = !current_sleep_from then
                sleep_now := !current_sleep0;
              let engaged = !nsteps >= !current_sleep_from in
              let chosen, sleep_blocked =
                if
                  engaged
                  && !nsteps > !current_sleep_from
                  && !sleep_now land (1 lsl chosen) <> 0
                then begin
                  let awake =
                    Array.of_seq
                      (Seq.filter
                         (fun i -> !sleep_now land (1 lsl i) = 0)
                         (Array.to_seq choices))
                  in
                  if Array.length awake = 0 then (chosen, true)
                  else (default_choice awake, false)
                end
                else (chosen, false)
              in
              if sleep_blocked then begin
                failed := Some Check_intf.Sleep_blocked;
                loop ()
              end
              else begin
                let prev = !last_chosen in
                let prev_continuable =
                  prev >= 0 && procs.(prev).state = Ready
                  && not procs.(prev).yielded
                in
                let od = procs.(chosen).op in
                decisions_rev :=
                  {
                    d_choices = choices;
                    d_chosen = chosen;
                    d_prev = prev;
                    d_prev_continuable = prev_continuable;
                    d_preempts_before = !preempts;
                    d_op = od.Check_intf.label;
                    d_obj = od.Check_intf.obj;
                    d_access = od.Check_intf.access;
                    d_sleep = (if engaged then !sleep_now else 0);
                    d_stutter =
                      Array.for_all (fun i -> procs.(i).yielded) choices;
                  }
                  :: !decisions_rev;
                if prev_continuable && chosen <> prev then incr preempts;
                last_chosen := chosen;
                incr nsteps;
                (try exec_slice procs.(chosen)
                 with e -> if !failed = None then failed := Some e);
                (* wake sleepers whose pending op depends on what just
                   ran: their next transition no longer commutes with
                   the trace, so scheduling them is a fresh schedule *)
                if engaged && !sleep_now <> 0 then
                  for q = 0 to n_procs - 1 do
                    if
                      !sleep_now land (1 lsl q) <> 0
                      && procs.(q).state <> Free
                      && Check_intf.depends od procs.(q).op
                    then sleep_now := !sleep_now land lnot (1 lsl q)
                  done;
                loop ()
              end
            end
          end
        in
        loop ();
        match (!failed, !result) with
        | Some e, _ -> raise e
        | None, Some v -> v
        | None, None ->
            raise
              (Mp.Mp_intf.Deadlock
                 "mp_check: all procs released without producing a result"))

  let stats () =
    let t = Mp.Stats.zero ~platform:name ~procs:n_procs in
    t.per_proc.(0).lock_spins <- !spins;
    Array.iteri (fun i w -> t.per_proc.(i).queue_wait <- w) Work.queue_wait;
    { t with elapsed = Work.now () }

  let reset_stats () =
    spins := 0;
    Array.fill Work.queue_wait 0 (Array.length Work.queue_wait) 0.

  (* ---- exploration drivers ------------------------------------------ *)

  module Explore = struct
    let decisions () = Array.of_list (List.rev !decisions_rev)

    let forced_policy forced : policy =
     fun ~step ~choices:_ ~default ->
      if step < Array.length forced then forced.(step) else default

    (* [body] is a scenario thunk that itself calls [run] exactly once. *)
    let run_one ~policy ?(sleep_from = max_int) ?(sleep0 = 0) ~faults
        ~max_steps body =
      decisions_rev := [];
      truncated := false;
      current_policy := policy;
      current_faults := faults;
      current_max_steps := max_steps;
      current_sleep_from := sleep_from;
      current_sleep0 := sleep0;
      let err = (try body (); None with e -> Some e) in
      current_policy := default_only;
      current_sleep_from := max_int;
      (err, decisions (), !truncated)

    let schedule_of ds = Array.to_list (Array.map (fun d -> d.d_chosen) ds)

    let trace_of ds =
      Array.to_list
        (Array.mapi
           (fun i d -> Obs.Event.Step { proc = d.d_chosen; clock = i; op = d.d_op })
           ds)

    (* Shrink a failing schedule: first bisect to a shortest failing
       prefix (the default-policy suffix usually reproduces), then drop
       single decisions to a fixpoint.  Every candidate is verified by
       replay before being adopted, so divergence under removal (forced
       choices reinterpreted positionally, with default fallback) can only
       cost us minimality, never soundness. *)
    let shrink ~faults ~max_steps body error0 schedule0 =
      let attempts = ref 0 in
      let budget = 400 in
      let last_fail = ref None in
      let fails sched =
        !attempts < budget
        && begin
             incr attempts;
             Obs.Counters.incr Check_intf.c_replays;
             let err, ds, _ =
               run_one
                 ~policy:(forced_policy (Array.of_list sched))
                 ~faults ~max_steps body
             in
             match err with
             | Some Truncated | None -> false
             | Some e ->
                 last_fail := Some (e, ds);
                 true
           end
      in
      let current = ref schedule0 in
      if fails [] then current := []
      else begin
        let arr = Array.of_list schedule0 in
        let lo = ref 0 and hi = ref (Array.length arr) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if fails (Array.to_list (Array.sub arr 0 mid)) then hi := mid
          else lo := mid + 1
        done;
        if !hi < Array.length arr then
          current := Array.to_list (Array.sub arr 0 !hi);
        let changed = ref true in
        while !changed && !attempts < budget do
          changed := false;
          let i = ref (List.length !current - 1) in
          while !i >= 0 && !attempts < budget do
            let cand = List.filteri (fun j _ -> j <> !i) !current in
            if fails cand then begin
              current := cand;
              changed := true
            end;
            decr i
          done
        done
      end;
      (* canonical replay of the minimum for its error and trace *)
      Obs.Counters.incr Check_intf.c_replays;
      let err, ds, _ =
        run_one
          ~policy:(forced_policy (Array.of_list !current))
          ~faults ~max_steps body
      in
      match err with
      | Some Truncated | None -> (
          match !last_fail with
          | Some (e, ds) -> (e, !current, trace_of ds)
          | None -> (error0, !current, trace_of ds))
      | Some e -> (e, !current, trace_of ds)

    (* Frontier items share the parent run's decision array instead of
       materializing a prefix list each: (base, split, alt) forces
       base.(0..split-1) then alt then the default policy.  Keeps the
       frontier O(1) words per pending schedule — the frontier for a
       branchy scenario holds hundreds of thousands of items. *)
    let policy_of base split alt : policy =
     fun ~step ~choices:_ ~default ->
      if step < split then base.(step)
      else if step = split && alt >= 0 then alt
      else default

    let steps_of ds =
      Array.map
        (fun d ->
          {
            Dpor.s_proc = d.d_chosen;
            s_label = d.d_op;
            s_obj = d.d_obj;
            s_access = d.d_access;
            s_choices = d.d_choices;
            s_stutter = d.d_stutter;
            s_preempts_before = d.d_preempts_before;
            s_prev = d.d_prev;
            s_prev_continuable = d.d_prev_continuable;
            s_sleep = d.d_sleep;
          })
        ds

    (* The instance-independent handle the DPOR driver works through:
       worker domains each build one over their own generative instance,
       so forced runs never share platform state across domains. *)
    let runner ?(faults = Check_intf.no_faults) ?(max_steps = 10_000) body =
      {
        Dpor.nprocs = n_procs;
        run_prefix =
          (fun ~prefix ~split ~alt ~sleep0 ->
            let err, ds, _ =
              run_one
                ~policy:(policy_of prefix split alt)
                ~sleep_from:split ~sleep0 ~faults ~max_steps body
            in
            let outcome =
              match err with
              | None -> Dpor.Ok_run
              | Some Truncated -> Dpor.Truncated_run
              | Some Check_intf.Sleep_blocked -> Dpor.Sleep_blocked_run
              | Some e -> Dpor.Failed_run e
            in
            { Dpor.outcome; steps = steps_of ds });
        shrink = (fun e sched -> shrink ~faults ~max_steps body e sched);
      }

    let dfs ?(bound = 2) ?(max_schedules = 20_000) ?(max_steps = 10_000)
        ?(faults = Check_intf.no_faults) ?(stop = fun () -> false)
        ?(dpor = false) body =
      if dpor then
        let r =
          Dpor.explore
            ~make_runner:(fun () -> runner ~faults ~max_steps body)
            ~jobs:1 ~bound ~max_schedules ~stop ()
        in
        {
          schedules = r.Dpor.r_schedules;
          truncated = r.Dpor.r_truncated;
          pruned = r.Dpor.r_pruned;
          capped = r.Dpor.r_capped;
          failure =
            Option.map
              (fun (error, schedule, trace) ->
                { error; schedule; seed = None; trace })
              r.Dpor.r_failure;
        }
      else begin
      let stack = ref [ ([||], 0, -1) ] in
      let schedules = ref 0 in
      let truncs = ref 0 in
      let capped = ref false in
      let failure = ref None in
      while Option.is_none !failure && !stack <> [] do
        match !stack with
        | [] -> ()
        | (base, split, alt) :: rest ->
            stack := rest;
            if !schedules >= max_schedules || stop () then begin
              capped := true;
              stack := []
            end
            else begin
              incr schedules;
              Obs.Counters.incr Check_intf.c_schedules;
              let forced_len = if alt < 0 then 0 else split + 1 in
              let err, ds, _ =
                run_one ~policy:(policy_of base split alt) ~faults ~max_steps
                  body
              in
              match err with
              | Some Truncated -> incr truncs
              | Some e ->
                  let error, schedule, trace =
                    shrink ~faults ~max_steps body e (schedule_of ds)
                  in
                  failure := Some { error; schedule; seed = None; trace }
              | None ->
                  (* Expand alternatives at decisions beyond the forced
                     prefix (earlier ones were expanded by ancestors).  An
                     alternative's preemption cost is the prefix's count
                     plus one iff taking it switches away from a proc that
                     could have continued. *)
                  let chosen = Array.map (fun d -> d.d_chosen) ds in
                  for i = Array.length ds - 1 downto forced_len do
                    let d = ds.(i) in
                    if not d.d_stutter then
                      Array.iter
                        (fun a ->
                          if a <> d.d_chosen then begin
                            let cost =
                              d.d_preempts_before
                              + if d.d_prev_continuable && a <> d.d_prev then 1
                                else 0
                            in
                            if cost <= bound then
                              stack := (chosen, i, a) :: !stack
                          end)
                        d.d_choices
                  done
            end
      done;
      {
        schedules = !schedules;
        truncated = !truncs;
        pruned = 0;
        capped = !capped;
        failure = !failure;
      }
      end

    let random ?seed ?(runs = 500) ?(max_steps = 10_000)
        ?(faults = Check_intf.no_faults) body =
      let base, runs =
        match Sys.getenv_opt "MP_CHECK_SEED" with
        | Some s -> (Sched_seed.of_string s, 1)
        | None ->
            ((match seed with Some s -> s | None -> Sched_seed.default), runs)
      in
      let failure = ref None in
      let truncs = ref 0 in
      let n = ref 0 in
      (try
         for i = 0 to runs - 1 do
           let rseed = Sched_seed.derive base i in
           let state = ref rseed in
           let policy : policy =
            fun ~step:_ ~choices ~default:_ ->
             choices.(Sched_seed.bounded state (Array.length choices))
           in
           incr n;
           Obs.Counters.incr Check_intf.c_schedules;
           let err, ds, _ = run_one ~policy ~faults ~max_steps body in
           match err with
           | None -> ()
           | Some Truncated -> incr truncs
           | Some e ->
               let error, schedule, trace =
                 shrink ~faults ~max_steps body e (schedule_of ds)
               in
               failure :=
                 Some
                   {
                     error;
                     schedule;
                     seed = Some (Sched_seed.to_string rseed);
                     trace;
                   };
               raise Exit
         done
       with Exit -> ());
      {
        schedules = !n;
        truncated = !truncs;
        pruned = 0;
        capped = false;
        failure = !failure;
      }

    let replay ~schedule ?(max_steps = 10_000) ?(faults = Check_intf.no_faults)
        body =
      Obs.Counters.incr Check_intf.c_replays;
      let err, ds, _ =
        run_one
          ~policy:(forced_policy (Array.of_list schedule))
          ~faults ~max_steps body
      in
      match err with
      | None | Some Truncated -> None
      | Some e ->
          Some { error = e; schedule; seed = None; trace = trace_of ds }
  end
end

module Int (C : sig
  val max_procs : int
end) () =
  Make (C) (Mp.Mp_intf.Int_datum)
