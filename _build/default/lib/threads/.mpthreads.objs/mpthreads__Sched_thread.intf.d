lib/threads/sched_thread.mli: Mp Thread_intf
