let pool_size = 64

module Make (P : Lock_intf.PRIMS) = struct
  module Hw = Tas_lock.Make (P)

  type mutex_lock = { id : int; mutable held : bool }

  let pool_size = pool_size
  let pool = Array.init pool_size (fun _ -> Hw.mutex_lock ())
  let next_id = P.make 0
  let holder_must_unlock = false
  let pool_index l = l.id mod pool_size

  let mutex_lock () =
    let id = P.fetch_and_add next_id 1 in
    { id; held = false }

  (* The software lock is a plain mutable bit; every access happens under the
     hardware lock that its id hashes to, exactly the SGI runtime's scheme. *)
  let with_hw l f =
    let hw = pool.(pool_index l) in
    Hw.lock hw;
    let v = f () in
    Hw.unlock hw;
    v

  let try_lock l =
    with_hw l (fun () ->
        if l.held then false
        else begin
          l.held <- true;
          true
        end)

  let lock l =
    while not (try_lock l) do
      P.on_spin ();
      P.pause ()
    done

  let unlock l = with_hw l (fun () -> l.held <- false)
  let locked l f = Lock_intf.locked_default ~lock ~unlock l f

end
