lib/locks/charged_prims.mli: Lock_intf Mp
