lib/queues/bounded_queue.mli:
