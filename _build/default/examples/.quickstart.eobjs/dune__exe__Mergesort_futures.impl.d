examples/mergesort_futures.ml: Array Mp Mpsync Mpthreads Printf Random Sim
