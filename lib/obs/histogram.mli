(** Constant-space log-bucketed latency histogram.

    Values (non-negative ints — nanoseconds or cycles by convention) below
    2{^sub_bits} land in exact unit buckets; above that each power-of-two
    range splits into [sub] = 2{^sub_bits} sub-buckets, bounding the relative
    width of any bucket — and therefore the error of any quantile read off a
    bucket bound — by 1/[sub] (6.25%).  The bucket array covers the whole
    non-negative int range, so a histogram's footprint is fixed (~1k cells)
    no matter how many values it absorbs: millions of simulated requests
    record in constant space.

    Cells are [Atomic], so concurrent recorders on the domains backend are
    safe; [merge] is a pointwise sum and hence associative and commutative,
    which keeps [Job_pool] fan-out deterministic: per-cell histograms merged
    in index order give bit-identical results for any [--jobs]. *)

type t

val sub : int
(** Sub-buckets per power of two (16). *)

val create : unit -> t
val add : t -> int -> unit
(** Record a value; negatives are clamped to 0. *)

val count : t -> int
val sum : t -> int
val min_value : t -> int
val max_value : t -> int
val mean : t -> float

val merge : t -> t -> t
(** Fresh histogram holding the pointwise sum; associative, commutative. *)

val merge_into : src:t -> dst:t -> unit

val quantile : t -> float -> int
(** [quantile t q] for q in [0,1]: inclusive upper bound of the bucket
    holding the rank-⌈q·count⌉ value, clamped to the recorded max — an
    overestimate of the exact order statistic by at most one bucket width
    (relative error ≤ 1/{!sub}).  0 when empty. *)

val quantile_bounds : t -> float -> int * int
(** [(lo, hi)] bracketing the exact order statistic: lo ≤ exact ≤ hi. *)

val reset : t -> unit

val nonzero_buckets : t -> (int * int) list
(** [(bucket_lower_bound, count)] for every non-empty bucket, ascending —
    a deterministic digest of the full distribution. *)

val to_json : t -> string
(** One JSON object: count/sum/min/max, p50/p95/p99/p999, and the
    [nonzero_buckets] list.  Deterministic. *)

(** {2 Named registry}

    Mirrors {!Counters}: find-or-create under a mutex, resolve handles once,
    [dump] sorted by name.  Each platform owns one (see
    [Mp_intf.TELEMETRY]). *)

type registry

val create_registry : unit -> registry
val histogram : registry -> string -> t
val find : registry -> string -> t option
val dump : registry -> (string * t) list
val reset_registry : registry -> unit
