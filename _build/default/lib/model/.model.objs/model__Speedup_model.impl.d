lib/model/speedup_model.ml:
