(** Test-and-test-and-set lock: spins on a plain read and only attempts the
    bus-locking exchange when the lock looks free, reducing the coherence
    traffic that the naive TAS spin generates (Anderson 1990, the paper's
    reference for "a more efficient spin"). *)

module Make (P : Lock_intf.PRIMS) : Lock_intf.LOCK_EXT
