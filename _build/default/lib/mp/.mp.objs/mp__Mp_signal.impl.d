lib/mp/mp_signal.ml: Array Atomic Mp_intf
