module Make (P : Lock_intf.PRIMS) = struct
  type mutex_lock = {
    flags : bool P.cell array; (* exactly one true flag: the grant token *)
    tail : int P.cell;
    holder_slot : int P.cell; (* slot of the current holder; written on acquire *)
  }

  let holder_must_unlock = true

  let mutex_lock_sized ~slots =
    if slots <= 0 then invalid_arg "Anderson_lock.mutex_lock_sized";
    {
      flags = Array.init slots (fun i -> P.make (i = 0));
      tail = P.make 0;
      holder_slot = P.make 0;
    }

  let mutex_lock () = mutex_lock_sized ~slots:64
  let slot l i = i mod Array.length l.flags

  let try_lock l =
    let t = P.get l.tail in
    if P.get l.flags.(slot l t) && P.compare_and_set l.tail t (t + 1) then begin
      P.set l.holder_slot (slot l t);
      true
    end
    else false

  let lock l =
    let my = slot l (P.fetch_and_add l.tail 1) in
    while not (P.get l.flags.(my)) do
      P.on_spin ();
      P.pause ()
    done;
    P.set l.holder_slot my

  let unlock l =
    let my = P.get l.holder_slot in
    P.set l.flags.(my) false;
    P.set l.flags.((my + 1) mod Array.length l.flags) true
  let locked l f = Lock_intf.locked_default ~lock ~unlock l f

end
