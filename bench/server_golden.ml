(* Golden-value generator for the open-loop server workload's determinism
   tests: one line per (sched, procs) cell of the default server config on
   the 16-proc Sequent model, digesting the virtual-time latency histogram
   (count, sum, p50/p95/p99/p999 in ns) plus elapsed/throughput.  Paste the
   GOLDEN lines into the table in test/test_server.ml when the pinned
   config changes; as with sim_golden, never update them to absorb a
   virtual-time change without understanding why the change is correct.

   Usage: dune exec bench/server_golden.exe [-- --jobs N]
   Cells run on private machine instances and print in grid order, so the
   output is identical for every N. *)

let digest (sched, procs) =
  let module M =
    Sim.Mp_sim.Int (struct
        let config =
          Sim.Sim_config.sequent ~procs:16
            ~sched:(Mpthreads.Sched_policy.to_string sched) ()
      end)
      ()
  in
  let module S = Workloads.Server.Make (M) in
  let r = S.run ~procs ~sched Workloads.Server.default in
  Printf.sprintf
    "GOLDEN server sched=%-12s procs=%-2d count=%d sum=%d p50=%d p95=%d \
     p99=%d p999=%d elapsed=%.9f tput=%.3f qwait=%.9f"
    (Mpthreads.Sched_policy.to_string sched)
    procs
    (Obs.Histogram.count r.Workloads.Server.hist)
    (Obs.Histogram.sum r.Workloads.Server.hist)
    r.Workloads.Server.p50 r.Workloads.Server.p95 r.Workloads.Server.p99
    r.Workloads.Server.p999 r.Workloads.Server.elapsed
    r.Workloads.Server.throughput r.Workloads.Server.queue_wait

let parse_jobs argv =
  let explicit = ref None in
  Array.iteri
    (fun i a ->
      if a = "--jobs" && i + 1 < Array.length argv then
        explicit := int_of_string_opt argv.(i + 1))
    argv;
  Exec.Job_pool.resolve_jobs !explicit

let () =
  let jobs = parse_jobs Sys.argv in
  let cells =
    List.concat_map
      (fun sched ->
        List.map (fun procs -> (sched, procs)) [ 1; 4; 16 ])
      Mpthreads.Sched_policy.[ Fifo; Distributed; Ws ]
  in
  List.iter print_endline (Exec.Job_pool.map ~jobs digest cells)
