(* Tests for the mp_check exploration harness (lib/check).

   The harness's own guarantees are what is under test here: exhaustive
   bound-2 exploration keeps every scenario in the corpus green, the
   deliberately broken lock is caught and shrunk to a short readable trace,
   forced schedules and printed seeds replay deterministically, and fault
   injection steers the platform the way the knobs promise. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module P = Mpcheck.Mp_check.Int (struct
  let max_procs = 2
end) ()

module S = Mpcheck.Scenarios.Make (P)

let broken_body = List.assoc "broken_tas" S.broken

let render_failure (f : Mpcheck.Mp_check.failure) =
  Format.asprintf "%a" Mpcheck.Mp_check.pp_failure f

(* ---- exhaustive exploration over the corpus --------------------------- *)

let test_all_scenarios_bound2 () =
  List.iter
    (fun (name, body) ->
      let r = P.Explore.dfs ~bound:2 ~max_schedules:30_000 body in
      (match r.Mpcheck.Mp_check.failure with
      | None -> ()
      | Some f ->
          Alcotest.failf "scenario %s failed:@.%s" name (render_failure f));
      checkb (name ^ ": not capped") false r.Mpcheck.Mp_check.capped;
      checki (name ^ ": no truncated runs") 0 r.Mpcheck.Mp_check.truncated;
      checkb (name ^ ": explored > 1 schedule") true
        (r.Mpcheck.Mp_check.schedules > 1))
    S.all

(* ---- the self-test: a broken lock must be caught ---------------------- *)

let test_broken_tas_caught () =
  let r = P.Explore.dfs ~bound:2 ~max_schedules:30_000 broken_body in
  match r.Mpcheck.Mp_check.failure with
  | None -> Alcotest.fail "broken TAS not caught at bound 2"
  | Some f ->
      checkb "shrunk schedule is short" true
        (List.length f.Mpcheck.Mp_check.schedule <= 40);
      checkb "trace is non-empty" true (f.Mpcheck.Mp_check.trace <> []);
      (* the rendered counterexample names the racy operations *)
      let s = render_failure f in
      let mentions sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      checkb "trace shows cell ops" true (mentions "cell.")

let test_deadlock_detected () =
  let body () =
    P.run (fun () ->
        let a = P.Lock.mutex_lock () and b = P.Lock.mutex_lock () in
        P.spawn (fun () ->
            P.Lock.lock a;
            P.Work.poll ();
            P.Lock.lock b;
            P.Lock.unlock b;
            P.Lock.unlock a);
        P.Lock.lock b;
        P.Work.poll ();
        P.Lock.lock a;
        P.Lock.unlock a;
        P.Lock.unlock b;
        P.Work.idle_until ~ready:(fun () -> P.Proc.live_procs () = 1))
  in
  let r = P.Explore.dfs ~bound:2 ~max_schedules:30_000 body in
  match r.Mpcheck.Mp_check.failure with
  | Some { error = Mp.Mp_intf.Deadlock _; _ } -> ()
  | Some f ->
      Alcotest.failf "expected Deadlock, got:@.%s" (render_failure f)
  | None -> Alcotest.fail "AB-BA deadlock not detected"

(* ---- deterministic replay --------------------------------------------- *)

let test_replay_deterministic () =
  let r = P.Explore.dfs ~bound:2 ~max_schedules:30_000 broken_body in
  let f =
    match r.Mpcheck.Mp_check.failure with
    | Some f -> f
    | None -> Alcotest.fail "broken TAS not caught"
  in
  let sched = f.Mpcheck.Mp_check.schedule in
  let replay () =
    match P.Explore.replay ~schedule:sched broken_body with
    | Some f -> render_failure f
    | None -> Alcotest.fail "shrunk schedule did not replay to a failure"
  in
  let a = replay () and b = replay () in
  check Alcotest.string "two replays render identically" a b

(* ---- random mode and seed replay -------------------------------------- *)

let test_random_finds_broken_tas () =
  let r =
    P.Explore.random ~seed:Mpcheck.Sched_seed.default ~runs:3_000 broken_body
  in
  let f =
    match r.Mpcheck.Mp_check.failure with
    | Some f -> f
    | None -> Alcotest.fail "random fuzzing (3000 runs) missed the broken TAS"
  in
  let seed =
    match f.Mpcheck.Mp_check.seed with
    | Some s -> s
    | None -> Alcotest.fail "random failure carries no seed"
  in
  (* the printed seed replays to a failure in a single run *)
  let r2 =
    P.Explore.random ~seed:(Mpcheck.Sched_seed.of_string seed) ~runs:1
      broken_body
  in
  checkb "seed replays the failure" true
    (r2.Mpcheck.Mp_check.failure <> None);
  checki "replay is a single run" 1 r2.Mpcheck.Mp_check.schedules;
  (* MP_CHECK_SEED overrides the programmatic seed and forces one run.
     putenv cannot be undone, so this stays the last random-mode check. *)
  Unix.putenv "MP_CHECK_SEED" seed;
  let r3 = P.Explore.random ~runs:500 broken_body in
  Unix.putenv "MP_CHECK_SEED" "";
  checkb "MP_CHECK_SEED replays the failure" true
    (r3.Mpcheck.Mp_check.failure <> None);
  checki "MP_CHECK_SEED forces a single run" 1 r3.Mpcheck.Mp_check.schedules

(* ---- fault injection -------------------------------------------------- *)

let test_fault_acquire () =
  let body () =
    P.run (fun () ->
        match P.spawn (fun () -> ()) with
        | () -> failwith "expected No_More_Procs from fault injection"
        | exception Mp.Mp_intf.No_More_Procs -> ())
  in
  let faults =
    { Mpcheck.Check_intf.no_faults with fail_acquire_at = Some 1 }
  in
  let r = P.Explore.dfs ~bound:1 ~max_schedules:1_000 ~faults body in
  (match r.Mpcheck.Mp_check.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "acquire fault not injected:@.%s" (render_failure f));
  (* without the fault the same body must fail (spawn succeeds) *)
  let r2 = P.Explore.dfs ~bound:1 ~max_schedules:1_000 body in
  checkb "body fails when no fault is injected" true
    (r2.Mpcheck.Mp_check.failure <> None)

let test_fault_try_lock () =
  let body () =
    P.run (fun () ->
        let l = P.Lock.mutex_lock () in
        if P.Lock.try_lock l then
          failwith "try_lock succeeded under 100% fault injection")
  in
  let faults =
    { Mpcheck.Check_intf.no_faults with try_lock_fail_pct = 100 }
  in
  let r = P.Explore.dfs ~bound:1 ~max_schedules:1_000 ~faults body in
  (match r.Mpcheck.Mp_check.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "try_lock fault not injected:@.%s" (render_failure f));
  let r2 = P.Explore.dfs ~bound:1 ~max_schedules:1_000 body in
  checkb "try_lock succeeds when no fault is injected" true
    (r2.Mpcheck.Mp_check.failure <> None)

(* ---- a wider platform instance ---------------------------------------- *)

module P3 = Mpcheck.Mp_check.Int (struct
  let max_procs = 3
end) ()

let test_three_procs_mutex () =
  let body () =
    P3.run (fun () ->
        let l = P3.Lock.mutex_lock () in
        let in_cs = ref 0 and overlap = ref false in
        let crit () =
          P3.Lock.lock l;
          incr in_cs;
          if !in_cs > 1 then overlap := true;
          P3.Work.poll ();
          decr in_cs;
          P3.Lock.unlock l
        in
        P3.spawn crit;
        P3.spawn crit;
        crit ();
        P3.Work.idle_until ~ready:(fun () -> P3.Proc.live_procs () = 1);
        if !overlap then failwith "three procs overlapped in the critical section")
  in
  let r = P3.Explore.dfs ~bound:1 ~max_schedules:30_000 body in
  (match r.Mpcheck.Mp_check.failure with
  | None -> ()
  | Some f -> Alcotest.failf "3-proc mutex failed:@.%s" (render_failure f));
  checkb "3-proc space explored without cap" false r.Mpcheck.Mp_check.capped

let () =
  Alcotest.run "check"
    [
      ( "dfs",
        [
          Alcotest.test_case "all scenarios green at bound 2" `Slow
            test_all_scenarios_bound2;
          Alcotest.test_case "broken TAS caught and shrunk" `Quick
            test_broken_tas_caught;
          Alcotest.test_case "AB-BA deadlock detected" `Quick
            test_deadlock_detected;
        ] );
      ( "replay",
        [
          Alcotest.test_case "forced schedule replays deterministically"
            `Quick test_replay_deterministic;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fail_acquire_at injects No_More_Procs" `Quick
            test_fault_acquire;
          Alcotest.test_case "try_lock_fail_pct=100 starves try_lock" `Quick
            test_fault_try_lock;
        ] );
      ( "procs3",
        [
          Alcotest.test_case "3-proc mutual exclusion at bound 1" `Quick
            test_three_procs_mutex;
        ] );
      ( "random",
        [
          Alcotest.test_case "fuzzing finds the broken TAS; seed replays"
            `Quick test_random_finds_broken_tas;
        ] );
    ]
