(** ML Threads — the Cooper–Morrisett package (CMU-CS-90-186) that the
    paper reports was rebuilt over MP: "MP has been used to build an
    enhanced and portable version of ML Threads".

    The historical interface: [fork] returns a thread handle, threads end
    by returning or calling [exit]; mutexes with [acquire]/[try_acquire]/
    [release]; condition variables with [wait]/[signal]/[broadcast].
    There is no join — rendezvous is built from mutexes and conditions (or
    see {!Mpsync.Sync}). *)

module Make (P : Mp.Mp_intf.PLATFORM_INT) (S : Thread_intf.SCHED) : sig
  type thread

  val fork : (unit -> unit) -> thread
  val exit : unit -> 'a
  (** Terminate the calling thread immediately.  Never returns. *)

  val yield : unit -> unit
  val self : unit -> thread
  val equal : thread -> thread -> bool
  val id : thread -> int

  type mutex

  val mutex : unit -> mutex

  val acquire : mutex -> unit
  (** Block (not spin) until the mutex is owned by the calling thread. *)

  val try_acquire : mutex -> bool
  val release : mutex -> unit
  val with_mutex : mutex -> (unit -> 'a) -> 'a

  type condition

  val condition : unit -> condition

  val wait : condition * mutex -> unit
  (** Atomically release the mutex and wait; re-acquires before returning
      (re-check the predicate). *)

  val signal : condition -> unit
  val broadcast : condition -> unit
end
