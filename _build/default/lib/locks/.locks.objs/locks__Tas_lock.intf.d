lib/locks/tas_lock.mli: Lock_intf
