(** Bounded ring buffer retaining the most recent [capacity] items.

    Allocation-free on the record path (one preallocated slot array; the
    [Some] boxes are the only per-record cost).  Single-writer: each
    telemetry stream owns one ring, so concurrent emitters never share a
    ring (see {!Telemetry}). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int
val record : 'a t -> 'a -> unit
val clear : 'a t -> unit

val items : 'a t -> 'a list
(** Oldest first; at most [capacity] most recent items. *)

val iter : 'a t -> ('a -> unit) -> unit

val length : 'a t -> int
(** Items currently retained. *)

val total_recorded : 'a t -> int
(** Items recorded since the last {!clear}, including overwritten ones. *)
