type 'a t = {
  ring : 'a option array;
  mutable next : int; (* ring index of the next write *)
  mutable total : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Obs.Ring.create";
  { ring = Array.make capacity None; next = 0; total = 0 }

let capacity t = Array.length t.ring

let record t x =
  t.ring.(t.next) <- Some x;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.total <- 0

let length t = min t.total (Array.length t.ring)
let total_recorded t = t.total

let items t =
  let cap = Array.length t.ring in
  let n = length t in
  let start = (t.next - n + cap) mod cap in
  List.init n (fun i ->
      match t.ring.((start + i) mod cap) with
      | Some x -> x
      | None -> assert false)

let iter t f = List.iter f (items t)
