examples/bank.ml: List Mp Mpthreads Printf
