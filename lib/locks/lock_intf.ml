(** Interfaces for the lock-algorithm collection.

    Every algorithm is a functor over [PRIMS], the handful of atomic memory
    operations the paper's §5 identifies as the machine-dependent core of
    [Lock] (atomic exchange on the 88100/Sequent, hardware lock registers on
    the SGI).  Instantiating with {!Atomic_prims} gives real locks over
    [Stdlib.Atomic]; the simulator instantiates the same algorithm text with
    charged, virtual-time primitives, so contention behaviour can be studied
    deterministically. *)

module type PRIMS = sig
  type 'a cell

  val make : 'a -> 'a cell
  val get : 'a cell -> 'a
  val set : 'a cell -> 'a -> unit
  val exchange : 'a cell -> 'a -> 'a
  val compare_and_set : 'a cell -> 'a -> 'a -> bool
  val fetch_and_add : int cell -> int -> int

  val pause : unit -> unit
  (** One spin-wait iteration. *)

  val pause_n : int -> unit
  (** Backoff pause of [n] units. *)

  val on_spin : unit -> unit
  (** Account one failed acquisition attempt (contention statistics). *)
end

(** Default [LOCK.locked]: plain acquire/section/release.  The algorithms
    in this collection have no cheaper fused episode (unlike the simulator's
    platform lock), so they all delegate here. *)
let locked_default ~lock ~unlock l f =
  lock l;
  match f () with
  | v ->
      unlock l;
      v
  | exception e ->
      unlock l;
      raise e

(** The paper's [LOCK] plus introspection used by tests and benches. *)
module type LOCK_EXT = sig
  include Mp.Mp_intf.LOCK

  val holder_must_unlock : bool
  (** [false] for the paper-conformant locks (any proc may [unlock]); [true]
      for the queue locks (ticket/Anderson/CLH), which hand the lock to the
      next waiter and therefore assume the releasing proc is the holder. *)
end

(** Atomic primitives over [Stdlib.Atomic] with a global spin counter. *)
module Atomic_prims : sig
  include PRIMS

  val spin_count : unit -> int
  val reset_spin_count : unit -> unit
end = struct
  type 'a cell = 'a Atomic.t

  let make = Atomic.make
  let get = Atomic.get
  let set = Atomic.set
  let exchange = Atomic.exchange
  let compare_and_set = Atomic.compare_and_set
  let fetch_and_add = Atomic.fetch_and_add
  let pause () = Domain.cpu_relax ()

  let pause_n n =
    for _ = 1 to n do
      Domain.cpu_relax ()
    done

  let spins = Atomic.make 0
  let on_spin () = Atomic.incr spins
  let spin_count () = Atomic.get spins
  let reset_spin_count () = Atomic.set spins 0
end

(** Atomic primitives for a real backend whose contention statistics flow
    into the platform's telemetry registry (under ["lock.prims_spins"],
    like the charged simulator primitives), so spin counts from the
    lock-algorithm collection surface uniformly across backends.  The
    operations themselves are plain [Stdlib.Atomic] — no virtual-time
    charging. *)
module Platform_prims (P : Mp.Mp_intf.PLATFORM) : sig
  include PRIMS

  val spin_count : unit -> int
  val reset_spin_count : unit -> unit
end = struct
  type 'a cell = 'a Atomic.t

  let make = Atomic.make
  let get = Atomic.get
  let set = Atomic.set
  let exchange = Atomic.exchange
  let compare_and_set = Atomic.compare_and_set
  let fetch_and_add = Atomic.fetch_and_add
  let pause () = Domain.cpu_relax ()

  let pause_n n =
    for _ = 1 to n do
      Domain.cpu_relax ()
    done

  let spins = Atomic.make 0
  let c_spins = P.Telemetry.counter "lock.prims_spins"

  let on_spin () =
    Atomic.incr spins;
    Obs.Counters.incr c_spins

  let spin_count () = Atomic.get spins
  let reset_spin_count () = Atomic.set spins 0
end
