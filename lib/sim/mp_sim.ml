open Mp

(* Scheduler directive: the suspend body has already re-queued (or freed)
   the current proc; return control to the simulation loop. *)
type Engine.action += A_yield

module Make
    (C : sig
      val config : Sim_config.t
    end)
    (D : Mp.Mp_intf.DATUM) =
struct
  let config = C.config
  let name = "sim:" ^ config.name

  module Kont = struct
    type 'a cont = 'a Engine.cont

    let callcc = Engine.callcc
    let throw = Engine.throw
    let throw_exn = Engine.throw_exn
  end

  type pstate =
    | Free
    | Ready of Engine.action
    | Current
    | Gc_waiting of Engine.action

  type sproc = {
    id : int;
    mutable clock : int;
    mutable state : pstate;
    mutable datum : D.t;
    mutable busy : int;
    mutable idle : int;
    mutable gc_wait : int;
    mutable spins : int;
    mutable alloc_words : int;
    mutable ran_ahead : int;
        (* cycles accumulated inline (run-ahead fast path) since the last
           real suspension; flushed to the trace when the proc suspends *)
  }

  let fresh_proc id =
    {
      id;
      clock = 0;
      state = Free;
      datum = D.initial;
      busy = 0;
      idle = 0;
      gc_wait = 0;
      spins = 0;
      alloc_words = 0;
      ran_ahead = 0;
    }

  let procs = Array.init config.procs fresh_proc

  (* Ready procs, keyed (clock, id): the scheduler pops the minimum instead
     of scanning all procs.  Invariant: a proc is in the heap iff its state
     is [Ready _]. *)
  let ready = Ready_heap.create ~ids:config.procs ~dummy:procs.(0)
  let current = ref 0
  let cur () = procs.(!current)
  let bus_free_at = ref 0
  let bus_busy = ref 0
  let bus_total_bytes = ref 0
  let region_used = ref 0
  let gc_pending = ref false
  let gc_count = ref 0
  let gc_cycles_total = ref 0
  let max_clock = ref 0
  let sched_decisions_ct = ref 0
  let coalesced_ct = ref 0
  let lock_acquires_ct = ref 0
  let susp_at_start = ref 0
  let escaped : exn option ref = ref None
  let poll_hook = ref (fun () -> ())
  let running = ref false
  let trace : Sim_trace.t option ref = ref None

  module Telemetry = Mp_intf.Telemetry_of (struct
    (* Single stream: the simulator multiplexes every proc over one domain,
       so emission is already serialized.  Timestamps are the current
       proc's virtual clock, keeping traces deterministic. *)
    let handle =
      Obs.Telemetry.create
        ~stream_of:(fun () -> 0)
        ~now_ts:(fun () -> (cur ()).clock)
        ()
  end)

  (* Events flow both to the legacy [Machine.enable_trace] ring and to the
     platform's telemetry capability; construction at every emit site is
     guarded by [tracing] so a quiet run allocates no events, charges no
     virtual time and takes no extra suspensions. *)
  let tracing () = !trace <> None || Telemetry.enabled ()

  let trace_event e =
    (match !trace with Some t -> Sim_trace.record t e | None -> ());
    Telemetry.emit e

  let observe_clock n = if n > !max_clock then max_clock := n

  (* Real-time watchdog for debugging client deadlocks: dump proc states if
     the simulation makes this many scheduling decisions without finishing. *)
  let debug_iterations =
    match Sys.getenv_opt "MP_SIM_DEBUG_ITERS" with
    | Some v -> int_of_string_opt v
    | None -> None

  (* The watchdog counts scheduling decisions, so when it is armed every
     charge must go through the scheduler. *)
  let run_ahead_enabled = config.run_ahead && debug_iterations = None

  (* ------------------------------------------------------------------ *)
  (* Ready-set maintenance.                                             *)
  (* ------------------------------------------------------------------ *)

  let check_heap () =
    if config.heap_debug then assert (Ready_heap.valid ready)

  (* A suspension flushes any run-ahead accumulation: later inline charges
     belong to the next dispatch. *)
  let flush_run_ahead p =
    if p.ran_ahead > 0 then begin
      if tracing () then
        trace_event
          (Sim_trace.Coalesced
             { proc = p.id; clock = p.clock; cycles = p.ran_ahead });
      p.ran_ahead <- 0
    end

  let set_ready p a =
    flush_run_ahead p;
    p.state <- Ready a;
    Ready_heap.push ready ~clock:p.clock ~id:p.id p;
    check_heap ()

  (* ------------------------------------------------------------------ *)
  (* Fiber-side charging primitives.                                    *)
  (* ------------------------------------------------------------------ *)

  let yield_ready p c =
    set_ready p (Engine.Resume (c, ()));
    A_yield

  (* Run-ahead fast path.  [inline_charge p ~cpu ~bytes ~idle] advances [p]
     past [cpu] cycles of work followed by a [bytes]-byte bus transfer
     (0 = none) without suspending, and returns [true], exactly when the
     scheduler would hand control straight back to [p] anyway: no GC is
     pending and [p]'s post-charge (clock, id) key still precedes every
     ready proc's key.  In that case the suspend/dispatch round-trip it
     skips is a virtual-time no-op, so results are bit-identical to the
     always-suspend scheduler; all accounting below mirrors the slow path
     ([charge_busy]/[charge_idle] + [bus_transfer]) term for term. *)
  let inline_charge p ~cpu ~bytes ~idle =
    run_ahead_enabled
    && (not !gc_pending)
    (* Early out on a lower bound of the post-charge clock before any bus
       arithmetic: the key is monotone in the clock, so failing here means
       the exact check below would fail too.  This keeps the cost of a
       failed attempt (the common case under multi-proc contention) to a
       few integer compares. *)
    && Ready_heap.precedes_min ready
         ~clock:(if bytes = 0 then p.clock + cpu else p.clock + cpu + 1)
         ~id:p.id
    &&
    let dur =
      if bytes = 0 then 0
      else
        max 1 (int_of_float (float_of_int bytes /. config.bus_bytes_per_cycle))
    in
    let start =
      if bytes = 0 then p.clock + cpu else max (p.clock + cpu) !bus_free_at
    in
    let clock' = start + dur in
    let total = clock' - p.clock in
    p.ran_ahead + total <= config.run_ahead_window
    && (bytes = 0 || Ready_heap.precedes_min ready ~clock:clock' ~id:p.id)
    && begin
         p.clock <- clock';
         if idle then p.idle <- p.idle + total else p.busy <- p.busy + total;
         if bytes > 0 then begin
           bus_free_at := clock';
           bus_busy := !bus_busy + dur;
           bus_total_bytes := !bus_total_bytes + bytes
         end;
         p.ran_ahead <- p.ran_ahead + total;
         incr coalesced_ct;
         observe_clock clock';
         true
       end

  let charge_busy n =
    if n > 0 then begin
      let p = cur () in
      if not (inline_charge p ~cpu:n ~bytes:0 ~idle:false) then
        Engine.suspend (fun c ->
            p.clock <- p.clock + n;
            p.busy <- p.busy + n;
            observe_clock p.clock;
            yield_ready p c)
    end

  let charge_idle n =
    if n > 0 then begin
      let p = cur () in
      if not (inline_charge p ~cpu:n ~bytes:0 ~idle:true) then
        Engine.suspend (fun c ->
            p.clock <- p.clock + n;
            p.idle <- p.idle + n;
            observe_clock p.clock;
            yield_ready p c)
    end

  (* FCFS shared bus: runs inside a suspend body, advances [p] past the end
     of its transfer.  Queueing stall counts as busy time (the proc is
     stalled on memory, not idle). *)
  let bus_transfer p bytes =
    let dur =
      max 1 (int_of_float (float_of_int bytes /. config.bus_bytes_per_cycle))
    in
    let start = max p.clock !bus_free_at in
    let stall = start - p.clock in
    p.clock <- start + dur;
    p.busy <- p.busy + stall + dur;
    bus_free_at := p.clock;
    bus_busy := !bus_busy + dur;
    bus_total_bytes := !bus_total_bytes + bytes;
    observe_clock p.clock

  (* Allocation is spread over the computation it belongs to: one suspend
     per small slice, so bus occupancy interleaves with other procs instead
     of arriving as one long FCFS burst. *)
  let alloc_slice_words = 256

  let alloc_one_slice words =
    if words > 0 then begin
      let p = cur () in
      let cpu =
        int_of_float (config.alloc_cycles_per_word *. float_of_int words)
      in
      (* Fast path additionally requires that this slice does not fill the
         allocation region: a GC trigger must park the proc. *)
      if
        !region_used + words < config.gc_region_words
        && inline_charge p ~cpu ~bytes:(words * config.word_bytes) ~idle:false
      then begin
        p.alloc_words <- p.alloc_words + words;
        region_used := !region_used + words
      end
      else
        Engine.suspend (fun c ->
            p.clock <- p.clock + cpu;
            p.busy <- p.busy + cpu;
            bus_transfer p (words * config.word_bytes);
            p.alloc_words <- p.alloc_words + words;
            region_used := !region_used + words;
            if !region_used >= config.gc_region_words then gc_pending := true;
            yield_ready p c)
    end

  let alloc_impl words =
    let remaining = ref words in
    while !remaining > 0 do
      let slice = min !remaining alloc_slice_words in
      alloc_one_slice slice;
      remaining := !remaining - slice
    done

  (* ------------------------------------------------------------------ *)
  (* Simulation loop.                                                    *)
  (* ------------------------------------------------------------------ *)

  let on_exn e =
    if !escaped = None then escaped := Some e;
    Engine.Stop

  let exec_action = function
    | Engine.Resume (c, v) -> Engine.resume c v
    | Engine.Raise (c, e) -> Engine.resume_exn c e
    | Engine.Start f -> Engine.run_fiber ~on_exn f
    | _ -> raise Engine.Unhandled_action

  (* Run one proc from its pending action until it yields back. *)
  let interp p action =
    let a = ref action in
    let live = ref true in
    while !live do
      match !a with
      | Engine.Stop ->
          p.state <- Free;
          live := false
      | A_yield -> live := false
      | other -> a := exec_action other
    done

  let run_gc () =
    let gc_started_region = !region_used in
    let gc_start =
      Array.fold_left
        (fun acc p ->
          match p.state with Gc_waiting _ -> max acc p.clock | _ -> acc)
        0 procs
    in
    let copied =
      int_of_float (config.gc_survival *. float_of_int !region_used)
    in
    let waiters =
      Array.fold_left
        (fun acc p -> match p.state with Gc_waiting _ -> acc + 1 | _ -> acc)
        0 procs
    in
    let par = Float.min config.gc_parallelism (float_of_int (max 1 waiters)) in
    let dur =
      config.gc_fixed_cycles
      + int_of_float (config.gc_cycles_per_word *. float_of_int copied /. par)
    in
    let finish = gc_start + dur in
    if tracing () then
      trace_event
        (Sim_trace.Gc_start { clock = gc_start; region_words = gc_started_region });
    (* Release before clearing gc_pending so [set_ready]'s heap pushes see a
       consistent world; clocks all equal [finish], so dispatch order among
       the released procs is by id, as with the scan. *)
    Array.iter
      (fun p ->
        match p.state with
        | Gc_waiting pending ->
            p.gc_wait <- p.gc_wait + (finish - p.clock);
            p.clock <- finish;
            set_ready p pending
        | Free | Ready _ | Current -> ())
      procs;
    observe_clock finish;
    if tracing () then
      trace_event (Sim_trace.Gc_end { clock = finish; duration = dur });
    gc_cycles_total := !gc_cycles_total + dur;
    incr gc_count;
    region_used := 0;
    gc_pending := false

  let any_gc_waiting () =
    Array.exists (fun p -> match p.state with Gc_waiting _ -> true | _ -> false) procs

  let iter_count = ref 0

  let dump_states () =
    let b = Buffer.create 256 in
    Array.iter
      (fun p ->
        Buffer.add_string b
          (Printf.sprintf "proc %d clock=%d state=%s\n" p.id p.clock
             (match p.state with
             | Free -> "Free"
             | Ready _ -> "Ready"
             | Current -> "Current"
             | Gc_waiting _ -> "Gc_waiting")))
      procs;
    Buffer.add_string b
      (Printf.sprintf "region=%d gc_pending=%b bus_free_at=%d\n" !region_used
         !gc_pending !bus_free_at);
    Buffer.contents b

  let rec loop () =
    (match debug_iterations with
    | Some n ->
        incr iter_count;
        if !iter_count mod n = 0 then
          prerr_string (Printf.sprintf "[sim after %d decisions]\n%s" !iter_count (dump_states ()))
    | None -> ());
    if not (Ready_heap.is_empty ready) then begin
        let p = Ready_heap.pop_unchecked ready in
        check_heap ();
        if !gc_pending then begin
          (* Park ready procs at the barrier in min-clock order, exactly as
             the scan did, until none remain and the collection can run. *)
          (match p.state with
          | Ready a -> p.state <- Gc_waiting a
          | Free | Current | Gc_waiting _ -> assert false);
          loop ()
        end
        else begin
          let a = match p.state with Ready a -> a | _ -> assert false in
          incr sched_decisions_ct;
          p.state <- Current;
          current := p.id;
          (if tracing () then
             trace_event (Sim_trace.Dispatch { proc = p.id; clock = p.clock }));
          interp p a;
          (if tracing () && p.state = Free then
             trace_event (Sim_trace.Freed { proc = p.id; clock = p.clock }));
          loop ()
        end
    end
    else if any_gc_waiting () then begin
      (* Barrier complete: every non-free proc is parked at a clean
         point.  (Also reached when gc_pending was consumed but stragglers
         remain parked — run_gc releases them.) *)
      run_gc ();
      loop ()
    end
    (* else: all procs free — simulation over *)

  (* ------------------------------------------------------------------ *)
  (* Platform interface.                                                 *)
  (* ------------------------------------------------------------------ *)

  module Proc = struct
    type proc_datum = D.t
    type proc_state = PS of unit Engine.cont * proc_datum

    exception No_More_Procs = Mp_intf.No_More_Procs

    let acquire_proc (PS (cont, datum)) =
      let ok =
        Engine.suspend (fun c ->
            let p = cur () in
            p.clock <- p.clock + config.acquire_proc_cycles;
            p.busy <- p.busy + config.acquire_proc_cycles;
            observe_clock p.clock;
            let free = Array.find_opt (fun q -> q.state = Free && q.id <> p.id) procs in
            match free with
            | Some q ->
                q.datum <- datum;
                let start = max q.clock p.clock in
                q.idle <- q.idle + (start - q.clock);
                q.clock <- start;
                set_ready q (Engine.Resume (cont, ()));
                if tracing () then
                  trace_event
                    (Sim_trace.Acquired { proc = q.id; by = p.id; clock = p.clock });
                set_ready p (Engine.Resume (c, true));
                A_yield
            | None ->
                set_ready p (Engine.Resume (c, false));
                A_yield)
      in
      if not ok then raise No_More_Procs

    let release_proc () =
      Engine.suspend (fun _ ->
          let p = cur () in
          flush_run_ahead p;
          p.state <- Free;
          A_yield)

    let initial_datum = D.initial
    let get_datum () = (cur ()).datum
    let set_datum d = (cur ()).datum <- d
    let self () = !current
    let max_procs () = config.procs

    let live_procs () =
      Array.fold_left
        (fun acc p -> if p.state = Free then acc else acc + 1)
        0 procs
  end

  module Lock = struct
    type mutex_lock = { mutable held : bool }

    let mutex_lock () = { held = false }

    (* Charge the probe first (a suspension point), then test-and-set with
       no intervening suspension — atomic in virtual time.  When the
       run-ahead probe says the proc would be re-dispatched immediately, no
       other proc can run between charge and test either way, so the
       inline charge preserves the same atomicity. *)
    let try_lock l =
      let p = cur () in
      if
        not
          (inline_charge p ~cpu:config.try_lock_cycles
             ~bytes:config.lock_bus_bytes ~idle:false)
      then
        Engine.suspend (fun c ->
            p.clock <- p.clock + config.try_lock_cycles;
            p.busy <- p.busy + config.try_lock_cycles;
            bus_transfer p config.lock_bus_bytes;
            yield_ready p c);
      if l.held then begin
        (cur ()).spins <- (cur ()).spins + 1;
        false
      end
      else begin
        l.held <- true;
        incr lock_acquires_ct;
        (if tracing () then
           let q = cur () in
           trace_event (Sim_trace.Lock_acquired { proc = q.id; clock = q.clock }));
        true
      end

    (* Deterministic per-proc, per-attempt jitter on the retry delay breaks
       the phase-locking that a fixed period can produce under the
       deterministic min-clock scheduler (a spinning proc could otherwise
       probe forever exactly inside other procs' hold windows).  The
       multipliers and modulus are Sim_config knobs for backoff
       experiments. *)
    let lock l =
      let attempt = ref 0 in
      while not (try_lock l) do
        incr attempt;
        charge_busy
          (config.spin_retry_cycles
          + (((!current * config.spin_jitter_proc)
             + (!attempt * config.spin_jitter_attempt))
            mod config.spin_jitter_mod))
      done;
      if !attempt > 0 && tracing () then
        let q = cur () in
        trace_event
          (Sim_trace.Lock_contended
             { proc = q.id; clock = q.clock; spins = !attempt })

    let unlock l =
      let p = cur () in
      if
        not
          (inline_charge p ~cpu:config.unlock_cycles
             ~bytes:config.lock_bus_bytes ~idle:false)
      then
        Engine.suspend (fun c ->
            p.clock <- p.clock + config.unlock_cycles;
            p.busy <- p.busy + config.unlock_cycles;
            bus_transfer p config.lock_bus_bytes;
            yield_ready p c);
      l.held <- false
  end

  module Work = struct
    let charge n = charge_busy n
    let alloc ~words = alloc_impl words

    let traffic ~bytes =
      if bytes > 0 then begin
        let p = cur () in
        if not (inline_charge p ~cpu:0 ~bytes ~idle:false) then
          Engine.suspend (fun c ->
              bus_transfer p bytes;
              yield_ready p c)
      end

    (* Interleave compute and allocation slices so the generated bus
       traffic is spread across the work, as real allocation is. *)
    let step ?alloc_words ~instrs () =
      let words =
        match alloc_words with Some w -> w | None -> instrs / 5
      in
      let cycles = int_of_float (float_of_int instrs *. config.cpi) in
      let slices = max 1 ((words + alloc_slice_words - 1) / alloc_slice_words) in
      let cyc_per = cycles / slices and w_per = words / slices in
      for i = 1 to slices do
        charge_busy (if i = 1 then cycles - (cyc_per * (slices - 1)) else cyc_per);
        alloc_one_slice (if i = 1 then words - (w_per * (slices - 1)) else w_per)
      done;
      !poll_hook ()

    let poll () = !poll_hook ()
    let set_poll_hook f = poll_hook := f
    let idle () = charge_idle config.idle_quantum_cycles
    let now () = Sim_config.cycles_to_seconds config (cur ()).clock
  end

  let reset () =
    Array.iteri
      (fun i p ->
        let f = fresh_proc i in
        p.clock <- f.clock;
        p.state <- Free;
        p.datum <- D.initial;
        p.busy <- 0;
        p.idle <- 0;
        p.gc_wait <- 0;
        p.spins <- 0;
        p.alloc_words <- 0;
        p.ran_ahead <- 0)
      procs;
    Ready_heap.clear ready;
    bus_free_at := 0;
    bus_busy := 0;
    bus_total_bytes := 0;
    region_used := 0;
    gc_pending := false;
    gc_count := 0;
    gc_cycles_total := 0;
    max_clock := 0;
    sched_decisions_ct := 0;
    coalesced_ct := 0;
    lock_acquires_ct := 0;
    susp_at_start := Engine.suspensions ();
    escaped := None;
    poll_hook := (fun () -> ())

  (* Publish the machine counters through the telemetry registry once per
     run — after the loop, so nothing is charged on the simulated path. *)
  let fold_counters () =
    let set name v = Obs.Counters.set (Telemetry.counter name) v in
    set "sim.makespan_cycles" !max_clock;
    set "sim.sched_decisions" !sched_decisions_ct;
    set "sim.coalesced_charges" !coalesced_ct;
    set "gc.collections" !gc_count;
    set "gc.cycles" !gc_cycles_total;
    set "bus.bytes" !bus_total_bytes;
    set "bus.busy_cycles" !bus_busy;
    set "lock.acquires" !lock_acquires_ct;
    set "lock.spins" (Array.fold_left (fun acc p -> acc + p.spins) 0 procs)

  let run f =
    if !running then invalid_arg "Mp_sim.run: already running";
    running := true;
    reset ();
    let result = ref None in
    set_ready procs.(0) (Engine.Start (fun () -> result := Some (f ())));
    current := 0;
    Fun.protect
      ~finally:(fun () ->
        running := false;
        fold_counters ())
      (fun () ->
        loop ();
        match (!result, !escaped) with
        | Some v, None -> v
        | _, Some e -> raise e
        | None, None ->
            raise
              (Mp_intf.Deadlock
                 "sim: all procs released without producing a result"))

  let stats () =
    let t = Stats.zero ~platform:name ~procs:config.procs in
    let secs = Sim_config.cycles_to_seconds config in
    Array.iteri
      (fun i p ->
        let s = t.per_proc.(i) in
        s.busy <- secs p.busy;
        s.idle <- secs p.idle;
        s.gc_wait <- secs p.gc_wait;
        s.lock_spins <- p.spins;
        s.alloc_words <- p.alloc_words)
      procs;
    {
      t with
      elapsed = secs !max_clock;
      gc_time = secs !gc_cycles_total;
      gc_count = !gc_count;
      bus_busy = secs !bus_busy;
      bus_bytes = !bus_total_bytes;
      sched_decisions = !sched_decisions_ct;
      suspensions = Engine.suspensions () - !susp_at_start;
      heap_ops = Ready_heap.ops ready;
    }

  let reset_stats () = reset ()

  module Machine = struct
    let config = config
    let makespan_cycles () = !max_clock
    let sched_decisions () = !sched_decisions_ct
    let suspensions () = Engine.suspensions () - !susp_at_start
    let heap_ops () = Ready_heap.ops ready
    let coalesced_charges () = !coalesced_ct
    let gc_cycles () = !gc_cycles_total
    let gc_collections () = !gc_count
    let bus_bytes () = !bus_total_bytes
    let bus_busy_cycles () = !bus_busy
    let elapsed_seconds () = Sim_config.cycles_to_seconds config !max_clock

    let gc_excluded_seconds () =
      Sim_config.cycles_to_seconds config (!max_clock - !gc_cycles_total)

    let bus_mb_per_sec () =
      let secs = elapsed_seconds () in
      if secs <= 0. then 0.
      else float_of_int !bus_total_bytes /. 1.0e6 /. secs

    let enable_trace ?(capacity = 4096) () =
      trace := Some (Sim_trace.create ~capacity)

    let disable_trace () = trace := None
    let trace () = !trace
  end
end

module Int
    (C : sig
      val config : Sim_config.t
    end)
    () =
  Make (C) (Mp_intf.Int_datum)
