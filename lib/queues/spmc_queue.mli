(** Lock-free single-producer / multi-consumer FIFO queue with steal-half.

    The ready-queue behind the work-stealing scheduler policy: the owning
    proc [push]es at the tail; the oldest element is claimed — by the owner's
    [pop] or by a thief's [steal_half] — with a CAS on the head index.
    [steal_half] transfers the oldest ceil(n/2) elements with a {e single}
    CAS, so a thief pays one bus transaction per batch instead of one per
    element ({!Ws_deque}'s steal-one), amortizing the traffic inflicted on
    the victim under heavy stealing.

    Monotone integer indices over a growable circular buffer rule out ABA;
    growth is owner-only grow-by-copy and never mutates the old buffer, so
    in-flight thieves either claim successfully or fail their CAS and
    discard what they read.

    The algorithm is a functor over {!Queue_intf.ATOMIC} so the identical
    text runs over [Stdlib.Atomic] (the default instance exposed below),
    over charged cells (the simulator prices pops and steals on the bus),
    and over the [mp_check] harness's instrumented cells, whose every
    access is a schedule-exploration serialization point. *)

module Make (A : Queue_intf.ATOMIC) : sig
  type 'a t

  val create : unit -> 'a t

  val push : 'a t -> 'a -> unit
  (** Owner only. *)

  val pop : 'a t -> 'a option
  (** Any consumer: the oldest element, or [None] when empty.  Retries
      internally when the claim is lost to a concurrent consumer. *)

  val steal_half : 'a t -> 'a array
  (** Any thread: the oldest ceil(n/2) elements, oldest first, claimed with
      one CAS.  [[||]] when empty or the claim race was lost — the thief is
      expected to try another victim rather than retry here. *)

  val size : 'a t -> int
  (** Racy snapshot of the number of elements (reads are charged when the
      cells are). *)

  val length_hint : 'a t -> int
  (** Like {!size} but through [unsafe_peek]: charge-free and never a
      serialization point.  For telemetry gauges. *)

  val looks_nonempty : 'a t -> bool
  (** Charge-free emptiness hint for scheduler idle predicates. *)
end

(** The default instance over [Stdlib.Atomic]. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Any consumer: the oldest element, or [None] when empty. *)

val steal_half : 'a t -> 'a array
(** Any thread: the oldest ceil(n/2) elements with one CAS; [[||]] when
    empty or the race was lost. *)

val size : 'a t -> int
(** Racy snapshot of the number of elements. *)

val length_hint : 'a t -> int
(** Charge-free racy length. *)

val looks_nonempty : 'a t -> bool
(** Charge-free emptiness hint. *)
