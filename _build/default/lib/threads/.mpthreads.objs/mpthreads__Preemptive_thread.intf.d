lib/threads/preemptive_thread.mli: Mp Thread_intf
