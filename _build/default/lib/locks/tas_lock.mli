(** Test-and-set spin lock: the paper's baseline [Lock] — "mutex locks are
    one-bit shared memory locations that can be atomically tested and set",
    with [lock] exactly the naive spin
    [while not (try_lock l) do () done]. *)

module Make (P : Lock_intf.PRIMS) : Lock_intf.LOCK_EXT
