lib/locks/anderson_lock.ml: Array Lock_intf
