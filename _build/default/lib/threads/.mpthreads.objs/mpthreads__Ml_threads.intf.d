lib/threads/ml_threads.mli: Mp Thread_intf
