(** MP backend over a deterministic simulated shared-memory multiprocessor.

    This is the substitute for the paper's evaluation hardware (a
    16-processor Sequent Symmetry S81 and an SGI 4D/380S), which this
    reproduction cannot access.  Procs are virtual processors with per-proc
    cycle clocks, multiplexed as fibers over one OCaml domain and scheduled
    lowest-clock-first (deterministic).  The model charges exactly the
    resources §6 of the paper identifies as the performance limiters:

    {ul
    {- a shared FCFS memory bus of finite bandwidth, loaded by heap
       allocation (SML/NJ's ≈1 word per 3–7 instructions) and lock RMWs;}
    {- stop-the-world, {e sequential} two-generation copying collection:
       procs synchronize at clean points (their charge boundaries), one proc
       collects while the others wait (§5);}
    {- spinning mutex locks whose probes cost CPU cycles and bus traffic;}
    {- idle time, accounted whenever a proc polls for work.}}

    Client code runs for real (results are computed exactly); only {e time}
    is virtual, advanced by [Work.step]/[Work.charge]/[Work.alloc] and by
    the platform's own lock/proc operations.  Simulated [Lock] and [Work]
    operations must be called from client (fiber) code, never from an
    [Engine.suspend] body. *)

module Make (C : sig
  val config : Sim_config.t
end)
(D : Mp.Mp_intf.DATUM) : sig
  include Mp.Mp_intf.PLATFORM with type Proc.proc_datum = D.t

  (** Simulator-specific introspection. *)
  module Machine : sig
    val config : Sim_config.t

    val makespan_cycles : unit -> int
    (** Largest virtual clock reached in the last [run]. *)

    val sched_decisions : unit -> int
    (** Host-side: procs dispatched by the event loop in the last [run]. *)

    val suspensions : unit -> int
    (** Host-side: effect-handler suspensions since the last [run] started
        (process-wide; meaningful when one platform runs at a time). *)

    val heap_ops : unit -> int
    (** Host-side: ready-heap pushes + pops in the last [run]. *)

    val coalesced_charges : unit -> int
    (** Host-side: charging operations absorbed inline by the run-ahead
        fast path (each would have been one suspension + one dispatch). *)

    val idle_parks : unit -> int
    (** Host-side: [Work.idle_until] calls that parked a poller — each is
        the {e single} suspension taken for a whole idle episode under
        quiescence-epoch coalescing. *)

    val idle_polls : unit -> int
    (** Host-side: per-quantum readiness checks serviced by the scheduler
        for parked pollers; under the always-suspend twin each would have
        been one suspension + one fiber round-trip. *)

    val gc_model : unit -> string
    (** Name of the configured GC cost model ({!Sim.Gc_model.to_string}). *)

    val gc_cycles : unit -> int
    (** Total pause cycles: stop-the-world durations plus per-proc minor
        pauses (equal to the old total under the default [stw] model). *)

    val gc_collections : unit -> int
    (** Minor + major collections. *)

    val gc_minor_collections : unit -> int
    (** Proc-local minor collections (0 under [stw]/[par_stw]). *)

    val gc_major_collections : unit -> int
    (** Stop-the-world collections. *)

    val gc_wait_cycles : unit -> int
    (** Cycles procs spent stalled for GC, summed over procs: barrier
        waits plus their own minor pauses. *)

    val nodes : unit -> int
    (** Interconnect nodes of the configured machine (1 under
        [Flat_bus]). *)

    val bus_bytes : unit -> int
    (** All bus traffic, node-local and remote. *)

    val local_bytes : unit -> int
    (** Traffic that stayed on a node-local bus. *)

    val remote_bytes : unit -> int
    (** Traffic that crossed the inter-node link (0 under [Flat_bus]). *)

    val invalidations : unit -> int
    (** Remote cached copies invalidated by lock/queue-word RMWs. *)

    val bus_busy_cycles : unit -> int
    (** Busy cycles summed over the node buses. *)

    val link_busy_cycles : unit -> int
    (** Busy cycles of the shared inter-node link. *)

    val elapsed_seconds : unit -> float

    val gc_excluded_seconds : unit -> float
    (** Makespan minus total (serial) collection time: the paper's
        "if garbage collection time were omitted" ablation (E6). *)

    val bus_mb_per_sec : unit -> float
    (** Mean bus traffic of the last run in MB/s (E5). *)

    val enable_trace : ?capacity:int -> unit -> unit
    (** Record scheduling/GC/proc events into a bounded ring (survives
        across [run]s until {!disable_trace}).  Deterministic. *)

    val disable_trace : unit -> unit
    val trace : unit -> Sim_trace.t option
  end
end

module Int (C : sig
  val config : Sim_config.t
end)
() : sig
  include Mp.Mp_intf.PLATFORM_INT

  module Machine : sig
    val config : Sim_config.t
    val makespan_cycles : unit -> int
    val sched_decisions : unit -> int
    val suspensions : unit -> int
    val heap_ops : unit -> int
    val coalesced_charges : unit -> int
    val idle_parks : unit -> int
    val idle_polls : unit -> int
    val gc_model : unit -> string
    val gc_cycles : unit -> int
    val gc_collections : unit -> int
    val gc_minor_collections : unit -> int
    val gc_major_collections : unit -> int
    val gc_wait_cycles : unit -> int
    val nodes : unit -> int
    val bus_bytes : unit -> int
    val local_bytes : unit -> int
    val remote_bytes : unit -> int
    val invalidations : unit -> int
    val bus_busy_cycles : unit -> int
    val link_busy_cycles : unit -> int
    val elapsed_seconds : unit -> float
    val gc_excluded_seconds : unit -> float
    val bus_mb_per_sec : unit -> float
    val enable_trace : ?capacity:int -> unit -> unit
    val disable_trace : unit -> unit
    val trace : unit -> Sim_trace.t option
  end
end
