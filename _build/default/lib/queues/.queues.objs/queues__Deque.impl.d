lib/queues/deque.ml: Array Queue_intf
