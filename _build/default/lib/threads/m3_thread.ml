open Mp

module Make (P : Mp.Mp_intf.PLATFORM_INT) (S : Thread_intf.SCHED) = struct
  type waiter = unit Engine.cont * int

  type 'a state = Running | Done of 'a | Raised of exn

  exception Alerted

  (* Modula-3 alerts: a per-thread flag plus, while the thread is blocked in
     [Condition.wait]/[alert_wait], the condition it waits on (so [alert]
     can wake it). *)
  type alert_state = {
    mutable alerted : bool;
    mutable waiting_on : Obj.t option; (* the Condition.t, untyped to break
                                          the recursion with Condition *)
  }

  let registry_lock = P.Lock.mutex_lock ()
  let registry : (int, alert_state) Hashtbl.t = Hashtbl.create 64

  let state_of tid =
    P.Lock.lock registry_lock;
    let st =
      match Hashtbl.find_opt registry tid with
      | Some st -> st
      | None ->
          let st = { alerted = false; waiting_on = None } in
          Hashtbl.replace registry tid st;
          st
    in
    P.Lock.unlock registry_lock;
    st

  let my_state () = state_of (S.id ())

  type 'a t = {
    spin : P.Lock.mutex_lock;
    mutable state : 'a state;
    mutable joiners : waiter list;
    astate : alert_state; (* created at fork, adopted by the thread: alerts
                             posted before the thread starts are not lost *)
  }

  let fork f =
    let t =
      {
        spin = P.Lock.mutex_lock ();
        state = Running;
        joiners = [];
        astate = { alerted = false; waiting_on = None };
      }
    in
    S.fork (fun () ->
        (* adopt the handle's alert state under this thread's id *)
        P.Lock.lock registry_lock;
        Hashtbl.replace registry (S.id ()) t.astate;
        P.Lock.unlock registry_lock;
        let outcome = try Done (f ()) with e -> Raised e in
        P.Lock.lock t.spin;
        t.state <- outcome;
        let joiners = t.joiners in
        t.joiners <- [];
        P.Lock.unlock t.spin;
        (* retire the alert state *)
        P.Lock.lock registry_lock;
        Hashtbl.remove registry (S.id ());
        P.Lock.unlock registry_lock;
        List.iter S.reschedule joiners);
    t

  let join t =
    Engine.callcc (fun k ->
        P.Lock.lock t.spin;
        match t.state with
        | Done _ | Raised _ ->
            P.Lock.unlock t.spin;
            Engine.throw k ()
        | Running ->
            t.joiners <- (k, S.id ()) :: t.joiners;
            P.Lock.unlock t.spin;
            S.dispatch ());
    match t.state with
    | Done v -> v
    | Raised e -> raise e
    | Running -> assert false

  module Mutex = struct
    type t = {
      spin : P.Lock.mutex_lock;
      mutable held : bool;
      waiters : waiter Queues.Fifo_queue.queue;
    }

    let create () =
      {
        spin = P.Lock.mutex_lock ();
        held = false;
        waiters = Queues.Fifo_queue.create ();
      }

    let lock t =
      Engine.callcc (fun k ->
          P.Lock.lock t.spin;
          if not t.held then begin
            t.held <- true;
            P.Lock.unlock t.spin;
            Engine.throw k ()
          end
          else begin
            Queues.Fifo_queue.enq t.waiters (k, S.id ());
            P.Lock.unlock t.spin;
            S.dispatch ()
          end)

    let unlock t =
      P.Lock.lock t.spin;
      match Queues.Fifo_queue.deq_opt t.waiters with
      | Some w ->
          (* Hand ownership directly to the next waiter: [held] stays true. *)
          P.Lock.unlock t.spin;
          S.reschedule w
      | None ->
          t.held <- false;
          P.Lock.unlock t.spin

    let with_lock t f =
      lock t;
      match f () with
      | v ->
          unlock t;
          v
      | exception e ->
          unlock t;
          raise e
  end

  module Condition = struct
    type t = {
      spin : P.Lock.mutex_lock;
      waiters : waiter Queues.Fifo_queue.queue;
    }

    let create () =
      { spin = P.Lock.mutex_lock (); waiters = Queues.Fifo_queue.create () }

    let wait m t =
      Engine.callcc (fun k ->
          P.Lock.lock t.spin;
          Queues.Fifo_queue.enq t.waiters (k, S.id ());
          P.Lock.unlock t.spin;
          Mutex.unlock m;
          S.dispatch ());
      Mutex.lock m

    let signal t =
      P.Lock.lock t.spin;
      let w = Queues.Fifo_queue.deq_opt t.waiters in
      P.Lock.unlock t.spin;
      match w with Some w -> S.reschedule w | None -> ()

    let broadcast t =
      P.Lock.lock t.spin;
      let rec drain acc =
        match Queues.Fifo_queue.deq_opt t.waiters with
        | Some w -> drain (w :: acc)
        | None -> acc
      in
      let ws = drain [] in
      P.Lock.unlock t.spin;
      List.iter S.reschedule ws
  end

  (* ---- alerts (Modula-3 Thread.Alert / TestAlert / AlertWait) ---- *)

  let test_alert () =
    let st = my_state () in
    if st.alerted then begin
      st.alerted <- false;
      true
    end
    else false

  let alert (t : 'a t) =
    let st = t.astate in
    st.alerted <- true;
    (* wake it if it is blocked on a condition *)
    match st.waiting_on with
    | Some c -> Condition.broadcast (Obj.obj c : Condition.t)
    | None -> ()

  let alert_wait m c =
    let st = my_state () in
    if st.alerted then begin
      st.alerted <- false;
      raise Alerted
    end;
    st.waiting_on <- Some (Obj.repr c);
    Condition.wait m c;
    st.waiting_on <- None;
    if st.alerted then begin
      st.alerted <- false;
      (* Modula-3 semantics: the mutex is held when Alerted is raised *)
      raise Alerted
    end
end
