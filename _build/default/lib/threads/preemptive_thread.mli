(** Preemption for thread packages, as sketched in the paper's §2: "a more
    realistic implementation would use timer alarm signals to preempt
    compute-bound threads periodically ... we can set up an alarm signal
    handler to invoke [yield] asynchronously".

    This functor wires exactly that: an alarm signal whose global handler
    calls the wrapped package's [yield], delivered through the platform's
    safe points ([Work.poll] — §3.4's timer-driven polling).  [arm] installs
    the handler and schedules periodic delivery; compute-bound threads are
    preempted at their next safe point without ever calling [yield]
    themselves. *)

module Make (P : Mp.Mp_intf.PLATFORM) (T : Thread_intf.THREAD) : sig
  val sigvtalrm : int
  (** The signal number used for the alarm. *)

  val arm : interval:float -> unit
  (** Install the alarm handler and begin periodic preemption: every
      [interval] seconds (platform time), the alarm is delivered to every
      proc, and the handler yields at the receiving proc's next safe
      point.  Also installs the platform poll hook. *)

  val disarm : unit -> unit
  (** Stop preempting (handler removed, poll hook cleared). *)

  val preemptions : unit -> int
  (** Number of alarm-induced yields so far. *)

  val mask : unit -> unit
  (** Disable preemption on the calling proc (critical sections), per the
      paper's per-proc masking convention. *)

  val unmask : unit -> unit
end
