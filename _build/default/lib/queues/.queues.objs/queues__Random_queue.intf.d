lib/queues/random_queue.mli: Queue_intf
