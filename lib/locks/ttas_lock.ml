module Make (P : Lock_intf.PRIMS) = struct
  type mutex_lock = bool P.cell

  let holder_must_unlock = false
  let mutex_lock () = P.make false
  let try_lock l = (not (P.get l)) && not (P.exchange l true)

  let lock l =
    while not (try_lock l) do
      P.on_spin ();
      while P.get l do
        P.pause ()
      done
    done

  let unlock l = P.set l false
  let locked l f = Lock_intf.locked_default ~lock ~unlock l f

end
