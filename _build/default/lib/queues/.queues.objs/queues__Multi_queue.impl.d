lib/queues/multi_queue.ml: Array Deque Mp
