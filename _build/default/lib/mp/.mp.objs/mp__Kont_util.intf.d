lib/mp/kont_util.mli: Engine
