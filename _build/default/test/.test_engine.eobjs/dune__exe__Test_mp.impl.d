test/test_mp.ml: Alcotest Array Atomic Domain Engine Kont_util List Mp Mp_domains Mp_intf Mp_signal Mp_uniproc Stats Unix
