lib/sim/sim_trace.ml: Array Format List
