(** Bounded event trace for the simulated multiprocessor.

    Now a thin compatibility layer over {!Obs}: the event type is
    {!Obs.Event.t} (re-exported so existing matches on [Sim_trace.Dispatch]
    etc. keep compiling) and the trace itself is an {!Obs.Ring.t}, the same
    structure behind the platform's [Telemetry] streams.  {!Mp_sim}'s
    [Machine.enable_trace] records into it via the telemetry capability.

    Deterministic like everything else in the simulator; used by tests and
    invaluable when a client deadlocks or livelocks (see the
    MP_SIM_DEBUG_ITERS watchdog it complements). *)

type gc_kind = Obs.Event.gc_kind = Minor | Major | Par

type event = Obs.Event.t =
  | Dispatch of { proc : int; clock : int }
      (** the scheduler handed the proc to its pending action *)
  | Freed of { proc : int; clock : int }  (** the proc was released *)
  | Acquired of { proc : int; by : int; clock : int }
  | Gc_start of {
      clock : int;
      region_words : int;
      kind : gc_kind;
      waiters : int;
          (** procs parked at the barrier (0 for a proc-local minor) *)
    }
  | Gc_end of { clock : int; duration : int }
  | Coalesced of { proc : int; clock : int; cycles : int }
      (** [cycles] of charges the run-ahead fast path absorbed inline since
          the proc's last dispatch, recorded when it finally suspends at
          [clock].  One event summarizes what would otherwise have been a
          string of dispatches. *)
  | Fork of { proc : int; clock : int; thread : int }
  | Switch of { proc : int; clock : int; thread : int }
  | Steal of { proc : int; clock : int }
  | Queue_depth of { proc : int; clock : int; depth : int }
  | Lock_acquired of { proc : int; clock : int }
  | Lock_contended of { proc : int; clock : int; spins : int }
  | Blocked of { proc : int; clock : int; thread : int; on : string }
  | Wakeup of { proc : int; clock : int; thread : int; on : string }
  | Step of { proc : int; clock : int; op : string }

type t = Obs.Event.t Obs.Ring.t

val create : capacity:int -> t
val record : t -> event -> unit
val clear : t -> unit

val events : t -> event list
(** Oldest first; at most [capacity] most recent events. *)

val length : t -> int
(** Events currently retained. *)

val total_recorded : t -> int
(** Events recorded since the last {!clear}, including overwritten ones. *)

val clock_of : event -> int

val pp_event : Format.formatter -> event -> unit
(** Stable rendering for the original six simulator events; delegates to
    {!Obs.Event.pp}. *)

val pp : Format.formatter -> t -> unit
