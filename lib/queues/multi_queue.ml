module Make (L : Mp.Mp_intf.LOCK) = struct
  type 'a slot = { lock : L.mutex_lock; deque : 'a Deque.t }

  type 'a t = {
    slots : 'a slot array;
    mutable rotor : int; (* round-robin cursor for push_global; racy by design *)
    mutable steal_count : int;
  }

  let create ~procs =
    if procs <= 0 then invalid_arg "Multi_queue.create";
    {
      slots =
        Array.init procs (fun _ ->
            { lock = L.mutex_lock (); deque = Deque.create () });
      rotor = 0;
      steal_count = 0;
    }

  let procs t = Array.length t.slots

  (* Every critical section here is a handful of pointer swings, so the
     platform may fuse acquire/section/release into one episode. *)
  let protected slot f = L.locked slot.lock f

  let push t ~proc x =
    let slot = t.slots.(proc) in
    protected slot (fun () -> Deque.push_front slot.deque x)

  let push_back t ~proc x =
    let slot = t.slots.(proc) in
    protected slot (fun () -> Deque.push_back slot.deque x)

  let push_global t x =
    let proc = t.rotor mod procs t in
    t.rotor <- t.rotor + 1;
    let slot = t.slots.(proc) in
    protected slot (fun () -> Deque.push_back slot.deque x)

  (* Peek the (racy) length before taking the lock: an empty-looking deque
     is skipped without paying for a lock round-trip.  A stale non-zero
     length only costs one wasted lock; a stale zero is corrected on the
     next scan. *)
  let take_local t ~proc =
    let slot = t.slots.(proc) in
    if Deque.is_empty slot.deque then None
    else protected slot (fun () -> Deque.pop_front_opt slot.deque)

  let steal t ~proc =
    let n = procs t in
    let rec scan i =
      if i >= n then None
      else
        let victim = (proc + i) mod n in
        let slot = t.slots.(victim) in
        if Deque.is_empty slot.deque then scan (i + 1)
        else
          match protected slot (fun () -> Deque.pop_back_opt slot.deque) with
          | Some _ as found ->
              t.steal_count <- t.steal_count + 1;
              found
          | None -> scan (i + 1)
    in
    scan 1

  let take t ~proc =
    match take_local t ~proc with Some _ as x -> x | None -> steal t ~proc

  (* Charge-free emptiness hints over exactly the deques the corresponding
     take's uncharged failure path peeks: a [false] here implies [take]
     (resp. [take_local]) would return [None] without touching a lock.
     Used as the readiness predicate of an idle poller, so these must stay
     free of locks, charges and writes. *)
  let looks_nonempty t =
    Array.exists (fun slot -> not (Deque.is_empty slot.deque)) t.slots

  let looks_nonempty_local t ~proc = not (Deque.is_empty t.slots.(proc).deque)

  let total_length t =
    Array.fold_left (fun acc slot -> acc + Deque.length slot.deque) 0 t.slots

  let steals t = t.steal_count
end
