lib/queues/fifo_queue.ml: List Queue_intf
