test/test_threads.ml: Alcotest Array Atomic List Mp Mp_domains Mp_uniproc Mpthreads Queue Queues Sim
