(* Engine semantics: callcc/throw per the paper's usage, one-shotness,
   exception routing, suspend, and the continuation utilities. *)

open Mp

module U = Mp_uniproc.Int ()

let check = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

let test_run_returns () = check "value" 42 (U.run (fun () -> 42))

let test_run_raises () =
  Alcotest.check_raises "exn propagates" (Failure "oops") (fun () ->
      ignore (U.run (fun () -> failwith "oops")))

let test_run_sequential_reuse () =
  check "first" 1 (U.run (fun () -> 1));
  check "second" 2 (U.run (fun () -> 2))

let test_callcc_normal_return () =
  check "body value" 7 (U.run (fun () -> Engine.callcc (fun _ -> 7)))

let test_callcc_throw () =
  check "thrown value" 11
    (U.run (fun () -> 1 + Engine.callcc (fun k -> Engine.throw k 10)))

let test_callcc_throw_in_middle () =
  (* code after the throw in the body is abandoned *)
  let side = ref 0 in
  let v =
    U.run (fun () ->
        Engine.callcc (fun k ->
            Engine.throw k 5 |> ignore;
            side := 1;
            99))
  in
  check "value" 5 v;
  check "abandoned" 0 !side

let test_callcc_nested () =
  let v =
    U.run (fun () ->
        Engine.callcc (fun outer ->
            let inner_v = Engine.callcc (fun k -> Engine.throw k 3) in
            Engine.throw outer (inner_v * 10)))
  in
  check "nested" 30 v

let test_callcc_body_raises () =
  checks "handler sees it" "boom"
    (U.run (fun () ->
         try Engine.callcc (fun _ -> failwith "boom") with Failure m -> m))

let test_throw_exn () =
  checks "delivered at capture point" "sent"
    (U.run (fun () ->
         try Engine.callcc (fun k -> Engine.throw_exn k (Failure "sent"))
         with Failure m -> m))

let test_one_shot_enforced () =
  checkb "second resume rejected" true
    (U.run (fun () ->
         let saved = ref None in
         let first = ref true in
         let () =
           Engine.callcc (fun k ->
               saved := Some k;
               Engine.throw k ())
         in
         if !first then begin
           first := false;
           match !saved with
           | Some k -> (
               match Engine.resume k () with
               | exception Engine.Already_resumed -> true
               | _ -> false)
           | None -> false
         end
         else false))

let test_typed_continuations () =
  (* continuations carry non-trivial value types *)
  let v =
    U.run (fun () ->
        Engine.callcc (fun (k : (int * string) Engine.cont) ->
            Engine.throw k (1, "one")))
  in
  Alcotest.(check (pair int string)) "pair" (1, "one") v

let test_suspend_resume_action () =
  (* suspend hands the continuation to proc-loop context; returning
     Resume re-enters immediately *)
  let v = U.run (fun () -> Engine.suspend (fun c -> Engine.Resume (c, 9))) in
  check "resumed" 9 v

let test_suspend_raise_action () =
  checks "raise action" "later"
    (U.run (fun () ->
         try Engine.suspend (fun c -> Engine.Raise (c, Failure "later"))
         with Failure m -> m))

let test_cont_of_thunk_runs_later () =
  let ran = ref false in
  U.run (fun () ->
      let c =
        Kont_util.cont_of_thunk
          ~on_return:(fun () -> U.Proc.release_proc ())
          (fun () -> ran := true)
      in
      ignore c);
  checkb "thunk never started" false !ran

let test_cont_of_thunk_runs_when_thrown () =
  let ran = ref false in
  U.run (fun () ->
      Engine.callcc (fun exit_ ->
          let c =
            Kont_util.cont_of_thunk
              ~on_return:(fun () -> Engine.throw exit_ ())
              (fun () -> ran := true)
          in
          Engine.throw c ()));
  checkb "thunk ran when thrown to" true !ran

let test_unit_cont_delivers_value () =
  let got = ref 0 in
  U.run (fun () ->
      Engine.callcc (fun (exit_ : unit Engine.cont) ->
          let v =
            Engine.callcc (fun (k : int Engine.cont) ->
                let w = Kont_util.unit_cont_of k 77 in
                Engine.throw w ())
          in
          got := v;
          Engine.throw exit_ ()));
  check "value delivered" 77 !got

let test_deep_throw_chain () =
  (* ten thousand sequential callcc/throw pairs must not grow the stack:
     the trampoline flattens every switch *)
  let v =
    U.run (fun () ->
        let acc = ref 0 in
        for _ = 1 to 10_000 do
          acc := !acc + Engine.callcc (fun k -> Engine.throw k 1)
        done;
        !acc)
  in
  check "no stack growth over 10k switches" 10_000 v

let test_many_live_continuations () =
  (* thousands of captured-but-unresumed continuations coexist (the paper's
     "hundreds or even thousands of threads") *)
  let v =
    U.run (fun () ->
        let parked = ref [] in
        let count = 2_000 in
        for i = 1 to count do
          (* capture a continuation that, when thrown 0, contributes i *)
          let rec capture () =
            Engine.callcc (fun (k : int Engine.cont) ->
                parked := (i, k) :: !parked;
                0)
            |> fun x -> if x = -1 then capture () else x
          in
          ignore (capture ())
        done;
        List.length !parked)
  in
  check "2000 live continuations" 2_000 v

let () =
  Alcotest.run "engine"
    [
      ( "run",
        [
          Alcotest.test_case "returns value" `Quick test_run_returns;
          Alcotest.test_case "raises" `Quick test_run_raises;
          Alcotest.test_case "sequential reuse" `Quick test_run_sequential_reuse;
        ] );
      ( "callcc",
        [
          Alcotest.test_case "normal return" `Quick test_callcc_normal_return;
          Alcotest.test_case "throw" `Quick test_callcc_throw;
          Alcotest.test_case "abandons after throw" `Quick
            test_callcc_throw_in_middle;
          Alcotest.test_case "nested" `Quick test_callcc_nested;
          Alcotest.test_case "body raises" `Quick test_callcc_body_raises;
          Alcotest.test_case "throw_exn" `Quick test_throw_exn;
          Alcotest.test_case "one-shot enforced" `Quick test_one_shot_enforced;
          Alcotest.test_case "typed continuations" `Quick
            test_typed_continuations;
        ] );
      ( "suspend",
        [
          Alcotest.test_case "resume action" `Quick test_suspend_resume_action;
          Alcotest.test_case "raise action" `Quick test_suspend_raise_action;
        ] );
      ( "stress",
        [
          Alcotest.test_case "10k throw chain" `Quick test_deep_throw_chain;
          Alcotest.test_case "2000 live continuations" `Quick
            test_many_live_continuations;
        ] );
      ( "kont_util",
        [
          Alcotest.test_case "cont_of_thunk deferred" `Quick
            test_cont_of_thunk_runs_later;
          Alcotest.test_case "cont_of_thunk runs when thrown" `Quick
            test_cont_of_thunk_runs_when_thrown;
          Alcotest.test_case "unit_cont_of delivers" `Quick
            test_unit_cont_delivers_value;
        ] );
    ]
