(* The scenario corpus.  Conventions:

   - Every body calls [C.run] exactly once and instantiates any stateful
     client functor (thread scheduler, sync package, select, CML) INSIDE
     the run body, so each explored schedule starts from virgin state and
     traces replay identically.

   - Invariants are checked with [fail]/[check] rather than [assert] so a
     counterexample names the violated property.

   - Mutual-exclusion checks put a [C.Work.poll ()] inside the critical
     section: the check variable is incremented, the poll suspends the
     proc at a serialization point while it is "inside", and any second
     entrant observes the overlap.  Without a visible point inside the
     section the whole critical section would execute atomically and no
     schedule could witness a broken lock. *)

module Make (C : Mp_check.S with type Proc.proc_datum = int) = struct
  let fail fmt = Printf.ksprintf failwith fmt
  let check b fmt = if b then Printf.ksprintf ignore fmt else fail fmt

  (* Wait until every proc but the root has been released. *)
  let join () = C.Work.idle_until ~ready:(fun () -> C.Proc.live_procs () = 1)

  (* ---- lock algorithms over the instrumented primitives -------------- *)

  module T_tas = Locks.Tas_lock.Make (C.Prims)
  module T_ttas = Locks.Ttas_lock.Make (C.Prims)
  module T_backoff = Locks.Backoff_lock.Make (C.Prims)
  module T_ticket = Locks.Ticket_lock.Make (C.Prims)
  module T_clh = Locks.Clh_lock.Make (C.Prims)
  module T_anderson = Locks.Anderson_lock.Make (C.Prims)
  module T_mcs = Locks.Mcs_lock.Make (C.Prims)
  module T_hwpool = Locks.Hwpool_lock.Make (C.Prims)
  module T_rw = Locks.Rw_spin_lock.Make (C.Prims)

  (* A deliberately broken test-and-set lock: the test and the set are two
     separate visible operations, so two procs can both read "free" and
     both enter.  Used only by [broken] — the harness must catch it. *)
  module Broken_tas = struct
    type mutex_lock = bool C.Prims.cell

    let mutex_lock () = C.Prims.make false

    let try_lock l =
      if C.Prims.get l then false
      else begin
        C.Prims.set l true;
        true
      end

    let rec lock l =
      if not (try_lock l) then begin
        C.Prims.on_spin ();
        C.Prims.pause ();
        lock l
      end

    let unlock l = C.Prims.set l false

    let locked l f = Locks.Lock_intf.locked_default ~lock ~unlock l f
  end

  let mutex_scenario (module L : Mp.Mp_intf.LOCK) () =
    C.run (fun () ->
        let l = L.mutex_lock () in
        let in_cs = ref 0 in
        let overlap = ref false in
        let crit () =
          L.lock l;
          incr in_cs;
          if !in_cs > 1 then overlap := true;
          C.Work.poll ();
          decr in_cs;
          L.unlock l
        in
        C.spawn crit;
        crit ();
        join ();
        check (not !overlap) "mutual exclusion violated";
        check (L.try_lock l) "lock still held after both sections";
        L.unlock l)

  (* Two procs working under DIFFERENT locks: the race-directed
     exploration showcase.  Every cross-proc pair of lock operations
     touches a different object, so DPOR collapses the full interleaving
     product — which plain DFS pays in full at bound 3 — down to the
     handful of schedules the proc-pool handoff actually orders.  The
     counters keep the independence honest: each lock still guards real
     work, and a lost update would be caught on any schedule. *)
  let disjoint_scenario (module L : Mp.Mp_intf.LOCK) () =
    C.run (fun () ->
        let la = L.mutex_lock () in
        let lb = L.mutex_lock () in
        let ca = ref 0 in
        let cb = ref 0 in
        let work l c =
          for _ = 1 to 3 do
            L.lock l;
            incr c;
            L.unlock l
          done
        in
        C.spawn (fun () -> work lb cb);
        work la ca;
        join ();
        check
          (!ca = 3 && !cb = 3)
          "disjoint locks: counters %d/%d, expected 3/3" !ca !cb;
        check (L.try_lock la) "disjoint locks: lock A left held";
        check (L.try_lock lb) "disjoint locks: lock B left held";
        L.unlock la;
        L.unlock lb)

  let rw_scenario () =
    C.run (fun () ->
        let l = T_rw.create () in
        let writers = ref 0 in
        let readers = ref 0 in
        let bad = ref None in
        C.spawn (fun () ->
            T_rw.write_lock l;
            incr writers;
            if !writers > 1 then bad := Some "two writers"
            else if !readers > 0 then bad := Some "writer beside reader";
            C.Work.poll ();
            decr writers;
            T_rw.write_unlock l);
        T_rw.read_lock l;
        incr readers;
        if !writers > 0 then bad := Some "reader beside writer";
        C.Work.poll ();
        decr readers;
        T_rw.read_unlock l;
        join ();
        match !bad with None -> () | Some what -> fail "rw_spin: %s" what)

  (* ---- queue family --------------------------------------------------- *)

  let ws_deque_scenario () =
    C.run (fun () ->
        let module WS = Queues.Ws_deque.Make (C.Catomic) in
        let d = WS.create () in
        let stolen = ref [] in
        let popped = ref [] in
        C.spawn (fun () ->
            for _ = 1 to 3 do
              match WS.steal d with
              | Some v -> stolen := v :: !stolen
              | None -> ()
            done);
        WS.push d 1;
        WS.push d 2;
        WS.push d 3;
        (match WS.pop d with Some v -> popped := v :: !popped | None -> ());
        (match WS.pop d with Some v -> popped := v :: !popped | None -> ());
        join ();
        let rec drain () =
          match WS.pop d with
          | Some v ->
              popped := v :: !popped;
              drain ()
          | None -> ()
        in
        drain ();
        let got = List.sort compare (!stolen @ !popped) in
        check
          (List.length got = List.length (List.sort_uniq compare got))
          "ws_deque: element returned twice";
        check (got = [ 1; 2; 3 ]) "ws_deque: lost or invented an element")

  (* The work-stealing policy's ready queue: a thief's steal-half batch
     racing the owner's pop at every instrumented cell access.  Every
     element must come out exactly once, whichever side wins the CAS. *)
  let spmc_queue_scenario () =
    C.run (fun () ->
        let module SQ = Queues.Spmc_queue.Make (C.Catomic) in
        let q = SQ.create () in
        let stolen = ref [] in
        let popped = ref [] in
        C.spawn (fun () ->
            for _ = 1 to 2 do
              Array.iter (fun v -> stolen := v :: !stolen) (SQ.steal_half q)
            done);
        SQ.push q 1;
        SQ.push q 2;
        SQ.push q 3;
        (match SQ.pop q with Some v -> popped := v :: !popped | None -> ());
        (match SQ.pop q with Some v -> popped := v :: !popped | None -> ());
        join ();
        let rec drain () =
          match SQ.pop q with
          | Some v ->
              popped := v :: !popped;
              drain ()
          | None -> ()
        in
        drain ();
        let got = List.sort compare (!stolen @ !popped) in
        check
          (List.length got = List.length (List.sort_uniq compare got))
          "spmc_queue: element returned twice";
        check (got = [ 1; 2; 3 ]) "spmc_queue: lost or invented an element")

  (* Pinned micropools: with 2 pools over 2 procs, an item pushed into
     pool p (= proc mod 2) may only ever be taken by a proc of that pool —
     work must not migrate, whatever the interleaving.  Items are tagged
     with their pool so a migrated take identifies itself. *)
  let micropool_affinity_scenario () =
    C.run (fun () ->
        let module Pol = Mpthreads.Sched_policy.Make (C) in
        let (module S) =
          Pol.instance (Mpthreads.Sched_policy.Micropools 2)
        in
        let q = S.create ~procs:2 in
        S.prepare q ~procs:2;
        let bad = ref None in
        let taken = ref 0 in
        let consume ~proc =
          match S.take q ~proc with
          | Some tag ->
              incr taken;
              if tag <> proc mod 2 then bad := Some (proc, tag)
          | None -> ()
        in
        C.spawn (fun () ->
            S.push_local q ~proc:1 1;
            consume ~proc:1;
            consume ~proc:1);
        S.push_local q ~proc:0 0;
        S.push_local q ~proc:0 0;
        consume ~proc:0;
        join ();
        (* drain each pool through its own pool index *)
        consume ~proc:0;
        consume ~proc:1;
        (match !bad with
        | Some (proc, tag) ->
            fail "micropools: proc %d took pool-%d work" proc tag
        | None -> ());
        check (!taken = 3) "micropools: %d of 3 items consumed" !taken;
        check (S.total_length q = 0) "micropools: queue not drained")

  (* The spmc steal-half path through the [ws] policy itself (the policy's
     ready queues are the spmc queues; a thief's take steals half the
     victim's batch and keeps the remainder locally).  The owner pushes in
     two bursts around a poll so a steal can land mid-stream; whatever the
     interleaving — steal-half wins, owner pops first, or the batch splits
     across both — every element must come out exactly once. *)
  let ws_steal_half_scenario () =
    C.run (fun () ->
        let module Pol = Mpthreads.Sched_policy.Make (C) in
        let (module S) = Pol.instance Mpthreads.Sched_policy.Ws in
        let q = S.create ~procs:2 in
        S.prepare q ~procs:2;
        let got = ref [] in
        let consume ~proc =
          match S.take q ~proc with
          | Some v -> got := v :: !got
          | None -> ()
        in
        C.spawn (fun () ->
            S.push_local q ~proc:1 10;
            S.push_local q ~proc:1 11;
            C.Work.poll ();
            S.push_local q ~proc:1 12;
            S.push_local q ~proc:1 13;
            consume ~proc:1);
        C.Work.poll ();
        (* thief: an empty local queue forces the steal-half sweep *)
        consume ~proc:0;
        consume ~proc:0;
        join ();
        let rec drain budget =
          if budget > 0 then
            match S.take q ~proc:0 with
            | Some v ->
                got := v :: !got;
                drain (budget - 1)
            | None -> if S.looks_nonempty q ~proc:0 then drain (budget - 1)
        in
        drain 16;
        check
          (List.sort compare !got = [ 10; 11; 12; 13 ])
          "ws steal-half: lost, duplicated or invented an element";
        check
          (not (S.looks_nonempty q ~proc:0))
          "ws steal-half: emptiness hint stuck nonempty after the drain")

  let multi_queue_scenario () =
    C.run (fun () ->
        let module MQ = Queues.Multi_queue.Make (T_tas) in
        let q = MQ.create ~procs:2 in
        let got = ref [] in
        C.spawn (fun () ->
            MQ.push q ~proc:1 10;
            MQ.push q ~proc:1 11;
            match MQ.take q ~proc:1 with
            | Some v -> got := v :: !got
            | None -> ());
        MQ.push q ~proc:0 20;
        (match MQ.take q ~proc:0 with Some v -> got := v :: !got | None -> ());
        join ();
        let rec drain () =
          match MQ.take q ~proc:0 with
          | Some v ->
              got := v :: !got;
              drain ()
          | None -> ()
        in
        drain ();
        check
          (List.sort compare !got = [ 10; 11; 20 ])
          "multi_queue: lost, invented or duplicated an element")

  (* Capacity 1 and two items keep the space exhaustively explorable while
     still forcing both retry paths: the producer blocks on a full queue
     (item 2 cannot enqueue until item 1 is consumed) and the consumer
     blocks on an empty one. *)
  let bounded_queue_scenario () =
    C.run (fun () ->
        let module L = T_ttas in
        let q = Queues.Bounded_queue.create ~capacity:1 in
        let l = L.mutex_lock () in
        let got = ref [] in
        let push v =
          let rec go () =
            if not (L.locked l (fun () -> Queues.Bounded_queue.try_enq q v))
            then begin
              C.Work.idle ();
              go ()
            end
          in
          go ()
        in
        let pop () =
          let rec go () =
            match L.locked l (fun () -> Queues.Bounded_queue.deq_opt q) with
            | Some v -> v
            | None ->
                C.Work.idle ();
                go ()
          in
          go ()
        in
        C.spawn (fun () ->
            push 1;
            push 2);
        got := pop () :: !got;
        got := pop () :: !got;
        join ();
        check
          (List.rev !got = [ 1; 2 ])
          "bounded_queue: FIFO order or content violated")

  (* ---- the server pipeline -------------------------------------------- *)

  (* The open-loop server pipeline (lib/workloads/server.ml) reduced to its
     checkable core: an accepter routes a fixed 4-request trace (shard =
     id mod 2) over two bounded shard queues, one worker per shard.  The
     scenario harness runs 2 procs, so the root is the accepter and then
     becomes shard 0's worker once the trace is routed; shard 1's worker
     runs concurrently on the spawned proc.  Shard 1's queue has capacity
     1 — the accepter takes the blocking full-queue path whenever its
     worker lags — while shard 0's is wide enough that its (not yet
     started) worker can never deadlock the accepter.  On every
     interleaving each shard must reply to exactly its requests, in FIFO
     order.

     [~broken:true] is the deliberately buggy router: on a shard
     collision (the queue still full after one visible retry, i.e. the
     previous request to the same shard not yet consumed) it drops the
     request instead of waiting for space.  A schedule where shard 1's
     worker lags the accepter loses a reply; exploration must catch it at
     bound 2 and shrink to a trace naming the lost ids. *)
  let server_pipeline_scenario ~broken () =
    C.run (fun () ->
        let module L = T_ttas in
        let trace = [ 0; 1; 2; 3 ] in
        let poison = -1 in
        let qs =
          [|
            Queues.Bounded_queue.create ~capacity:4;
            Queues.Bounded_queue.create ~capacity:1;
          |]
        in
        let locks = Array.map (fun _ -> L.mutex_lock ()) qs in
        let replies = Array.map (fun _ -> ref []) qs in
        let try_put s v =
          L.locked locks.(s) (fun () -> Queues.Bounded_queue.try_enq qs.(s) v)
        in
        let put s v =
          let rec go () =
            if not (try_put s v) then begin
              C.Work.idle ();
              go ()
            end
          in
          go ()
        in
        let route s v =
          if broken then begin
            if not (try_put s v) then begin
              C.Work.poll ();
              (* still full: the colliding request is silently dropped *)
              if not (try_put s v) then ()
            end
          end
          else put s v
        in
        let take s =
          let rec go () =
            match
              L.locked locks.(s) (fun () -> Queues.Bounded_queue.deq_opt qs.(s))
            with
            | Some v -> v
            | None ->
                C.Work.idle ();
                go ()
          in
          go ()
        in
        let work s =
          let rec loop () =
            let v = take s in
            if v <> poison then begin
              replies.(s) := v :: !(replies.(s));
              loop ()
            end
          in
          loop ()
        in
        C.spawn (fun () -> work 1);
        List.iter (fun id -> route (id mod 2) id) trace;
        Array.iteri (fun s _ -> put s poison) qs;
        work 0;
        join ();
        Array.iteri
          (fun s got ->
            let expected = List.filter (fun id -> id mod 2 = s) trace in
            let render l = String.concat "," (List.map string_of_int l) in
            check
              (List.rev !got = expected)
              "server: shard %d replied to [%s], expected [%s]" s
              (render (List.rev !got))
              (render expected))
          replies)

  (* ---- hierarchical (NUMA) topology ----------------------------------- *)

  (* Run a scenario body with the procs split into [n] contiguous nodes,
     restoring the flat default afterwards (the rest of the corpus assumes
     it).  [set_nodes] must bracket [C.run], not sit inside it. *)
  let with_nodes n body () =
    C.set_nodes n;
    Fun.protect ~finally:(fun () -> C.set_nodes 1) body

  (* A contended-lock invalidation episode across nodes: both procs (one
     per node under [with_nodes 2]) take the platform lock and perform the
     read-snoop / RMW-claim sequence on one cache line — the access shape
     the simulator charges invalidation traffic for.  Exploration drives
     every interleaving of the probes, the in-section poll and the line
     operations; exclusion and line-API neutrality must survive all of
     them. *)
  let numa_lock_invalidation_scenario =
    with_nodes 2 (fun () ->
        C.run (fun () ->
            let l = C.Lock.mutex_lock () in
            let ln = C.Work.line () in
            let in_cs = ref 0 in
            let overlap = ref false in
            let writes = ref 0 in
            let crit () =
              C.Lock.lock l;
              incr in_cs;
              if !in_cs > 1 then overlap := true;
              C.Work.read_line ln;
              C.Work.poll ();
              C.Work.write_line ln ~bytes:8;
              incr writes;
              decr in_cs;
              C.Lock.unlock l
            in
            C.spawn crit;
            crit ();
            join ();
            check (C.Proc.nodes () = 2) "numa lock: topology not in effect";
            check (not !overlap) "numa lock: exclusion violated across nodes";
            check (!writes = 2) "numa lock: a node lost its line write"))

  (* Node-aware work stealing across the link: with one proc per node, all
     of proc 0's steals are remote (the same-node sweep sees nobody), so
     this drives the cross-node half of the victim sweep.  Work pushed on
     node 1 must remain reachable from node 0 — node awareness is a
     preference, never a partition — and nothing may be lost or doubled. *)
  let numa_ws_steal_scenario =
    with_nodes 2 (fun () ->
        C.run (fun () ->
            let module Pol = Mpthreads.Sched_policy.Make (C) in
            let (module S) = Pol.instance Mpthreads.Sched_policy.Ws in
            let q = S.create ~procs:2 in
            S.prepare q ~procs:2;
            let got = ref [] in
            let consume ~proc =
              match S.take q ~proc with
              | Some v -> got := v :: !got
              | None -> ()
            in
            (* The ws deques are lock-free (no visible cell ops under the
               checker), so interleave at explicit poll points: every
               ordering of the two procs' pushes and takes is explored. *)
            C.spawn (fun () ->
                S.push_local q ~proc:1 10;
                C.Work.poll ();
                S.push_local q ~proc:1 11;
                consume ~proc:1);
            S.push_local q ~proc:0 20;
            C.Work.poll ();
            consume ~proc:0;
            join ();
            (* drain the remainder from node 0: remote steals *)
            let rec drain budget =
              if budget > 0 then
                match S.take q ~proc:0 with
                | Some v ->
                    got := v :: !got;
                    drain (budget - 1)
                | None -> if S.looks_nonempty q ~proc:0 then drain (budget - 1)
            in
            drain 16;
            check
              (List.sort compare !got = [ 10; 11; 20 ])
              "numa ws: lost, duplicated or invented an element";
            check
              (not (S.looks_nonempty q ~proc:0))
              "numa ws: emptiness hint stuck nonempty on a drained queue"))

  (* Sharer-set discipline with a REMOTE reader, checked directly on
     [line_sharers] under every interleaving: after a read the reader's
     node holds the line; a write invalidates every remote copy, leaving
     exactly the writer's node; and the set never names a node outside
     the topology.  The checks piggyback on the atomic tail of each line
     operation's slice, so they observe the line state the operation
     itself produced, not a later proc's. *)
  let numa_remote_sharers_scenario =
    with_nodes 2 (fun () ->
        C.run (fun () ->
            let ln = C.Work.line () in
            let bad = ref None in
            let expect cond what =
              if (not cond) && !bad = None then bad := Some what
            in
            let my_bit () = 1 lsl C.Proc.node_of (C.Proc.self ()) in
            let reader () =
              C.Work.read_line ln;
              let s = C.line_sharers ln in
              expect (s land my_bit () <> 0) "reader's node not a sharer";
              expect (s land lnot 3 = 0) "sharer outside the 2-node topology"
            in
            C.spawn (fun () ->
                reader ();
                C.Work.poll ();
                C.Work.write_line ln ~bytes:8;
                expect
                  (C.line_sharers ln = my_bit ())
                  "write left a remote sharer valid");
            reader ();
            C.Work.poll ();
            reader ();
            join ();
            (match !bad with
            | Some what -> fail "numa sharers: %s" what
            | None -> ());
            check (C.Proc.nodes () = 2) "numa sharers: topology not in effect";
            let s = C.line_sharers ln in
            check (s <> 0) "numa sharers: line ended with no holder";
            check (s land lnot 3 = 0) "numa sharers: final set out of range"))

  (* ---- a minimal scheduler for the thread-level packages -------------- *)

  (* Proc-per-thread scheduler with NO internal serialization points: the
     ready queue is a plain [Queue.t] mutated only between visible points
     (slices are atomic), so the decisions explored are exactly those of
     the package under test, not of the scheduler scaffolding.  Must be
     instantiated inside the run body (fresh queue per schedule). *)
  module Tiny () : Mpthreads.Thread_intf.TIMED_SCHED = struct
    let ready : (unit -> unit) Queue.t = Queue.create ()
    let fork f = C.spawn f
    let id () = C.Proc.self ()
    let yield () = C.Work.poll ()
    let reschedule (k, _id) = Queue.push (fun () -> Mp.Engine.throw k ()) ready

    let reschedule_thread (k, v, _id) =
      Queue.push (fun () -> Mp.Engine.throw k v) ready

    let dispatch () =
      C.Work.idle_until ~ready:(fun () -> not (Queue.is_empty ready));
      (Queue.pop ready) ();
      assert false

    let now () = C.Work.now ()
    let at _t _f = failwith "Scenarios.Tiny.at: timers not supported"
  end

  (* ---- sync constructs ------------------------------------------------ *)

  let sync_ivar_scenario () =
    C.run (fun () ->
        let module TS = Tiny () in
        let module Sy = Mpsync.Sync.Make (C) (TS) in
        let iv = Sy.Ivar.create () in
        let got = ref (-1) in
        TS.fork (fun () -> got := Sy.Ivar.read iv);
        Sy.Ivar.fill iv 42;
        join ();
        check (!got = 42) "ivar: reader saw %d, not 42" !got)

  let sync_mvar_scenario () =
    C.run (fun () ->
        let module TS = Tiny () in
        let module Sy = Mpsync.Sync.Make (C) (TS) in
        let mv = Sy.Mvar.create () in
        let got = ref [] in
        TS.fork (fun () ->
            Sy.Mvar.put mv 1;
            Sy.Mvar.put mv 2);
        got := Sy.Mvar.take mv :: !got;
        got := Sy.Mvar.take mv :: !got;
        join ();
        check (List.rev !got = [ 1; 2 ]) "mvar: takes out of order or lost")

  let sync_semaphore_scenario () =
    C.run (fun () ->
        let module TS = Tiny () in
        let module Sy = Mpsync.Sync.Make (C) (TS) in
        let sem = Sy.Semaphore.create 1 in
        let in_cs = ref 0 in
        let overlap = ref false in
        let crit () =
          Sy.Semaphore.acquire sem;
          incr in_cs;
          if !in_cs > 1 then overlap := true;
          C.Work.poll ();
          decr in_cs;
          Sy.Semaphore.release sem
        in
        TS.fork crit;
        crit ();
        join ();
        check (not !overlap) "semaphore: exclusion violated";
        check (Sy.Semaphore.value sem = 1) "semaphore: final value <> 1")

  (* ---- selective communication and CML -------------------------------- *)

  let select_scenario () =
    C.run (fun () ->
        let module TS = Tiny () in
        let module Sel = Select.Make (C) (TS) (Queues.Fifo_queue) in
        let c1 : int Sel.chan = Sel.chan () in
        let c2 : int Sel.chan = Sel.chan () in
        let got = ref (-1) in
        TS.fork (fun () -> Sel.send (c1, 7));
        got := Sel.receive [ c2; c1 ];
        join ();
        check (!got = 7) "select: received %d, not 7" !got)

  let cml_rendezvous_scenario () =
    C.run (fun () ->
        let module TS = Tiny () in
        let module M = Cml.Make (C) (TS) in
        let ch = M.channel () in
        let got = ref (-1) in
        M.spawn (fun () -> M.send ch 9);
        got := M.recv ch;
        join ();
        check (!got = 9) "cml: received %d, not 9" !got)

  let cml_choose_scenario () =
    C.run (fun () ->
        let module TS = Tiny () in
        let module M = Cml.Make (C) (TS) in
        let a = M.channel () in
        let b = M.channel () in
        let got = ref (-1) in
        M.spawn (fun () -> M.send b 5);
        got := M.select [ M.recv_evt a; M.recv_evt b ];
        join ();
        check (!got = 5) "cml: choice delivered %d, not 5" !got)

  (* ---- proc-pool contract --------------------------------------------- *)

  let proc_pool_scenario () =
    C.run (fun () ->
        C.Proc.set_datum 17;
        check (C.Proc.get_datum () = 17) "proc: datum round-trip failed";
        let release = ref false in
        let spawned = ref 0 in
        let exhausted = ref false in
        (try
           for _ = 1 to C.Proc.max_procs () do
             C.spawn (fun () ->
                 C.Work.idle_until ~ready:(fun () -> !release));
             incr spawned
           done
         with Mp.Mp_intf.No_More_Procs -> exhausted := true);
        check
          (!spawned = C.Proc.max_procs () - 1)
          "proc: %d spawns succeeded on a pool of %d" !spawned
          (C.Proc.max_procs ());
        check !exhausted "proc: pool exhaustion did not raise No_More_Procs";
        release := true;
        join ();
        check (C.Proc.get_datum () = 17) "proc: datum clobbered by spawns")

  (* ---- GC cost model accounting --------------------------------------- *)

  (* Two procs drive a shared per-proc minor-heap cost model ([minor_pp],
     the simulator's newest collector) under the platform lock — the way
     the real machine serializes its GC bookkeeping — with tiny regions so
     both the independent-minor path and the promoted-words major trigger
     are reached within the exploration bound.  A mirror of the accounting
     rules is kept in scenario state; on every explored schedule the model
     and the mirror must agree (word conservation, minor/major counts, the
     trigger raised exactly at the promotion budget). *)
  let gc_minor_pp_scenario () =
    C.run (fun () ->
        let region = 16 in
        let survival = 0.5 in
        let module M =
          (val Sim.Gc_model.instance Sim.Gc_model.Minor_pp
                 {
                   Sim.Gc_model.procs = 2;
                   region_words = region;
                   survival;
                   cycles_per_word = 1.0;
                   fixed_cycles = 1;
                   parallelism = 1.0;
                   minor_fixed_cycles = 1;
                   barrier_cycles = 1;
                 })
        in
        let minor_region = max 1 (region / 2) in
        let l = C.Lock.mutex_lock () in
        let used = [| 0; 0 |] in
        let promoted = ref 0 in
        let minors = ref 0 in
        let majors = ref 0 in
        let allocated = ref 0 in
        let collected = ref 0 in
        let alloc proc words =
          C.Lock.lock l;
          allocated := !allocated + words;
          (if M.admit ~proc ~words then begin
             C.Work.poll ();
             (* the admission stays valid across the visible point: only
                the lock holder may touch the model *)
             M.commit_fast ~proc ~words;
             used.(proc) <- used.(proc) + words
           end
           else begin
             let pause, got = M.alloc_slow ~proc ~words in
             used.(proc) <- used.(proc) + words;
             if used.(proc) >= minor_region then begin
               check (got = used.(proc))
                 "gc: minor scanned %d words, region held %d" got used.(proc);
               check (pause > 0) "gc: minor collection priced at 0 cycles";
               incr minors;
               collected := !collected + got;
               promoted :=
                 !promoted
                 + int_of_float (survival *. float_of_int used.(proc));
               used.(proc) <- 0
             end
             else
               check
                 (pause = 0 && got = 0)
                 "gc: phantom collection (pause %d, scanned %d)" pause got
           end);
          check
            (M.region_used () = !promoted)
            "gc: promoted %d words, model says %d" !promoted (M.region_used ());
          check
            (!M.pending = (!promoted >= region))
            "gc: major trigger %b at %d/%d promoted words" !M.pending !promoted
            region;
          if !M.pending then begin
            let e = M.episode ~waiters:2 in
            check
              (e.Sim.Gc_model.kind = Sim.Gc_model.Major)
              "gc: pending episode not a major";
            check
              (e.Sim.Gc_model.region_words = !promoted)
              "gc: major collects %d words, %d promoted"
              e.Sim.Gc_model.region_words !promoted;
            M.finish_episode e;
            incr majors;
            promoted := 0
          end;
          C.Lock.unlock l
        in
        C.spawn (fun () -> List.iter (alloc 1) [ 3; 5; 7; 2 ]);
        List.iter (alloc 0) [ 4; 6; 2; 5 ];
        join ();
        check
          (M.minor_collections () = !minors)
          "gc: %d minors ran, model counted %d" !minors
          (M.minor_collections ());
        check
          (M.major_collections () = !majors)
          "gc: %d majors ran, model counted %d" !majors
          (M.major_collections ());
        check
          (!allocated = !collected + used.(0) + used.(1))
          "gc: %d words allocated but %d scanned + %d resident" !allocated
          !collected
          (used.(0) + used.(1)))

  (* The major-trigger race on the per-proc collector: a promotion from
     one proc's independent minor collection can raise [pending] while
     the other proc sits between its unlocked observation of the trigger
     and its locked double-check.  Exactly one major may run per trigger
     — the race loser must find the trigger already cleared — and a lost
     race must never re-collect the freshly reset region (a double major
     would surface as a zero-word episode). *)
  let gc_major_race_scenario () =
    C.run (fun () ->
        let region = 8 in
        let module M =
          (val Sim.Gc_model.instance Sim.Gc_model.Minor_pp
                 {
                   Sim.Gc_model.procs = 2;
                   region_words = region;
                   survival = 1.0;
                   cycles_per_word = 1.0;
                   fixed_cycles = 1;
                   parallelism = 1.0;
                   minor_fixed_cycles = 1;
                   barrier_cycles = 1;
                 })
        in
        let l = C.Lock.mutex_lock () in
        let majors = ref 0 in
        let alloc proc words =
          C.Lock.lock l;
          (if M.admit ~proc ~words then M.commit_fast ~proc ~words
           else ignore (M.alloc_slow ~proc ~words));
          C.Lock.unlock l;
          (* unlocked observation of the trigger ... *)
          if !M.pending then begin
            C.Work.poll ();
            (* ... the other proc can slip in here ... *)
            C.Lock.lock l;
            (* ... so re-check under the lock before collecting *)
            if !M.pending then begin
              let e = M.episode ~waiters:2 in
              check
                (e.Sim.Gc_model.kind = Sim.Gc_model.Major)
                "gc race: pending episode not a major";
              check
                (e.Sim.Gc_model.region_words > 0)
                "gc race: major collected an already-reset region";
              M.finish_episode e;
              incr majors
            end;
            C.Lock.unlock l
          end
        in
        C.spawn (fun () -> List.iter (alloc 1) [ 2; 2; 2; 2 ]);
        List.iter (alloc 0) [ 2; 2; 2; 2 ];
        join ();
        (* drain a trailing trigger so the final accounting is exact *)
        if !M.pending then begin
          let e = M.episode ~waiters:1 in
          M.finish_episode e;
          incr majors
        end;
        check
          (M.major_collections () = !majors)
          "gc race: %d majors ran, model counted %d" !majors
          (M.major_collections ());
        check (not !M.pending) "gc race: trigger left pending after the drain";
        (* a late major may collect more than one trigger-worth and a last
           minor may promote a sub-trigger residue, but a full trigger's
           worth must never survive uncollected *)
        check
          (M.region_used () < region)
          "gc race: %d promoted words left, trigger is %d" (M.region_used ())
          region)

  (* ---- the full thread package (heavy) -------------------------------- *)

  let threads_scenario ?sched () =
    C.run (fun () ->
        let module S = Mpthreads.Sched_thread.Make (C) in
        let hits = ref 0 in
        S.with_pool ~procs:2 ~quantum:1e6 ?sched (fun () ->
            S.fork_join [ (fun () -> incr hits); (fun () -> incr hits) ]);
        check (!hits = 2) "threads: fork_join lost a task")

  let all =
    [
      ("lock_tas", mutex_scenario (module T_tas));
      ("lock_ttas", mutex_scenario (module T_ttas));
      ("lock_backoff", mutex_scenario (module T_backoff));
      ("lock_ticket", mutex_scenario (module T_ticket));
      ("lock_clh", mutex_scenario (module T_clh));
      ("lock_anderson", mutex_scenario (module T_anderson));
      ("lock_mcs", mutex_scenario (module T_mcs));
      ("lock_hwpool", mutex_scenario (module T_hwpool));
      ("lock_rw_spin", rw_scenario);
      ("lock_tas_disjoint", disjoint_scenario (module T_tas));
      ("lock_ticket_disjoint", disjoint_scenario (module T_ticket));
      ("lock_mcs_disjoint", disjoint_scenario (module T_mcs));
      ("queue_ws_deque", ws_deque_scenario);
      ("queue_spmc", spmc_queue_scenario);
      ("sched_micropool_affinity", micropool_affinity_scenario);
      ("sched_ws_steal_half", ws_steal_half_scenario);
      ("queue_multi", multi_queue_scenario);
      ("queue_bounded", bounded_queue_scenario);
      ("server_pipeline", server_pipeline_scenario ~broken:false);
      ("sync_ivar", sync_ivar_scenario);
      ("sync_mvar", sync_mvar_scenario);
      ("sync_semaphore", sync_semaphore_scenario);
      ("select_rendezvous", select_scenario);
      ("cml_rendezvous", cml_rendezvous_scenario);
      ("cml_choose", cml_choose_scenario);
      ("proc_pool", proc_pool_scenario);
      ("numa_lock_invalidation", numa_lock_invalidation_scenario);
      ("numa_ws_steal", numa_ws_steal_scenario);
      ("numa_remote_sharers", numa_remote_sharers_scenario);
      ("gc_minor_pp", gc_minor_pp_scenario);
      ("gc_minor_pp_major_race", gc_major_race_scenario);
    ]

  (* One pool scenario per scheduler policy: the whole family must survive
     bounded schedule exploration, not just the golden-pinned default. *)
  let heavy =
    ("threads_pool", threads_scenario ?sched:None)
    :: List.map
         (fun p ->
           ( "threads_pool_" ^ Mpthreads.Sched_policy.to_string p,
             threads_scenario ~sched:p ))
         Mpthreads.Sched_policy.
           [ Fifo; Lifo; Distributed; Ws; Micropools 2 ]
  let broken =
    [
      ("broken_tas", mutex_scenario (module Broken_tas));
      ("broken_server_drop", server_pipeline_scenario ~broken:true);
    ]
end
