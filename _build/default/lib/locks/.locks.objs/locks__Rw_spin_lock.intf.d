lib/locks/rw_spin_lock.mli: Lock_intf
