lib/workloads/graph.mli:
