exception Empty = Queue_intf.Empty

type 'a queue = {
  mutable items : 'a array;
  mutable size : int;
  rng : Random.State.t;
}

let create_seeded seed =
  { items = [||]; size = 0; rng = Random.State.make [| seed |] }

let create () = create_seeded 0

let grow q =
  let cap = max 8 (2 * Array.length q.items) in
  let items = Array.make cap q.items.(0) in
  Array.blit q.items 0 items 0 q.size;
  q.items <- items

let enq q x =
  if q.size = 0 && Array.length q.items = 0 then q.items <- Array.make 8 x;
  if q.size = Array.length q.items then grow q;
  q.items.(q.size) <- x;
  q.size <- q.size + 1

let deq q =
  if q.size = 0 then raise Empty;
  let i = Random.State.int q.rng q.size in
  let x = q.items.(i) in
  q.size <- q.size - 1;
  q.items.(i) <- q.items.(q.size);
  x

let deq_opt q = match deq q with x -> Some x | exception Empty -> None
let length q = q.size
let is_empty q = q.size = 0
