(** CSP-style selective communication — the paper's Figures 4 and 5.

    Dynamically created polymorphic channels; [send] blocks until a receiver
    takes the value; [receive] takes a list of channels and
    nondeterministically receives from one of them.  The commit protocol is
    the paper's: each receiver carries a [committed] mutex lock that the
    winning sender claims with [try_lock]; a receiver that cannot claim its
    own lock has already been served and abandons its attempt.

    One deliberate fix to Figure 5 as printed: when a receiver dequeues a
    blocked sender but then loses the race for its own [committed] lock, the
    figure drops that sender on the floor (it would block forever); we
    re-enqueue it before dispatching.

    The channel scan order is pseudo-random as in the paper ("loop through
    the channels in pseudo-random order"); it is deterministic per seed. *)

module Make
    (P : Mp.Mp_intf.PLATFORM_INT)
    (S : Mpthreads.Thread_intf.SCHED)
    (Q : Queues.Queue_intf.QUEUE_EXT) : sig
  type 'a chan

  val chan : unit -> 'a chan

  val send : 'a chan * 'a -> unit
  (** Send a value, blocking until some receiver takes it. *)

  val receive : 'a chan list -> 'a
  (** Receive a value from one of the channels, blocking until a sender on
      one of them commits to this receiver. *)

  val set_seed : int -> unit
  (** Reseed the pseudo-random channel scan (test determinism). *)

  val pending : 'a chan -> int * int
  (** (blocked senders, parked receiver records) — introspection for tests;
      receiver records may be stale (already committed elsewhere). *)
end
