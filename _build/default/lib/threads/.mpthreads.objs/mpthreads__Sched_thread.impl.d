lib/threads/sched_thread.ml: Array Atomic Engine Kont_util List Mp Mp_intf Queues
