lib/locks/anderson_lock.mli: Lock_intf
