(* CML prototype: events, combinators, synchronous channels, choice.
   Runs on the deterministic simulated backend. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

module P =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:4 ()
    end)
    ()

module S = Mpthreads.Sched_thread.Make (P)
module C = Cml.Make (P) (S)

let in_pool f = P.run (fun () -> S.with_pool f)

(* ---------------- base events ---------------- *)

let test_always () = check "always" 5 (in_pool (fun () -> C.sync (C.always 5)))

let test_send_recv () =
  let v =
    in_pool (fun () ->
        let ch = C.channel () in
        C.spawn (fun () -> C.send ch 13);
        C.recv ch)
  in
  check "rendezvous" 13 v

let test_recv_before_send () =
  let v =
    in_pool (fun () ->
        let ch = C.channel () in
        let got = ref 0 in
        C.spawn (fun () -> got := C.recv ch);
        S.yield ();
        C.send ch 21;
        while !got = 0 do
          S.yield ()
        done;
        !got)
  in
  check "receiver first" 21 v

let test_send_blocks_until_received () =
  let v =
    in_pool (fun () ->
        let ch = C.channel () in
        let sent = ref false in
        C.spawn (fun () ->
            C.send ch 1;
            sent := true);
        S.yield ();
        checkb "send is synchronous" false !sent;
        let v = C.recv ch in
        while not !sent do
          S.yield ()
        done;
        v)
  in
  check "value" 1 v

let test_recv_poll () =
  in_pool (fun () ->
      let ch = C.channel () in
      Alcotest.(check (option int)) "nothing" None (C.recv_poll ch);
      C.spawn (fun () -> C.send ch 2);
      (* wait for the sender to park *)
      let rec poll_until n =
        match C.recv_poll ch with
        | Some _ as hit -> hit
        | None ->
            if n = 0 then None
            else begin
              S.yield ();
              poll_until (n - 1)
            end
      in
      Alcotest.(check (option int)) "sender waiting" (Some 2) (poll_until 100))

(* ---------------- combinators ---------------- *)

let test_wrap () =
  let v =
    in_pool (fun () ->
        let ch = C.channel () in
        C.spawn (fun () -> C.send ch 10);
        C.sync (C.wrap (C.recv_evt ch) (fun x -> x * 3)))
  in
  check "wrapped" 30 v

let test_wrap_composition () =
  let v =
    in_pool (fun () ->
        C.sync (C.wrap (C.wrap (C.always 1) (fun x -> x + 1)) (fun x -> x * 10)))
  in
  check "wrap composes outward" 20 v

let test_wrap_runs_in_syncing_thread () =
  let v =
    in_pool (fun () ->
        let ch = C.channel () in
        let wrapper_tid = ref (-1) in
        let my_tid = S.id () in
        C.spawn (fun () -> C.send ch 1);
        let _ =
          C.sync
            (C.wrap (C.recv_evt ch)
               (fun x ->
                 wrapper_tid := S.id ();
                 x))
        in
        checkb "wrap ran in the syncing thread" true (!wrapper_tid = my_tid);
        1)
  in
  check "done" 1 v

let test_guard_forced_at_sync () =
  let forced = ref 0 in
  let v =
    in_pool (fun () ->
        let ev =
          C.guard (fun () ->
              incr forced;
              C.always 7)
        in
        check "guard not yet forced" 0 !forced;
        let a = C.sync ev in
        let b = C.sync ev in
        check "forced once per sync" 2 !forced;
        a + b)
  in
  check "values" 14 v

let test_choose_takes_ready () =
  C.set_seed 5;
  let v =
    in_pool (fun () ->
        let c1 = C.channel () and c2 = C.channel () in
        C.spawn (fun () -> C.send c2 9);
        S.yield ();
        C.select [ C.recv_evt c1; C.recv_evt c2 ])
  in
  check "ready branch" 9 v

let test_choose_always_vs_blocked () =
  let v =
    in_pool (fun () ->
        let ch = C.channel () in
        C.select [ C.recv_evt ch; C.always 42 ])
  in
  check "always wins over empty channel" 42 v

let test_choose_blocks_until_any () =
  let v =
    in_pool (fun () ->
        let c1 = C.channel () and c2 = C.channel () in
        let got = ref 0 in
        C.spawn (fun () -> got := C.select [ C.recv_evt c1; C.recv_evt c2 ]);
        S.yield ();
        checkb "choice blocked" true (!got = 0);
        C.send c1 6;
        while !got = 0 do
          S.yield ()
        done;
        !got)
  in
  check "woken by either branch" 6 v

let test_choice_commits_once () =
  (* registering on two channels, then senders race on both: exactly one
     delivery reaches the chooser *)
  let v =
    in_pool (fun () ->
        let c1 = C.channel () and c2 = C.channel () in
        let got = ref 0 in
        C.spawn (fun () -> got := C.select [ C.recv_evt c1; C.recv_evt c2 ]);
        S.yield ();
        let s1 = ref false and s2 = ref false in
        C.spawn (fun () ->
            C.send c1 100;
            s1 := true);
        C.spawn (fun () ->
            C.send c2 200;
            s2 := true);
        while !got = 0 do
          S.yield ()
        done;
        (* one sender is still blocked: its send did not complete *)
        S.yield ();
        let completed = (if !s1 then 1 else 0) + (if !s2 then 1 else 0) in
        check "exactly one sender completed" 1 completed;
        (* drain the other sender *)
        let other = C.select [ C.recv_evt c1; C.recv_evt c2 ] in
        !got + other)
  in
  check "both values delivered exactly once overall" 300 v

let test_send_evt_in_choice () =
  let v =
    in_pool (fun () ->
        let ch = C.channel () in
        let got = ref 0 in
        C.spawn (fun () -> got := C.recv ch);
        S.yield ();
        (* choice between sending and an impossible recv *)
        let dead = C.channel () in
        C.select
          [
            C.wrap (C.send_evt ch 33) (fun () -> 1);
            C.wrap (C.recv_evt dead) (fun _ -> 2);
          ]
        |> fun branch ->
        while !got = 0 do
          S.yield ()
        done;
        (branch * 100) + !got)
  in
  check "send branch chosen, value delivered" 133 v

let test_never_in_choice () =
  let v =
    in_pool (fun () -> C.select [ C.never; C.always 3; C.never ])
  in
  check "never is neutral" 3 v

let test_guard_of_choice () =
  let v =
    in_pool (fun () ->
        let ch = C.channel () in
        C.spawn (fun () -> C.send ch 5);
        S.yield ();
        C.sync (C.guard (fun () -> C.choose [ C.recv_evt ch; C.never ])))
  in
  check "guard producing choice" 5 v

(* ---------------- timeouts ---------------- *)

let test_timeout_fires () =
  let v =
    in_pool (fun () ->
        let ch = C.channel () in
        (* nobody ever sends: the timeout branch must win *)
        C.recv_timeout ch 0.05)
  in
  Alcotest.(check (option int)) "timed out" None v

let test_timeout_loses_to_ready_sender () =
  let v =
    in_pool (fun () ->
        let ch = C.channel () in
        C.spawn (fun () -> C.send ch 5);
        S.yield ();
        C.recv_timeout ch 10.)
  in
  Alcotest.(check (option int)) "sender won" (Some 5) v

let test_timeout_virtual_duration () =
  let elapsed =
    in_pool (fun () ->
        let t0 = S.now () in
        C.sleep 0.2;
        S.now () -. t0)
  in
  checkb "slept about the requested time" true
    (elapsed >= 0.2 && elapsed < 0.3)

let test_timeout_sender_arrives_later () =
  let v =
    in_pool (fun () ->
        let ch = C.channel () in
        C.spawn (fun () ->
            S.sleep 0.02;
            C.send ch 9);
        C.recv_timeout ch 1.0)
  in
  Alcotest.(check (option int)) "late sender still beats long timeout" (Some 9) v

let test_timeout_stale_after_commit () =
  (* the losing timeout of a committed choice must not corrupt later syncs *)
  let v =
    in_pool (fun () ->
        let ch = C.channel () in
        C.spawn (fun () -> C.send ch 1);
        S.yield ();
        let first = C.recv_timeout ch 0.05 in
        (* wait past the dead timeout's expiry *)
        C.sleep 0.1;
        let second = C.recv_timeout ch 0.01 in
        (first, second))
  in
  Alcotest.(check (pair (option int) (option int)))
    "timeout of a won choice is inert"
    (Some 1, None)
    v

(* ---------------- pipelines / stress ---------------- *)

let test_pipeline_of_filters () =
  (* a 3-stage adder pipeline *)
  let v =
    in_pool (fun () ->
        let stage input =
          let output = C.channel () in
          C.spawn (fun () ->
              while true do
                C.send output (C.recv input + 1)
              done);
          output
        in
        let c0 = C.channel () in
        let c3 = stage (stage (stage c0)) in
        C.spawn (fun () ->
            for i = 1 to 10 do
              C.send c0 i
            done);
        let acc = ref 0 in
        for _ = 1 to 10 do
          acc := !acc + C.recv c3
        done;
        !acc)
  in
  check "10 values through 3 stages" (55 + 30) v

let test_ping_pong () =
  let v =
    in_pool (fun () ->
        let ping = C.channel () and pong = C.channel () in
        C.spawn (fun () ->
            for _ = 1 to 50 do
              let x = C.recv ping in
              C.send pong (x + 1)
            done);
        let acc = ref 0 in
        for i = 1 to 50 do
          C.send ping i;
          acc := !acc + C.recv pong
        done;
        !acc)
  in
  check "50 round trips" (50 + (50 * 51 / 2)) v

let test_many_to_one () =
  let v =
    in_pool (fun () ->
        let ch = C.channel () in
        for i = 1 to 30 do
          C.spawn (fun () -> C.send ch i)
        done;
        let acc = ref 0 in
        for _ = 1 to 30 do
          acc := !acc + C.recv ch
        done;
        !acc)
  in
  check "fan-in" 465 v

(* ---------------- wrap_abort ---------------- *)

let test_wrap_abort_loser_runs () =
  let aborted = ref [] in
  let v =
    in_pool (fun () ->
        C.select
          [
            C.wrap_abort (C.always 1) (fun () -> aborted := 1 :: !aborted);
            C.wrap_abort C.never (fun () -> aborted := 2 :: !aborted);
          ])
  in
  check "always branch chosen" 1 v;
  Alcotest.(check (list int)) "only the loser aborted" [ 2 ] !aborted

let test_wrap_abort_winner_skipped () =
  let aborted = ref false in
  let v =
    in_pool (fun () ->
        C.sync (C.wrap_abort (C.always 9) (fun () -> aborted := true)))
  in
  check "value" 9 v;
  checkb "sole branch never aborts" false !aborted

let test_wrap_abort_on_blocked_choice () =
  let aborted = ref 0 in
  let v =
    in_pool (fun () ->
        let c1 = C.channel () and c2 = C.channel () in
        C.spawn (fun () -> C.send c1 5);
        (* block, then get committed via c1; c2's abort must run *)
        C.select
          [
            C.recv_evt c1;
            C.wrap_abort (C.recv_evt c2) (fun () -> incr aborted);
          ])
  in
  check "received" 5 v;
  check "losing branch aborted once" 1 !aborted

(* ---------------- event algebra properties ---------------- *)

(* random event trees over always/never/wrap/guard/choose, with the multiset
   of reachable leaf values tracked alongside *)
let rec gen_tree depth rng =
  let leaf () =
    let v = Random.State.int rng 1000 in
    (C.always v, [ v ])
  in
  if depth = 0 then leaf ()
  else
    match Random.State.int rng 5 with
    | 0 -> leaf ()
    | 1 -> (C.never, [])
    | 2 ->
        let e, vs = gen_tree (depth - 1) rng in
        (C.wrap e (fun x -> x + 1), List.map (fun v -> v + 1) vs)
    | 3 ->
        let e, vs = gen_tree (depth - 1) rng in
        (C.guard (fun () -> e), vs)
    | _ ->
        let a, va = gen_tree (depth - 1) rng in
        let b, vb = gen_tree (depth - 1) rng in
        (C.choose [ a; b ], va @ vb)

let prop_sync_returns_reachable_leaf =
  QCheck.Test.make ~name:"sync of a choice tree returns a reachable leaf"
    ~count:60
    QCheck.(pair small_int (int_range 0 4))
    (fun (seed, depth) ->
      let rng = Random.State.make [| seed; depth |] in
      let ev, leaves = gen_tree depth rng in
      match leaves with
      | [] -> true (* pure-never tree: syncing would block; skip *)
      | _ ->
          let v = in_pool (fun () -> C.sync ev) in
          List.mem v leaves)

let prop_wrap_distributes_over_choose =
  QCheck.Test.make
    ~name:"wrap (choose es) f ~ choose (map (wrap f) es) (reachable sets)"
    ~count:40 QCheck.small_int
    (fun seed ->
      let rng = Random.State.make [| seed; 99 |] in
      let a, va = gen_tree 2 rng in
      let b, vb = gen_tree 2 rng in
      let f x = (x * 2) + 1 in
      let expected = List.map f (va @ vb) in
      match expected with
      | [] -> true
      | _ ->
          let v1 = in_pool (fun () -> C.sync (C.wrap (C.choose [ a; b ]) f)) in
          let v2 =
            in_pool (fun () ->
                C.sync (C.choose [ C.wrap a f; C.wrap b f ]))
          in
          List.mem v1 expected && List.mem v2 expected)

let qt = Testkit.to_alcotest

let () =
  Alcotest.run "cml"
    [
      ( "base",
        [
          Alcotest.test_case "always" `Quick test_always;
          Alcotest.test_case "send/recv" `Quick test_send_recv;
          Alcotest.test_case "recv before send" `Quick test_recv_before_send;
          Alcotest.test_case "send is synchronous" `Quick
            test_send_blocks_until_received;
          Alcotest.test_case "recv_poll" `Quick test_recv_poll;
        ] );
      ( "combinators",
        [
          Alcotest.test_case "wrap" `Quick test_wrap;
          Alcotest.test_case "wrap composition" `Quick test_wrap_composition;
          Alcotest.test_case "wrap thread" `Quick
            test_wrap_runs_in_syncing_thread;
          Alcotest.test_case "guard at sync" `Quick test_guard_forced_at_sync;
          Alcotest.test_case "choose ready" `Quick test_choose_takes_ready;
          Alcotest.test_case "choose always" `Quick
            test_choose_always_vs_blocked;
          Alcotest.test_case "choose blocks" `Quick test_choose_blocks_until_any;
          Alcotest.test_case "choice commits once" `Quick
            test_choice_commits_once;
          Alcotest.test_case "send event in choice" `Quick
            test_send_evt_in_choice;
          Alcotest.test_case "never neutral" `Quick test_never_in_choice;
          Alcotest.test_case "guard of choice" `Quick test_guard_of_choice;
        ] );
      ( "timeouts",
        [
          Alcotest.test_case "fires" `Quick test_timeout_fires;
          Alcotest.test_case "loses to ready sender" `Quick
            test_timeout_loses_to_ready_sender;
          Alcotest.test_case "virtual duration" `Quick
            test_timeout_virtual_duration;
          Alcotest.test_case "late sender" `Quick
            test_timeout_sender_arrives_later;
          Alcotest.test_case "stale timeout inert" `Quick
            test_timeout_stale_after_commit;
        ] );
      ( "pipelines",
        [
          Alcotest.test_case "filters" `Quick test_pipeline_of_filters;
          Alcotest.test_case "ping pong" `Quick test_ping_pong;
          Alcotest.test_case "fan-in" `Quick test_many_to_one;
        ] );
      ( "wrap_abort",
        [
          Alcotest.test_case "loser runs" `Quick test_wrap_abort_loser_runs;
          Alcotest.test_case "winner skipped" `Quick
            test_wrap_abort_winner_skipped;
          Alcotest.test_case "blocked choice" `Quick
            test_wrap_abort_on_blocked_choice;
        ] );
      ( "properties",
        [ qt prop_sync_returns_reachable_leaf; qt prop_wrap_distributes_over_choose ] );
    ]
