lib/workloads/euclid.mli:
