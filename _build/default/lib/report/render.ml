let table fmt ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell ->
         if i < cols then width.(i) <- max width.(i) (String.length cell)))
    all;
  let print_row r =
    List.iteri
      (fun i cell ->
        if i > 0 then Format.pp_print_string fmt "  ";
        Format.fprintf fmt "%-*s" width.(i) cell)
      r;
    Format.pp_print_newline fmt ()
  in
  print_row header;
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') width)) in
  Format.fprintf fmt "%s@." rule;
  List.iter print_row rows

let section fmt title =
  let bar = String.make (String.length title + 8) '=' in
  Format.fprintf fmt "@.%s@.==  %s  ==@.%s@.@." bar title bar

let series fmt ~xlabel ~xs ~rows =
  let header = xlabel :: List.map string_of_int xs in
  let rows =
    List.map
      (fun (name, vals) ->
        name :: List.map (fun v -> Printf.sprintf "%.2f" v) vals)
      rows
  in
  table fmt ~header ~rows

let chart fmt ~xs ~rows ?(height = 16) () =
  let max_y =
    List.fold_left
      (fun acc (_, vals) -> List.fold_left max acc vals)
      1. rows
  in
  let n = List.length xs in
  let width = n * 4 in
  let grid = Array.make_matrix (height + 1) width ' ' in
  let plot c col v =
    let row = int_of_float (v /. max_y *. float_of_int height +. 0.5) in
    let row = max 0 (min height row) in
    if grid.(height - row).(col) = ' ' then grid.(height - row).(col) <- c
    else grid.(height - row).(col) <- '*'
  in
  (* linear-ideal reference *)
  List.iteri
    (fun i x -> if float_of_int x <= max_y then plot '.' (i * 4) (float_of_int x))
    xs;
  List.iteri
    (fun r (_, vals) ->
      let c = Char.chr (Char.code 'A' + (r mod 26)) in
      List.iteri (fun i v -> plot c (i * 4) v) vals)
    rows;
  Array.iteri
    (fun i line ->
      let y = max_y *. float_of_int (height - i) /. float_of_int height in
      Format.fprintf fmt "%6.1f |%s@." y (String.init width (fun j -> line.(j))))
    grid;
  Format.fprintf fmt "       +%s@." (String.make width '-');
  Format.fprintf fmt "        %s@."
    (String.concat ""
       (List.map (fun x -> Printf.sprintf "%-4d" x) xs));
  List.iteri
    (fun r (name, _) ->
      Format.fprintf fmt "        %c = %s@."
        (Char.chr (Char.code 'A' + (r mod 26)))
        name)
    rows
