(** SGI-style hardware-lock-pool multiplexer (paper §5).

    The MIPS R3000 has no test-and-set instruction; the SGI 4D/380S instead
    provides "a limited number of hardware locks, implemented by a separate
    lock memory and bus", which the runtime uses "to control an extensible
    set of software locks implemented as ML ref cells".  This module
    reproduces that design: a fixed pool of primitive locks guards an
    unbounded population of one-bit software locks, each hashed onto a pool
    entry. *)

module Make (P : Lock_intf.PRIMS) : sig
  include Lock_intf.LOCK_EXT

  val pool_size : int
  (** Number of simulated hardware locks (64, the order of magnitude of the
      SGI's lock memory). *)

  val pool_index : mutex_lock -> int
  (** Which hardware lock guards this software lock (for collision tests). *)
end
