module Make
    (C : sig
      val max_procs : int
    end)
    (D : Mp_intf.DATUM) : Mp_intf.PLATFORM with type Proc.proc_datum = D.t = struct
  let name = "domains"
  let max_procs = max 1 C.max_procs

  module Kont = struct
    type 'a cont = 'a Engine.cont

    let callcc = Engine.callcc
    let throw = Engine.throw
    let throw_exn = Engine.throw_exn
  end

  type slot_state = Free | Busy

  type slot = {
    id : int;
    mutable datum : D.t;
    mutable state : slot_state;
    mutable inbox : Engine.action option;
    mutable domain : unit Domain.t option;
    stats : Stats.proc_stats;
  }

  let m = Mutex.create ()
  let cond = Condition.create ()
  let quit = ref false
  let running = ref false
  let result_ready = ref false (* root result or escaped exception available *)
  let escaped : exn option ref = ref None
  let current_on_exn : (exn -> Engine.action) ref = ref (fun e -> raise e)

  let slots =
    Array.init max_procs (fun id ->
        {
          id;
          datum = D.initial;
          state = Free;
          inbox = None;
          domain = None;
          stats = Stats.make_proc_stats ();
        })

  let proc_key = Domain.DLS.new_key (fun () -> -1)

  module Telemetry = Mp_intf.Telemetry_of (struct
    (* One stream per proc: each domain records only into its own ring, so
       recording stays single-writer and lock-free.  Emissions from outside
       any proc fall back to stream 0 (see [Obs.Telemetry.emit]). *)
    let handle =
      Obs.Telemetry.create ~streams:max_procs
        ~stream_of:(fun () -> Domain.DLS.get proc_key)
        ~now_ts:Mp_intf.host_ns ()
  end)

  let my_slot () =
    let id = Domain.DLS.get proc_key in
    if id < 0 then invalid_arg "Mp_domains: not running on an MP proc";
    slots.(id)

  let rec exec action =
    match action with
    | Engine.Resume (c, v) -> exec (Engine.resume c v)
    | Engine.Raise (c, e) -> exec (Engine.resume_exn c e)
    | Engine.Start f -> exec (Engine.run_fiber ~on_exn:!current_on_exn f)
    | Engine.Stop -> ()
    | _ -> raise Engine.Unhandled_action

  (* Run one delivery: execute [action] until this proc stops, then mark the
     slot free.  Busy time and minor-heap allocation (a per-domain counter
     in OCaml 5, so the delta is this proc's own) are accounted to the
     slot. *)
  let serve slot action =
    let t0 = Unix.gettimeofday () in
    let w0 = Gc.minor_words () in
    if Telemetry.enabled () then
      Telemetry.emit
        (Obs.Event.Dispatch { proc = slot.id; clock = Telemetry.now_ts () });
    exec action;
    slot.stats.busy <- slot.stats.busy +. (Unix.gettimeofday () -. t0);
    slot.stats.alloc_words <-
      slot.stats.alloc_words + int_of_float (Gc.minor_words () -. w0);
    if Telemetry.enabled () then
      Telemetry.emit
        (Obs.Event.Freed { proc = slot.id; clock = Telemetry.now_ts () });
    Mutex.lock m;
    slot.state <- Free;
    Condition.broadcast cond;
    Mutex.unlock m

  let worker id () =
    Domain.DLS.set proc_key id;
    let slot = slots.(id) in
    let rec loop () =
      Mutex.lock m;
      let w0 = Unix.gettimeofday () in
      while slot.inbox = None && not !quit do
        Condition.wait cond m
      done;
      slot.stats.idle <- slot.stats.idle +. (Unix.gettimeofday () -. w0);
      match slot.inbox with
      | None ->
          (* quit requested *)
          Mutex.unlock m
      | Some action ->
          slot.inbox <- None;
          Mutex.unlock m;
          serve slot action;
          loop ()
    in
    loop ()

  module Proc = struct
    type proc_datum = D.t
    type proc_state = PS of unit Engine.cont * proc_datum

    exception No_More_Procs = Mp_intf.No_More_Procs

    let acquire_proc (PS (cont, datum)) =
      Mutex.lock m;
      let rec find i =
        if i >= max_procs then None
        else if slots.(i).state = Free then Some slots.(i)
        else find (i + 1)
      in
      match find 0 with
      | None ->
          Mutex.unlock m;
          raise No_More_Procs
      | Some slot ->
          slot.state <- Busy;
          slot.datum <- datum;
          slot.inbox <- Some (Engine.Resume (cont, ()));
          if slot.domain = None && slot.id <> 0 then
            slot.domain <- Some (Domain.spawn (worker slot.id));
          Condition.broadcast cond;
          Mutex.unlock m

    let release_proc () = Engine.suspend (fun _ -> Engine.Stop)
    let initial_datum = D.initial
    let get_datum () = (my_slot ()).datum
    let set_datum d = (my_slot ()).datum <- d
    let self () = Domain.DLS.get proc_key
    let max_procs () = max_procs

    let live_procs () =
      Mutex.lock m;
      let n =
        Array.fold_left
          (fun acc s -> if s.state = Busy then acc + 1 else acc)
          0 slots
      in
      Mutex.unlock m;
      n

    let nodes () = 1
    let node_of _ = 0
  end

  module Lock = struct
    type mutex_lock = bool Atomic.t

    let c_acquires = Telemetry.counter "lock.acquires"
    let c_spins = Telemetry.counter "lock.spins"
    let mutex_lock () = Atomic.make false

    let try_lock l =
      let ok = not (Atomic.exchange l true) in
      if ok then Obs.Counters.incr c_acquires;
      ok

    let lock l =
      let contended = ref 0 in
      while not (try_lock l) do
        let stats = (my_slot ()).stats in
        stats.lock_spins <- stats.lock_spins + 1;
        Obs.Counters.incr c_spins;
        incr contended;
        while Atomic.get l do
          Domain.cpu_relax ()
        done
      done;
      if !contended > 0 && Telemetry.enabled () then
        Telemetry.emit
          (Obs.Event.Lock_contended
             {
               proc = max 0 (Domain.DLS.get proc_key);
               clock = Telemetry.now_ts ();
               spins = !contended;
             })

    let unlock l = Atomic.set l false

    let locked l f =
      lock l;
      match f () with
      | v ->
          unlock l;
          v
      | exception e ->
          unlock l;
          raise e
  end

  module Work = struct
    let hook = ref (fun () -> ())
    let step ?alloc_words:_ ~instrs:_ () = !hook ()
    let charge _ = ()
    let alloc ~words:_ = ()
    let traffic ~bytes:_ = ()

    type line = unit

    let line () = ()
    let read_line _ = ()
    let write_line _ ~bytes:_ = ()
    let poll () = !hook ()
    let set_poll_hook f = hook := f
    let idle () = Domain.cpu_relax ()

    let idle_until ~ready =
      while not (ready ()) do
        Domain.cpu_relax ()
      done

    let now () = Unix.gettimeofday ()

    (* The wait happened on the calling domain, so the slot lookup
       attributes it to the right proc — this is what lets server-tail
       attribution work on real hardware, not just under the simulator. *)
    let note_queue_wait ~seconds =
      let stats = (my_slot ()).stats in
      stats.queue_wait <- stats.queue_wait +. seconds
  end

  let last_elapsed = ref 0.
  let last_gc_count = ref 0

  (* Host collections (minor + major) since program start; [Gc.quick_stat]
     on OCaml 5 reports process-wide totals, so a run delta covers every
     domain the run used. *)
  let host_collections () =
    let g = Gc.quick_stat () in
    g.Gc.minor_collections + g.Gc.major_collections

  let all_free_no_inbox () =
    Array.for_all (fun s -> s.state = Free && s.inbox = None) slots

  (* Serve actions delivered to the root slot (slot 0 may be re-acquired
     after the root proc releases itself), and return once the computation
     is finished or provably deadlocked. *)
  let root_service_loop () =
    let rec loop () =
      Mutex.lock m;
      match slots.(0).inbox with
      | Some action ->
          slots.(0).inbox <- None;
          Mutex.unlock m;
          serve slots.(0) action;
          loop ()
      | None ->
          if all_free_no_inbox () then begin
            let finished = !result_ready in
            Mutex.unlock m;
            if not finished then
              raise
                (Mp_intf.Deadlock
                   "all procs released but the root computation produced no \
                    result")
          end
          else begin
            Condition.wait cond m;
            Mutex.unlock m;
            loop ()
          end
    in
    loop ()

  let teardown () =
    Mutex.lock m;
    quit := true;
    Condition.broadcast cond;
    Mutex.unlock m;
    Array.iter
      (fun s ->
        match s.domain with
        | Some d ->
            Domain.join d;
            s.domain <- None
        | None -> ())
      slots;
    quit := false

  let run f =
    if !running then invalid_arg "Mp_domains.run: already running";
    running := true;
    result_ready := false;
    escaped := None;
    Array.iter
      (fun s ->
        s.state <- Free;
        s.inbox <- None;
        s.datum <- D.initial)
      slots;
    Domain.DLS.set proc_key 0;
    let result = ref None in
    (current_on_exn :=
       fun e ->
         Mutex.lock m;
         if !escaped = None then escaped := Some e;
         result_ready := true;
         Condition.broadcast cond;
         Mutex.unlock m;
         Engine.Stop);
    let root_thunk () =
      let v = f () in
      Mutex.lock m;
      result := Some v;
      result_ready := true;
      Condition.broadcast cond;
      Mutex.unlock m
    in
    slots.(0).state <- Busy;
    let t0 = Unix.gettimeofday () in
    let g0 = host_collections () in
    Fun.protect
      ~finally:(fun () ->
        running := false;
        last_elapsed := Unix.gettimeofday () -. t0;
        last_gc_count := host_collections () - g0)
      (fun () ->
        serve slots.(0) (Engine.Start root_thunk);
        Fun.protect ~finally:teardown root_service_loop;
        match (!result, !escaped) with
        | Some v, _ -> v
        | None, Some e -> raise e
        | None, None ->
            raise (Mp_intf.Deadlock "root computation vanished without result"))

  let stats () =
    let t = Stats.zero ~platform:name ~procs:max_procs in
    Array.iteri
      (fun i s ->
        t.per_proc.(i).busy <- s.stats.busy;
        t.per_proc.(i).idle <- s.stats.idle;
        t.per_proc.(i).gc_wait <- s.stats.gc_wait;
        t.per_proc.(i).queue_wait <- s.stats.queue_wait;
        t.per_proc.(i).lock_spins <- s.stats.lock_spins;
        t.per_proc.(i).alloc_words <- s.stats.alloc_words)
      slots;
    { t with elapsed = !last_elapsed; gc_count = !last_gc_count }

  let reset_stats () =
    last_elapsed := 0.;
    last_gc_count := 0;
    Array.iter
      (fun s ->
        s.stats.busy <- 0.;
        s.stats.idle <- 0.;
        s.stats.gc_wait <- 0.;
        s.stats.queue_wait <- 0.;
        s.stats.lock_spins <- 0;
        s.stats.alloc_words <- 0)
      slots
end

module Int
    (C : sig
      val max_procs : int
    end)
    () =
  Make (C) (Mp_intf.Int_datum)
