(* Tests for the mp_check exploration harness (lib/check).

   The harness's own guarantees are what is under test here: exhaustive
   bound-2 exploration keeps every scenario in the corpus green, the
   deliberately broken lock is caught and shrunk to a short readable trace,
   forced schedules and printed seeds replay deterministically, and fault
   injection steers the platform the way the knobs promise. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module P = Mpcheck.Mp_check.Int (struct
  let max_procs = 2
end) ()

module S = Mpcheck.Scenarios.Make (P)

let broken_body = List.assoc "broken_tas" S.broken

let render_failure (f : Mpcheck.Mp_check.failure) =
  Format.asprintf "%a" Mpcheck.Mp_check.pp_failure f

(* ---- exhaustive exploration over the corpus --------------------------- *)

let test_all_scenarios_bound2 () =
  List.iter
    (fun (name, body) ->
      let r = P.Explore.dfs ~bound:2 ~max_schedules:30_000 body in
      (match r.Mpcheck.Mp_check.failure with
      | None -> ()
      | Some f ->
          Alcotest.failf "scenario %s failed:@.%s" name (render_failure f));
      checkb (name ^ ": not capped") false r.Mpcheck.Mp_check.capped;
      checki (name ^ ": no truncated runs") 0 r.Mpcheck.Mp_check.truncated;
      checkb (name ^ ": explored > 1 schedule") true
        (r.Mpcheck.Mp_check.schedules > 1))
    S.all

(* ---- the self-test: a broken lock must be caught ---------------------- *)

let test_broken_tas_caught () =
  let r = P.Explore.dfs ~bound:2 ~max_schedules:30_000 broken_body in
  match r.Mpcheck.Mp_check.failure with
  | None -> Alcotest.fail "broken TAS not caught at bound 2"
  | Some f ->
      checkb "shrunk schedule is short" true
        (List.length f.Mpcheck.Mp_check.schedule <= 40);
      checkb "trace is non-empty" true (f.Mpcheck.Mp_check.trace <> []);
      (* the rendered counterexample names the racy operations *)
      let s = render_failure f in
      let mentions sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      checkb "trace shows cell ops" true (mentions "cell.")

let test_deadlock_detected () =
  let body () =
    P.run (fun () ->
        let a = P.Lock.mutex_lock () and b = P.Lock.mutex_lock () in
        P.spawn (fun () ->
            P.Lock.lock a;
            P.Work.poll ();
            P.Lock.lock b;
            P.Lock.unlock b;
            P.Lock.unlock a);
        P.Lock.lock b;
        P.Work.poll ();
        P.Lock.lock a;
        P.Lock.unlock a;
        P.Lock.unlock b;
        P.Work.idle_until ~ready:(fun () -> P.Proc.live_procs () = 1))
  in
  let r = P.Explore.dfs ~bound:2 ~max_schedules:30_000 body in
  match r.Mpcheck.Mp_check.failure with
  | Some { error = Mp.Mp_intf.Deadlock _; _ } -> ()
  | Some f ->
      Alcotest.failf "expected Deadlock, got:@.%s" (render_failure f)
  | None -> Alcotest.fail "AB-BA deadlock not detected"

(* ---- deterministic replay --------------------------------------------- *)

let test_replay_deterministic () =
  let r = P.Explore.dfs ~bound:2 ~max_schedules:30_000 broken_body in
  let f =
    match r.Mpcheck.Mp_check.failure with
    | Some f -> f
    | None -> Alcotest.fail "broken TAS not caught"
  in
  let sched = f.Mpcheck.Mp_check.schedule in
  let replay () =
    match P.Explore.replay ~schedule:sched broken_body with
    | Some f -> render_failure f
    | None -> Alcotest.fail "shrunk schedule did not replay to a failure"
  in
  let a = replay () and b = replay () in
  check Alcotest.string "two replays render identically" a b

(* ---- random mode and seed replay -------------------------------------- *)

let test_random_finds_broken_tas () =
  let r =
    P.Explore.random ~seed:Mpcheck.Sched_seed.default ~runs:3_000 broken_body
  in
  let f =
    match r.Mpcheck.Mp_check.failure with
    | Some f -> f
    | None -> Alcotest.fail "random fuzzing (3000 runs) missed the broken TAS"
  in
  let seed =
    match f.Mpcheck.Mp_check.seed with
    | Some s -> s
    | None -> Alcotest.fail "random failure carries no seed"
  in
  (* the printed seed replays to a failure in a single run *)
  let r2 =
    P.Explore.random ~seed:(Mpcheck.Sched_seed.of_string seed) ~runs:1
      broken_body
  in
  checkb "seed replays the failure" true
    (r2.Mpcheck.Mp_check.failure <> None);
  checki "replay is a single run" 1 r2.Mpcheck.Mp_check.schedules;
  (* MP_CHECK_SEED overrides the programmatic seed and forces one run.
     putenv cannot be undone, so this stays the last random-mode check. *)
  Unix.putenv "MP_CHECK_SEED" seed;
  let r3 = P.Explore.random ~runs:500 broken_body in
  Unix.putenv "MP_CHECK_SEED" "";
  checkb "MP_CHECK_SEED replays the failure" true
    (r3.Mpcheck.Mp_check.failure <> None);
  checki "MP_CHECK_SEED forces a single run" 1 r3.Mpcheck.Mp_check.schedules

(* ---- fault injection -------------------------------------------------- *)

let test_fault_acquire () =
  let body () =
    P.run (fun () ->
        match P.spawn (fun () -> ()) with
        | () -> failwith "expected No_More_Procs from fault injection"
        | exception Mp.Mp_intf.No_More_Procs -> ())
  in
  let faults =
    { Mpcheck.Check_intf.no_faults with fail_acquire_at = Some 1 }
  in
  let r = P.Explore.dfs ~bound:1 ~max_schedules:1_000 ~faults body in
  (match r.Mpcheck.Mp_check.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "acquire fault not injected:@.%s" (render_failure f));
  (* without the fault the same body must fail (spawn succeeds) *)
  let r2 = P.Explore.dfs ~bound:1 ~max_schedules:1_000 body in
  checkb "body fails when no fault is injected" true
    (r2.Mpcheck.Mp_check.failure <> None)

let test_fault_try_lock () =
  let body () =
    P.run (fun () ->
        let l = P.Lock.mutex_lock () in
        if P.Lock.try_lock l then
          failwith "try_lock succeeded under 100% fault injection")
  in
  let faults =
    { Mpcheck.Check_intf.no_faults with try_lock_fail_pct = 100 }
  in
  let r = P.Explore.dfs ~bound:1 ~max_schedules:1_000 ~faults body in
  (match r.Mpcheck.Mp_check.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "try_lock fault not injected:@.%s" (render_failure f));
  let r2 = P.Explore.dfs ~bound:1 ~max_schedules:1_000 body in
  checkb "try_lock succeeds when no fault is injected" true
    (r2.Mpcheck.Mp_check.failure <> None)

(* ---- fault determinism under reordering -------------------------------- *)

(* Probabilistic fault decisions are keyed on (proc, object, occurrence),
   not on the global step count, so the SAME acquisitions fail whatever
   the interleaving: plain DFS, DPOR and the shrunk replay must all see
   one identical failure. *)
let test_fault_shrink_replay () =
  let faults = { Mpcheck.Check_intf.no_faults with try_lock_fail_pct = 50 } in
  let body () =
    P.run (fun () ->
        let la = P.Lock.mutex_lock () in
        let lb = P.Lock.mutex_lock () in
        let hits = ref 0 in
        let attempts l =
          for _ = 1 to 4 do
            if P.Lock.try_lock l then begin
              incr hits;
              P.Lock.unlock l
            end
          done
        in
        P.spawn (fun () -> attempts lb);
        attempts la;
        P.Work.idle_until ~ready:(fun () -> P.Proc.live_procs () = 1);
        if !hits < 8 then
          Printf.ksprintf failwith "faults ate %d of 8 acquisitions" (8 - !hits))
  in
  let msg r =
    match r.Mpcheck.Mp_check.failure with
    | Some f -> Printexc.to_string f.Mpcheck.Mp_check.error
    | None -> Alcotest.fail "50% try_lock faults did not surface a failure"
  in
  let plain = P.Explore.dfs ~bound:2 ~max_schedules:30_000 ~faults body in
  let dpor =
    P.Explore.dfs ~bound:2 ~max_schedules:30_000 ~faults ~dpor:true body
  in
  check Alcotest.string "plain and DPOR see the same fault outcome"
    (msg plain) (msg dpor);
  let f =
    match plain.Mpcheck.Mp_check.failure with Some f -> f | None -> assert false
  in
  let replay () =
    match
      P.Explore.replay ~schedule:f.Mpcheck.Mp_check.schedule ~faults body
    with
    | Some f -> render_failure f
    | None -> Alcotest.fail "shrunk schedule did not replay under faults"
  in
  let a = replay () and b = replay () in
  check Alcotest.string "fault replay renders identically" a b;
  checkb "replay reproduces the shrunk failure" true
    (a = render_failure f)

(* ---- DPOR: race-directed exploration ----------------------------------- *)

let dfs_plain ?faults body =
  P.Explore.dfs ~bound:2 ~max_schedules:30_000 ?faults body

let dfs_dpor ?faults body =
  P.Explore.dfs ~bound:2 ~max_schedules:30_000 ?faults ~dpor:true body

(* The empirical guard for combining DPOR with a preemption bound (see
   dpor.mli): over the whole corpus, race-directed exploration finds a
   bug exactly when plain bounded DFS does. *)
let test_dpor_equivalence () =
  List.iter
    (fun (name, body) ->
      let a = dfs_plain body in
      let b = dfs_dpor body in
      checkb
        (name ^ ": DPOR finds a bug iff plain DFS does")
        (a.Mpcheck.Mp_check.failure <> None)
        (b.Mpcheck.Mp_check.failure <> None);
      checkb (name ^ ": DPOR not capped") false b.Mpcheck.Mp_check.capped)
    (S.all @ S.broken)

(* Both explorers shrink the broken TAS to the SAME canonical
   counterexample: the minimal forced schedule is a property of the bug,
   not of the order the space was walked. *)
let test_dpor_broken_counterexample () =
  let f r =
    match r.Mpcheck.Mp_check.failure with
    | Some f -> render_failure f
    | None -> Alcotest.fail "broken TAS not caught"
  in
  check Alcotest.string "identical rendered counterexample"
    (f (dfs_plain broken_body))
    (f (dfs_dpor broken_body))

(* Parallel frontier exploration is deterministic: same schedule count,
   same prunes, same rendered failure for any job count. *)
let test_dpor_jobs_deterministic () =
  let make_runner () =
    let module P2 = Mpcheck.Mp_check.Int (struct
      let max_procs = 2
    end) () in
    let module S2 = Mpcheck.Scenarios.Make (P2) in
    P2.Explore.runner (List.assoc "broken_tas" S2.broken)
  in
  let explore jobs =
    Mpcheck.Dpor.explore ~make_runner ~jobs ~bound:2 ~max_schedules:30_000
      ~stop:(fun () -> false) ()
  in
  let render (r : Mpcheck.Dpor.result) =
    match r.Mpcheck.Dpor.r_failure with
    | None -> "none"
    | Some (error, schedule, trace) ->
        render_failure { Mpcheck.Mp_check.error; schedule; seed = None; trace }
  in
  let a = explore 1 in
  let b = explore 2 in
  checki "schedules equal" a.Mpcheck.Dpor.r_schedules
    b.Mpcheck.Dpor.r_schedules;
  checki "prunes equal" a.Mpcheck.Dpor.r_pruned b.Mpcheck.Dpor.r_pruned;
  checki "truncated equal" a.Mpcheck.Dpor.r_truncated
    b.Mpcheck.Dpor.r_truncated;
  check Alcotest.string "failure renders identically" (render a) (render b)

(* Random two-proc programs over shared cells, a lock and an
   unprotected-critical-section probe, cross-checking the two explorers:
   whatever the program, DPOR and plain DFS agree on whether a bug
   exists.  Programs with a [Crit] on both procs (any of them outside
   the lock) are buggy; everything else is race-free by construction. *)
type rop =
  | Get of int
  | Set of int
  | Faa of int
  | Crit
  | Poll
  | Pause
  | Locked of rop list

let rec rop_to_string = function
  | Get i -> Printf.sprintf "get c%d" i
  | Set i -> Printf.sprintf "set c%d" i
  | Faa i -> Printf.sprintf "faa c%d" i
  | Crit -> "crit"
  | Poll -> "poll"
  | Pause -> "pause"
  | Locked ops ->
      "locked[" ^ String.concat "; " (List.map rop_to_string ops) ^ "]"

let prog_to_string (p0, p1) =
  Printf.sprintf "p0: %s | p1: %s"
    (String.concat "; " (List.map rop_to_string p0))
    (String.concat "; " (List.map rop_to_string p1))

let gen_prog =
  let open QCheck.Gen in
  let leaf =
    oneofl [ Get 0; Get 1; Set 0; Set 1; Faa 0; Faa 1; Crit; Poll; Pause ]
  in
  let op =
    frequency
      [
        (5, leaf);
        (2, map (fun l -> Locked l) (list_size (int_range 1 3) leaf));
      ]
  in
  pair (list_size (int_range 1 4) op) (list_size (int_range 1 4) op)

let prog_body (p0, p1) () =
  P.run (fun () ->
      let cells = [| P.Prims.make 0; P.Prims.make 0 |] in
      let l = P.Lock.mutex_lock () in
      let in_cs = ref 0 in
      let overlap = ref false in
      let rec exec = function
        | Get i -> ignore (P.Prims.get cells.(i))
        | Set i -> P.Prims.set cells.(i) 1
        | Faa i -> ignore (P.Prims.fetch_and_add cells.(i) 1)
        | Poll -> P.Work.poll ()
        | Pause -> P.Prims.pause ()
        | Crit ->
            incr in_cs;
            if !in_cs > 1 then overlap := true;
            P.Work.poll ();
            decr in_cs
        | Locked ops ->
            P.Lock.lock l;
            List.iter exec ops;
            P.Lock.unlock l
      in
      P.spawn (fun () -> List.iter exec p1);
      List.iter exec p0;
      P.Work.idle_until ~ready:(fun () -> P.Proc.live_procs () = 1);
      if !overlap then failwith "unprotected critical sections overlapped")

let qcheck_dpor_cross_check =
  QCheck.Test.make ~count:60 ~name:"random programs: DPOR = plain DFS"
    (QCheck.make ~print:prog_to_string gen_prog)
    (fun prog ->
      let body = prog_body prog in
      let a = dfs_plain body in
      let b = dfs_dpor body in
      (a.Mpcheck.Mp_check.failure <> None)
      = (b.Mpcheck.Mp_check.failure <> None))

(* ---- a wider platform instance ---------------------------------------- *)

module P3 = Mpcheck.Mp_check.Int (struct
  let max_procs = 3
end) ()

let test_three_procs_mutex () =
  let body () =
    P3.run (fun () ->
        let l = P3.Lock.mutex_lock () in
        let in_cs = ref 0 and overlap = ref false in
        let crit () =
          P3.Lock.lock l;
          incr in_cs;
          if !in_cs > 1 then overlap := true;
          P3.Work.poll ();
          decr in_cs;
          P3.Lock.unlock l
        in
        P3.spawn crit;
        P3.spawn crit;
        crit ();
        P3.Work.idle_until ~ready:(fun () -> P3.Proc.live_procs () = 1);
        if !overlap then failwith "three procs overlapped in the critical section")
  in
  let r = P3.Explore.dfs ~bound:1 ~max_schedules:30_000 body in
  (match r.Mpcheck.Mp_check.failure with
  | None -> ()
  | Some f -> Alcotest.failf "3-proc mutex failed:@.%s" (render_failure f));
  checkb "3-proc space explored without cap" false r.Mpcheck.Mp_check.capped

let () =
  Alcotest.run "check"
    [
      ( "dfs",
        [
          Alcotest.test_case "all scenarios green at bound 2" `Slow
            test_all_scenarios_bound2;
          Alcotest.test_case "broken TAS caught and shrunk" `Quick
            test_broken_tas_caught;
          Alcotest.test_case "AB-BA deadlock detected" `Quick
            test_deadlock_detected;
        ] );
      ( "replay",
        [
          Alcotest.test_case "forced schedule replays deterministically"
            `Quick test_replay_deterministic;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fail_acquire_at injects No_More_Procs" `Quick
            test_fault_acquire;
          Alcotest.test_case "try_lock_fail_pct=100 starves try_lock" `Quick
            test_fault_try_lock;
          Alcotest.test_case "fault outcomes survive reordering and shrink"
            `Quick test_fault_shrink_replay;
        ] );
      ( "dpor",
        [
          Alcotest.test_case "corpus equivalence with plain DFS at bound 2"
            `Slow test_dpor_equivalence;
          Alcotest.test_case "broken TAS shrinks to the same counterexample"
            `Quick test_dpor_broken_counterexample;
          Alcotest.test_case "frontier exploration deterministic across jobs"
            `Quick test_dpor_jobs_deterministic;
          QCheck_alcotest.to_alcotest qcheck_dpor_cross_check;
        ] );
      ( "procs3",
        [
          Alcotest.test_case "3-proc mutual exclusion at bound 1" `Quick
            test_three_procs_mutex;
        ] );
      ( "random",
        [
          Alcotest.test_case "fuzzing finds the broken TAS; seed replays"
            `Quick test_random_finds_broken_tas;
        ] );
    ]
