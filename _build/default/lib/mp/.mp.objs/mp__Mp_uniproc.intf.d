lib/mp/mp_uniproc.mli: Mp_intf
