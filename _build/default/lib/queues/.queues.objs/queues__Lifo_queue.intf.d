lib/queues/lifo_queue.mli: Queue_intf
