lib/queues/bounded_queue.ml: Array Queue_intf
