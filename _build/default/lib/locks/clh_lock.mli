(** CLH queue lock: waiters form an implicit linked list and each spins on
    its predecessor's node, giving purely local spinning and FIFO order.
    Queue-style: the releasing proc is expected to be the holder. *)

module Make (P : Lock_intf.PRIMS) : Lock_intf.LOCK_EXT
