(** Dense weighted digraphs and the sequential Floyd–Warshall all-pairs
    shortest paths algorithm — the reference implementation for the
    [allpairs] benchmark (Mohr's 75-node graph workload). *)

type t = { n : int; dist : int array array }

val inf : int
(** Large sentinel weight for absent edges (safe against overflow when two
    are added). *)

val random : n:int -> ?density:float -> ?max_weight:int -> seed:int -> unit -> t
(** Random digraph: each ordered pair gets an edge with probability
    [density] (default 0.4) and weight in [1, max_weight] (default 100);
    diagonal is 0.  Deterministic per seed. *)

val copy : t -> t

val floyd_warshall : t -> int array array
(** All-pairs shortest path matrix (input unchanged). *)

val checksum : int array array -> int
(** Order-independent digest of a distance matrix, for cross-checking
    parallel runs against the sequential reference. *)
