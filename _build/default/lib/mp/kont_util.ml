let cont_of_thunk ~on_return f =
  Engine.callcc (fun ret ->
      (* Capture a resume point and hand it back to the caller; the code
         after the inner callcc runs only when that point is resumed. *)
      Engine.callcc (fun c -> Engine.throw ret c);
      f ();
      on_return ();
      (* [on_return] is expected to transfer control away (release_proc or
         dispatch); reaching here is a client protocol error. *)
      failwith "Kont_util.cont_of_thunk: on_return returned")

let unit_cont_of k v =
  cont_of_thunk ~on_return:(fun () -> ()) (fun () -> Engine.throw k v)
