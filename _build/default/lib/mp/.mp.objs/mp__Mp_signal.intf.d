lib/mp/mp_signal.mli: Mp_intf
