module type COSTS = sig
  val rmw_cycles : int
  val read_cycles : int
  val write_cycles : int
  val pause_cycles : int
end

(* 1993-bus flavored defaults: an RMW is a full bus transaction, a spin read
   is a cache hit, a remote write invalidates. *)
module Default_costs : COSTS = struct
  let rmw_cycles = 60
  let read_cycles = 2
  let write_cycles = 20
  let pause_cycles = 10
end

module Make (P : Mp.Mp_intf.PLATFORM) (C : COSTS) = struct
  (* Each cell carries a platform cache line so the simulator can track
     which nodes have it cached: reads add the reader's node to the sharer
     set, RMWs claim it exclusive and pay for cross-node transfers and
     invalidations.  On real backends [P.Work.line] is stateless and free. *)
  type 'a cell = { v : 'a Atomic.t; ln : P.Work.line }

  let spins = ref 0

  (* Spins from the lock-algorithm collection land in the platform's
     registry under their own name so they don't collide with the
     platform Lock's own "lock.spins". *)
  let c_spins = P.Telemetry.counter "lock.prims_spins"

  let make v = { v = Atomic.make v; ln = P.Work.line () }

  let get c =
    P.Work.charge C.read_cycles;
    let r = Atomic.get c.v in
    P.Work.read_line c.ln;
    r

  (* Observation-only read for scheduler idle predicates, which must be
     charge-free: [Work.idle_until ~ready] evaluates its predicate from
     scheduler context where charging would corrupt virtual time.  It does
     not touch the sharer set either (no proc context there). *)
  let unsafe_peek c = Atomic.get c.v

  let set c v =
    P.Work.charge C.write_cycles;
    Atomic.set c.v v

  (* An RMW is a bus transaction: it charges the probing proc AND occupies
     the shared bus, which is how spinning TAS probes slow everyone else
     down (Anderson's effect).  Routing goes through the cell's line, so
     on a hierarchical machine a probe against a word cached on another
     node crosses the inter-node link and invalidates the remote copies —
     which is what separates local-spin locks from RMW-spinners at scale. *)
  let rmw_bus_bytes = 8

  let exchange c v =
    P.Work.charge C.rmw_cycles;
    P.Work.write_line c.ln ~bytes:rmw_bus_bytes;
    Atomic.exchange c.v v

  let compare_and_set c old v =
    P.Work.charge C.rmw_cycles;
    P.Work.write_line c.ln ~bytes:rmw_bus_bytes;
    Atomic.compare_and_set c.v old v

  let fetch_and_add c n =
    P.Work.charge C.rmw_cycles;
    P.Work.write_line c.ln ~bytes:rmw_bus_bytes;
    Atomic.fetch_and_add c.v n

  let pause () = P.Work.charge C.pause_cycles

  let pause_n n =
    if n > 0 then P.Work.charge (n * C.pause_cycles)

  (* [on_spin] is the hottest operation in a contended section — every
     failed probe of every spinning proc lands here — and the simulator
     runs all fibers on one host domain, so the count can be kept in a
     plain ref and flushed to the shared registry cell in batches instead
     of paying an atomic RMW per spin.  Flushes happen every
     [flush_batch] spins and at every read/reset point, so any observer
     going through [spin_count] (or reading the registry after a run's
     final [reset_spin_count]/[spin_count]) sees exact totals. *)
  let pending = ref 0
  let flush_batch = 256

  let flush () =
    if !pending > 0 then begin
      Obs.Counters.add c_spins !pending;
      pending := 0
    end

  let on_spin () =
    incr spins;
    incr pending;
    if !pending >= flush_batch then flush ()

  let spin_count () =
    flush ();
    !spins

  let reset_spin_count () =
    flush ();
    spins := 0
end
