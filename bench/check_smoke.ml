(* CI gate for the mp_check exploration harness.

   Runs every scenario in the corpus under a wall-clock budget and prints a
   per-scenario table; exits nonzero if any scenario fails, if the
   self-test (the deliberately broken lock) is NOT caught, or if the
   per-scenario schedule floor is not met.  Two shapes:

     check_smoke.exe --bound 2 --seconds 120           # every-PR gate
     check_smoke.exe --bound 3 --faults --mode both    # weekly deep run *)

let bound = ref 2
let mode = ref "dfs" (* dfs | random | both *)
let runs = ref 500
let seed = ref None
let with_faults = ref false
let seconds = ref 120.0
let max_schedules = ref 20_000
let max_steps = ref 20_000

let usage = "check_smoke [--bound N] [--mode dfs|random|both] [--runs N] [--seed 0x...] [--faults] [--seconds S] [--max-schedules N]"

let spec =
  [
    ("--bound", Arg.Set_int bound, "preemption bound for DFS (default 2)");
    ("--mode", Arg.Set_string mode, "dfs | random | both (default dfs)");
    ("--runs", Arg.Set_int runs, "random runs per scenario (default 500)");
    ( "--seed",
      Arg.String (fun s -> seed := Some (Mpcheck.Sched_seed.of_string s)),
      "base seed for random mode" );
    ("--faults", Arg.Set with_faults, "enable fault injection");
    ("--seconds", Arg.Set_float seconds, "total wall-clock budget (default 120)");
    ( "--max-schedules",
      Arg.Set_int max_schedules,
      "DFS schedule cap per scenario (default 20000)" );
    ("--max-steps", Arg.Set_int max_steps, "per-run step budget (default 20000)");
  ]

module P = Mpcheck.Mp_check.Int (struct
  let max_procs = 2
end) ()

module S = Mpcheck.Scenarios.Make (P)

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let faults =
    if !with_faults then
      {
        Mpcheck.Check_intf.no_faults with
        try_lock_fail_pct = 20;
        backoff_boost = 2;
      }
    else Mpcheck.Check_intf.no_faults
  in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. !seconds in
  let failures = ref 0 in
  let skipped = ref 0 in
  Printf.printf "mp_check smoke: bound=%d mode=%s faults=%b budget=%.0fs\n%!"
    !bound !mode !with_faults !seconds;
  Printf.printf "%-22s %10s %9s %7s %s\n" "scenario" "schedules" "truncated"
    "time" "result";
  let run_scenario want_failure (name, body) =
    if Unix.gettimeofday () > deadline then begin
      incr skipped;
      Printf.printf "%-22s %10s %9s %7s skipped (budget exhausted)\n%!" name
        "-" "-" "-"
    end
    else begin
      let s0 = Unix.gettimeofday () in
      let reports = ref [] in
      if !mode = "dfs" || !mode = "both" then
        reports :=
          P.Explore.dfs ~bound:!bound ~max_schedules:!max_schedules
            ~max_steps:!max_steps ~faults
            ~stop:(fun () -> Unix.gettimeofday () > deadline)
            body
          :: !reports;
      if
        (!mode = "random" || !mode = "both")
        && not (List.exists (fun r -> r.Mpcheck.Mp_check.failure <> None) !reports)
      then
        reports :=
          P.Explore.random ?seed:!seed ~runs:!runs ~max_steps:!max_steps
            ~faults body
          :: !reports;
      let dt = Unix.gettimeofday () -. s0 in
      let schedules =
        List.fold_left (fun n r -> n + r.Mpcheck.Mp_check.schedules) 0 !reports
      in
      let truncated =
        List.fold_left (fun n r -> n + r.Mpcheck.Mp_check.truncated) 0 !reports
      in
      let failure =
        List.find_map (fun r -> r.Mpcheck.Mp_check.failure) !reports
      in
      let capped =
        List.exists (fun r -> r.Mpcheck.Mp_check.capped) !reports
      in
      let ok, verdict =
        match (failure, want_failure) with
        | None, false ->
            (schedules > 0, if capped then "ok (capped)" else "ok")
        | Some _, true -> (true, "caught (expected)")
        | None, true -> (false, "MISSED EXPECTED BUG")
        | Some _, false -> (false, "FAILED")
      in
      Printf.printf "%-22s %10d %9d %6.2fs %s\n%!" name schedules truncated dt
        verdict;
      (match failure with
      | Some f when not want_failure ->
          Format.printf "%a@." Mpcheck.Mp_check.pp_failure f
      | _ -> ());
      if not ok then incr failures
    end
  in
  List.iter (run_scenario false) S.all;
  (* heavy scenarios: schedule-capped so the gate stays fast *)
  List.iter
    (fun (name, body) -> run_scenario false (name, body))
    (List.map
       (fun (n, b) -> (n, b))
       (if !bound >= 2 then S.heavy else []));
  (* self-test: the broken lock must be caught *)
  List.iter (run_scenario true) S.broken;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "total: %.1fs, %d failure(s), %d skipped\n%!" dt !failures
    !skipped;
  if !failures > 0 then exit 1
