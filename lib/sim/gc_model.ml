(* Pluggable GC cost models for the simulated machine.

   The paper's §6 attributes the Sequent speedup ceiling to SML/NJ's
   sequential stop-the-world collector; this module lifts that collector
   out of [Mp_sim] behind a small state-machine signature so the
   counterfactuals — an N-collector parallel STW and OCaml-5-style
   per-proc minor heaps — can be swept side by side, bit-reproducibly.

   A model instance owns all region accounting.  The simulator consults it
   at exactly the positions the inlined code used to touch its refs:

   - [admit] gates the run-ahead fast path (may this slice be charged
     inline, without a suspension?).  For the global-region models this is
     the old [region_used + words < gc_region_words] test.
   - [commit_fast] applies an admitted slice's words (no trigger possible:
     admission is strict).
   - [alloc_slow] applies a slice on the suspend path, where triggering is
     allowed.  It returns any pause the allocating proc pays {e alone} —
     zero for the stop-the-world models, a minor-collection pause under
     [minor_pp] — so independent minor collections never stop other procs.
   - [pending] is the stop-the-world trigger flag; the scheduler parks
     every proc at its next clean point while it is set, then asks
     [episode] for the collection's kind/duration and releases the barrier
     with [finish_episode].

   The [Stw] instance is the old code moved, term for term: same strict
   admission, same [>=] trigger, same
   [fixed + cycles_per_word * copied / min parallelism waiters] duration.
   Every golden is pinned under it. *)

type t = Stw | Par_stw of int | Minor_pp

let default = Stw

let to_string = function
  | Stw -> "stw"
  | Par_stw 0 -> "par_stw"
  | Par_stw n -> Printf.sprintf "par_stw:%d" n
  | Minor_pp -> "minor_pp"

let names = [ "stw"; "par_stw[:N]"; "minor_pp" ]

let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  match s with
  | "stw" -> Ok Stw
  | "par_stw" -> Ok (Par_stw 0)
  | "minor_pp" -> Ok Minor_pp
  | _ -> (
      let bad () =
        Error
          (Printf.sprintf "unknown GC model %S (expected %s)" s
             (String.concat "|" names))
      in
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "par_stw" -> (
          let arg = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt arg with
          | Some n when n >= 1 -> Ok (Par_stw n)
          | _ -> bad ())
      | _ -> bad ())

let of_string_exn s =
  match of_string s with Ok m -> m | Error msg -> invalid_arg msg

let env_var = "MP_REPRO_GC"

let resolve ?explicit () =
  match explicit with
  | Some s -> of_string_exn s
  | None -> (
      match Sys.getenv_opt env_var with
      | Some s when String.trim s <> "" -> of_string_exn s
      | _ -> default)

(* Cost constants, extracted from [Sim_config] by the simulator so this
   module stays independent of it (the config references [t], not the
   other way round). *)
type params = {
  procs : int;
  region_words : int;
  survival : float;
  cycles_per_word : float;
  fixed_cycles : int;
  parallelism : float;
  minor_fixed_cycles : int;
  barrier_cycles : int;
}

type kind = Obs.Event.gc_kind = Minor | Major | Par

(* One stop-the-world collection, as priced by [episode]: the scheduler
   turns it into a barrier release at [start + duration]. *)
type episode = { kind : kind; duration : int; region_words : int }

module type MODEL = sig
  val model : t

  val pending : bool ref
  (** A stop-the-world episode has been triggered; every proc must park at
      its next clean point.  The run-ahead gates deref this on the hot
      path, which is why it is a ref and not a function. *)

  val region_used : unit -> int
  (** Words the next stop-the-world episode would collect (the shared
      region for [Stw]/[Par_stw], promoted words for [Minor_pp]). *)

  val admit : proc:int -> words:int -> bool
  (** May [proc] allocate [words] inline?  Strict: admission guarantees
      the slice cannot trigger a collection. *)

  val commit_fast : proc:int -> words:int -> unit
  (** Account an admitted slice (fast path). *)

  val alloc_slow : proc:int -> words:int -> int * int
  (** Account a slice on the suspend path; may trigger.  Returns
      [(pause, collected)]: cycles the allocating proc pays alone for an
      independent minor collection, and the words that collection scanned
      ([0, 0] when none ran). *)

  val episode : waiters:int -> episode
  (** Price the pending stop-the-world collection given the number of
      procs parked at the barrier. *)

  val finish_episode : episode -> unit
  (** Barrier release: reset the collected region, clear [pending]. *)

  val minor_collections : unit -> int
  val major_collections : unit -> int

  val pause_cycles : unit -> int
  (** Total pause cycles: stop-the-world durations plus per-proc minor
      pauses. *)

  val reset : unit -> unit
end

(* The paper's collector (§5): one shared region, stop-the-world, one proc
   collects (gc_parallelism > 1 models the §7 concurrent-collector
   extension).  This is the pre-refactor [Mp_sim] code verbatim. *)
let stw_instance sel (p : params) : (module MODEL) =
  (module struct
    let model = sel
    let pending = ref false
    let region = ref 0
    let majors = ref 0
    let pauses = ref 0
    let region_used () = !region
    let admit ~proc:_ ~words = !region + words < p.region_words
    let commit_fast ~proc:_ ~words = region := !region + words

    let alloc_slow ~proc:_ ~words =
      region := !region + words;
      if !region >= p.region_words then pending := true;
      (0, 0)

    let episode ~waiters =
      let copied = int_of_float (p.survival *. float_of_int !region) in
      let kind, divisor, barrier =
        match sel with
        | Par_stw cap ->
            (* Every proc parked at the barrier becomes a collector (capped
               at [cap] when positive); each extra collector pays a sync
               barrier surcharge, so the copy split has diminishing
               returns. *)
            let n = max 1 waiters in
            let n = if cap > 0 then min cap n else n in
            (Par, float_of_int n, p.barrier_cycles * n)
        | Stw | Minor_pp ->
            (Major, Float.min p.parallelism (float_of_int (max 1 waiters)), 0)
      in
      let duration =
        p.fixed_cycles + barrier
        + int_of_float (p.cycles_per_word *. float_of_int copied /. divisor)
      in
      { kind; duration; region_words = !region }

    let finish_episode (e : episode) =
      incr majors;
      pauses := !pauses + e.duration;
      region := 0;
      pending := false

    let minor_collections () = 0
    let major_collections () = !majors
    let pause_cycles () = !pauses

    let reset () =
      pending := false;
      region := 0;
      majors := 0;
      pauses := 0
  end)

(* Per-proc minor heaps: the shared region is divided evenly among the
   procs; a proc whose minor region fills collects it immediately and
   alone (a pause charged only to that proc), promoting the survivors into
   a shared old region.  A stop-the-world major runs only when promoted
   words reach the old-region budget ([region_words]). *)
let minor_pp_instance (p : params) : (module MODEL) =
  (module struct
    let model = Minor_pp
    let pending = ref false
    let nprocs = max 1 p.procs
    let minor_region = max 1 (p.region_words / nprocs)
    let minor_used = Array.make nprocs 0
    let promoted = ref 0
    let minors = ref 0
    let majors = ref 0
    let pauses = ref 0
    let region_used () = !promoted
    let admit ~proc ~words = minor_used.(proc) + words < minor_region

    let commit_fast ~proc ~words =
      minor_used.(proc) <- minor_used.(proc) + words

    let alloc_slow ~proc ~words =
      minor_used.(proc) <- minor_used.(proc) + words;
      if minor_used.(proc) >= minor_region then begin
        let used = minor_used.(proc) in
        let survived = int_of_float (p.survival *. float_of_int used) in
        let pause =
          p.minor_fixed_cycles
          + int_of_float (p.cycles_per_word *. float_of_int survived)
        in
        minor_used.(proc) <- 0;
        promoted := !promoted + survived;
        incr minors;
        pauses := !pauses + pause;
        if !promoted >= p.region_words then pending := true;
        (pause, used)
      end
      else (0, 0)

    let episode ~waiters:_ =
      let copied = int_of_float (p.survival *. float_of_int !promoted) in
      let duration =
        p.fixed_cycles
        + int_of_float (p.cycles_per_word *. float_of_int copied)
      in
      { kind = Major; duration; region_words = !promoted }

    let finish_episode (e : episode) =
      incr majors;
      pauses := !pauses + e.duration;
      promoted := 0;
      pending := false

    let minor_collections () = !minors
    let major_collections () = !majors
    let pause_cycles () = !pauses

    let reset () =
      pending := false;
      Array.fill minor_used 0 nprocs 0;
      promoted := 0;
      minors := 0;
      majors := 0;
      pauses := 0
  end)

let instance sel (p : params) : (module MODEL) =
  match sel with
  | Stw | Par_stw _ -> stw_instance sel p
  | Minor_pp -> minor_pp_instance p
