lib/mp/mp_domains.mli: Mp_intf
