lib/workloads/matrix.ml: Array Random
