(* Synchronization constructs (§3.3: synthesized from locks, refs and
   continuations): ivar, mvar, semaphore, rwlock, barrier, countdown.
   Run on the deterministic simulated backend. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

module P =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:4 ()
    end)
    ()

module S = Mpthreads.Sched_thread.Make (P)
module Sync = Mpsync.Sync.Make (P) (S)

let in_pool ?procs f = P.run (fun () -> S.with_pool ?procs f)

(* ---------------- Ivar ---------------- *)

let test_ivar_fill_then_read () =
  let v =
    in_pool (fun () ->
        let iv = Sync.Ivar.create () in
        Sync.Ivar.fill iv 3;
        Sync.Ivar.read iv)
  in
  check "immediate read" 3 v

let test_ivar_read_blocks () =
  let v =
    in_pool (fun () ->
        let iv = Sync.Ivar.create () in
        S.fork (fun () -> Sync.Ivar.fill iv 9);
        Sync.Ivar.read iv)
  in
  check "blocked reader woken" 9 v

let test_ivar_multiple_readers () =
  let v =
    in_pool (fun () ->
        let iv = Sync.Ivar.create () in
        let sum = Atomic.make 0 in
        let done_ = Atomic.make 0 in
        for _ = 1 to 5 do
          S.fork (fun () ->
              ignore (Atomic.fetch_and_add sum (Sync.Ivar.read iv));
              Atomic.incr done_)
        done;
        S.yield ();
        Sync.Ivar.fill iv 4;
        while Atomic.get done_ < 5 do
          S.yield ()
        done;
        Atomic.get sum)
  in
  check "all readers woken with the value" 20 v

let test_ivar_double_fill () =
  in_pool (fun () ->
      let iv = Sync.Ivar.create () in
      Sync.Ivar.fill iv 1;
      match Sync.Ivar.fill iv 2 with
      | () -> Alcotest.fail "second fill must raise"
      | exception Sync.Ivar.Already_filled -> ())

let test_ivar_poll () =
  in_pool (fun () ->
      let iv = Sync.Ivar.create () in
      Alcotest.(check (option int)) "empty" None (Sync.Ivar.poll iv);
      Sync.Ivar.fill iv 6;
      Alcotest.(check (option int)) "filled" (Some 6) (Sync.Ivar.poll iv))

(* ---------------- Mvar ---------------- *)

let test_mvar_put_take () =
  let v =
    in_pool (fun () ->
        let mv = Sync.Mvar.create () in
        Sync.Mvar.put mv 5;
        Sync.Mvar.take mv)
  in
  check "round trip" 5 v

let test_mvar_take_blocks () =
  let v =
    in_pool (fun () ->
        let mv = Sync.Mvar.create () in
        S.fork (fun () -> Sync.Mvar.put mv 8);
        Sync.Mvar.take mv)
  in
  check "blocked taker" 8 v

let test_mvar_put_blocks_when_full () =
  let v =
    in_pool (fun () ->
        let mv = Sync.Mvar.create () in
        Sync.Mvar.put mv 1;
        let put_done = ref false in
        S.fork (fun () ->
            Sync.Mvar.put mv 2;
            put_done := true);
        S.yield ();
        checkb "second put blocked" false !put_done;
        let a = Sync.Mvar.take mv in
        while not !put_done do
          S.yield ()
        done;
        let b = Sync.Mvar.take mv in
        (a * 10) + b)
  in
  check "handoff order" 12 v

let test_mvar_pipeline () =
  let v =
    in_pool (fun () ->
        let mv = Sync.Mvar.create () in
        let out = Sync.Mvar.create () in
        S.fork (fun () ->
            let acc = ref 0 in
            for _ = 1 to 20 do
              acc := !acc + Sync.Mvar.take mv
            done;
            Sync.Mvar.put out !acc);
        for i = 1 to 20 do
          Sync.Mvar.put mv i
        done;
        Sync.Mvar.take out)
  in
  check "pipeline sum" 210 v

let test_mvar_try_take () =
  in_pool (fun () ->
      let mv = Sync.Mvar.create () in
      Alcotest.(check (option int)) "empty" None (Sync.Mvar.try_take mv);
      Sync.Mvar.put mv 3;
      Alcotest.(check (option int)) "full" (Some 3) (Sync.Mvar.try_take mv);
      Alcotest.(check (option int)) "drained" None (Sync.Mvar.try_take mv))

(* ---------------- Semaphore ---------------- *)

let test_semaphore_counting () =
  in_pool (fun () ->
      let s = Sync.Semaphore.create 2 in
      Sync.Semaphore.acquire s;
      Sync.Semaphore.acquire s;
      check "exhausted" 0 (Sync.Semaphore.value s);
      checkb "try fails" false (Sync.Semaphore.try_acquire s);
      Sync.Semaphore.release s;
      checkb "try succeeds" true (Sync.Semaphore.try_acquire s);
      Sync.Semaphore.release s;
      Sync.Semaphore.release s)

let test_semaphore_blocking () =
  let v =
    in_pool (fun () ->
        let s = Sync.Semaphore.create 0 in
        let got = ref 0 in
        S.fork (fun () ->
            Sync.Semaphore.acquire s;
            got := 1);
        S.yield ();
        checkb "blocked at zero" true (!got = 0);
        Sync.Semaphore.release s;
        while !got = 0 do
          S.yield ()
        done;
        !got)
  in
  check "released waiter proceeds" 1 v

let test_semaphore_bounds_concurrency () =
  let v =
    in_pool (fun () ->
        let s = Sync.Semaphore.create 3 in
        let inside = Atomic.make 0 in
        let peak = Atomic.make 0 in
        let done_ = Atomic.make 0 in
        for _ = 1 to 12 do
          S.fork (fun () ->
              Sync.Semaphore.acquire s;
              let now = Atomic.fetch_and_add inside 1 + 1 in
              let rec bump () =
                let p = Atomic.get peak in
                if now > p && not (Atomic.compare_and_set peak p now) then
                  bump ()
              in
              bump ();
              S.yield ();
              ignore (Atomic.fetch_and_add inside (-1));
              Sync.Semaphore.release s;
              Atomic.incr done_)
        done;
        while Atomic.get done_ < 12 do
          S.yield ()
        done;
        Atomic.get peak)
  in
  checkb "never more than 3 inside" true (v <= 3 && v >= 1)

(* ---------------- Rwlock ---------------- *)

let test_rwlock_readers_share () =
  in_pool (fun () ->
      let rw = Sync.Rwlock.create () in
      Sync.Rwlock.read_lock rw;
      Sync.Rwlock.read_lock rw;
      (* two concurrent readers: no deadlock *)
      Sync.Rwlock.read_unlock rw;
      Sync.Rwlock.read_unlock rw)

let test_rwlock_writer_excludes () =
  let v =
    in_pool (fun () ->
        let rw = Sync.Rwlock.create () in
        let log = ref [] in
        Sync.Rwlock.write_lock rw;
        S.fork (fun () ->
            Sync.Rwlock.read_lock rw;
            log := `Reader :: !log;
            Sync.Rwlock.read_unlock rw);
        S.yield ();
        log := `Writer :: !log;
        Sync.Rwlock.write_unlock rw;
        while List.length !log < 2 do
          S.yield ()
        done;
        List.rev !log = [ `Writer; `Reader ])
  in
  checkb "reader waited for writer" true v

let test_rwlock_writer_preference () =
  let v =
    in_pool (fun () ->
        let rw = Sync.Rwlock.create () in
        let log = ref [] in
        Sync.Rwlock.read_lock rw;
        (* a writer queues; a later reader must NOT overtake it *)
        S.fork (fun () ->
            Sync.Rwlock.write_lock rw;
            log := `Writer :: !log;
            Sync.Rwlock.write_unlock rw);
        S.yield ();
        S.fork (fun () ->
            Sync.Rwlock.read_lock rw;
            log := `Reader2 :: !log;
            Sync.Rwlock.read_unlock rw);
        S.yield ();
        Sync.Rwlock.read_unlock rw;
        while List.length !log < 2 do
          S.yield ()
        done;
        List.rev !log = [ `Writer; `Reader2 ])
  in
  checkb "writer served before late reader" true v

let test_rwlock_with_helpers () =
  let v =
    in_pool (fun () ->
        let rw = Sync.Rwlock.create () in
        let cell = ref 0 in
        Sync.Rwlock.with_write rw (fun () -> cell := 5);
        Sync.Rwlock.with_read rw (fun () -> !cell))
  in
  check "helpers" 5 v

let test_rwlock_misuse () =
  in_pool (fun () ->
      let rw = Sync.Rwlock.create () in
      (match Sync.Rwlock.read_unlock rw with
      | () -> Alcotest.fail "expected rejection"
      | exception Invalid_argument _ -> ());
      match Sync.Rwlock.write_unlock rw with
      | () -> Alcotest.fail "expected rejection"
      | exception Invalid_argument _ -> ())

(* ---------------- Barrier ---------------- *)

let test_barrier_releases_all () =
  let v =
    in_pool (fun () ->
        let b = Sync.Barrier.create ~parties:4 in
        let passed = Atomic.make 0 in
        for _ = 1 to 3 do
          S.fork (fun () ->
              ignore (Sync.Barrier.await b);
              Atomic.incr passed)
        done;
        S.yield ();
        checkb "nobody passed early" true (Atomic.get passed = 0);
        ignore (Sync.Barrier.await b);
        while Atomic.get passed < 3 do
          S.yield ()
        done;
        Atomic.get passed)
  in
  check "all released together" 3 v

let test_barrier_cyclic () =
  let v =
    in_pool (fun () ->
        let b = Sync.Barrier.create ~parties:2 in
        let rounds = 5 in
        let partner_rounds = ref 0 in
        S.fork (fun () ->
            for _ = 1 to rounds do
              ignore (Sync.Barrier.await b);
              incr partner_rounds
            done);
        for _ = 1 to rounds do
          ignore (Sync.Barrier.await b)
        done;
        while !partner_rounds < rounds do
          S.yield ()
        done;
        !partner_rounds)
  in
  check "barrier reusable" 5 v

let test_barrier_arrival_index () =
  in_pool (fun () ->
      let b = Sync.Barrier.create ~parties:1 in
      check "single party passes with index 0" 0 (Sync.Barrier.await b))

(* ---------------- Future ---------------- *)

let test_future_touch () =
  let v =
    in_pool (fun () ->
        let f = Sync.Future.spawn (fun () -> 6 * 7) in
        Sync.Future.touch f)
  in
  check "computed in parallel" 42 v

let test_future_of_value () =
  let v = in_pool (fun () -> Sync.Future.(touch (of_value 5))) in
  check "immediate" 5 v

let test_future_poll () =
  in_pool (fun () ->
      let gate = Sync.Ivar.create () in
      let f = Sync.Future.spawn (fun () -> Sync.Ivar.read gate) in
      Alcotest.(check (option int)) "not ready" None (Sync.Future.poll f);
      Sync.Ivar.fill gate 3;
      check "touch after fill" 3 (Sync.Future.touch f))

let test_future_map () =
  let v =
    in_pool (fun () ->
        let f = Sync.Future.spawn (fun () -> 10) in
        Sync.Future.touch (Sync.Future.map (fun x -> x + 1) f))
  in
  check "mapped" 11 v

let test_future_tree () =
  (* a small parallel divide-and-conquer with futures *)
  let v =
    in_pool (fun () ->
        let rec fib n =
          if n < 2 then n
          else begin
            let a = Sync.Future.spawn (fun () -> fib (n - 1)) in
            let b = fib (n - 2) in
            Sync.Future.touch a + b
          end
        in
        fib 10)
  in
  check "fib 10" 55 v

(* ---------------- Countdown ---------------- *)

let test_countdown () =
  let v =
    in_pool (fun () ->
        let c = Sync.Countdown.create 3 in
        let passed = ref false in
        S.fork (fun () ->
            Sync.Countdown.await c;
            passed := true);
        S.yield ();
        checkb "blocked at 3" false !passed;
        Sync.Countdown.count_down c;
        Sync.Countdown.count_down c;
        S.yield ();
        checkb "blocked at 1" false !passed;
        Sync.Countdown.count_down c;
        while not !passed do
          S.yield ()
        done;
        check "remaining" 0 (Sync.Countdown.remaining c);
        true)
  in
  checkb "released at zero" true v

let test_countdown_already_zero () =
  in_pool (fun () ->
      let c = Sync.Countdown.create 0 in
      (* await on an already-open latch returns immediately *)
      Sync.Countdown.await c;
      Sync.Countdown.count_down c;
      check "stays at zero" 0 (Sync.Countdown.remaining c))

let () =
  Alcotest.run "sync"
    [
      ( "ivar",
        [
          Alcotest.test_case "fill then read" `Quick test_ivar_fill_then_read;
          Alcotest.test_case "read blocks" `Quick test_ivar_read_blocks;
          Alcotest.test_case "multiple readers" `Quick
            test_ivar_multiple_readers;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
          Alcotest.test_case "poll" `Quick test_ivar_poll;
        ] );
      ( "mvar",
        [
          Alcotest.test_case "put/take" `Quick test_mvar_put_take;
          Alcotest.test_case "take blocks" `Quick test_mvar_take_blocks;
          Alcotest.test_case "put blocks when full" `Quick
            test_mvar_put_blocks_when_full;
          Alcotest.test_case "pipeline" `Quick test_mvar_pipeline;
          Alcotest.test_case "try_take" `Quick test_mvar_try_take;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "counting" `Quick test_semaphore_counting;
          Alcotest.test_case "blocking" `Quick test_semaphore_blocking;
          Alcotest.test_case "bounds concurrency" `Quick
            test_semaphore_bounds_concurrency;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "readers share" `Quick test_rwlock_readers_share;
          Alcotest.test_case "writer excludes" `Quick test_rwlock_writer_excludes;
          Alcotest.test_case "writer preference" `Quick
            test_rwlock_writer_preference;
          Alcotest.test_case "helpers" `Quick test_rwlock_with_helpers;
          Alcotest.test_case "misuse detected" `Quick test_rwlock_misuse;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "releases all" `Quick test_barrier_releases_all;
          Alcotest.test_case "cyclic" `Quick test_barrier_cyclic;
          Alcotest.test_case "arrival index" `Quick test_barrier_arrival_index;
        ] );
      ( "future",
        [
          Alcotest.test_case "touch" `Quick test_future_touch;
          Alcotest.test_case "of_value" `Quick test_future_of_value;
          Alcotest.test_case "poll" `Quick test_future_poll;
          Alcotest.test_case "map" `Quick test_future_map;
          Alcotest.test_case "future tree" `Quick test_future_tree;
        ] );
      ( "countdown",
        [
          Alcotest.test_case "counts down" `Quick test_countdown;
          Alcotest.test_case "already zero" `Quick test_countdown_already_zero;
        ] );
    ]
