lib/queues/ws_deque.ml: Array Atomic Obj
