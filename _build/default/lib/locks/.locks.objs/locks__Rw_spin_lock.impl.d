lib/locks/rw_spin_lock.ml: Lock_intf
