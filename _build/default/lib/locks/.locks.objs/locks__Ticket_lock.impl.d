lib/locks/ticket_lock.ml: Lock_intf
