(** Closed-form speedup model used to cross-check the simulator.

    The §6 story of the paper is that each benchmark's speedup is governed
    by four resources; this model composes them analytically:

    {ul
    {- perfectly parallel work [work] (seconds on one proc), bounded by the
       available parallelism [max_par] (e.g. simple's banded sweeps);}
    {- a serial component [serial] (boundary passes, fork/join and
       reduction overheads) that Amdahl-limits the curve;}
    {- stop-the-world sequential collection [gc], paid at any proc count;}
    {- a shared bus: the run cannot finish faster than its total traffic
       [bus_bytes] divided by the bus bandwidth.}}

    T(p) = max( work/min(p,max_par) + serial + gc,  bus_seconds ),
    speedup(p) = T(1)/T(p).

    Fitting these four numbers from a single-proc simulator run and
    comparing predictions against full simulations validates that the
    simulator's behaviour comes from the modelled resources and nothing
    else. *)

type params = {
  work : float;  (** parallelizable seconds at p=1 *)
  serial : float;  (** per-run serial seconds (excluding GC) *)
  gc : float;  (** total collection seconds *)
  bus_seconds : float;  (** total traffic / bandwidth *)
  max_par : float;  (** parallelism cap (infinity if none) *)
}

type topology = {
  nodes : int;  (** interconnect nodes (1 = flat bus) *)
  procs_per_node : int;  (** procs filled per node, contiguous blocks *)
  link_seconds : float;
      (** cross-node traffic / link bandwidth once >1 node is active *)
}
(** Hierarchical-machine refinement of the bus bound, mirroring
    {!Sim.Sim_config.machine}'s Numa shape.  Procs fill nodes in
    contiguous blocks, so [p] procs occupy [ceil(p / procs_per_node)]
    nodes: the traffic bound becomes [bus_seconds] divided by the active
    node count (each node has a private bus), and as soon as a second
    node is active the shared inter-node link adds its own floor of
    [link_seconds].  This predicts the NUMA knee: the curve tracks the
    flat model while the pool fits one node, then flattens at
    [link_seconds] when cross-node traffic saturates the link. *)

val flat : topology
(** One node, no link: both bounds reduce to the flat-bus model. *)

val nodes_active : topology -> procs:int -> int
(** Nodes occupied by a contiguous pool of [procs] procs (at least 1). *)

val time : ?topology:topology -> params -> procs:int -> float
val speedup : ?topology:topology -> params -> procs:int -> float

val fit :
  elapsed1:float -> gc1:float -> bus_busy1:float -> ?serial:float ->
  ?max_par:float -> unit -> params
(** Derive parameters from a 1-proc simulated run: [work] is what remains
    of [elapsed1] after GC and the declared serial part; the bus bound is
    the observed total bus occupancy. *)
