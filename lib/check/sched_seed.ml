(* splitmix64 (Steele, Lea & Flood) — the standard seeding generator: one
   addition and three xor-shift-multiply rounds per draw, full 2^64 period,
   and any two distinct seeds give independent streams, which is what lets
   [derive] hand each run of a batch its own printable seed. *)

type t = int64

let default = 0x5EED_AC1D_0001_CAFEL
let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next state =
  let s = Int64.add !state golden in
  state := s;
  mix s

let derive base i =
  if i = 0 then base else mix (Int64.add base (Int64.mul golden (Int64.of_int i)))

let bounded state n =
  if n <= 0 then invalid_arg "Sched_seed.bounded";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next state) 1) (Int64.of_int n))

let hash2 seed k = mix (Int64.add seed (Int64.mul golden (Int64.of_int (k + 1))))

let to_string s = Printf.sprintf "0x%016Lx" s

let of_string str =
  match Int64.of_string_opt str with
  | Some s -> s
  | None -> failwith (Printf.sprintf "Sched_seed.of_string: %S" str)
