(** Ticket lock: FIFO-fair; each waiter spins on the shared now-serving
    counter.  [try_lock] succeeds only when no one holds or awaits the lock.
    Queue-style: the releasing proc is expected to be the holder. *)

module Make (P : Lock_intf.PRIMS) : Lock_intf.LOCK_EXT
