test/test_preempt.mli:
