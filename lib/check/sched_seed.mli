(** Printable 64-bit schedule seeds (splitmix64).

    Random schedule exploration derives every per-run seed from one base
    seed, and a failing run's seed is printed in a form the user can feed
    back through the [MP_CHECK_SEED] environment variable — so a CI fuzzing
    failure replays locally from its log line alone. *)

type t = int64

val default : t
(** The fixed base seed used when none is supplied (deterministic CI). *)

val next : t ref -> int64
(** Advance a splitmix64 state and return the next 64-bit draw. *)

val derive : t -> int -> t
(** [derive base i]: an independent seed for the [i]-th run of a batch.
    [derive base 0 = base], so a printed seed replays as run 0. *)

val bounded : t ref -> int -> int
(** [bounded state n]: a draw in [0, n) ([n > 0]). *)

val hash2 : t -> int -> int64
(** Stateless mix of a seed and a counter — used for fault-injection
    decisions, so the k-th injection site keeps its outcome even when
    shrinking perturbs the surrounding schedule. *)

val to_string : t -> string
(** ["0x%016Lx"] — the printable form accepted by {!of_string}. *)

val of_string : string -> t
(** Accepts the [to_string] form and plain decimal.
    @raise Failure on anything else. *)
