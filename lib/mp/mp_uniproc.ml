module Make (D : Mp_intf.DATUM) : Mp_intf.PLATFORM with type Proc.proc_datum = D.t =
struct
  let name = "uniproc"

  module Kont = struct
    type 'a cont = 'a Engine.cont

    let callcc = Engine.callcc
    let throw = Engine.throw
    let throw_exn = Engine.throw_exn
  end

  module Proc = struct
    type proc_datum = D.t
    type proc_state = PS of unit Engine.cont * proc_datum

    exception No_More_Procs = Mp_intf.No_More_Procs

    let datum = ref D.initial
    let acquire_proc (PS (_, _)) = raise No_More_Procs
    let release_proc () = Engine.suspend (fun _ -> Engine.Stop)
    let initial_datum = D.initial
    let get_datum () = !datum
    let set_datum d = datum := d
    let self () = 0
    let max_procs () = 1
    let live_procs () = 1
    let nodes () = 1
    let node_of _ = 0
  end

  module Telemetry = Mp_intf.Telemetry_of (struct
    let handle =
      Obs.Telemetry.create ~stream_of:(fun () -> 0) ~now_ts:Mp_intf.host_ns ()
  end)

  module Lock = struct
    type mutex_lock = { mutable held : bool }

    let spins = ref 0
    let c_acquires = Telemetry.counter "lock.acquires"
    let c_spins = Telemetry.counter "lock.spins"
    let mutex_lock () = { held = false }

    let try_lock l =
      if l.held then begin
        incr spins;
        Obs.Counters.incr c_spins;
        false
      end
      else begin
        l.held <- true;
        Obs.Counters.incr c_acquires;
        true
      end

    let lock l =
      (* With a single proc a contended lock can never be released by anyone
         else, so spinning would loop forever; fail fast instead. *)
      if not (try_lock l) then
        failwith "Mp_uniproc.Lock.lock: deadlock (lock already held on a uniprocessor)"

    let unlock l = l.held <- false

    let locked l f =
      lock l;
      match f () with
      | v ->
          unlock l;
          v
      | exception e ->
          unlock l;
          raise e
  end

  module Work = struct
    let hook = ref (fun () -> ())
    let step ?alloc_words:_ ~instrs:_ () = !hook ()
    let charge _ = ()
    let alloc ~words:_ = ()
    let traffic ~bytes:_ = ()

    type line = unit

    let line () = ()
    let read_line _ = ()
    let write_line _ ~bytes:_ = ()
    let poll () = !hook ()
    let set_poll_hook f = hook := f
    let idle () = ()

    (* Single proc: if nothing is ready, nothing ever will be — but that is
       the caller's deadlock, not ours, so spin exactly as the old
       idle-loop fallback did. *)
    let idle_until ~ready =
      while not (ready ()) do
        idle ()
      done

    let now () = Unix.gettimeofday ()
    let queue_wait = ref 0.
    let note_queue_wait ~seconds = queue_wait := !queue_wait +. seconds
  end

  let last_elapsed = ref 0.
  let last_alloc_words = ref 0
  let last_gc_count = ref 0
  let running = ref false

  (* Host collections (minor + major) since program start, for run deltas. *)
  let host_collections () =
    let g = Gc.quick_stat () in
    g.Gc.minor_collections + g.Gc.major_collections

  let rec exec ~on_exn action =
    match action with
    | Engine.Resume (c, v) -> exec ~on_exn (Engine.resume c v)
    | Engine.Raise (c, e) -> exec ~on_exn (Engine.resume_exn c e)
    | Engine.Start f -> exec ~on_exn (Engine.run_fiber ~on_exn f)
    | Engine.Stop -> ()
    | _ -> raise Engine.Unhandled_action

  let run f =
    if !running then invalid_arg "Mp_uniproc.run: already running";
    running := true;
    let result = ref None in
    let escaped = ref None in
    let on_exn e =
      if !escaped = None then escaped := Some e;
      Engine.Stop
    in
    let t0 = Unix.gettimeofday () in
    let w0 = Gc.minor_words () in
    let g0 = host_collections () in
    if Telemetry.enabled () then
      Telemetry.emit (Obs.Event.Dispatch { proc = 0; clock = Telemetry.now_ts () });
    Fun.protect
      ~finally:(fun () ->
        running := false;
        last_elapsed := Unix.gettimeofday () -. t0;
        last_alloc_words := int_of_float (Gc.minor_words () -. w0);
        last_gc_count := host_collections () - g0;
        if Telemetry.enabled () then
          Telemetry.emit
            (Obs.Event.Freed { proc = 0; clock = Telemetry.now_ts () }))
      (fun () ->
        exec ~on_exn (Engine.Start (fun () -> result := Some (f ())));
        match (!result, !escaped) with
        | Some v, _ -> v
        | None, Some e -> raise e
        | None, None ->
            raise
              (Mp_intf.Deadlock
                 "uniproc root proc released without producing a result"))

  let stats () =
    let t = Stats.zero ~platform:name ~procs:1 in
    (* The single proc is running client code whenever the platform is. *)
    t.per_proc.(0).busy <- !last_elapsed;
    t.per_proc.(0).queue_wait <- !Work.queue_wait;
    t.per_proc.(0).lock_spins <- !Lock.spins;
    t.per_proc.(0).alloc_words <- !last_alloc_words;
    { t with elapsed = !last_elapsed; gc_count = !last_gc_count }

  let reset_stats () =
    last_elapsed := 0.;
    last_alloc_words := 0;
    last_gc_count := 0;
    Work.queue_wait := 0.;
    Lock.spins := 0
end

module Int () = Make (Mp_intf.Int_datum)
