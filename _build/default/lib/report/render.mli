(** Plain-text rendering of tables and speedup series for the benchmark
    harness (everything prints to a [Format.formatter]). *)

val table :
  Format.formatter -> header:string list -> rows:string list list -> unit
(** Column-aligned table with a header rule. *)

val section : Format.formatter -> string -> unit
(** Banner for an experiment section. *)

val series :
  Format.formatter ->
  xlabel:string ->
  xs:int list ->
  rows:(string * float list) list ->
  unit
(** A named-series table: one column per x value, one row per series
    (e.g. Figure 6: columns are proc counts, rows are benchmarks). *)

val chart :
  Format.formatter ->
  xs:int list ->
  rows:(string * float list) list ->
  ?height:int ->
  unit ->
  unit
(** Crude ASCII rendering of the same series (speedup vs procs), one
    letter per series, linear ideal shown as [.]. *)
