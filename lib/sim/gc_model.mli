(** Pluggable GC cost models for the simulated machine.

    The paper's §6 blames the Sequent speedup ceiling on SML/NJ's
    sequential stop-the-world collector.  The simulator's collector lives
    behind the {!MODEL} signature so the historical collector and its
    counterfactuals can be swept side by side:

    {ul
    {- [stw] — the paper's two-generation stop-the-world collector, moved
       out of [Mp_sim] term for term; every golden is pinned under it.}
    {- [par_stw[:N]] — the §7 "concurrent collection" extension priced as
       N collectors splitting the copy, each paying a sync-barrier
       surcharge; every proc at the barrier collects (capped at N when
       given).  Subsumes the old [Sim_config.with_parallel_gc] knob.}
    {- [minor_pp] — OCaml-5-style per-proc minor heaps: the region is
       divided among the procs, a full minor region is collected by its
       owner alone (no other proc stops), and survivors promote into a
       shared old region whose budget triggers a stop-the-world major.}} *)

type t = Stw | Par_stw of int  (** 0 = all barrier procs collect *) | Minor_pp

val default : t
(** [Stw] — the golden-pinned historical collector. *)

val to_string : t -> string
val names : string list

val of_string : string -> (t, string) result
(** Parse ["stw"], ["par_stw"], ["par_stw:<n>"] or ["minor_pp"]
    (case-insensitive). *)

val of_string_exn : string -> t

val env_var : string
(** ["MP_REPRO_GC"] — consulted by {!resolve} when no explicit selector is
    given, mirroring [MP_REPRO_SCHED]. *)

val resolve : ?explicit:string -> unit -> t
(** Selector precedence: [explicit] if given, else a non-empty
    {!env_var}, else {!default}. *)

(** Cost constants, extracted from [Sim_config] by the simulator (this
    module does not depend on the config; the config references {!t}). *)
type params = {
  procs : int;
  region_words : int;  (** shared region / old-region promotion budget *)
  survival : float;  (** fraction of a collected region that is live *)
  cycles_per_word : float;  (** copy cost per surviving word *)
  fixed_cycles : int;  (** stop-the-world synchronization + redivision *)
  parallelism : float;  (** legacy [stw] collection-speedup knob *)
  minor_fixed_cycles : int;  (** per-minor-collection fixed cost *)
  barrier_cycles : int;  (** per-collector sync surcharge ([par_stw]) *)
}

type kind = Obs.Event.gc_kind = Minor | Major | Par

type episode = { kind : kind; duration : int; region_words : int }
(** One priced stop-the-world collection; the scheduler releases the
    barrier at [start + duration]. *)

module type MODEL = sig
  val model : t

  val pending : bool ref
  (** A stop-the-world episode has been triggered; every proc parks at its
      next clean point.  A ref (not a function) so the run-ahead gates pay
      one deref on the hot path. *)

  val region_used : unit -> int
  (** Words the next stop-the-world episode would collect. *)

  val admit : proc:int -> words:int -> bool
  (** May [proc] allocate [words] inline?  Strict: an admitted slice
      cannot trigger a collection. *)

  val commit_fast : proc:int -> words:int -> unit
  (** Account an admitted slice (run-ahead fast path). *)

  val alloc_slow : proc:int -> words:int -> int * int
  (** Account a slice on the suspend path; may trigger.  Returns
      [(pause, collected)]: cycles the allocating proc pays alone for an
      independent minor collection and the words it scanned, or [(0, 0)]. *)

  val episode : waiters:int -> episode
  (** Price the pending collection given the procs parked at the
      barrier. *)

  val finish_episode : episode -> unit
  (** Barrier release: reset the collected region, clear [pending]. *)

  val minor_collections : unit -> int
  val major_collections : unit -> int

  val pause_cycles : unit -> int
  (** Stop-the-world durations plus per-proc minor pauses. *)

  val reset : unit -> unit
end

val instance : t -> params -> (module MODEL)
(** A fresh model instance with zeroed accounting. *)
