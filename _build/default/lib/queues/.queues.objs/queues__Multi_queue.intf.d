lib/queues/multi_queue.mli: Mp
