(** Open-loop request-serving workload with latency-tail reporting.

    A seeded virtual-time arrival process (Poisson or bursty/MMPP) feeds a
    CML-channel pipeline — accept → shard (hash over bounded worker
    queues) → work → reply — built on Cml/Sync/Sched_thread, so it runs
    unchanged on all four backends.  Latency is measured open-loop, from
    each request's intended arrival instant, and recorded in a
    constant-space {!Obs.Histogram}; the p99-vs-offered-load curve shows a
    saturation knee once the bounded shard queues back the accepter up
    behind the arrival clock. *)

type arrival =
  | Poisson
  | Bursty of { factor : float; p_switch : float }
      (** two-state MMPP with the same mean load as [Poisson]; rate
          toggles between [rate*factor] and [rate/factor] with
          probability [p_switch] per arrival *)

type service = Fixed | Exp | Pareto of { alpha : float }

type config = {
  requests : int;
  arrival : arrival;
  rate : float;  (** mean offered load, requests per (virtual) second;
                     non-finite or ≤ 0 ⇒ one closed burst at t = 0 *)
  service : service;
  service_mean_instrs : int;
  shards : int;
  workers_per_shard : int;
  queue_cap : int;
  seed : int;
  record_order : bool;
}

val default : config

val arrivals : config -> float array
(** Intended arrival instants (seconds from run start, ascending) — a pure
    function of the config, exposed for tests. *)

val shard_of : config -> int -> int
val service_instrs : config -> int -> int
(** Per-request shard and service demand: pure functions of the id. *)

type result = {
  completed : int;
  elapsed : float;
  throughput : float;
  hist : Obs.Histogram.t;  (** latency in nanoseconds *)
  p50 : int;
  p95 : int;
  p99 : int;
  p999 : int;
  queue_wait : float;
      (** producer seconds blocked on full shard queues
          ([Stats.total_queue_wait]) *)
  order : int list array;
      (** per-shard processing order when [record_order] *)
}

module Make (P : Mp.Mp_intf.PLATFORM_INT) : sig
  val run : procs:int -> ?quantum:float -> ?sched:Mpthreads.Sched_policy.t ->
    config -> result
  (** One pipeline run under [procs] procs.  Deterministic on the
      simulator for a fixed (config, sched, procs, machine) cell.  The
      latency histogram is registered as ["server.latency_ns"] in the
      platform's telemetry registry and reset at each run's start. *)
end
