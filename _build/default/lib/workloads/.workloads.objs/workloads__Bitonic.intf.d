lib/workloads/bitonic.mli:
