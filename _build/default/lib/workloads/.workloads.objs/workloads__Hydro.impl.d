lib/workloads/hydro.ml: Array Int64 Random
