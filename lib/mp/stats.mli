(** Execution statistics reported uniformly by every MP backend.

    The simulator fills every field from its virtual-time accounting.
    Real backends fill what the host can measure — [elapsed], per-proc
    [busy]/[idle], [lock_spins] (counted by the lock implementations),
    [alloc_words] (per-domain minor-heap deltas on the domains backend)
    and [gc_count] (host [Gc.quick_stat] collection deltas over the run)
    — and leave the purely-simulated fields (gc pause model, bus model)
    at zero. *)

type proc_stats = {
  mutable busy : float;  (** seconds spent running client code *)
  mutable idle : float;  (** seconds spent idle, waiting for work *)
  mutable gc_wait : float;  (** seconds stalled at GC barriers *)
  mutable queue_wait : float;
      (** seconds blocked on full/empty bounded queues (reported through
          [Work.note_queue_wait] by the queue implementations) *)
  mutable lock_spins : int;  (** failed [try_lock] attempts *)
  mutable alloc_words : int;  (** words allocated by this proc *)
}

type t = {
  platform : string;
  procs : int;  (** number of procs configured *)
  elapsed : float;  (** seconds (virtual on the simulator, wall otherwise) *)
  gc_time : float;  (** total collection pause seconds (simulator only) *)
  gc_count : int;  (** collections during the run (minor + major) *)
  bus_busy : float;  (** seconds the shared memory bus was occupied *)
  bus_bytes : int;  (** total bytes transferred over the bus *)
  sched_decisions : int;
      (** {e host-side}: scheduler dispatches performed during the run (0 on
          real backends).  Unlike every field above, this and the two below
          measure the cost of running the simulation, not simulated time. *)
  suspensions : int;
      (** host-side: effect-handler suspensions performed during the run *)
  heap_ops : int;  (** host-side: ready-heap pushes + pops during the run *)
  per_proc : proc_stats array;
}

val make_proc_stats : unit -> proc_stats
val zero : platform:string -> procs:int -> t

val idle_fraction : t -> float
(** Mean fraction of proc time spent idle (idle / (busy+idle+gc_wait)),
    the quantity behind the paper's "average processor idle rates above
    50%" claim for [simple]. *)

val gc_fraction : t -> float
(** gc_time / (procs * elapsed): share of total processor-seconds spent in
    (or waiting on) sequential collection. *)

val bus_utilization : t -> float
(** bus_busy / elapsed. *)

val total_alloc_words : t -> int
val total_lock_spins : t -> int

val total_gc_wait : t -> float
(** Seconds procs spent stalled for collection, summed over procs:
    barrier waits plus their own minor pauses. *)

val total_queue_wait : t -> float
(** Seconds procs spent blocked on bounded queues, summed over procs —
    the backpressure share of an open-loop server's tail. *)

val pp : Format.formatter -> t -> unit
