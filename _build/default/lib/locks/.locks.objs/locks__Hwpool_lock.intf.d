lib/locks/hwpool_lock.mli: Lock_intf
