lib/report/experiments.ml: Array Format Hashtbl List Loc_count Mp Printf Random Render Sim Workloads
