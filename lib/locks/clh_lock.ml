module Make (P : Lock_intf.PRIMS) = struct
  type node = { busy : bool P.cell }

  type mutex_lock = {
    tail : node P.cell;
    (* The holder's own node; written after acquisition, read by [unlock].
       Only the holder touches it between acquire and release. *)
    holder : node P.cell;
  }

  let holder_must_unlock = true

  let mutex_lock () =
    let free = { busy = P.make false } in
    { tail = P.make free; holder = P.make free }

  let lock l =
    let mine = { busy = P.make true } in
    let pred = P.exchange l.tail mine in
    while P.get pred.busy do
      P.on_spin ();
      P.pause ()
    done;
    P.set l.holder mine

  let try_lock l =
    let pred = P.get l.tail in
    if P.get pred.busy then false
    else begin
      let mine = { busy = P.make true } in
      if P.compare_and_set l.tail pred mine then begin
        (* A node's busy flag never goes false -> true, so the predecessor we
           observed free is still free: the lock is ours. *)
        P.set l.holder mine;
        true
      end
      else false
    end

  let unlock l = P.set (P.get l.holder).busy false
  let locked l f = Lock_intf.locked_default ~lock ~unlock l f

end
