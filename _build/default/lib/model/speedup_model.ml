type params = {
  work : float;
  serial : float;
  gc : float;
  bus_seconds : float;
  max_par : float;
}

let time p ~procs =
  let par = min (float_of_int procs) p.max_par in
  let cpu = (p.work /. par) +. p.serial +. p.gc in
  max cpu p.bus_seconds

let speedup p ~procs = time p ~procs:1 /. time p ~procs

let fit ~elapsed1 ~gc1 ~bus_busy1 ?(serial = 0.) ?(max_par = infinity) () =
  {
    work = max 0. (elapsed1 -. gc1 -. serial);
    serial;
    gc = gc1;
    bus_seconds = bus_busy1;
    max_par;
  }
