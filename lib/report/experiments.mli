(** Experiment drivers: everything needed to regenerate the paper's
    evaluation (see DESIGN.md's per-experiment index E1–E7).

    The sweeps run the five Figure-6 benchmarks plus [seq] on the simulated
    Sequent Symmetry (and the SGI model for E7), collect per-run statistics,
    and verify every parallel result against the sequential reference
    implementations. *)

type sample = {
  machine : string;
      (** machine name: "sequent", "sgi", or a "numa:<nodes>x<procs>" *)
  sched : string;  (** scheduling policy the cell ran under *)
  gc_model : string;  (** GC cost model ({!Sim.Gc_model.to_string}) *)
  bench : string;
  procs : int;
  elapsed : float;  (** virtual seconds *)
  gc : float;
  gc_count : int;  (** minor + major collections *)
  gc_minor : int;  (** proc-local minor collections (0 under stw/par_stw) *)
  gc_major : int;  (** stop-the-world collections *)
  idle : float;  (** mean idle fraction *)
  bus_mb : float;  (** bus traffic MB/s *)
  bus_util : float;
  spins : int;
  alloc_words : int;
  checksum : int;
  verified : bool;  (** checksum matches the sequential reference *)
}

val default_procs : int list
(** 1, 2, 4, 6, 8, 10, 12, 14, 16 — Figure 6's x axis. *)

val sequent_sweep :
  ?plist:int list ->
  ?jobs:int ->
  ?sched:string ->
  ?gc:string ->
  unit ->
  sample list
(** Full sweep on the 16-processor Sequent model (cached per
    (policy, collector) after first call).

    [sched] is the scheduling policy for every pool in the sweep, in
    {!Mpthreads.Sched_policy.of_string} syntax; default ["distributed"].
    [gc] is the GC cost model in {!Sim.Gc_model.of_string} syntax; default
    ["stw"].  Traced sweeps (a sink attached via {!trace_sequent}) always
    run on the shared default-policy, default-collector machine.

    [jobs] fans the grid's (bench, procs) cells across that many host
    domains via {!Exec.Job_pool} — every cell runs on a private machine
    instance and results are merged back in grid order, so the returned
    samples (and all output rendered from them) are identical for every
    [jobs] value.  Defaults to [MP_REPRO_JOBS] or 1.  When a trace sink is
    attached (see {!trace_sequent}) the sweep runs sequentially on the
    shared traced machine regardless of [jobs]. *)

val sgi_sweep :
  ?plist:int list ->
  ?jobs:int ->
  ?sched:string ->
  ?gc:string ->
  unit ->
  sample list
(** Sweep on the 8-processor SGI model (cached); [jobs], [sched] and [gc]
    as in {!sequent_sweep}. *)

val machine_sweep :
  ?plist:int list ->
  ?jobs:int ->
  ?sched:string ->
  ?gc:string ->
  machine:string ->
  unit ->
  sample list
(** Sweep on any {!Sim.Sim_config.of_machine_string} selector (["sequent"],
    ["sgi"], ["numa:<nodes>x<procs>"], ["numa1024"]); cached per
    (machine, sched, gc).  Machines larger than 16 procs default to the
    powers-of-four proc list [1; 4; 16; 64; 256; 1024] clamped to the
    machine size; [jobs], [sched] and [gc] as in {!sequent_sweep}. *)

val gc_models : string list
(** The three collectors of the E8 headroom replay:
    ["stw"; "par_stw"; "minor_pp"]. *)

val gc_sweep :
  ?plist:int list ->
  ?jobs:int ->
  ?sched:string ->
  ?machine:string ->
  unit ->
  (string * sample list) list
(** One {!machine_sweep} per collector in {!gc_models} on the same machine
    (default ["sequent"]) and schedule, for the paper-§6.2 "how much does
    the sequential stop-the-world collector cost us" replay (E8). *)

val trace_sequent : string -> (unit -> 'a) -> 'a
(** [trace_sequent path f] runs [f] with the Sequent platform's telemetry
    streaming to [path] as JSONL, one event per line; flushes and detaches
    the sink on the way out (even on exceptions). *)

val speedup : sample list -> bench:string -> procs:int -> float
(** Self-relative speedup vs the 1-proc sample of the same benchmark. *)

val speedup_no_gc : sample list -> bench:string -> procs:int -> float
(** Speedup with collection time excluded from both runs (E6). *)

(* Section printers (E-numbers from DESIGN.md). *)

val print_fig6 : Format.formatter -> sample list -> unit
val print_idle : Format.formatter -> sample list -> unit
val print_bus : Format.formatter -> sample list -> unit
val print_gc_ablation : Format.formatter -> sample list -> unit

(** Render a {!gc_sweep}: per-benchmark speedup curves laid side by side
    per collector, plus a collector-accounting table at max procs (E8). *)
val print_gc_models : Format.formatter -> (string * sample list) list -> unit
val print_lock_latency : Format.formatter -> unit
val print_portability : Format.formatter -> unit
val print_sgi : Format.formatter -> sample list -> unit
