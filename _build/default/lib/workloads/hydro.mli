(** Simplified SIMPLE hydrodynamics (after Crowley et al. 1978, the paper's
    [simple] benchmark: "solves a set of differential equations across a
    grid of size 100×100, run for one time step").

    A 2D Eulerian-style step over density/energy/velocity fields, organized
    as the phase structure that gives [simple] its performance profile:
    several cheap grid sweeps separated by barriers, a serial boundary
    pass, and a global CFL reduction — so available parallelism is low and
    processors idle, as §6 reports (idle rates above 50% for ≥10 procs).

    Every phase function takes a row range [lo, hi) so the parallel driver
    can split it; running each phase over the full range reproduces the
    sequential reference exactly (same floating-point order per row). *)

type t = {
  n : int;
  rho : float array array;  (** density *)
  e : float array array;  (** internal energy *)
  u : float array array;  (** x velocity *)
  v : float array array;  (** y velocity *)
  p : float array array;  (** pressure (derived) *)
  q : float array array;  (** artificial viscosity (derived) *)
}

val create : n:int -> seed:int -> t
val copy : t -> t

(* The phases of one time step, in order.  [dt] comes from {!cfl_row} via a
   min-reduction. *)

val phase_eos : t -> lo:int -> hi:int -> unit
val phase_viscosity : t -> lo:int -> hi:int -> unit
val phase_velocity : t -> dt:float -> lo:int -> hi:int -> unit
val phase_energy : t -> dt:float -> lo:int -> hi:int -> unit
val phase_density : t -> dt:float -> lo:int -> hi:int -> unit
val phase_heat : t -> lo:int -> hi:int -> unit
val phase_heat_commit : t -> lo:int -> hi:int -> unit
val boundary : t -> unit
(** Serial boundary-condition pass (edges only). *)

val cfl_row : t -> int -> float
(** Per-row contribution to the CFL time-step bound (min-reduce across rows). *)

val step_seq : t -> float
(** One full sequential time step; returns the dt used. *)

val checksum : t -> int
(** Bit-stable digest of the whole state. *)

val row_flops : t -> int
(** Approximate abstract instructions per row per phase (cost model). *)
