lib/report/render.ml: Array Char Format List Printf String
