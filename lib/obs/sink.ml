type t = { emit : Event.t -> unit; flush : unit -> unit }

let null = { emit = ignore; flush = ignore }

let memory ring = { emit = Ring.record ring; flush = ignore }

let jsonl oc =
  (* One writer mutex: domains-backend emitters may share the channel, and
     interleaved [output_string] calls would tear lines. *)
  let m = Mutex.create () in
  {
    emit =
      (fun e ->
        let line = Event.to_json e in
        Mutex.lock m;
        output_string oc line;
        output_char oc '\n';
        Mutex.unlock m);
    flush = (fun () -> flush oc);
  }

let tee a b =
  {
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }
