(* Command-line driver for the reproduction experiments.

   mp_repro fig6 [--procs 1,4,16]    Figure 6 speedup sweep
   mp_repro idle | bus | gc | sgi    the other evaluation sections
   mp_repro gc_sweep                 fig6 once per GC cost model (E8)
   mp_repro server                   open-loop latency tails + knee (E9)
   mp_repro locks                    lock latency microtable (E3)
   mp_repro portability              source-line inventory (E2)
   mp_repro all [--quick]            everything

   Every sweep subcommand takes --sched POLICY (or the MP_REPRO_SCHED
   environment variable) to run the thread pools under a different
   scheduling policy, and --gc MODEL (or MP_REPRO_GC) to price heap
   allocation under a different GC cost model. *)

open Cmdliner

let fmt = Format.std_formatter

let procs_arg =
  let doc = "Comma-separated proc counts for the sweep (default 1..16)." in
  Arg.(value & opt (some (list int)) None & info [ "procs" ] ~doc)

let quick_arg =
  let doc = "Reduced sweep (1,4,16)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let jobs_arg =
  let doc =
    "Fan the sweep's independent (bench, procs) cells across $(docv) host \
     domains.  Results are merged in grid order, so all output is \
     identical for every value.  Defaults to $(b,MP_REPRO_JOBS) or 1."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let sched_arg =
  let doc =
    "Thread-scheduler policy for the sweep's pools: one of \
     $(b,fifo)|$(b,lifo)|$(b,distributed)|$(b,ws)|$(b,micropools[:K]).  \
     Defaults to $(b,MP_REPRO_SCHED) or $(b,distributed)."
  in
  Arg.(value & opt (some string) None & info [ "sched" ] ~docv:"POLICY" ~doc)

(* --sched beats MP_REPRO_SCHED beats the distributed default; re-render to
   the canonical spelling for sweep cache keys and sample labels. *)
let resolve_sched explicit =
  Mpthreads.Sched_policy.(to_string (resolve ?explicit ()))

let gc_arg =
  let doc =
    "GC cost model for the sweep's machines: one of \
     $(b,stw)|$(b,par_stw[:N])|$(b,minor_pp).  $(b,stw) is the paper's \
     sequential stop-the-world collector; $(b,par_stw) splits the copy \
     across up to N collectors; $(b,minor_pp) gives each proc a private \
     minor heap.  Defaults to $(b,MP_REPRO_GC) or $(b,stw)."
  in
  Arg.(value & opt (some string) None & info [ "gc" ] ~docv:"MODEL" ~doc)

(* --gc beats MP_REPRO_GC beats the stw default; same canonicalization
   scheme as resolve_sched. *)
let resolve_gc explicit = Sim.Gc_model.(to_string (resolve ?explicit ()))

let machine_arg =
  let doc =
    "Machine model for the sweep: \
     $(b,sequent)|$(b,sgi)|$(b,numa:<nodes>x<procs>)|$(b,numa1024) (e.g. \
     $(b,numa:4x16) = 4 nodes of 16 procs each, joined by a shared \
     inter-node link).  Default $(b,sequent), the paper's flat-bus \
     machine.  Machines larger than 16 procs default to the \
     powers-of-four proc list 1,4,...,1024 clamped to the machine."
  in
  Arg.(value & opt (some string) None & info [ "machine" ] ~docv:"MACHINE" ~doc)

let trace_arg =
  let doc =
    "Stream telemetry events (scheduler, lock, GC, ...) to $(docv) as JSONL \
     while the experiment runs.  Large for full sweeps; combine with \
     $(b,--quick) for a bounded file."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let maybe_trace trace go =
  match trace with
  | None -> go ()
  | Some path -> Report.Experiments.trace_sequent path go

let plist_of quick procs =
  match procs with
  | Some l -> Some l
  | None -> if quick then Some [ 1; 4; 16 ] else None

(* A sweep routed by machine: the flat Sequent keeps its dedicated (cached,
   traceable) driver; any other machine goes through the parameterized
   machine sweep.  --quick on a >16-proc machine trims the tail of the
   powers-of-four list rather than using the flat 1,4,16 grid. *)
let sweep ?machine quick procs jobs sched gc =
  let sched = resolve_sched sched in
  let gc = resolve_gc gc in
  match machine with
  | None | Some "sequent" ->
      Report.Experiments.sequent_sweep ?plist:(plist_of quick procs) ?jobs
        ~sched ~gc ()
  | Some machine ->
      let plist =
        match procs with
        | Some l -> Some l
        | None -> if quick then Some [ 1; 4; 16; 64 ] else None
      in
      Report.Experiments.machine_sweep ?plist ?jobs ~sched ~gc ~machine ()

let fig6_cmd =
  let run quick procs jobs sched gc machine trace =
    maybe_trace trace (fun () ->
        Report.Experiments.print_fig6 fmt
          (sweep ?machine quick procs jobs sched gc))
  in
  Cmd.v (Cmd.info "fig6" ~doc:"Self-relative speedup curves (Figure 6)")
    Term.(
      const run $ quick_arg $ procs_arg $ jobs_arg $ sched_arg $ gc_arg
      $ machine_arg $ trace_arg)

let idle_cmd =
  let run quick procs jobs sched gc machine =
    Report.Experiments.print_idle fmt (sweep ?machine quick procs jobs sched gc)
  in
  Cmd.v (Cmd.info "idle" ~doc:"Processor idle fractions (E4)")
    Term.(
      const run $ quick_arg $ procs_arg $ jobs_arg $ sched_arg $ gc_arg
      $ machine_arg)

let bus_cmd =
  let run quick procs jobs sched gc machine =
    Report.Experiments.print_bus fmt (sweep ?machine quick procs jobs sched gc)
  in
  Cmd.v (Cmd.info "bus" ~doc:"Memory-bus traffic and contention (E5)")
    Term.(
      const run $ quick_arg $ procs_arg $ jobs_arg $ sched_arg $ gc_arg
      $ machine_arg)

let gc_cmd =
  let run quick procs jobs sched gc machine =
    Report.Experiments.print_gc_ablation fmt
      (sweep ?machine quick procs jobs sched gc)
  in
  Cmd.v (Cmd.info "gc" ~doc:"GC ablation (E6)")
    Term.(
      const run $ quick_arg $ procs_arg $ jobs_arg $ sched_arg $ gc_arg
      $ machine_arg)

let gc_sweep_cmd =
  let run quick procs jobs sched machine =
    let plist =
      match procs with
      | Some l -> Some l
      | None -> if quick then Some [ 1; 4; 16 ] else None
    in
    Report.Experiments.print_gc_models fmt
      (Report.Experiments.gc_sweep ?plist ?jobs ~sched:(resolve_sched sched)
         ?machine ())
  in
  Cmd.v
    (Cmd.info "gc_sweep"
       ~doc:
         "Replay fig6 once per GC cost model (stw, par_stw, minor_pp) and \
          lay the speedup curves side by side: the paper-\xc2\xa76.2 \
          collector-headroom analysis (E8)")
    Term.(
      const run $ quick_arg $ procs_arg $ jobs_arg $ sched_arg $ machine_arg)

let sgi_cmd =
  let run quick procs jobs sched gc =
    let plist = plist_of quick procs in
    Report.Experiments.print_sgi fmt
      (Report.Experiments.sgi_sweep ?plist ?jobs ~sched:(resolve_sched sched)
         ~gc:(resolve_gc gc) ())
  in
  Cmd.v (Cmd.info "sgi" ~doc:"The SGI machine model sweep (E7)")
    Term.(const run $ quick_arg $ procs_arg $ jobs_arg $ sched_arg $ gc_arg)

let server_cmd =
  let json_arg =
    let doc = "Also write the sweep to $(b,BENCH_server.json)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run quick jobs machine json =
    let machine = Option.value machine ~default:"sequent" in
    let jobs = Exec.Job_pool.resolve_jobs jobs in
    let grid = Report.Server_bench.grid ~quick ~jobs ~machine () in
    let ramp = Report.Server_bench.ramp ~quick ~jobs ~machine () in
    Report.Server_bench.print_server fmt grid ramp;
    if json then begin
      let oc = open_out "BENCH_server.json" in
      output_string oc (Report.Server_bench.to_json ~quick grid ramp);
      close_out oc;
      (* stderr, so stdout stays byte-identical with and without --json *)
      Printf.eprintf "wrote BENCH_server.json\n"
    end
  in
  Cmd.v
    (Cmd.info "server"
       ~doc:
         "Open-loop server workload (E9): seeded Poisson arrivals through \
          the CML accept/shard/work/reply pipeline; latency-tail grid per \
          (scheduler, procs) plus a saturation ramp with the per-scheduler \
          p99 knee")
    Term.(const run $ quick_arg $ jobs_arg $ machine_arg $ json_arg)

let locks_cmd =
  let run () = Report.Experiments.print_lock_latency fmt in
  Cmd.v (Cmd.info "locks" ~doc:"Lock latency vs the paper's 6/46 us (E3)")
    Term.(const run $ const ())

let portability_cmd =
  let run () = Report.Experiments.print_portability fmt in
  Cmd.v
    (Cmd.info "portability" ~doc:"Source-line inventory, the paper's E2 table")
    Term.(const run $ const ())

let all_cmd =
  let run quick procs jobs sched gc machine trace =
    Report.Experiments.print_lock_latency fmt;
    Report.Experiments.print_portability fmt;
    maybe_trace trace (fun () ->
        let s = sweep ?machine quick procs jobs sched gc in
        Report.Experiments.print_fig6 fmt s;
        Report.Experiments.print_idle fmt s;
        Report.Experiments.print_bus fmt s;
        Report.Experiments.print_gc_ablation fmt s);
    Report.Experiments.print_sgi fmt
      (Report.Experiments.sgi_sweep
         ?plist:(if quick then Some [ 1; 4; 8 ] else None)
         ?jobs ~sched:(resolve_sched sched) ~gc:(resolve_gc gc) ())
  in
  Cmd.v (Cmd.info "all" ~doc:"Every evaluation section")
    Term.(
      const run $ quick_arg $ procs_arg $ jobs_arg $ sched_arg $ gc_arg
      $ machine_arg $ trace_arg)

let () =
  let info =
    Cmd.info "mp_repro" ~version:"1.0"
      ~doc:
        "Regenerate the evaluation of 'Procs and Locks: A Portable \
         Multiprocessing Platform for Standard ML of New Jersey' (PPOPP \
         1993) on the simulated Sequent/SGI machines"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig6_cmd;
            idle_cmd;
            bus_cmd;
            gc_cmd;
            gc_sweep_cmd;
            sgi_cmd;
            server_cmd;
            locks_cmd;
            portability_cmd;
            all_cmd;
          ]))
