type event =
  | Dispatch of { proc : int; clock : int }
  | Freed of { proc : int; clock : int }
  | Acquired of { proc : int; by : int; clock : int }
  | Gc_start of { clock : int; region_words : int }
  | Gc_end of { clock : int; duration : int }
  | Coalesced of { proc : int; clock : int; cycles : int }

type t = {
  ring : event option array;
  mutable next : int; (* ring index of the next write *)
  mutable total : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Sim_trace.create";
  { ring = Array.make capacity None; next = 0; total = 0 }

let record t e =
  t.ring.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.total <- 0

let length t = min t.total (Array.length t.ring)
let total_recorded t = t.total

let events t =
  let cap = Array.length t.ring in
  let n = length t in
  let start = (t.next - n + cap) mod cap in
  List.init n (fun i ->
      match t.ring.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let clock_of = function
  | Dispatch { clock; _ }
  | Freed { clock; _ }
  | Acquired { clock; _ }
  | Gc_start { clock; _ }
  | Gc_end { clock; _ }
  | Coalesced { clock; _ } ->
      clock

let pp_event fmt = function
  | Dispatch { proc; clock } -> Format.fprintf fmt "%10d dispatch p%d" clock proc
  | Freed { proc; clock } -> Format.fprintf fmt "%10d free     p%d" clock proc
  | Acquired { proc; by; clock } ->
      Format.fprintf fmt "%10d acquire  p%d (by p%d)" clock proc by
  | Gc_start { clock; region_words } ->
      Format.fprintf fmt "%10d gc-start (region %d words)" clock region_words
  | Gc_end { clock; duration } ->
      Format.fprintf fmt "%10d gc-end   (%d cycles)" clock duration
  | Coalesced { proc; clock; cycles } ->
      Format.fprintf fmt "%10d coalesce p%d (%d cycles inline)" clock proc
        cycles

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) (events t)
