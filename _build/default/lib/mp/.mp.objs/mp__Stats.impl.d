lib/mp/stats.ml: Array Format
