examples/mergesort_futures.mli:
