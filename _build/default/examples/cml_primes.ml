(* Prime sieve as a CML pipeline: a generator thread feeds candidate
   numbers into a chain of filter threads, one per prime found — the classic
   Concurrent ML demonstration of dynamically growing networks of threads
   and synchronous channels.

   Run: dune exec examples/cml_primes.exe *)

module Platform =
  Mp.Mp_domains.Int (struct
      let max_procs = 4
    end)
    ()

module Sched = Mpthreads.Sched_thread.Make (Platform)
module Cml = Cml.Make (Platform) (Sched)

let limit = 100

let () =
  let primes =
    Platform.run (fun () ->
        Sched.with_pool (fun () ->
            (* generator: 2, 3, 4, ... *)
            let numbers = Cml.channel () in
            Cml.spawn (fun () ->
                let n = ref 2 in
                while true do
                  Cml.send numbers !n;
                  incr n
                done);
            (* filter: forward everything not divisible by p *)
            let filter p input =
              let output = Cml.channel () in
              Cml.spawn (fun () ->
                  while true do
                    let n = Cml.recv input in
                    if n mod p <> 0 then Cml.send output n
                  done);
              output
            in
            let rec sieve input acc =
              let p = Cml.recv input in
              if p > limit then List.rev acc
              else sieve (filter p input) (p :: acc)
            in
            sieve numbers []))
  in
  Printf.printf "primes up to %d: %s\n" limit
    (String.concat " " (List.map string_of_int primes))
