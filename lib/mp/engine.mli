(** Fiber engine: first-class one-shot continuations over effect handlers.

    This is the OCaml analog of SML/NJ's [callcc]/[throw], restricted to the
    one-shot discipline that thread schedulers obey: every captured
    continuation is resumed at most once.  The engine is shared by every MP
    backend; backends differ only in the trampoline that interprets
    {!type:action} values. *)

type action = ..
(** What a proc should do next.  Extensible so that backends (notably the
    simulator) can add their own scheduling directives. *)

type 'a cont
(** A suspended computation expecting an ['a].  One-shot: resuming it twice
    raises {!Already_resumed}. *)

type action +=
  | Resume : 'a cont * 'a -> action  (** resume a continuation with a value *)
  | Raise : 'a cont * exn -> action  (** resume a continuation with an exception *)
  | Start of (unit -> unit)          (** run a fresh fiber *)
  | Stop                             (** release the current proc *)

exception Already_resumed
(** Raised on a second resumption of a one-shot continuation — always a
    client protocol violation (e.g. a thread rescheduled twice). *)

exception Unhandled_action
(** Raised by a backend trampoline on an action it does not interpret. *)

val suspensions : unit -> int
(** Number of {!suspend}s performed process-wide since the last
    {!reset_suspensions} — a host-side cost counter (each suspension is one
    effect-handler round-trip).  Virtual time is unaffected.  The counter
    is deliberately not atomic: it is exact on single-domain backends (the
    simulator) and approximate under parallel host execution. *)

val reset_suspensions : unit -> unit

val suspend : ('a cont -> action) -> 'a
(** [suspend f] captures the current fiber as a continuation [c] and runs
    [f c] {e in the proc-loop context} (outside the fiber).  The action
    returned by [f] tells the proc what to do next.  The fiber restarts when
    some proc executes [Resume (c, v)]; [suspend] then returns [v]. *)

val callcc : ('a cont -> 'a) -> 'a
(** SML-style [callcc].  [callcc f] binds the current continuation to [c] and
    evaluates [f c]; if [f] returns [v] normally, [callcc] returns [v]; if
    [f] throws to [c] via {!throw}, [callcc] "returns" the thrown value; if
    [f] raises, the exception propagates to [callcc]'s caller.  Implemented
    by running the body in a fresh fiber, which is abandoned when the body
    throws elsewhere. *)

val throw : 'a cont -> 'a -> 'b
(** [throw c v] abandons the current computation and resumes [c] with [v].
    Never returns. *)

val throw_exn : 'a cont -> exn -> 'b
(** [throw_exn c e] abandons the current computation and resumes [c] by
    raising [e] at its suspension point.  Never returns. *)

val run_fiber : on_exn:(exn -> action) -> (unit -> unit) -> action
(** [run_fiber ~on_exn f] runs [f ()] as a fresh fiber until it suspends,
    finishes ([Stop]) or raises ([on_exn e] decides the next action).
    Returns the action produced at the first suspension point. *)

val resume : 'a cont -> 'a -> action
(** Resume a suspended fiber with a value; returns the action produced at
    its next suspension point.  Enforces one-shotness. *)

val resume_exn : 'a cont -> exn -> action
(** Resume a suspended fiber by raising an exception at its suspension
    point. *)
