(* Queue disciplines: unit tests per implementation plus qcheck properties
   (order laws, permutation preservation, bounds). *)

open Queues

let check = Alcotest.(check int)
let check_list = Alcotest.(check (list int))
let checkb = Alcotest.(check bool)

let drain deq_opt q =
  let rec go acc =
    match deq_opt q with Some x -> go (x :: acc) | None -> List.rev acc
  in
  go []

(* ---------------- FIFO ---------------- *)

let test_fifo_order () =
  let q = Fifo_queue.create () in
  List.iter (Fifo_queue.enq q) [ 1; 2; 3; 4 ];
  check_list "fifo" [ 1; 2; 3; 4 ] (drain Fifo_queue.deq_opt q)

let test_fifo_empty () =
  let q = Fifo_queue.create () in
  Alcotest.check_raises "empty" Queue_intf.Empty (fun () ->
      ignore (Fifo_queue.deq q))

let test_fifo_interleaved () =
  let q = Fifo_queue.create () in
  Fifo_queue.enq q 1;
  Fifo_queue.enq q 2;
  check "first" 1 (Fifo_queue.deq q);
  Fifo_queue.enq q 3;
  check "second" 2 (Fifo_queue.deq q);
  check "third" 3 (Fifo_queue.deq q);
  check "len" 0 (Fifo_queue.length q)

let test_fifo_length () =
  let q = Fifo_queue.create () in
  checkb "empty" true (Fifo_queue.is_empty q);
  List.iter (Fifo_queue.enq q) [ 1; 2; 3 ];
  check "len" 3 (Fifo_queue.length q);
  ignore (Fifo_queue.deq q);
  check "len after deq" 2 (Fifo_queue.length q)

(* ---------------- LIFO ---------------- *)

let test_lifo_order () =
  let q = Lifo_queue.create () in
  List.iter (Lifo_queue.enq q) [ 1; 2; 3 ];
  check_list "lifo" [ 3; 2; 1 ] (drain Lifo_queue.deq_opt q)

let test_lifo_empty () =
  let q = Lifo_queue.create () in
  Alcotest.check_raises "empty" Queue_intf.Empty (fun () ->
      ignore (Lifo_queue.deq q))

(* ---------------- Random ---------------- *)

let test_random_is_permutation () =
  let q = Random_queue.create_seeded 7 in
  let input = List.init 50 Fun.id in
  List.iter (Random_queue.enq q) input;
  let out = drain Random_queue.deq_opt q in
  check_list "permutation" input (List.sort compare out)

let test_random_deterministic_by_seed () =
  let run seed =
    let q = Random_queue.create_seeded seed in
    List.iter (Random_queue.enq q) (List.init 20 Fun.id);
    drain Random_queue.deq_opt q
  in
  check_list "same seed, same order" (run 5) (run 5);
  checkb "different seeds differ somewhere" true (run 5 <> run 6)

(* ---------------- Priority ---------------- *)

let test_priority_order () =
  let q = Priority_queue.create () in
  Priority_queue.enq q ~priority:1 "low";
  Priority_queue.enq q ~priority:9 "high";
  Priority_queue.enq q ~priority:5 "mid";
  let a = Priority_queue.deq q in
  let b = Priority_queue.deq q in
  let c = Priority_queue.deq q in
  Alcotest.(check (list string)) "by priority" [ "high"; "mid"; "low" ] [ a; b; c ]

let test_priority_fifo_among_equals () =
  let q = Priority_queue.create () in
  List.iter (fun x -> Priority_queue.enq q ~priority:3 x) [ 1; 2; 3; 4 ];
  let out = List.init 4 (fun _ -> Priority_queue.deq q) in
  check_list "insertion order among equals" [ 1; 2; 3; 4 ] out

let test_priority_as_queue () =
  let module Q = Priority_queue.As_queue (struct
    let priority = 0
  end) in
  let q = Q.create () in
  List.iter (Q.enq q) [ 1; 2; 3 ];
  check_list "fixed priority = fifo" [ 1; 2; 3 ] (drain Q.deq_opt q)

let test_priority_empty () =
  let q : int Priority_queue.queue = Priority_queue.create () in
  Alcotest.check_raises "empty" Queue_intf.Empty (fun () ->
      ignore (Priority_queue.deq q))

(* ---------------- Deque ---------------- *)

let test_deque_front_back () =
  let d = Deque.create () in
  Deque.push_back d 2;
  Deque.push_back d 3;
  Deque.push_front d 1;
  check "front" 1 (Deque.pop_front d);
  check "back" 3 (Deque.pop_back d);
  check "middle" 2 (Deque.pop_front d);
  checkb "empty" true (Deque.is_empty d)

let test_deque_growth () =
  let d = Deque.create () in
  for i = 1 to 100 do
    Deque.push_front d i
  done;
  check "len" 100 (Deque.length d);
  check "front is newest" 100 (Deque.pop_front d);
  check "back is oldest" 1 (Deque.pop_back d)

let test_deque_fifo_module () =
  let q = Deque.Fifo.create () in
  List.iter (Deque.Fifo.enq q) [ 1; 2; 3 ];
  check_list "fifo view" [ 1; 2; 3 ] (drain Deque.Fifo.deq_opt q)

(* ---------------- Bounded ---------------- *)

let test_bounded_capacity () =
  let q = Bounded_queue.create ~capacity:2 in
  Bounded_queue.enq q 1;
  Bounded_queue.enq q 2;
  checkb "full" true (Bounded_queue.is_full q);
  Alcotest.check_raises "full raises" Queue_intf.Full (fun () ->
      Bounded_queue.enq q 3);
  checkb "try_enq false" false (Bounded_queue.try_enq q 3);
  check "deq" 1 (Bounded_queue.deq q);
  checkb "try_enq true" true (Bounded_queue.try_enq q 3);
  check "order kept" 2 (Bounded_queue.deq q);
  check "wrapped" 3 (Bounded_queue.deq q)

let test_bounded_invalid () =
  Alcotest.check_raises "zero capacity" (Invalid_argument "Bounded_queue.create")
    (fun () -> ignore (Bounded_queue.create ~capacity:0))

let test_bounded_wraparound () =
  let q = Bounded_queue.create ~capacity:3 in
  for round = 0 to 9 do
    Bounded_queue.enq q round;
    check "ring order" round (Bounded_queue.deq q)
  done

(* ---------------- Locked wrapper ---------------- *)

module U = Mp.Mp_uniproc.Int ()
module LQ = Locked_queue.Make (U.Lock) (Fifo_queue)

let test_locked_queue_basic () =
  let q = LQ.create () in
  U.run (fun () ->
      LQ.enq q 1;
      LQ.enq q 2;
      check "fifo through lock" 1 (LQ.deq q);
      check "length" 1 (LQ.length q);
      LQ.with_lock q (fun () -> ()))

let test_locked_queue_exn_releases () =
  let q = LQ.create () in
  U.run (fun () ->
      (try LQ.with_lock q (fun () -> failwith "inside") with Failure _ -> ());
      (* lock must have been released: another operation succeeds *)
      LQ.enq q 5;
      check "usable after exn" 5 (LQ.deq q))

(* ---------------- Multi queue ---------------- *)

module MQ = Multi_queue.Make (U.Lock)

let test_multi_local_lifo () =
  U.run (fun () ->
      let t = MQ.create ~procs:2 in
      MQ.push t ~proc:0 1;
      MQ.push t ~proc:0 2;
      Alcotest.(check (option int)) "own queue newest first" (Some 2)
        (MQ.take_local t ~proc:0);
      Alcotest.(check (option int)) "then older" (Some 1)
        (MQ.take_local t ~proc:0);
      Alcotest.(check (option int)) "empty" None (MQ.take_local t ~proc:0))

let test_multi_steal_oldest () =
  U.run (fun () ->
      let t = MQ.create ~procs:2 in
      MQ.push t ~proc:0 1;
      MQ.push t ~proc:0 2;
      Alcotest.(check (option int)) "thief takes oldest" (Some 1)
        (MQ.steal t ~proc:1);
      check "steal counted" 1 (MQ.steals t))

let test_multi_take_falls_back_to_steal () =
  U.run (fun () ->
      let t = MQ.create ~procs:3 in
      MQ.push t ~proc:2 42;
      Alcotest.(check (option int)) "take steals" (Some 42) (MQ.take t ~proc:0);
      Alcotest.(check (option int)) "now all empty" None (MQ.take t ~proc:0))

let test_multi_push_global_distributes () =
  U.run (fun () ->
      let t = MQ.create ~procs:4 in
      for i = 1 to 8 do
        MQ.push_global t i
      done;
      check "total" 8 (MQ.total_length t);
      (* every proc got something *)
      for p = 0 to 3 do
        checkb "proc has work" true (MQ.take_local t ~proc:p <> None)
      done)

(* ---------------- Chase-Lev work-stealing deque ---------------- *)

let test_ws_lifo_pop () =
  let d = Ws_deque.create () in
  List.iter (Ws_deque.push d) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "newest" (Some 3) (Ws_deque.pop d);
  Alcotest.(check (option int)) "next" (Some 2) (Ws_deque.pop d);
  Alcotest.(check (option int)) "oldest" (Some 1) (Ws_deque.pop d);
  Alcotest.(check (option int)) "empty" None (Ws_deque.pop d)

let test_ws_steal_fifo () =
  let d = Ws_deque.create () in
  List.iter (Ws_deque.push d) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "steals oldest" (Some 1) (Ws_deque.steal d);
  Alcotest.(check (option int)) "then next" (Some 2) (Ws_deque.steal d);
  Alcotest.(check (option int)) "owner gets the rest" (Some 3) (Ws_deque.pop d);
  Alcotest.(check (option int)) "empty steal" None (Ws_deque.steal d)

let test_ws_growth () =
  let d = Ws_deque.create () in
  for i = 1 to 1000 do
    Ws_deque.push d i
  done;
  check "size" 1000 (Ws_deque.size d);
  (* interleave pops and steals; all values must come out exactly once *)
  let seen = Array.make 1001 false in
  let rec drain () =
    match if Ws_deque.size d mod 2 = 0 then Ws_deque.pop d else Ws_deque.steal d with
    | Some v ->
        checkb "no duplicates" false seen.(v);
        seen.(v) <- true;
        drain ()
    | None -> ()
  in
  drain ();
  check "all drained" 1000
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen)

let test_ws_conservation_under_stealing () =
  (* one owner pushes/pops, two thieves steal: every pushed value is
     consumed exactly once *)
  let d = Ws_deque.create () in
  let n = 20_000 in
  let consumed = Atomic.make 0 in
  let sum = Atomic.make 0 in
  let stop = Atomic.make false in
  let thief () =
    while not (Atomic.get stop) do
      match Ws_deque.steal d with
      | Some v ->
          ignore (Atomic.fetch_and_add sum v);
          Atomic.incr consumed
      | None -> Domain.cpu_relax ()
    done
  in
  let thieves = List.init 2 (fun _ -> Domain.spawn thief) in
  (* owner: push everything, popping now and then *)
  for i = 1 to n do
    Ws_deque.push d i;
    if i mod 3 = 0 then
      match Ws_deque.pop d with
      | Some v ->
          ignore (Atomic.fetch_and_add sum v);
          Atomic.incr consumed
      | None -> ()
  done;
  (* owner drains what the thieves have not taken *)
  let rec drain () =
    match Ws_deque.pop d with
    | Some v ->
        ignore (Atomic.fetch_and_add sum v);
        Atomic.incr consumed;
        drain ()
    | None -> if Atomic.get consumed < n then drain ()
  in
  drain ();
  Atomic.set stop true;
  List.iter Domain.join thieves;
  check "every value consumed exactly once" (n * (n + 1) / 2) (Atomic.get sum);
  check "count" n (Atomic.get consumed)

(* ---------------- qcheck properties ---------------- *)

let prop_fifo_preserves_order =
  QCheck.Test.make ~name:"fifo: drain = input" ~count:200
    QCheck.(list small_int)
    (fun input ->
      let q = Fifo_queue.create () in
      List.iter (Fifo_queue.enq q) input;
      drain Fifo_queue.deq_opt q = input)

let prop_lifo_reverses =
  QCheck.Test.make ~name:"lifo: drain = rev input" ~count:200
    QCheck.(list small_int)
    (fun input ->
      let q = Lifo_queue.create () in
      List.iter (Lifo_queue.enq q) input;
      drain Lifo_queue.deq_opt q = List.rev input)

let prop_random_permutes =
  QCheck.Test.make ~name:"random: drain is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, input) ->
      let q = Random_queue.create_seeded seed in
      List.iter (Random_queue.enq q) input;
      List.sort compare (drain Random_queue.deq_opt q)
      = List.sort compare input)

let prop_priority_sorted =
  QCheck.Test.make ~name:"priority: drain sorted by priority desc" ~count:200
    QCheck.(list (pair small_int small_int))
    (fun input ->
      let q = Priority_queue.create () in
      List.iter (fun (p, v) -> Priority_queue.enq q ~priority:p v) input;
      let rec go acc =
        match Priority_queue.deq_opt q with
        | Some _ as x -> go (x :: acc)
        | None -> List.rev acc
      in
      ignore (go []);
      (* drain priorities must be non-increasing *)
      let q2 = Priority_queue.create () in
      List.iter (fun (p, _) -> Priority_queue.enq q2 ~priority:p p) input;
      let rec drain2 acc =
        match Priority_queue.deq_opt q2 with
        | Some p -> drain2 (p :: acc)
        | None -> List.rev acc
      in
      let ps = drain2 [] in
      ps = List.sort (fun a b -> compare b a) ps)

let prop_deque_double_ended =
  QCheck.Test.make ~name:"deque: pop_front after push_back preserves order"
    ~count:200
    QCheck.(list small_int)
    (fun input ->
      let d = Deque.create () in
      List.iter (Deque.push_back d) input;
      let rec go acc =
        match Deque.pop_front_opt d with
        | Some x -> go (x :: acc)
        | None -> List.rev acc
      in
      go [] = input)

let prop_bounded_never_exceeds =
  QCheck.Test.make ~name:"bounded: length <= capacity always" ~count:200
    QCheck.(pair (int_range 1 8) (list bool))
    (fun (cap, ops) ->
      let q = Bounded_queue.create ~capacity:cap in
      List.for_all
        (fun op ->
          (if op then ignore (Bounded_queue.try_enq q 0)
           else ignore (Bounded_queue.deq_opt q));
          Bounded_queue.length q <= cap)
        ops)

(* ---------------- SPMC steal-half queue ---------------- *)

let test_spmc_fifo_pop () =
  let q = Spmc_queue.create () in
  List.iter (Spmc_queue.push q) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "oldest" (Some 1) (Spmc_queue.pop q);
  Alcotest.(check (option int)) "next" (Some 2) (Spmc_queue.pop q);
  Alcotest.(check (option int)) "newest last" (Some 3) (Spmc_queue.pop q);
  Alcotest.(check (option int)) "empty" None (Spmc_queue.pop q)

let test_spmc_steal_half () =
  let q = Spmc_queue.create () in
  for i = 1 to 5 do
    Spmc_queue.push q i
  done;
  (* ceil(5/2) = 3 oldest, oldest first *)
  Alcotest.(check (array int))
    "first batch" [| 1; 2; 3 |] (Spmc_queue.steal_half q);
  Alcotest.(check (array int)) "second" [| 4 |] (Spmc_queue.steal_half q);
  Alcotest.(check (option int)) "owner gets last" (Some 5) (Spmc_queue.pop q);
  Alcotest.(check (array int)) "empty steal" [||] (Spmc_queue.steal_half q)

let test_spmc_growth () =
  let q = Spmc_queue.create () in
  for i = 1 to 1000 do
    Spmc_queue.push q i
  done;
  check "size" 1000 (Spmc_queue.size q);
  check "length_hint agrees" 1000 (Spmc_queue.length_hint q);
  checkb "looks nonempty" true (Spmc_queue.looks_nonempty q);
  (* alternate pops and steal-half batches; every value exactly once *)
  let seen = Array.make 1001 false in
  let mark v =
    checkb "no duplicates" false seen.(v);
    seen.(v) <- true
  in
  let rec drain tick =
    if tick mod 2 = 0 then
      match Spmc_queue.pop q with
      | Some v ->
          mark v;
          drain (tick + 1)
      | None -> ()
    else begin
      Array.iter mark (Spmc_queue.steal_half q);
      if Spmc_queue.size q > 0 then drain (tick + 1)
    end
  in
  drain 0;
  check "all drained" 1000
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen);
  checkb "looks empty" false (Spmc_queue.looks_nonempty q)

let test_spmc_interleaved_push () =
  (* pushes interleaved with claims keep FIFO order among survivors and
     exercise wraparound of the circular buffer *)
  let q = Spmc_queue.create () in
  let out = ref [] in
  for i = 1 to 100 do
    Spmc_queue.push q i;
    if i mod 3 = 0 then
      match Spmc_queue.pop q with
      | Some v -> out := v :: !out
      | None -> Alcotest.fail "nonempty pop"
  done;
  let rec drain () =
    match Spmc_queue.pop q with
    | Some v ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  check_list "permutation of pushes, FIFO claims ascending"
    (List.init 100 (fun i -> i + 1))
    (List.sort compare !out);
  (* claims are FIFO: the reversed accumulator is descending *)
  checkb "fifo claims" true
    (let rec desc = function
       | a :: (b :: _ as tl) -> a > b && desc tl
       | _ -> true
     in
     desc !out)

(* Mirror of [prop_ws_four_domain_race] for the steal-half queue: 1 owner
   pushing/popping + 3 thief domains consuming whole steal-half batches.
   Conservation across CAS races and owner-side buffer growth: every
   pushed value consumed exactly once. *)
let prop_spmc_four_domain_race =
  QCheck.Test.make
    ~name:"spmc_queue: 1 owner + 3 steal-half thieves (4 domains) conserve"
    ~count:10
    QCheck.(pair (int_range 500 5_000) (int_range 2 7))
    (fun (n, pop_every) ->
      let q = Spmc_queue.create () in
      let consumed = Atomic.make 0 in
      let sum = Atomic.make 0 in
      let stop = Atomic.make false in
      let thief () =
        while not (Atomic.get stop) do
          let batch = Spmc_queue.steal_half q in
          if Array.length batch = 0 then Domain.cpu_relax ()
          else
            Array.iter
              (fun v ->
                ignore (Atomic.fetch_and_add sum v);
                Atomic.incr consumed)
              batch
        done
      in
      let thieves = List.init 3 (fun _ -> Domain.spawn thief) in
      for i = 1 to n do
        Spmc_queue.push q i;
        if i mod pop_every = 0 then
          match Spmc_queue.pop q with
          | Some v ->
              ignore (Atomic.fetch_and_add sum v);
              Atomic.incr consumed
          | None -> ()
      done;
      let rec drain () =
        match Spmc_queue.pop q with
        | Some v ->
            ignore (Atomic.fetch_and_add sum v);
            Atomic.incr consumed;
            drain ()
        | None -> if Atomic.get consumed < n then drain ()
      in
      drain ();
      Atomic.set stop true;
      List.iter Domain.join thieves;
      Atomic.get sum = n * (n + 1) / 2 && Atomic.get consumed = n)

(* The parallel sweep driver distributes jobs through this deque with one
   owner and N-1 stealing domains; exercise exactly that shape (4 host
   domains, randomized push/pop interleaving) and require conservation:
   every pushed value consumed exactly once, across push/pop/steal races
   and buffer growth. *)
let prop_ws_four_domain_race =
  QCheck.Test.make
    ~name:"ws_deque: 1 owner + 3 thieves (4 domains) conserve every item"
    ~count:10
    QCheck.(pair (int_range 500 5_000) (int_range 2 7))
    (fun (n, pop_every) ->
      let d = Ws_deque.create () in
      let consumed = Atomic.make 0 in
      let sum = Atomic.make 0 in
      let stop = Atomic.make false in
      let thief () =
        while not (Atomic.get stop) do
          match Ws_deque.steal d with
          | Some v ->
              ignore (Atomic.fetch_and_add sum v);
              Atomic.incr consumed
          | None -> Domain.cpu_relax ()
        done
      in
      let thieves = List.init 3 (fun _ -> Domain.spawn thief) in
      for i = 1 to n do
        Ws_deque.push d i;
        if i mod pop_every = 0 then
          match Ws_deque.pop d with
          | Some v ->
              ignore (Atomic.fetch_and_add sum v);
              Atomic.incr consumed
          | None -> ()
      done;
      let rec drain () =
        match Ws_deque.pop d with
        | Some v ->
            ignore (Atomic.fetch_and_add sum v);
            Atomic.incr consumed;
            drain ()
        | None -> if Atomic.get consumed < n then drain ()
      in
      drain ();
      Atomic.set stop true;
      List.iter Domain.join thieves;
      Atomic.get sum = n * (n + 1) / 2 && Atomic.get consumed = n)

let qsuite name tests = (name, List.map Testkit.to_alcotest tests)

let () =
  Alcotest.run "queues"
    [
      ( "fifo",
        [
          Alcotest.test_case "order" `Quick test_fifo_order;
          Alcotest.test_case "empty raises" `Quick test_fifo_empty;
          Alcotest.test_case "interleaved" `Quick test_fifo_interleaved;
          Alcotest.test_case "length" `Quick test_fifo_length;
        ] );
      ( "lifo",
        [
          Alcotest.test_case "order" `Quick test_lifo_order;
          Alcotest.test_case "empty raises" `Quick test_lifo_empty;
        ] );
      ( "random",
        [
          Alcotest.test_case "permutation" `Quick test_random_is_permutation;
          Alcotest.test_case "seed-deterministic" `Quick
            test_random_deterministic_by_seed;
        ] );
      ( "priority",
        [
          Alcotest.test_case "order" `Quick test_priority_order;
          Alcotest.test_case "fifo among equals" `Quick
            test_priority_fifo_among_equals;
          Alcotest.test_case "as QUEUE" `Quick test_priority_as_queue;
          Alcotest.test_case "empty raises" `Quick test_priority_empty;
        ] );
      ( "deque",
        [
          Alcotest.test_case "front/back" `Quick test_deque_front_back;
          Alcotest.test_case "growth" `Quick test_deque_growth;
          Alcotest.test_case "fifo module" `Quick test_deque_fifo_module;
        ] );
      ( "bounded",
        [
          Alcotest.test_case "capacity" `Quick test_bounded_capacity;
          Alcotest.test_case "invalid" `Quick test_bounded_invalid;
          Alcotest.test_case "wraparound" `Quick test_bounded_wraparound;
        ] );
      ( "locked",
        [
          Alcotest.test_case "basic" `Quick test_locked_queue_basic;
          Alcotest.test_case "exception releases lock" `Quick
            test_locked_queue_exn_releases;
        ] );
      ( "multi",
        [
          Alcotest.test_case "local lifo" `Quick test_multi_local_lifo;
          Alcotest.test_case "steal oldest" `Quick test_multi_steal_oldest;
          Alcotest.test_case "take falls back" `Quick
            test_multi_take_falls_back_to_steal;
          Alcotest.test_case "push_global distributes" `Quick
            test_multi_push_global_distributes;
        ] );
      ( "ws_deque",
        [
          Alcotest.test_case "lifo pop" `Quick test_ws_lifo_pop;
          Alcotest.test_case "steal fifo" `Quick test_ws_steal_fifo;
          Alcotest.test_case "growth + drain" `Quick test_ws_growth;
          Alcotest.test_case "conservation under stealing" `Slow
            test_ws_conservation_under_stealing;
        ] );
      ( "spmc",
        [
          Alcotest.test_case "fifo pop" `Quick test_spmc_fifo_pop;
          Alcotest.test_case "steal half" `Quick test_spmc_steal_half;
          Alcotest.test_case "growth + drain" `Quick test_spmc_growth;
          Alcotest.test_case "interleaved push" `Quick
            test_spmc_interleaved_push;
        ] );
      qsuite "properties"
        [
          prop_fifo_preserves_order;
          prop_lifo_reverses;
          prop_random_permutes;
          prop_priority_sorted;
          prop_deque_double_ended;
          prop_bounded_never_exceeds;
          prop_spmc_four_domain_race;
          prop_ws_four_domain_race;
        ];
    ]
