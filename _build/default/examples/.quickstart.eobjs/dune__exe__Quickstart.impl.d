examples/quickstart.ml: Mp Mpthreads Printf Queues
