lib/threads/uni_thread.ml: Engine Kont_util Mp Queues
