(** Queue interfaces.

    [QUEUE] is the paper's signature (Figure 1): it deliberately does not fix
    the queuing discipline, which is how thread scheduling policy is selected
    — "thread scheduling policy can be changed simply by varying the
    functor's argument". *)

exception Empty
(** Raised by [deq] on an empty queue.  Shared by every implementation so
    that client handlers are portable across disciplines. *)

exception Full
(** Raised by bounded queues on [enq] when at capacity. *)

module type QUEUE = sig
  type 'a queue

  val create : unit -> 'a queue
  val enq : 'a queue -> 'a -> unit

  val deq : 'a queue -> 'a
  (** @raise Empty when the queue is empty. *)

  exception Empty
end

(** [QUEUE] plus the non-paper conveniences used by schedulers and tests. *)
module type QUEUE_EXT = sig
  include QUEUE

  val deq_opt : 'a queue -> 'a option
  val length : 'a queue -> int
  val is_empty : 'a queue -> bool
end

(** The handful of atomic-cell operations the lock-free queue family is
    written against.  Instantiating with {!Stdlib_atomic} gives the real
    lock-free structures over [Stdlib.Atomic]; the [mp_check] exploration
    harness instantiates the same algorithm text with instrumented cells
    whose every access is a serialization point, so queue linearizability
    can be model-checked on the schedules that matter. *)
module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int

  val unsafe_peek : 'a t -> 'a
  (** A racy, observation-only read: never a serialization point under
      mp_check and never charged by cost-accounting instances.  Scheduler
      idle predicates ([Work.idle_until ~ready]) must be side-effect- and
      charge-free, so they may only look at cells through [unsafe_peek].
      Algorithm code must keep using [get]. *)
end

module Stdlib_atomic : ATOMIC with type 'a t = 'a Atomic.t = struct
  type 'a t = 'a Atomic.t

  let make = Atomic.make
  let get = Atomic.get
  let set = Atomic.set
  let exchange = Atomic.exchange
  let compare_and_set = Atomic.compare_and_set
  let fetch_and_add = Atomic.fetch_and_add
  let unsafe_peek = Atomic.get
end

(** Priority discipline; as the paper's footnote notes, priorities require a
    minor signature change (a priority passed to the enqueue operation). *)
module type PRIORITY_QUEUE = sig
  type 'a queue

  val create : unit -> 'a queue
  val enq : 'a queue -> priority:int -> 'a -> unit

  val deq : 'a queue -> 'a
  (** Dequeues an element of the numerically highest priority.
      @raise Empty when the queue is empty. *)

  val deq_opt : 'a queue -> 'a option

  val peek : 'a queue -> 'a
  (** The element {!deq} would return, without removing it.
      @raise Empty when the queue is empty. *)

  val peek_opt : 'a queue -> 'a option
  val length : 'a queue -> int
  val is_empty : 'a queue -> bool

  exception Empty
end
