lib/queues/ws_deque.mli:
