(* Lock algorithms: semantics (try_lock/lock/unlock), mutual exclusion under
   real domain concurrency, and algorithm-specific behaviours. *)

module P = Locks.Lock_intf.Atomic_prims

(* For contended stress on a single-CPU host: a pause that yields the OS
   timeslice, so a descheduled lock holder can run.  Spinning with
   cpu_relax alone makes FIFO handoff locks take a full quantum per
   transfer. *)
module Yp : Locks.Lock_intf.PRIMS = struct
  include Locks.Lock_intf.Atomic_prims

  let pause () = Unix.sleepf 0.

  let pause_n n =
    for _ = 1 to n do
      Domain.cpu_relax ()
    done
end

module Tas = Locks.Tas_lock.Make (P)
module Ttas = Locks.Ttas_lock.Make (P)
module Backoff = Locks.Backoff_lock.Make (P)
module Ticket = Locks.Ticket_lock.Make (P)
module Clh = Locks.Clh_lock.Make (P)
module Anderson = Locks.Anderson_lock.Make (P)
module Hwpool = Locks.Hwpool_lock.Make (P)
module Mcs = Locks.Mcs_lock.Make (P)

let algorithms : (string * (module Locks.Lock_intf.LOCK_EXT)) list =
  [
    ("tas", (module Tas));
    ("ttas", (module Ttas));
    ("backoff", (module Backoff));
    ("ticket", (module Ticket));
    ("clh", (module Clh));
    ("anderson", (module Anderson));
    ("hwpool", (module Hwpool));
    ("mcs", (module Mcs));
  ]

(* same algorithms over the yielding prims, for the contended stress *)
let stress_algorithms : (string * (module Locks.Lock_intf.LOCK_EXT)) list =
  [
    ("tas", (module Locks.Tas_lock.Make (Yp)));
    ("ttas", (module Locks.Ttas_lock.Make (Yp)));
    ("backoff", (module Locks.Backoff_lock.Make (Yp)));
    ("ticket", (module Locks.Ticket_lock.Make (Yp)));
    ("clh", (module Locks.Clh_lock.Make (Yp)));
    ("anderson", (module Locks.Anderson_lock.Make (Yp)));
    ("hwpool", (module Locks.Hwpool_lock.Make (Yp)));
    ("mcs", (module Locks.Mcs_lock.Make (Yp)));
  ]

let checkb = Alcotest.(check bool)
let check = Alcotest.(check int)

(* --- generic semantics, one suite entry per algorithm --- *)

let test_try_lock_semantics (module L : Locks.Lock_intf.LOCK_EXT) () =
  let l = L.mutex_lock () in
  checkb "fresh lock acquirable" true (L.try_lock l);
  checkb "held lock refused" false (L.try_lock l);
  L.unlock l;
  checkb "acquirable after unlock" true (L.try_lock l);
  L.unlock l

let test_lock_unlock_cycle (module L : Locks.Lock_intf.LOCK_EXT) () =
  let l = L.mutex_lock () in
  for _ = 1 to 100 do
    L.lock l;
    L.unlock l
  done;
  checkb "still usable" true (L.try_lock l);
  L.unlock l

let test_independent_locks (module L : Locks.Lock_intf.LOCK_EXT) () =
  let l1 = L.mutex_lock () and l2 = L.mutex_lock () in
  L.lock l1;
  checkb "second lock unaffected" true (L.try_lock l2);
  L.unlock l2;
  L.unlock l1

let test_mutual_exclusion (module L : Locks.Lock_intf.LOCK_EXT) () =
  let l = L.mutex_lock () in
  let iterations = 2_000 in
  let counter = ref 0 in
  let worker () =
    for _ = 1 to iterations do
      L.lock l;
      (* a deliberately non-atomic read-modify-write *)
      let v = !counter in
      if v mod 64 = 0 then Domain.cpu_relax ();
      counter := v + 1;
      L.unlock l
    done
  in
  let domains = List.init 2 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  check "no lost updates" (3 * iterations) !counter

(* --- algorithm-specific --- *)

let test_unlock_from_other_proc () =
  (* paper: unlock "may be called by any proc (not necessarily the one that
     set the lock)" — holds for the TAS-family locks *)
  let l = Tas.mutex_lock () in
  Tas.lock l;
  let d = Domain.spawn (fun () -> Tas.unlock l) in
  Domain.join d;
  checkb "unlocked by other domain" true (Tas.try_lock l);
  Tas.unlock l;
  checkb "tas allows it" false Tas.holder_must_unlock;
  checkb "ticket documents the restriction" true Ticket.holder_must_unlock;
  checkb "clh documents the restriction" true Clh.holder_must_unlock

let test_ticket_fifo () =
  (* with a held lock, two queued waiters are served in ticket order *)
  let l = Ticket.mutex_lock () in
  Ticket.lock l;
  let order = ref [] in
  let m = Mutex.create () in
  let record x =
    Mutex.lock m;
    order := x :: !order;
    Mutex.unlock m
  in
  let d1 =
    Domain.spawn (fun () ->
        Ticket.lock l;
        record 1;
        Ticket.unlock l)
  in
  Unix.sleepf 0.05;
  let d2 =
    Domain.spawn (fun () ->
        Ticket.lock l;
        record 2;
        Ticket.unlock l)
  in
  Unix.sleepf 0.05;
  Ticket.unlock l;
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check (list int)) "fifo order" [ 1; 2 ] (List.rev !order)

let test_hwpool_hashing () =
  (* software locks multiplex over a bounded pool of hardware locks *)
  let locks = List.init 200 (fun _ -> Hwpool.mutex_lock ()) in
  List.iter
    (fun l ->
      let i = Hwpool.pool_index l in
      checkb "index in pool" true (i >= 0 && i < Hwpool.pool_size))
    locks;
  (* two locks sharing a pool entry are still independent mutexes *)
  let same =
    let rec find = function
      | a :: rest -> (
          match
            List.find_opt
              (fun b -> Hwpool.pool_index b = Hwpool.pool_index a)
              rest
          with
          | Some b -> Some (a, b)
          | None -> find rest)
      | [] -> None
    in
    find locks
  in
  match same with
  | None -> Alcotest.fail "expected pool collisions with 200 locks"
  | Some (a, b) ->
      Hwpool.lock a;
      checkb "collision partner independent" true (Hwpool.try_lock b);
      Hwpool.unlock b;
      Hwpool.unlock a

let test_anderson_bounded_slots () =
  let l = Anderson.mutex_lock_sized ~slots:4 in
  (* serial reuse far beyond the slot count must keep working *)
  for _ = 1 to 40 do
    Anderson.lock l;
    Anderson.unlock l
  done;
  checkb "usable after wraparound" true (Anderson.try_lock l);
  Anderson.unlock l

let test_spin_counter () =
  P.reset_spin_count ();
  let l = Ttas.mutex_lock () in
  Ttas.lock l;
  let d =
    Domain.spawn (fun () ->
        Ttas.lock l;
        Ttas.unlock l)
  in
  Unix.sleepf 0.05;
  Ttas.unlock l;
  Domain.join d;
  checkb "contention recorded" true (P.spin_count () > 0)

let test_paper_lock_definition () =
  (* §3.3: lock is equivalent to: while not (try_lock sl) do () done *)
  let l = Tas.mutex_lock () in
  checkb "acquire" true (Tas.try_lock l);
  let manual_acquired = ref false in
  let d =
    Domain.spawn (fun () ->
        while not (Tas.try_lock l) do
          Domain.cpu_relax ()
        done;
        manual_acquired := true;
        Tas.unlock l)
  in
  Unix.sleepf 0.02;
  Tas.unlock l;
  Domain.join d;
  checkb "manual spin acquired" true !manual_acquired

(* charged primitives drive the same algorithm text in virtual time *)
module SimP =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:4 ()
    end)
    ()

module CP = Locks.Charged_prims.Make (SimP) (Locks.Charged_prims.Default_costs)
module CTas = Locks.Tas_lock.Make (CP)
module CTtas = Locks.Ttas_lock.Make (CP)

let test_charged_prims_cost_time () =
  ignore
    (SimP.run (fun () ->
         let l = CTas.mutex_lock () in
         for _ = 1 to 10 do
           CTas.lock l;
           CTas.unlock l
         done));
  Alcotest.(check bool)
    "virtual time consumed" true
    ((SimP.stats ()).Mp.Stats.elapsed > 0.)

let test_charged_contention_ttas_cheaper () =
  (* Anderson's mechanism, as the model captures it: a spinning TAS issues
     a bus RMW per probe while TTAS spins on cached reads, so under the
     same contention TAS generates far more shared-bus traffic. *)
  let module S = Mpthreads.Sched_thread.Make (SimP) in
  let burn (lock : unit -> unit) (unlock : unit -> unit) =
    ignore
      (SimP.run (fun () ->
           S.with_pool ~procs:4 (fun () ->
               S.par_iter ~chunks:4 40 (fun _ ->
                   lock ();
                   SimP.Work.step ~instrs:2_000 ~alloc_words:1_000 ();
                   unlock ()))));
    (SimP.stats ()).Mp.Stats.bus_bytes
  in
  let ltas = CTas.mutex_lock () in
  let b_tas = burn (fun () -> CTas.lock ltas) (fun () -> CTas.unlock ltas) in
  let lttas = CTtas.mutex_lock () in
  let b_ttas =
    burn (fun () -> CTtas.lock lttas) (fun () -> CTtas.unlock lttas)
  in
  (* both runs move the same ~160KB of allocation; the difference is pure
     probe traffic, and TAS's RMW probes dwarf TTAS's *)
  Alcotest.(check bool)
    (Printf.sprintf "tas probe traffic (%d bytes) >> ttas (%d bytes)" b_tas
       b_ttas)
    true (b_tas - b_ttas > 30_000)

let test_mcs_handoff () =
  let l = Mcs.mutex_lock () in
  Mcs.lock l;
  let order = ref [] in
  let m = Mutex.create () in
  let record x =
    Mutex.lock m;
    order := x :: !order;
    Mutex.unlock m
  in
  let d1 =
    Domain.spawn (fun () ->
        Mcs.lock l;
        record 1;
        Mcs.unlock l)
  in
  Unix.sleepf 0.05;
  let d2 =
    Domain.spawn (fun () ->
        Mcs.lock l;
        record 2;
        Mcs.unlock l)
  in
  Unix.sleepf 0.05;
  Mcs.unlock l;
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check (list int)) "fifo handoff" [ 1; 2 ] (List.rev !order)

let per_algorithm name m =
  [
    Alcotest.test_case (name ^ ": try_lock") `Quick (test_try_lock_semantics m);
    Alcotest.test_case (name ^ ": lock/unlock") `Quick (test_lock_unlock_cycle m);
    Alcotest.test_case (name ^ ": independent") `Quick (test_independent_locks m);
  ]

let () =
  Alcotest.run "locks"
    [
      ( "semantics",
        List.concat_map (fun (n, m) -> per_algorithm n m) algorithms );
      ( "exclusion",
        List.map
          (fun (n, m) ->
            Alcotest.test_case (n ^ ": mutual exclusion") `Slow
              (test_mutual_exclusion m))
          stress_algorithms );
      ( "specific",
        [
          Alcotest.test_case "unlock from other proc" `Quick
            test_unlock_from_other_proc;
          Alcotest.test_case "ticket fifo" `Slow test_ticket_fifo;
          Alcotest.test_case "hwpool hashing" `Quick test_hwpool_hashing;
          Alcotest.test_case "anderson bounded slots" `Quick
            test_anderson_bounded_slots;
          Alcotest.test_case "spin counter" `Quick test_spin_counter;
          Alcotest.test_case "paper lock definition" `Quick
            test_paper_lock_definition;
          Alcotest.test_case "mcs handoff" `Slow test_mcs_handoff;
        ] );
      ( "charged",
        [
          Alcotest.test_case "costs virtual time" `Quick
            test_charged_prims_cost_time;
          Alcotest.test_case "ttas beats tas under contention" `Quick
            test_charged_contention_ttas_cheaper;
        ] );
    ]
