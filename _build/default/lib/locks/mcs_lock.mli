(** MCS queue lock (Mellor-Crummey & Scott): waiters spin on a flag in
    their own queue node, the release hands the lock to the explicit
    successor.  Purely local spinning like CLH, but the queue is linked
    forward, which is the variant used on machines without coherent
    caches.  Queue-style: the releasing proc is expected to be the
    holder. *)

module Make (P : Lock_intf.PRIMS) : Lock_intf.LOCK_EXT
