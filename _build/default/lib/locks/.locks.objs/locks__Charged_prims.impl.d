lib/locks/charged_prims.ml: Atomic Mp
