lib/queues/lifo_queue.ml: Queue_intf
