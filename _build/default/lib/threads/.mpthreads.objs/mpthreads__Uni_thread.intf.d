lib/threads/uni_thread.mli: Queues Thread_intf
