open Mp

module Make (P : Mp.Mp_intf.PLATFORM_INT) (S : Thread_intf.SCHED) = struct
  type thread = int
  type waiter = unit Engine.cont * int

  let next = Atomic.make 1

  let fork f =
    let handle = Atomic.fetch_and_add next 1 in
    S.fork f;
    handle

  let exit () = S.dispatch ()
  let yield = S.yield
  let self () = S.id ()
  let equal (a : thread) b = a = b
  let id (t : thread) = t

  type mutex = {
    spin : P.Lock.mutex_lock;
    mutable held : bool;
    waiters : waiter Queues.Fifo_queue.queue;
  }

  let mutex () =
    {
      spin = P.Lock.mutex_lock ();
      held = false;
      waiters = Queues.Fifo_queue.create ();
    }

  let acquire m =
    Engine.callcc (fun k ->
        P.Lock.lock m.spin;
        if not m.held then begin
          m.held <- true;
          P.Lock.unlock m.spin;
          Engine.throw k ()
        end
        else begin
          Queues.Fifo_queue.enq m.waiters (k, S.id ());
          P.Lock.unlock m.spin;
          S.dispatch ()
        end)

  let try_acquire m =
    P.Lock.lock m.spin;
    let ok = not m.held in
    if ok then m.held <- true;
    P.Lock.unlock m.spin;
    ok

  let release m =
    P.Lock.lock m.spin;
    match Queues.Fifo_queue.deq_opt m.waiters with
    | Some w ->
        (* direct handoff: [held] stays true for the new owner *)
        P.Lock.unlock m.spin;
        S.reschedule w
    | None ->
        m.held <- false;
        P.Lock.unlock m.spin

  let with_mutex m f =
    acquire m;
    match f () with
    | v ->
        release m;
        v
    | exception e ->
        release m;
        raise e

  type condition = {
    cspin : P.Lock.mutex_lock;
    cwaiters : waiter Queues.Fifo_queue.queue;
  }

  let condition () =
    { cspin = P.Lock.mutex_lock (); cwaiters = Queues.Fifo_queue.create () }

  let wait (c, m) =
    Engine.callcc (fun k ->
        P.Lock.lock c.cspin;
        Queues.Fifo_queue.enq c.cwaiters (k, S.id ());
        P.Lock.unlock c.cspin;
        release m;
        S.dispatch ());
    acquire m

  let signal c =
    P.Lock.lock c.cspin;
    let w = Queues.Fifo_queue.deq_opt c.cwaiters in
    P.Lock.unlock c.cspin;
    match w with Some w -> S.reschedule w | None -> ()

  let broadcast c =
    P.Lock.lock c.cspin;
    let rec drain acc =
      match Queues.Fifo_queue.deq_opt c.cwaiters with
      | Some w -> drain (w :: acc)
      | None -> acc
    in
    let ws = drain [] in
    P.Lock.unlock c.cspin;
    List.iter S.reschedule ws
end
