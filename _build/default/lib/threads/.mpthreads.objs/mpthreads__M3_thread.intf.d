lib/threads/m3_thread.mli: Mp Thread_intf
