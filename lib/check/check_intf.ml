(** Fault-injection configuration for schedule exploration.

    Faults model the legal-but-rare behaviours of a real platform that the
    deterministic backends never produce on their own: a [try_lock] that
    fails although the lock is free (lost bus arbitration), a backoff pause
    that lasts far longer than requested (the paper's exponential-backoff
    discussion), and [acquire_proc] hitting the proc limit at the worst
    moment.  All are sound to inject — a client correct under the platform
    contract must tolerate every one of them — so any scenario failure under
    faults is a genuine bug. *)

type faults = {
  try_lock_fail_pct : int;
      (** Probability (percent, 0–100) that a platform [Lock.try_lock]
          spuriously fails even though the lock is free. *)
  backoff_boost : int;
      (** Extra yield points injected at each [Prims.pause_n] — a proc in
          backoff can be held off the lock arbitrarily long. *)
  fail_acquire_at : int option;
      (** Raise [No_More_Procs] at the n-th [acquire_proc] of the run
          (1-based), regardless of pool occupancy. *)
  fault_seed : int64;
      (** Seed for the counter-hash that decides probabilistic injections;
          keep it fixed across replays of the same failure. *)
}

let no_faults =
  {
    try_lock_fail_pct = 0;
    backoff_boost = 0;
    fail_acquire_at = None;
    fault_seed = Sched_seed.default;
  }

(* ---- visible-operation descriptors --------------------------------- *)

(** How a visible operation touches its object.  The vocabulary is what
    dynamic partial order reduction needs and nothing more: two operations
    commute (swapping their order cannot change any later observation)
    unless they touch the same object and at least one writes it. *)
type access =
  | Read  (** observes the object, leaves it unchanged *)
  | Write  (** replaces the object's state *)
  | Rmw  (** read-modify-write (CAS, exchange, lock probe/claim) *)
  | Yield
      (** a spin pause / idle point: touches nothing shared — commutes
          with everything, including other yields *)
  | Global
      (** conservatively ordered against every non-yield operation:
          [Work.poll] (runs an arbitrary scenario hook and brackets
          plain-ref mutation in scenario code), predicate blocks, proc
          start.  The safety net that keeps DPOR sound for effects the
          object vocabulary does not model. *)

(** One visible operation: the trace label, the identity of the object it
    touches (a lock word, an instrumented cell, the proc pool — ids from
    the platform's [fresh_id] counters, replay-stable) and the access
    kind. *)
type opdesc = { label : string; obj : int; access : access }

(* Sentinel object ids, disjoint from [fresh_id]'s non-negative range. *)
let obj_global = -1
let obj_procpool = -2
let obj_local = -3

let desc label obj access = { label; obj; access }

(** [depends a b]: may the order of [a] and [b] (from different procs) be
    observable?  The DPOR dependence relation — an over-approximation is
    sound (explores more), an under-approximation is not. *)
let depends a b =
  match (a.access, b.access) with
  | Yield, _ | _, Yield -> false
  | Global, _ | _, Global -> true
  | _ -> a.obj = b.obj && not (a.access = Read && b.access = Read)

exception Sleep_blocked
(** A run was aborted because every enabled choice was in the sleep set:
    the schedule is a commuted permutation of one already explored.
    Counted as a prune, never reported as a failure. *)

(* ---- check.* telemetry --------------------------------------------- *)

(* One process-wide registry shared by every checker instance (instances
   are generative; the exploration counters are not).  All bumps happen on
   the driver domain, so totals are deterministic for any --jobs. *)
let counters_registry = Obs.Counters.create ()
let c_schedules = Obs.Counters.counter counters_registry "check.schedules_explored"
let c_prunes = Obs.Counters.counter counters_registry "check.sleepset_prunes"
let c_frontier = Obs.Counters.counter counters_registry "check.frontier_peak"
let c_replays = Obs.Counters.counter counters_registry "check.replays"

let counters () = Obs.Counters.dump counters_registry
