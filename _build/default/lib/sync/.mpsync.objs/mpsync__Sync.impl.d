lib/sync/sync.ml: Engine Kont_util List Mp Mpthreads Queues
