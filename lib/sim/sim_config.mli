(** Machine models for the simulated shared-memory multiprocessor.

    Two presets reproduce the paper's evaluation hardware from the constants
    the paper itself reports:

    {ul
    {- {!sequent}: the 16-processor Sequent Symmetry S81 — 16 MHz Intel
       80386 processors, a shared bus with "maximum achievable bandwidth of
       about 25 MB/sec", and MP mutex lock+unlock costing 46 µs.}
    {- {!sgi}: the SGI 4D/380S — "much faster processors but only slightly
       larger bus bandwidth" (≈30 MB/s), lock+unlock 6 µs.  On this machine
       the paper found that "main-memory contention problems swamped all
       other effects".}} *)

(** Interconnect topology.  {!Flat_bus} is the legacy model: one FCFS bus
    shared by every proc (the Sequent/SGI shape; all goldens are pinned
    under it).  {!Numa} groups the [procs] into [nodes] contiguous,
    equal-sized nodes: each node has a private local bus of
    [bus_bytes_per_cycle] bandwidth, and the nodes share one FCFS
    inter-node link.  Node-local traffic (allocation, uncontended lock
    words) only touches the local bus; a write to a word cached on another
    node crosses the local bus and then the link, paying
    [link_latency_cycles] plus the transfer at [link_bytes_per_cycle], and
    invalidates the remote copies (counted under ["cache.invalidations"]). *)
type machine =
  | Flat_bus
  | Numa of {
      nodes : int;
      link_latency_cycles : int;
      link_bytes_per_cycle : float;
    }

type t = {
  name : string;
  procs : int;  (** physical processors *)
  mhz : float;  (** clock: cycles per microsecond *)
  cpi : float;  (** cycles per abstract workload instruction *)
  word_bytes : int;
  bus_bytes_per_cycle : float;
      (** usable shared-bus bandwidth (per node under {!Numa}) *)
  machine : machine;  (** interconnect topology; {!Flat_bus} in the presets *)
  alloc_cycles_per_word : float;  (** CPU cost of heap allocation *)
  try_lock_cycles : int;  (** one test-and-set attempt *)
  unlock_cycles : int;
  lock_bus_bytes : int;  (** bus traffic of one lock RMW *)
  spin_retry_cycles : int;  (** delay between spin probes *)
  idle_quantum_cycles : int;  (** granularity of idle polling *)
  gc_region_words : int;  (** shared allocation region before a GC *)
  gc_survival : float;  (** fraction of the region live at collection *)
  gc_cycles_per_word : float;  (** copy cost per surviving word *)
  gc_fixed_cycles : int;  (** synchronization + redivision overhead *)
  gc_parallelism : float;
      (** effective speedup of the collection itself under the [stw]
          model; 1.0 = the paper's sequential collector.  Legacy knob —
          prefer selecting the [par_stw] model via [gc]. *)
  gc_minor_fixed_cycles : int;
      (** fixed cost of one proc-local minor collection ([minor_pp]) *)
  gc_barrier_cycles : int;
      (** per-collector synchronization surcharge of a parallel
          stop-the-world collection ([par_stw]) *)
  gc : Gc_model.t;
      (** GC cost model ({!Gc_model.t}): [stw] (default, golden-pinned),
          [par_stw[:N]] or [minor_pp].  Like [sched], the selector does
          not change the machine [name]; sweeps label samples with the
          model separately. *)
  acquire_proc_cycles : int;  (** OS cost of acquiring a proc (§3.1) *)
  spin_jitter_proc : int;
      (** per-proc multiplier of the deterministic spin-retry jitter *)
  spin_jitter_attempt : int;  (** per-attempt multiplier of the jitter *)
  spin_jitter_mod : int;
      (** modulus bounding the jitter, in cycles; must be >= 1.  The jitter
          added to [spin_retry_cycles] on the [n]th failed probe by proc [p]
          is [(p * spin_jitter_proc + n * spin_jitter_attempt) mod
          spin_jitter_mod], breaking the phase-locking a fixed retry period
          can produce under the deterministic min-clock scheduler. *)
  run_ahead : bool;
      (** Enable the scheduler's run-ahead fast path: charging operations
          accumulate cycles inline, without an effect-handler suspension,
          for as long as the proc would be re-dispatched immediately anyway.
          Virtual-time results are bit-identical either way; [false] forces
          one suspension per charge (the pre-optimization behavior, useful
          for debugging and as the determinism-equivalence oracle). *)
  run_ahead_window : int;
      (** Maximum cycles a proc may accumulate inline before a forced
          suspension.  Any non-negative value preserves virtual time (a
          forced suspension just bounces through the scheduler, which
          re-picks the same proc); smaller windows give finer-grained traces
          and watchdog coverage at more host cost.  [max_int] = unbounded. *)
  horizon : bool;
      (** Enable quiescence-epoch coalescing of idle polling
          ([Work.idle_until]): an idle proc parks once and its per-quantum
          charges and readiness checks are serviced by the scheduler at
          exactly the positions the always-suspend machine would dispatch
          it, with no effect-handler round-trips.  [false] falls back to
          one suspension per idle quantum (the twin-machine oracle). *)
  horizon_window : int;
      (** Maximum idle cycles one scheduler dispatch may coalesce before
          re-queueing the poller — the interaction-horizon bound, analogous
          to [run_ahead_window].  Any positive value preserves virtual time
          (a re-queue re-pops the same proc at the same key); [max_int] =
          bounded only by other procs' heap keys. *)
  horizon_debug : bool;
      (** Cross-check the horizon fast path against always-suspend-twin
          assumptions on every poll dispatch: the readiness predicate must
          be pure (evaluated twice, equal results) and every coalesced
          quantum's post-charge key must precede the ready-heap minimum.
          Debug only — doubles predicate evaluations. *)
  heap_debug : bool;
      (** Check ready-heap invariants (heap order + index consistency)
          after every scheduler operation; O(procs) per check, debug only. *)
  sched : string;
      (** Thread-scheduler policy for pools run on this machine, in
          {!Mpthreads.Sched_policy.of_string} syntax
          (["fifo"|"lifo"|"distributed"|"ws"|"micropools[:K]"]).  The
          simulator itself does not interpret it — sweeps
          ({!Report.Experiments}) parse it and pass the policy to
          [Sched_thread.with_pool].  Default ["distributed"], the
          golden-pinned historical policy. *)
}

val sequent : ?procs:int -> ?sched:string -> unit -> t
val sgi : ?procs:int -> ?sched:string -> unit -> t

val numa : ?nodes:int -> ?procs_per_node:int -> ?sched:string -> unit -> t
(** A hierarchical machine of [nodes] Sequent-class nodes ([procs_per_node]
    procs each, defaults 4x16): per-node buses with the Sequent's 25 MB/s
    bandwidth, joined by a single shared link of twice that bandwidth plus
    a 120-cycle crossing latency.  Name: ["numa:<nodes>x<procs>"]. *)

val machine_names : string list
(** Accepted spellings for {!of_machine_string} ([--machine]). *)

val of_machine_string : ?sched:string -> ?gc:Gc_model.t -> string -> (t, string) result
(** Parse a machine selector: ["sequent"], ["sgi"], ["numa:<nodes>x<procs>"]
    (e.g. [numa:4x16]), or ["numa1024"], the canonical 1024-proc preset
    (16 nodes of 64 procs).  [?gc] selects the GC cost model of the
    resulting config (default {!Gc_model.default}). *)

val of_machine_string_exn : ?sched:string -> ?gc:Gc_model.t -> string -> t

val nodes : t -> int
(** Number of nodes (1 under {!Flat_bus}). *)

val procs_per_node : t -> int

val node_of : t -> int -> int
(** Node of a proc index: procs are grouped into contiguous blocks of
    {!procs_per_node}, so a pool acquiring procs [0..k-1] spans as few
    nodes as possible. *)

val with_gc : t -> Gc_model.t -> t
(** Same machine under a different GC cost model.  The machine [name] is
    unchanged (same scheme as [sched]); [with_gc c Gc_model.default] is
    [c] itself, so goldens pinned under the default model are unaffected. *)

val with_parallel_gc : t -> float -> t
[@@ocaml.deprecated "use with_gc / --gc par_stw:<n> instead"]
(** Deprecated alias for {!with_gc} with [Par_stw (int_of_float factor)]:
    the §7 "concurrent garbage collection" extension, now a first-class
    {!Gc_model.t}.  Warns on first use. *)

val cycles_to_seconds : t -> int -> float
val seconds_to_cycles : t -> float -> int

val lock_pair_microseconds : t -> float
(** Modelled cost in µs of one uncontended lock+unlock pair — the paper's
    footnote-4 microbenchmark (46 µs Sequent, 6 µs SGI). *)
