(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (sections E1-E7, see DESIGN.md) and runs Bechamel
   microbenchmarks of the thread/lock primitives (M1-M6).

   Usage: dune exec bench/main.exe [-- --quick] [-- --json] [-- --sched P]
   --quick runs a reduced proc sweep (1,4,16) for faster iteration.
   --json additionally writes BENCH_sim.json: host-time cost of the
   simulator core (seconds, scheduler decisions, effect-handler
   suspensions) per workload, for tracking sim-core performance across
   changes.  The sim-core grid always sweeps an explicit scheduler axis
   (distributed, fifo, ws), landing a per-policy dimension in the JSON;
   --sched (or MP_REPRO_SCHED) selects the policy for the fig6/SGI
   sweeps and the lock-scaling grid (default distributed). *)

open Bechamel
open Toolkit

let fmt = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* M: microbenchmarks on the real (uniprocessor) backend.              *)
(* ------------------------------------------------------------------ *)

module U = Mp.Mp_uniproc.Int ()
module UT = Mpthreads.Uni_thread.Make (Queues.Fifo_queue)
module USel = Select.Make (U) (UT) (Queues.Fifo_queue)

let inner = 256 (* ops per staged call; reported estimates are per op *)

let bench_callcc () =
  U.run (fun () ->
      for _ = 1 to inner do
        ignore (Mp.Engine.callcc (fun k -> Mp.Engine.throw k 1))
      done)

let bench_callcc_return () =
  U.run (fun () ->
      for _ = 1 to inner do
        ignore (Mp.Engine.callcc (fun _ -> 1))
      done)

(* The efficient primitive underlying callcc (no body fiber): the ablation
   for design decision 1 in DESIGN.md. *)
let bench_suspend () =
  U.run (fun () ->
      for _ = 1 to inner do
        Mp.Engine.suspend (fun c -> Mp.Engine.Resume (c, ()))
      done)

let bench_fork () =
  UT.reset ();
  U.run (fun () ->
      for _ = 1 to inner do
        UT.fork (fun () -> ())
      done)

let bench_yield () =
  UT.reset ();
  U.run (fun () ->
      UT.fork (fun () ->
          for _ = 1 to inner do
            UT.yield ()
          done);
      for _ = 1 to inner do
        UT.yield ()
      done)

let bench_channel () =
  UT.reset ();
  U.run (fun () ->
      let c = USel.chan () in
      UT.fork (fun () ->
          for _ = 1 to inner do
            USel.send (c, 1)
          done);
      let acc = ref 0 in
      for _ = 1 to inner do
        acc := !acc + USel.receive [ c ]
      done;
      !acc)

module P = Locks.Lock_intf.Atomic_prims

let lock_bench (module L : Locks.Lock_intf.LOCK_EXT) () =
  let l = L.mutex_lock () in
  for _ = 1 to inner do
    L.lock l;
    L.unlock l
  done

module Tas = Locks.Tas_lock.Make (P)
module Ttas = Locks.Ttas_lock.Make (P)
module Backoff = Locks.Backoff_lock.Make (P)
module Ticket = Locks.Ticket_lock.Make (P)
module Clh = Locks.Clh_lock.Make (P)
module Anderson = Locks.Anderson_lock.Make (P)
module Hwpool = Locks.Hwpool_lock.Make (P)

let bench_queue () =
  let q = Queues.Fifo_queue.create () in
  for i = 1 to inner do
    Queues.Fifo_queue.enq q i;
    ignore (Queues.Fifo_queue.deq q)
  done

let micro_tests =
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"callcc+throw" (Staged.stage bench_callcc);
      Test.make ~name:"callcc(return)" (Staged.stage bench_callcc_return);
      Test.make ~name:"suspend(direct)" (Staged.stage bench_suspend);
      Test.make ~name:"thread-fork" (Staged.stage bench_fork);
      Test.make ~name:"thread-yield" (Staged.stage bench_yield);
      Test.make ~name:"channel-send/recv" (Staged.stage bench_channel);
      Test.make ~name:"lock-tas" (Staged.stage (lock_bench (module Tas)));
      Test.make ~name:"lock-ttas" (Staged.stage (lock_bench (module Ttas)));
      Test.make ~name:"lock-backoff" (Staged.stage (lock_bench (module Backoff)));
      Test.make ~name:"lock-ticket" (Staged.stage (lock_bench (module Ticket)));
      Test.make ~name:"lock-clh" (Staged.stage (lock_bench (module Clh)));
      Test.make ~name:"lock-anderson"
        (Staged.stage (lock_bench (module Anderson)));
      Test.make ~name:"lock-hwpool" (Staged.stage (lock_bench (module Hwpool)));
      Test.make ~name:"queue-enq/deq" (Staged.stage bench_queue);
    ]

let run_micro () =
  Report.Render.section fmt
    "M1-M6: microbenchmarks (real backend; Bechamel OLS, ns per operation)";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] micro_tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t /. float_of_int inner
          | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  Report.Render.table fmt ~header:[ "operation"; "ns/op" ]
    ~rows:(List.map (fun (n, e) -> [ n; Printf.sprintf "%.0f" e ]) rows);
  Format.fprintf fmt
    "@.(callcc-based thread operations cost a few allocations -- the paper's \
     'as fast as function invocation' claim, scaled to effect handlers)@."

(* ------------------------------------------------------------------ *)
(* Model cross-check: closed-form resource model vs full simulation.   *)
(* ------------------------------------------------------------------ *)

let print_model samples =
  Report.Render.section fmt
    "Model: closed-form resource bound vs simulation (speedup at max procs; \
     the model ignores lock contention, stealing and barrier skew, so it is \
     an upper bound and the gap measures those effects)";
  let open Report.Experiments in
  let pmax = List.fold_left (fun acc s -> max acc s.procs) 1 samples in
  (* Structural serial/parallelism constants of each implementation: the
     banded decomposition of simple, and per-phase fork/join serialization
     for the phased algorithms (~2.5 kcycles per phase at 16 MHz). *)
  let structure = function
    | "simple" -> (9. *. 2500. /. 16.0e6, 4.)
    | "allpairs" -> (75. *. 2500. /. 16.0e6, infinity)
    | "mst" -> (199. *. 2500. /. 16.0e6, infinity)
    | "abisort" -> (40. *. 2500. /. 16.0e6, infinity)
    | _ -> (0., infinity)
  in
  let rows =
    List.filter_map
      (fun bench ->
        if bench = "seq" then None
        else begin
          let s1 =
            List.find (fun s -> s.bench = bench && s.procs = 1) samples
          in
          let sp =
            List.find (fun s -> s.bench = bench && s.procs = pmax) samples
          in
          let serial, max_par = structure bench in
          let params =
            Model.Speedup_model.fit ~elapsed1:s1.elapsed ~gc1:s1.gc
              ~bus_busy1:(s1.bus_util *. s1.elapsed)
              ~serial ~max_par ()
          in
          let predicted = Model.Speedup_model.speedup params ~procs:pmax in
          let simulated = s1.elapsed /. sp.elapsed in
          Some
            [
              bench;
              Printf.sprintf "%.2f" predicted;
              Printf.sprintf "%.2f" simulated;
            ]
        end)
      [ "allpairs"; "mst"; "abisort"; "simple"; "mm" ]
  in
  Report.Render.table fmt ~header:[ "bench"; "model"; "simulated" ] ~rows

(* ------------------------------------------------------------------ *)
(* Ablations: design decisions called out in DESIGN.md.                 *)
(* ------------------------------------------------------------------ *)

module Seq16 =
  Sim.Mp_sim.Int (struct
      let config = Sim.Sim_config.sequent ~procs:16 ()
    end)
    ()

module BSeq = Workloads.Bench_suite.Make (Seq16)

module Pgc16 =
  Sim.Mp_sim.Int (struct
      let config =
        Sim.Sim_config.with_gc
          (Sim.Sim_config.sequent ~procs:16 ())
          (Sim.Gc_model.Par_stw 8)
    end)
    ()

module BPgc = Workloads.Bench_suite.Make (Pgc16)

let print_ablations () =
  Report.Render.section fmt
    "Ablations: run-queue discipline and concurrent GC (paper §7 future work)";
  (* central (Figure 3) vs distributed (evaluation package) run queue *)
  let time_rq run_queue bench =
    (match bench with
    | `Mm -> ignore (BSeq.mm ~procs:16 ~run_queue ())
    | `Allpairs -> ignore (BSeq.allpairs ~procs:16 ~run_queue ()));
    (Seq16.stats ()).Mp.Stats.elapsed
  in
  let rq_rows =
    List.map
      (fun (name, bench) ->
        let central = time_rq `Central bench in
        let distributed = time_rq `Distributed bench in
        [
          name;
          Printf.sprintf "%.3fs" central;
          Printf.sprintf "%.3fs" distributed;
          Printf.sprintf "%.2fx" (central /. distributed);
        ])
      [ ("mm", `Mm); ("allpairs", `Allpairs) ]
  in
  Format.fprintf fmt "run queue at 16 procs (central = Figure 3 baseline):@.";
  Report.Render.table fmt
    ~header:[ "bench"; "central"; "distributed"; "gain" ]
    ~rows:rq_rows;
  (* sequential vs concurrent collection *)
  let time_gc seqgc bench =
    (match (seqgc, bench) with
    | true, `Abisort -> ignore (BSeq.abisort ~procs:16 ())
    | true, `Allpairs -> ignore (BSeq.allpairs ~procs:16 ())
    | false, `Abisort -> ignore (BPgc.abisort ~procs:16 ())
    | false, `Allpairs -> ignore (BPgc.allpairs ~procs:16 ()));
    let st = if seqgc then Seq16.stats () else Pgc16.stats () in
    (st.Mp.Stats.elapsed, st.Mp.Stats.gc_time)
  in
  let gc_rows =
    List.map
      (fun (name, bench) ->
        let t_seq, g_seq = time_gc true bench in
        let t_par, g_par = time_gc false bench in
        [
          name;
          Printf.sprintf "%.3fs (gc %.3fs)" t_seq g_seq;
          Printf.sprintf "%.3fs (gc %.3fs)" t_par g_par;
          Printf.sprintf "%.2fx" (t_seq /. t_par);
        ])
      [ ("abisort", `Abisort); ("allpairs", `Allpairs) ]
  in
  Format.fprintf fmt
    "@.collection: sequential (paper §5) vs concurrent, 8-way (§7 future \
     work), 16 procs:@.";
  Report.Render.table fmt
    ~header:[ "bench"; "sequential GC"; "concurrent GC"; "gain" ]
    ~rows:gc_rows;
  (* the scheduler family at 16 procs: central FIFO is the baseline work
     stealing must beat on the irregular workloads *)
  let family =
    Mpthreads.Sched_policy.
      [ Fifo; Lifo; Distributed; Ws; Micropools 4 ]
  in
  let time_sched sched bench =
    ignore (BSeq.run_named ~sched bench ~procs:16);
    (Seq16.stats ()).Mp.Stats.elapsed
  in
  let sched_rows =
    List.map
      (fun bench ->
        let times = List.map (fun p -> time_sched p bench) family in
        let fifo_t = List.nth times 0 in
        bench
        :: List.map (fun t -> Printf.sprintf "%.3fs" t) times
        @ [
            Printf.sprintf "ws %.2fx vs fifo"
              (fifo_t /. List.nth times 3);
          ])
      [ "mm"; "allpairs"; "mst" ]
  in
  Format.fprintf fmt "@.scheduler family at 16 procs:@.";
  Report.Render.table fmt
    ~header:
      ("bench"
      :: List.map Mpthreads.Sched_policy.to_string family
      @ [ "gain" ])
    ~rows:sched_rows

(* Lock algorithms under contention in virtual time: the Anderson (1990)
   comparison the paper cites for spin-lock alternatives, run with charged
   primitives on the Sequent model. *)

(* One lock-comparison cell per algorithm: a private machine, charged
   primitives and thread package per cell, so the seven algorithm sweeps
   can fan across host domains.  Per-cell instantiation leaves the
   contended runs' virtual time unchanged (every run starts from a reset
   machine either way). *)
let lock_scaling_names =
  [ "tas"; "ttas"; "backoff"; "ticket"; "anderson"; "clh"; "mcs" ]

let lock_scaling_cell sched name =
  let module S =
    Sim.Mp_sim.Int (struct
        let config =
          Sim.Sim_config.sequent ~procs:16
            ~sched:(Mpthreads.Sched_policy.to_string sched) ()
      end)
      ()
  in
  let module CP = Locks.Charged_prims.Make (S) (Locks.Charged_prims.Default_costs)
  in
  let module SS = Mpthreads.Sched_thread.Make (S) in
  let (module L : Locks.Lock_intf.LOCK_EXT) =
    match name with
    | "tas" -> (module Locks.Tas_lock.Make (CP))
    | "ttas" -> (module Locks.Ttas_lock.Make (CP))
    | "backoff" -> (module Locks.Backoff_lock.Make (CP))
    | "ticket" -> (module Locks.Ticket_lock.Make (CP))
    | "anderson" -> (module Locks.Anderson_lock.Make (CP))
    | "clh" -> (module Locks.Clh_lock.Make (CP))
    | "mcs" -> (module Locks.Mcs_lock.Make (CP))
    | _ -> invalid_arg "lock_scaling_cell"
  in
  let contend procs =
    S.run (fun () ->
        SS.with_pool ~procs ~sched (fun () ->
            let l = L.mutex_lock () in
            SS.par_iter ~chunks:procs (procs * 20) (fun _ ->
                L.lock l;
                (* an allocating critical section, so probe bus traffic
                   interferes with the holder *)
                S.Work.step ~instrs:1_000 ~alloc_words:500 ();
                L.unlock l);
            ()));
    let st = S.stats () in
    (* (time per critical section in us, total bus traffic in KB) *)
    ( st.Mp.Stats.elapsed /. float_of_int (procs * 20) *. 1.0e6,
      st.Mp.Stats.bus_bytes / 1024 )
  in
  let t1, _ = contend 1 in
  let t16, kb16 = contend 16 in
  [
    name;
    Printf.sprintf "%.0f" t1;
    Printf.sprintf "%.0f" t16;
    string_of_int kb16;
  ]

let print_lock_scaling ~jobs ~sched () =
  Report.Render.section fmt
    (Printf.sprintf
       "Lock scaling under contention (charged primitives, simulated \
        Sequent, %s scheduler; Anderson 1990, the paper's spin-lock \
        reference)"
       (Mpthreads.Sched_policy.to_string sched));
  Report.Render.table fmt
    ~header:
      [ "algorithm"; "us/cs @1"; "us/cs @16"; "bus KB @16 (probe traffic)" ]
    ~rows:(Exec.Job_pool.map ~jobs (lock_scaling_cell sched) lock_scaling_names);
  Format.fprintf fmt
    "@.(times are dominated by the serialized critical sections; the probe \
     mechanism shows in the bus column: every TAS probe is an RMW bus \
     transaction, TTAS and the queue locks spin on cached reads)@."

(* Sensitivity of the headline results to the two tuning knobs the paper
   discusses: the allocation-region size (GC frequency, §5/§7) and the
   preemption quantum (§3.4). *)

module Small_region =
  Sim.Mp_sim.Int (struct
      let config =
        { (Sim.Sim_config.sequent ~procs:16 ()) with gc_region_words = 128 * 1024 }
    end)
    ()

module Large_region =
  Sim.Mp_sim.Int (struct
      let config =
        {
          (Sim.Sim_config.sequent ~procs:16 ()) with
          gc_region_words = 2 * 1024 * 1024;
        }
    end)
    ()

module BSmall = Workloads.Bench_suite.Make (Small_region)
module BLarge = Workloads.Bench_suite.Make (Large_region)

let print_sensitivity () =
  Report.Render.section fmt
    "Sensitivity: allocation-region size and preemption quantum";
  let speedup16 run stats_of =
    let t1 =
      run 1;
      stats_of ()
    in
    let t16 =
      run 16;
      stats_of ()
    in
    t1 /. t16
  in
  let region_row label run stats_of =
    let s = speedup16 run (fun () -> (stats_of ()).Mp.Stats.elapsed) in
    (label, s, (stats_of ()).Mp.Stats.gc_count)
  in
  let region_rows =
    [
      region_row "128K words"
        (fun p -> ignore (BSmall.abisort ~procs:p ()))
        Small_region.stats;
      region_row "512K words (paper cfg)"
        (fun p -> ignore (BSeq.abisort ~procs:p ()))
        Seq16.stats;
      region_row "2M words"
        (fun p -> ignore (BLarge.abisort ~procs:p ()))
        Large_region.stats;
    ]
  in
  Format.fprintf fmt "abisort speedup at 16 procs vs allocation region:@.";
  Report.Render.table fmt
    ~header:[ "region"; "speedup@16"; "collections@16" ]
    ~rows:
      (List.map
         (fun (r, s, g) -> [ r; Printf.sprintf "%.2f" s; string_of_int g ])
         region_rows);
  let quantum_time q =
    ignore
      (Seq16.run (fun () ->
           BSeq.Sched.with_pool ~procs:16 ~quantum:q (fun () ->
               BSeq.Sched.par_iter ~chunks:64 256 (fun _ ->
                   Seq16.Work.step ~instrs:20_000 ()))));
    (Seq16.stats ()).Mp.Stats.elapsed
  in
  Format.fprintf fmt "@.mixed workload time at 16 procs vs preemption quantum:@.";
  Report.Render.table fmt ~header:[ "quantum"; "elapsed" ]
    ~rows:
      (List.map
         (fun q -> [ Printf.sprintf "%.3fs" q; Printf.sprintf "%.4fs" (quantum_time q) ])
         [ 0.002; 0.02; 0.2 ])

(* ------------------------------------------------------------------ *)
(* Sim core: host-time cost of simulating, not simulated time.         *)
(* ------------------------------------------------------------------ *)

type sim_core_row = {
  sc_machine : string;
  sc_sched : string;
  sc_gc : string;
  sc_bench : string;
  sc_procs : int;
  sc_host : float;
  sc_decisions : int;
  sc_susp : int;
  sc_coalesced : int;
  sc_heap_ops : int;
  sc_makespan : int;
  sc_remote_bytes : int;
  sc_invalidations : int;
  sc_gc_minor : int;
  sc_gc_major : int;
  sc_gc_pause : int;
}

(* One sim-core cell on a private machine instance, so cells can fan
   across host domains; returns the row plus the instance's counter dump
   (the JSON keeps the dump of the grid's last cell, which is what the
   shared-instance driver effectively reported too, since machine
   counters are overwritten per run). *)
let sim_core_cell (machine, sched, gc, bench, procs) =
  let module S =
    Sim.Mp_sim.Int (struct
        let config =
          Sim.Sim_config.of_machine_string_exn ~sched
            ~gc:(Sim.Gc_model.of_string_exn gc) machine
      end)
      ()
  in
  let module B = Workloads.Bench_suite.Make (S) in
  let t0 = Sys.time () in
  ignore
    (B.run_named ~sched:(Mpthreads.Sched_policy.of_string_exn sched) bench
       ~procs);
  ( {
      sc_machine = machine;
      sc_sched = sched;
      sc_gc = gc;
      sc_bench = bench;
      sc_procs = procs;
      sc_host = Sys.time () -. t0;
      sc_decisions = S.Machine.sched_decisions ();
      sc_susp = S.Machine.suspensions ();
      sc_coalesced = S.Machine.coalesced_charges ();
      sc_heap_ops = S.Machine.heap_ops ();
      sc_makespan = S.Machine.makespan_cycles ();
      sc_remote_bytes = S.Machine.remote_bytes ();
      sc_invalidations = S.Machine.invalidations ();
      sc_gc_minor = S.Machine.gc_minor_collections ();
      sc_gc_major = S.Machine.gc_major_collections ();
      sc_gc_pause = S.Machine.gc_cycles ();
    },
    Obs.Counters.dump S.Telemetry.counters )

(* The sim-core grid's explicit scheduler axis: the historical default
   first (so the table's leading block and its golden-pinned values read
   unchanged), then the central-FIFO baseline and work stealing. *)
let sim_core_scheds = [ "distributed"; "fifo"; "ws" ]

(* The large-P NUMA block: the canonical 1024-proc hierarchical machine
   (16 nodes x 64 procs), swept at the powers of four where the
   lock/scheduler families separate — the distributed rotor's cross-node
   lock RMWs saturate the shared link while node-aware work stealing
   stays close to its node-local cost.  mm is the quick column (one
   1024-proc cell stays within the host-seconds guard, see
   test_sim.ml); fib — deep task parallelism — and the central-FIFO
   collapse exhibit join on full runs. *)
let sim_numa_machine = "numa1024"

let sim_numa_cells ~quick =
  let numa_procs = [ 1; 64; 256; 1024 ] in
  List.concat_map
    (fun sched ->
      List.concat_map
        (fun bench ->
          List.map
            (fun procs -> (sim_numa_machine, sched, "stw", bench, procs))
            numa_procs)
        (if quick then [ "mm" ] else [ "mm"; "fib" ]))
    [ "distributed"; "ws" ]
  @
  if quick then []
  else
    List.map (fun p -> (sim_numa_machine, "fifo", "stw", "fib", p)) [ 1; 64; 256 ]

(* The GC-model axis (§6 headroom counterfactuals): the allocation-heavy
   workloads under the N-collector parallel STW and the per-proc
   minor-heap collector, against the default-model cells' [stw] baseline.
   The acceptance exhibit lives here: minor_pp's 16-proc speedup strictly
   above stw's on mm (its collections stop only the allocating proc). *)
let sim_gc_cells ~quick =
  List.concat_map
    (fun gc ->
      List.concat_map
        (fun bench ->
          List.map
            (fun procs -> ("sequent", "distributed", gc, bench, procs))
            [ 1; 4; 16 ])
        [ "mm"; "simple" ])
    [ "par_stw"; "minor_pp" ]
  @
  if quick then []
  else
    (* the 64-256-proc NUMA counterfactual of the headline exhibit *)
    List.concat_map
      (fun gc ->
        List.map
          (fun procs -> (sim_numa_machine, "distributed", gc, "mm", procs))
          [ 1; 64; 256 ])
      [ "minor_pp" ]

let sim_core_rows ~jobs ~quick () =
  let cells =
    List.concat_map
      (fun sched ->
        List.concat_map
          (fun bench ->
            List.map
              (fun procs -> ("sequent", sched, "stw", bench, procs))
              [ 1; 4; 16 ])
          BSeq.names)
      sim_core_scheds
    @ sim_numa_cells ~quick @ sim_gc_cells ~quick
  in
  Exec.Job_pool.map ~jobs sim_core_cell cells

let print_sim_core rows =
  Report.Render.section fmt
    "Sim core: host-time cost of the simulator (scheduler decisions, \
     effect-handler suspensions, charges coalesced by run-ahead)";
  Report.Render.table fmt
    ~header:
      [
        "machine"; "sched"; "gc"; "bench"; "procs"; "host s"; "decisions";
        "suspensions"; "coalesced"; "remote B";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.sc_machine;
             r.sc_sched;
             r.sc_gc;
             r.sc_bench;
             string_of_int r.sc_procs;
             Printf.sprintf "%.4f" r.sc_host;
             string_of_int r.sc_decisions;
             string_of_int r.sc_susp;
             string_of_int r.sc_coalesced;
             string_of_int r.sc_remote_bytes;
           ])
         rows);
  let tot f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  Format.fprintf fmt
    "@.totals: %.3f host seconds, %d decisions, %d suspensions, %d charges \
     coalesced inline@."
    (List.fold_left (fun acc r -> acc +. r.sc_host) 0. rows)
    (tot (fun r -> r.sc_decisions))
    (tot (fun r -> r.sc_susp))
    (tot (fun r -> r.sc_coalesced))

let write_sim_json rows counters path =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"benchmark\": \"sim-core\",\n  \"machine\": %S,\n"
    Seq16.Machine.config.Sim.Sim_config.name;
  Printf.fprintf oc "  \"workloads\": [\n";
  let n = List.length rows in
  (* Speedup of each cell vs the same (machine, scheduler, gc model,
     workload) procs=1 makespan, so the per-policy and per-collector
     scaling curves are self-relative within each machine model. *)
  let makespan1 machine sched gc bench =
    match
      List.find_opt
        (fun r ->
          r.sc_machine = machine && r.sc_sched = sched && r.sc_gc = gc
          && r.sc_bench = bench && r.sc_procs = 1)
        rows
    with
    | Some r -> Some r.sc_makespan
    | None -> None
  in
  List.iteri
    (fun i r ->
      let speedup =
        match makespan1 r.sc_machine r.sc_sched r.sc_gc r.sc_bench with
        | Some m1 when r.sc_makespan > 0 ->
            float_of_int m1 /. float_of_int r.sc_makespan
        | _ -> nan
      in
      Printf.fprintf oc
        "    {\"name\": %S, \"machine\": %S, \"scheduler\": %S, \
         \"gc_model\": %S, \"procs\": %d, \"host_seconds\": %.6f, \
         \"sched_decisions\": %d, \"suspensions\": %d, \
         \"coalesced_charges\": %d, \"heap_ops\": %d, \"makespan_cycles\": \
         %d, \"bus.remote_bytes\": %d, \"cache.invalidations\": %d, \
         \"gc.minor_count\": %d, \"gc.major_count\": %d, \
         \"gc.pause_cycles\": %d, \"speedup\": %.4f}%s\n"
        r.sc_bench r.sc_machine r.sc_sched r.sc_gc r.sc_procs r.sc_host
        r.sc_decisions r.sc_susp r.sc_coalesced r.sc_heap_ops r.sc_makespan
        r.sc_remote_bytes r.sc_invalidations r.sc_gc_minor r.sc_gc_major
        r.sc_gc_pause speedup
        (if i = n - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  (* The counter registry of the sweep's last cell: machine counters from
     that run plus its client-layer counters (sched.forks, lock.spins,
     sync.blocks, ...) — the same thing the shared-instance driver
     reported, and independent of how many domains ran the sweep. *)
  Printf.fprintf oc "  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "%s%S: %d" (if i = 0 then "" else ", ") name v)
    counters;
  Printf.fprintf oc "},\n";
  let tot f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  Printf.fprintf oc
    "  \"totals\": {\"host_seconds\": %.6f, \"sched_decisions\": %d, \
     \"suspensions\": %d, \"coalesced_charges\": %d, \"heap_ops\": %d}\n}\n"
    (List.fold_left (fun acc r -> acc +. r.sc_host) 0. rows)
    (tot (fun r -> r.sc_decisions))
    (tot (fun r -> r.sc_susp))
    (tot (fun r -> r.sc_coalesced))
    (tot (fun r -> r.sc_heap_ops));
  close_out oc;
  Format.fprintf fmt "@.wrote %s@." path

(* [--jobs N] (or MP_REPRO_JOBS) fans the independent sweep cells —
   sim-core rows, fig6/SGI grid cells, the lock-algorithm comparison —
   across N host domains; all printed/written results are identical for
   every N. *)
let parse_jobs argv =
  let explicit = ref None in
  Array.iteri
    (fun i a ->
      if a = "--jobs" && i + 1 < Array.length argv then
        explicit := int_of_string_opt argv.(i + 1))
    argv;
  Exec.Job_pool.resolve_jobs !explicit

(* [--sched P] (or MP_REPRO_SCHED) selects the scheduling policy for the
   fig6/SGI sweeps and the lock-scaling grid; the sim-core grid always
   sweeps its own explicit scheduler axis. *)
let parse_sched argv =
  let explicit = ref None in
  Array.iteri
    (fun i a ->
      if a = "--sched" && i + 1 < Array.length argv then
        explicit := Some argv.(i + 1))
    argv;
  Mpthreads.Sched_policy.resolve ?explicit:!explicit ()

let () =
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  let json = Array.exists (fun a -> a = "--json") Sys.argv in
  let jobs = parse_jobs Sys.argv in
  let sched = parse_sched Sys.argv in
  let sched_str = Mpthreads.Sched_policy.to_string sched in
  let plist = if quick then Some [ 1; 4; 16 ] else None in
  Format.fprintf fmt
    "Procs and Locks reproduction -- benchmark harness (%s sweep, %d job%s, \
     %s scheduler)@."
    (if quick then "quick" else "full")
    jobs
    (if jobs = 1 then "" else "s")
    sched_str;
  let sim_cells = sim_core_rows ~jobs ~quick () in
  let sim_rows = List.map fst sim_cells in
  let last_counters =
    match List.rev sim_cells with (_, d) :: _ -> d | [] -> []
  in
  print_sim_core sim_rows;
  if json then write_sim_json sim_rows last_counters "BENCH_sim.json";
  (* E9: the open-loop server workload — latency-tail grid plus the
     saturation ramp whose knee BENCH_server.json pins per scheduler. *)
  let server_grid = Report.Server_bench.grid ~quick ~jobs () in
  let server_ramp = Report.Server_bench.ramp ~quick ~jobs () in
  Report.Server_bench.print_server fmt server_grid server_ramp;
  if json then begin
    let oc = open_out "BENCH_server.json" in
    output_string oc (Report.Server_bench.to_json ~quick server_grid server_ramp);
    close_out oc;
    Format.fprintf fmt "@.wrote BENCH_server.json@."
  end;
  run_micro ();
  Report.Experiments.print_lock_latency fmt;
  Report.Experiments.print_portability fmt;
  let samples =
    Report.Experiments.sequent_sweep ?plist ~jobs ~sched:sched_str ()
  in
  Report.Experiments.print_fig6 fmt samples;
  Report.Experiments.print_idle fmt samples;
  Report.Experiments.print_bus fmt samples;
  Report.Experiments.print_gc_ablation fmt samples;
  print_model samples;
  print_ablations ();
  print_lock_scaling ~jobs ~sched ();
  print_sensitivity ();
  let sgi =
    Report.Experiments.sgi_sweep
      ?plist:(if quick then Some [ 1; 4; 8 ] else None)
      ~jobs ~sched:sched_str ()
  in
  Report.Experiments.print_sgi fmt sgi;
  (* Host-side parallel-driver telemetry (to stderr: the values — batch
     and steal counts — legitimately vary with [jobs], so they stay out
     of the deterministic report stream). *)
  List.iter
    (fun (name, v) -> Printf.eprintf "%s=%d\n" name v)
    (Exec.Job_pool.counters ());
  Format.fprintf fmt "@.done.@."
