lib/mp/engine.ml: Atomic Effect
