open Mp

module Make (P : Mp.Mp_intf.PLATFORM_INT) (Queue : Queues.Queue_intf.QUEUE) =
struct
  let ready : (unit Engine.cont * int) Queue.queue = Queue.create ()
  let ready_lock = P.Lock.mutex_lock ()
  let next_id = ref 1
  let next_id_lock = P.Lock.mutex_lock ()

  let reschedule (cont, id) =
    P.Lock.lock ready_lock;
    Queue.enq ready (cont, id);
    P.Lock.unlock ready_lock

  let dispatch () =
    P.Lock.lock ready_lock;
    match Queue.deq ready with
    | cont, id ->
        P.Lock.unlock ready_lock;
        P.Proc.set_datum id;
        Engine.throw cont ()
    | exception Queue.Empty ->
        P.Lock.unlock ready_lock;
        P.Proc.release_proc ()

  let fork child =
    Engine.callcc (fun parent ->
        let current_id = P.Proc.get_datum () in
        (try P.Proc.acquire_proc (P.Proc.PS (parent, current_id))
         with P.Proc.No_More_Procs -> reschedule (parent, current_id));
        P.Lock.lock next_id_lock;
        P.Proc.set_datum !next_id;
        next_id := !next_id + 1;
        P.Lock.unlock next_id_lock;
        child ();
        dispatch ())

  let yield () =
    Engine.callcc (fun cont ->
        reschedule (cont, P.Proc.get_datum ());
        dispatch ())

  let id () = P.Proc.get_datum ()
  let reschedule_thread (k, v, id) = reschedule (Kont_util.unit_cont_of k v, id)

  let reset () =
    P.Lock.lock ready_lock;
    (try
       while true do
         ignore (Queue.deq ready)
       done
     with Queue.Empty -> ());
    P.Lock.unlock ready_lock;
    P.Lock.lock next_id_lock;
    next_id := 1;
    P.Lock.unlock next_id_lock
end
