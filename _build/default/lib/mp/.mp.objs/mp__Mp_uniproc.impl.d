lib/mp/mp_uniproc.ml: Engine Fun Mp_intf Stats Unix
