(* Open-loop request-serving workload: the ROADMAP "heavy traffic from
   millions of users" scenario in virtual time.

   A seeded arrival process (Poisson or bursty/MMPP) drives a CML-channel
   pipeline — accept → shard (hash over N bounded worker queues) → work
   (configurable service-time distribution) → reply — built entirely on the
   Cml/Sync/Sched_thread client layers, so one implementation runs on all
   four backends (uniproc/domains/sim/check).

   Open-loop means latency is measured from each request's *intended*
   arrival instant, which is a pure function of (seed, id): when the system
   saturates, the accepter falls behind the arrival clock and queueing delay
   lands in the tail instead of silently throttling the offered load, which
   is what makes the p99-vs-offered-load knee visible.  Every per-request
   quantity (arrival instant, shard, service demand) is a pure function of
   the request id, never of scheduling order, so on the simulator a
   (config, sched, procs, machine) cell is bit-reproducible. *)

type arrival =
  | Poisson  (** exponential inter-arrivals at [rate] *)
  | Bursty of { factor : float; p_switch : float }
      (** two-state MMPP: rate alternates between [rate * factor] and
          [rate / factor], toggling with probability [p_switch] per
          arrival; same mean offered load as [Poisson] at equal [rate] *)

type service =
  | Fixed  (** every request costs [service_mean_instrs] *)
  | Exp  (** exponential with mean [service_mean_instrs] *)
  | Pareto of { alpha : float }
      (** heavy-tailed with mean [service_mean_instrs]; needs alpha > 1 *)

type config = {
  requests : int;
  arrival : arrival;
  rate : float;  (** mean offered load, requests per (virtual) second *)
  service : service;
  service_mean_instrs : int;
  shards : int;  (** worker pools; requests hash over them *)
  workers_per_shard : int;
  queue_cap : int;  (** bound of each shard queue (the backpressure) *)
  seed : int;
  record_order : bool;
      (** keep each shard's processing order (tests only: O(requests)) *)
}

let default =
  {
    requests = 2000;
    arrival = Poisson;
    rate = 250.;
    service = Exp;
    service_mean_instrs = 20_000;
    shards = 4;
    workers_per_shard = 1;
    queue_cap = 64;
    seed = 1993;
    record_order = false;
  }

(* ------------------------------------------------------------------ *)
(* Deterministic per-request randomness: a 62-bit xorshift-multiply    *)
(* mix keyed by (seed, stream, id).  Pure and platform-independent —   *)
(* the same config yields the same trace on every backend.             *)
(* ------------------------------------------------------------------ *)

let mix x =
  let x = x land max_int in
  let x = (x lxor (x lsr 30)) * 0x4F1BBCDD in
  let x = x land max_int in
  let x = (x lxor (x lsr 27)) * 0x2545F491 in
  let x = x land max_int in
  x lxor (x lsr 31)

(* uniform in (0, 1] *)
let uniform ~seed ~stream i =
  let h = mix ((seed * 0x3779B9) + (stream * 1_000_003) + (i * 7919)) in
  let b = (h lsr 13) land 0x3FFFFFFF in
  float_of_int (b + 1) /. 1073741825.0

let shard_of cfg i = mix ((cfg.seed * 31) + 3 + (i * 104729)) mod cfg.shards

let service_instrs cfg i =
  let mean = float_of_int cfg.service_mean_instrs in
  let u = uniform ~seed:cfg.seed ~stream:2 i in
  let x =
    match cfg.service with
    | Fixed -> mean
    | Exp -> -.log u *. mean
    | Pareto { alpha } ->
        (* scale x_m chosen so the mean is [mean]: x_m = mean(α-1)/α *)
        let xm = mean *. (alpha -. 1.) /. alpha in
        xm /. (u ** (1. /. alpha))
  in
  let n = int_of_float x in
  if n < 16 then 16 else if n > 5_000_000 then 5_000_000 else n

(* Intended arrival instants, seconds from run start, ascending.  With a
   non-finite or non-positive [rate] every request arrives at t = 0 (a
   closed burst — what the conformance trace uses so the pipeline needs no
   timers on the check backend). *)
let arrivals cfg =
  let n = cfg.requests in
  let ts = Array.make n 0. in
  if Float.is_finite cfg.rate && cfg.rate > 0. then begin
    let t = ref 0. in
    let hi = ref true in
    for i = 0 to n - 1 do
      let rate =
        match cfg.arrival with
        | Poisson -> cfg.rate
        | Bursty { factor; p_switch } ->
            if uniform ~seed:cfg.seed ~stream:1 i < p_switch then
              hi := not !hi;
            if !hi then cfg.rate *. factor else cfg.rate /. factor
      in
      t := !t +. (-.log (uniform ~seed:cfg.seed ~stream:0 i) /. rate);
      ts.(i) <- !t
    done
  end;
  ts

type result = {
  completed : int;
  elapsed : float;  (** run start to last reply, (virtual) seconds *)
  throughput : float;  (** completed / elapsed *)
  hist : Obs.Histogram.t;  (** per-request latency, nanoseconds *)
  p50 : int;
  p95 : int;
  p99 : int;
  p999 : int;  (** latency quantiles in nanoseconds (bucket upper bounds) *)
  queue_wait : float;
      (** seconds producers spent blocked on full shard queues, summed
          over procs ([Stats.total_queue_wait]) — the backpressure share
          of the tail *)
  order : int list array;  (** per-shard processing order if recorded *)
}

module Make (P : Mp.Mp_intf.PLATFORM_INT) = struct
  module Sched = Mpthreads.Sched_thread.Make (P)
  module Chan = Cml.Make (P) (Sched)
  module Sy = Mpsync.Sync.Make (P) (Sched)

  (* Bounded MPMC shard queue with blocking put/get, synthesized exactly as
     the paper prescribes (§3.3) from a mutex lock plus semaphores (which
     themselves park continuations).  Producers blocked on a full queue
     report the stall through [Work.note_queue_wait], so saturation shows
     up per proc in [Stats.queue_wait] rather than vanishing into idle
     time. *)
  type 'a shard_queue = {
    lock : P.Lock.mutex_lock;
    buf : 'a Queues.Bounded_queue.t;
    space : Sy.Semaphore.t;
    items : Sy.Semaphore.t;
  }

  let shard_queue capacity =
    {
      lock = P.Lock.mutex_lock ();
      buf = Queues.Bounded_queue.create ~capacity;
      space = Sy.Semaphore.create capacity;
      items = Sy.Semaphore.create 0;
    }

  let sq_put q v =
    if not (Sy.Semaphore.try_acquire q.space) then begin
      let t0 = Sched.now () in
      Sy.Semaphore.acquire q.space;
      P.Work.note_queue_wait ~seconds:(Sched.now () -. t0)
    end;
    P.Lock.locked q.lock (fun () ->
        ignore (Queues.Bounded_queue.try_enq q.buf v));
    Sy.Semaphore.release q.items

  let sq_get q =
    Sy.Semaphore.acquire q.items;
    let v =
      P.Lock.locked q.lock (fun () ->
          match Queues.Bounded_queue.deq_opt q.buf with
          | Some v -> v
          | None -> assert false)
    in
    Sy.Semaphore.release q.space;
    v

  type request = { id : int; arrival : float }

  let poison = { id = -1; arrival = 0. }

  (* Latency histograms go through the platform's registry so they sit
     alongside the counters in every telemetry dump; [Histogram.add] is
     commutative, so concurrent recording on the domains backend still
     yields a deterministic digest of a given latency multiset. *)
  let hist = P.Telemetry.histogram "server.latency_ns"

  let run ~procs ?quantum ?sched cfg =
    if cfg.requests <= 0 then invalid_arg "Server.run: requests <= 0";
    if cfg.shards <= 0 || cfg.workers_per_shard <= 0 || cfg.queue_cap <= 0
    then invalid_arg "Server.run: shards/workers/queue_cap must be positive";
    Obs.Histogram.reset hist;
    P.reset_stats ();
    let n = cfg.requests in
    let ts = arrivals cfg in
    let order =
      Array.make (if cfg.record_order then cfg.shards else 0) []
    in
    let completed = ref 0 and t_start = ref 0. and t_last = ref 0. in
    P.run (fun () ->
        Sched.with_pool ~procs ?quantum ?sched (fun () ->
            Chan.set_seed cfg.seed;
            let queues = Array.init cfg.shards (fun _ -> shard_queue cfg.queue_cap) in
            let accept_ch : request Chan.chan = Chan.channel () in
            let reply_ch : request Chan.chan = Chan.channel () in
            let t0 = Sched.now () in
            t_start := t0;
            (* accept: pace the offered load in (virtual) time, then hand
               off synchronously.  The arrival stamp is the intended
               instant t0 + ts.(i) — if the pipeline backs up, the send
               blocks, the accepter falls behind the arrival clock, and
               the delay is charged to the requests' latency. *)
            Chan.spawn (fun () ->
                for i = 0 to n - 1 do
                  let due = t0 +. ts.(i) in
                  let d = due -. Sched.now () in
                  if d > 0. then Sched.sleep d;
                  Chan.send accept_ch { id = i; arrival = due }
                done);
            (* shard: hash each request over the bounded worker queues;
               blocks on a full shard, which backpressures accept. *)
            Chan.spawn (fun () ->
                for _ = 1 to n do
                  let r = Chan.recv accept_ch in
                  sq_put queues.(shard_of cfg r.id) r
                done;
                Array.iter
                  (fun q ->
                    for _ = 1 to cfg.workers_per_shard do
                      sq_put q poison
                    done)
                  queues);
            (* work: per-shard worker pools; service demand is a pure
               function of the request id, so makespans don't depend on
               which worker wins a race for the queue. *)
            Array.iteri
              (fun s q ->
                for _ = 1 to cfg.workers_per_shard do
                  Chan.spawn (fun () ->
                      let rec serve () =
                        let r = sq_get q in
                        if r.id >= 0 then begin
                          if cfg.record_order then
                            P.Lock.locked q.lock (fun () ->
                                order.(s) <- r.id :: order.(s));
                          P.Work.step ~instrs:(service_instrs cfg r.id) ();
                          Chan.send reply_ch r;
                          serve ()
                        end
                      in
                      serve ())
                done)
              queues;
            (* reply: thread 0 collects and stamps completion. *)
            for _ = 1 to n do
              let r = Chan.recv reply_ch in
              let t_done = Sched.now () in
              Obs.Histogram.add hist
                (int_of_float ((t_done -. r.arrival) *. 1e9));
              incr completed;
              t_last := t_done
            done));
    let st = P.stats () in
    let elapsed = !t_last -. !t_start in
    {
      completed = !completed;
      elapsed;
      throughput = (if elapsed > 0. then float_of_int !completed /. elapsed else 0.);
      hist;
      p50 = Obs.Histogram.quantile hist 0.5;
      p95 = Obs.Histogram.quantile hist 0.95;
      p99 = Obs.Histogram.quantile hist 0.99;
      p999 = Obs.Histogram.quantile hist 0.999;
      queue_wait = Mp.Stats.total_queue_wait st;
      order = Array.map List.rev order;
    }
end
