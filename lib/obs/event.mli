(** The shared telemetry event model.

    One structured event type for every layer of the platform: the
    simulator's scheduler/GC/proc events (formerly [Sim_trace.event]), the
    thread package's fork/switch/steal events, lock acquisition, and
    blocking/wakeup in the synchronization, select and CML layers.

    Every event carries a [clock] timestamp whose unit is backend-defined:
    virtual cycles on the simulator, host nanoseconds on the real backends
    (the [TELEMETRY] capability's [ts] provides it).  Events are plain
    immutable values; they are only ever constructed behind an
    [enabled ()] guard, so a disabled platform allocates nothing. *)

type category = Sched | Proc | Lock | Gc | Sync | Select | Cml

val category_name : category -> string
(** Lower-case label used in the JSONL encoding. *)

type gc_kind =
  | Minor  (** proc-local minor collection; other procs keep running *)
  | Major  (** stop-the-world collection (the historical [stw] model) *)
  | Par  (** stop-the-world with the copy split over parallel collectors *)

val gc_kind_name : gc_kind -> string
(** Lower-case label used in the JSONL encoding. *)

type t =
  | Dispatch of { proc : int; clock : int }
      (** the scheduler handed the proc to its pending action *)
  | Freed of { proc : int; clock : int }  (** the proc was released *)
  | Acquired of { proc : int; by : int; clock : int }
  | Gc_start of {
      clock : int;
      region_words : int;
      kind : gc_kind;
      waiters : int;
          (** procs parked at the barrier (0 for a proc-local minor) *)
    }
  | Gc_end of { clock : int; duration : int }
  | Coalesced of { proc : int; clock : int; cycles : int }
      (** [cycles] of charges the simulator's run-ahead fast path absorbed
          inline since the proc's last dispatch (see {!Sim.Mp_sim}) *)
  | Fork of { proc : int; clock : int; thread : int }
  | Switch of { proc : int; clock : int; thread : int }
      (** the thread scheduler dispatched [thread] on [proc] *)
  | Steal of { proc : int; clock : int }
      (** [proc] stole work from another proc's run queue *)
  | Queue_depth of { proc : int; clock : int; depth : int }
      (** run-queue depth sample (taken at fork) *)
  | Lock_acquired of { proc : int; clock : int }
  | Lock_contended of { proc : int; clock : int; spins : int }
      (** a [lock] that had to retry, with its failed-probe count *)
  | Blocked of { proc : int; clock : int; thread : int; on : string }
      (** [thread] parked its continuation on construct [on] *)
  | Wakeup of { proc : int; clock : int; thread : int; on : string }
      (** [thread] was made ready again by construct [on] *)
  | Step of { proc : int; clock : int; op : string }
      (** one serialization point in an [mp_check] exploration: [proc]
          performed visible operation [op] at decision index [clock].
          Classified [Lock] when [op] starts with "lock", [Sched]
          otherwise. *)

val clock_of : t -> int

val category_of : t -> category
(** [Blocked]/[Wakeup] are classified by the dotted prefix of their [on]
    site ("cml*" → [Cml], "select*" → [Select], anything else → [Sync]). *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering.  The output for the six original
    simulator events ([Dispatch]..[Coalesced]) is stable — existing
    trace-based tests and tooling rely on it. *)

val to_json : t -> string
(** One JSON object (no trailing newline):
    [{"ts":..,"cat":"sched","ev":"dispatch","proc":0}]. *)
