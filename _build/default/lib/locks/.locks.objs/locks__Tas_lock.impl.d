lib/locks/tas_lock.ml: Lock_intf
