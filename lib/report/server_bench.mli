(** Sweep driver for the open-loop server workload (exhibit E9): a
    (scheduler × procs) latency-tail grid at a fixed offered load and a
    per-scheduler saturation ramp, on private simulated machines fanned
    out through {!Exec.Job_pool} — deterministic for any [jobs]. *)

type cell = {
  machine : string;
  sched : string;
  procs : int;
  rate : float;  (** offered load, requests per virtual second *)
  requests : int;
  completed : int;
  elapsed : float;
  throughput : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  p999_ns : int;
  mean_ns : float;
  queue_wait : float;  (** producer seconds blocked on full shard queues *)
  buckets : (int * int) list;  (** latency histogram digest *)
}

val schedulers : string list
(** ["fifo"; "distributed"; "ws"] — central-queue baseline, the
    golden-pinned default, and work stealing. *)

val grid_procs : int list
(** [1; 4; 16]. *)

val ramp_rates : quick:bool -> float list

val grid : ?quick:bool -> ?jobs:int -> ?machine:string -> unit -> cell list
(** One cell per (scheduler, procs) at the default offered load. *)

val ramp :
  ?quick:bool -> ?jobs:int -> ?machine:string -> ?procs:int -> unit ->
  cell list
(** Offered-load ramp per scheduler at [procs] (default 16). *)

val knee : cell list -> sched:string -> float option
(** Lowest ramp rate whose p99 exceeds 5x the lightest-load p99 —
    [None] if the scheduler never saturates within the ramp. *)

val print_server : Format.formatter -> cell list -> cell list -> unit
(** Render grid + ramp tables and the per-scheduler knees. *)

val to_json : quick:bool -> cell list -> cell list -> string
(** The BENCH_server.json document (schema mp-repro/server/v1). *)
