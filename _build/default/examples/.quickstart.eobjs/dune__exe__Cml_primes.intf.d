examples/cml_primes.mli:
