(** The scenario corpus wired over a checkable platform instance.

    Each scenario is a self-contained body for {!Mp_check.S.Explore}: it
    calls the platform's [run] exactly once, drives two (or more) procs
    through one of the platform's client surfaces — a lock algorithm over
    [Prims], a queue over [Catomic] or a platform lock, the sync/select/CML
    packages over a minimal proc-per-thread scheduler — and raises if an
    invariant that must hold on {e every} schedule is violated.  Shared by
    [test/test_check.ml] (exhaustive DFS per scenario) and
    [bench/check_smoke.exe] (the CI gate). *)

module Make (C : Mp_check.S with type Proc.proc_datum = int) : sig
  val all : (string * (unit -> unit)) list
  (** Small-state scenarios meant for exhaustive bound-2 DFS: the 8 mutex
      algorithms + the reader/writer spin lock, the three shared queues,
      the server accept/shard/work pipeline over bounded shard queues,
      Sync ivar/mvar/semaphore, Select, CML rendezvous and choice, and the
      proc-pool contract. *)

  val heavy : (string * (unit -> unit)) list
  (** Scenarios with large decision counts (the full [Sched_thread] package
      over the checker) — explore with a low bound or a schedule cap. *)

  val broken : (string * (unit -> unit)) list
  (** Deliberately buggy clients (a racy test-and-set lock; a server
      router that drops a request on shard collision).  Exploration MUST
      find a failure here — the harness's own self-test. *)
end
