module Make (P : Lock_intf.PRIMS) = struct
  type node = { locked : bool P.cell; next : node option P.cell }

  (* [holder] remembers both the holder's node and the {e physical}
     [Some node] box that was written into [tail]: compare_and_set on a
     boxed option only succeeds on the identical box, so unlock must CAS
     with exactly the value lock installed. *)
  type mutex_lock = {
    tail : node option P.cell;
    holder : (node * node option) P.cell;
  }

  let holder_must_unlock = true
  let fresh_node () = { locked = P.make false; next = P.make None }

  let mutex_lock () =
    let dummy = fresh_node () in
    { tail = P.make None; holder = P.make (dummy, None) }

  let lock l =
    let mine = fresh_node () in
    P.set mine.locked true;
    let boxed = Some mine in
    (match P.exchange l.tail boxed with
    | None -> () (* uncontended *)
    | Some pred ->
        P.set pred.next (Some mine);
        while P.get mine.locked do
          P.on_spin ();
          P.pause ()
        done);
    P.set l.holder (mine, boxed)

  let try_lock l =
    let mine = fresh_node () in
    let boxed = Some mine in
    if P.compare_and_set l.tail None boxed then begin
      P.set l.holder (mine, boxed);
      true
    end
    else false

  let unlock l =
    let mine, boxed = P.get l.holder in
    match P.get mine.next with
    | Some succ -> P.set succ.locked false
    | None ->
        (* no known successor: try to swing the tail back to empty; if a new
           waiter raced in, wait for it to link itself *)
        if not (P.compare_and_set l.tail boxed None) then begin
          let rec wait_link () =
            match P.get mine.next with
            | Some succ -> P.set succ.locked false
            | None ->
                P.pause ();
                wait_link ()
          in
          wait_link ()
        end
  let locked l f = Lock_intf.locked_default ~lock ~unlock l f

end
