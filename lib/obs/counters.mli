(** Named counter/gauge registry.

    Counters are [Atomic] cells, safe for concurrent emitters on the
    domains backend; lookups take a registry mutex, so clients resolve
    their handles once at setup and keep them for the hot path.  Unlike
    events, counters are always on — an increment is one atomic
    read-modify-write, cheap enough to leave unguarded. *)

type t
(** A registry; each platform owns one (see [Mp_intf.TELEMETRY]). *)

type counter

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-create by name.  Dotted names by convention:
    ["sched.forks"], ["lock.spins"], ["sync.blocks"], ... *)

val find : t -> string -> counter option
val name : counter -> string
val incr : counter -> unit
val add : counter -> int -> unit

val set : counter -> int -> unit
(** Gauge-style assignment. *)

val max_gauge : counter -> int -> unit
(** Raise the value to [n] if larger (high-watermark gauge); lock-free. *)

val get : counter -> int

val dump : t -> (string * int) list
(** Sorted by name. *)

val reset : t -> unit
