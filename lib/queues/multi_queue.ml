module Make (L : Mp.Mp_intf.LOCK) = struct
  type 'a slot = { lock : L.mutex_lock; deque : 'a Deque.t }

  type 'a t = {
    slots : 'a slot array;
    mutable rotor : int; (* round-robin cursor for push_global; racy by design *)
    mutable steal_count : int;
    items : int Atomic.t;
        (* exact element count, updated inside the slot locks; lets the
           emptiness hint be O(1) instead of an O(procs) deque scan.  Kept
           atomic so concurrent sections under different slot locks
           (domains backend) cannot lose updates. *)
  }

  let create ~procs =
    if procs <= 0 then invalid_arg "Multi_queue.create";
    {
      slots =
        Array.init procs (fun _ ->
            { lock = L.mutex_lock (); deque = Deque.create () });
      rotor = 0;
      steal_count = 0;
      items = Atomic.make 0;
    }

  let procs t = Array.length t.slots

  (* Every critical section here is a handful of pointer swings, so the
     platform may fuse acquire/section/release into one episode. *)
  let protected slot f = L.locked slot.lock f

  let push t ~proc x =
    let slot = t.slots.(proc) in
    protected slot (fun () ->
        Deque.push_front slot.deque x;
        Atomic.incr t.items)

  let push_back t ~proc x =
    let slot = t.slots.(proc) in
    protected slot (fun () ->
        Deque.push_back slot.deque x;
        Atomic.incr t.items)

  let push_global t x =
    let proc = t.rotor mod procs t in
    t.rotor <- t.rotor + 1;
    let slot = t.slots.(proc) in
    protected slot (fun () ->
        Deque.push_back slot.deque x;
        Atomic.incr t.items)

  (* Peek the (racy) length before taking the lock: an empty-looking deque
     is skipped without paying for a lock round-trip.  A stale non-zero
     length only costs one wasted lock; a stale zero is corrected on the
     next scan. *)
  let take_local t ~proc =
    let slot = t.slots.(proc) in
    if Deque.is_empty slot.deque then None
    else
      protected slot (fun () ->
          match Deque.pop_front_opt slot.deque with
          | Some _ as r ->
              Atomic.decr t.items;
              r
          | None -> None)

  let steal t ~proc =
    let n = procs t in
    let rec scan i =
      if i >= n then None
      else
        let victim = (proc + i) mod n in
        let slot = t.slots.(victim) in
        if Deque.is_empty slot.deque then scan (i + 1)
        else
          match
            protected slot (fun () ->
                match Deque.pop_back_opt slot.deque with
                | Some _ as r ->
                    Atomic.decr t.items;
                    r
                | None -> None)
          with
          | Some _ as found ->
              t.steal_count <- t.steal_count + 1;
              found
          | None -> scan (i + 1)
    in
    scan 1

  let take t ~proc =
    match take_local t ~proc with Some _ as x -> x | None -> steal t ~proc

  (* Charge-free emptiness hints: a [false] here implies [take]
     (resp. [take_local]) would return [None] without touching a lock.
     Used as the readiness predicate of an idle poller, so these must stay
     free of locks, charges and writes.  The global hint reads the exact
     item counter — O(1) where the deque scan was O(procs), which matters
     once idle pollers are serviced every quantum on 256–1024-proc
     machines.  Since every mutation happens inside a slot lock's critical
     section, the counter is non-zero exactly when some deque is non-empty
     at every point where no section is mid-flight. *)
  let looks_nonempty t = Atomic.get t.items > 0

  let looks_nonempty_local t ~proc = not (Deque.is_empty t.slots.(proc).deque)

  let total_length t =
    Array.fold_left (fun acc slot -> acc + Deque.length slot.deque) 0 t.slots

  let steals t = t.steal_count
end
