(** LIFO (stack) discipline.  Matching the paper's [QUEUE] signature with a
    stack turns the thread scheduler into depth-first execution, which keeps
    related threads hot in the cache at the cost of fairness. *)

include Queue_intf.QUEUE_EXT
