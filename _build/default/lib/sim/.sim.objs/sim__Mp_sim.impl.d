lib/sim/mp_sim.ml: Array Buffer Engine Float Fun Mp Mp_intf Printf Sim_config Sim_trace Stats Sys
